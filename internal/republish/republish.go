// Package republish implements the sequential (dynamic) re-publication pillar
// of the PPDP survey: when a table is published repeatedly as records are
// inserted, the intersection of releases can disclose sensitive values even
// though every individual release is k-anonymous and l-diverse. Xiao and
// Tao's m-invariance closes this channel by requiring every individual to
// appear, across all releases, in equivalence classes with exactly the same
// signature of m distinct sensitive values, adding counterfeit records when
// the real data cannot supply them.
//
// The package provides both the checker (is a series of releases m-invariant
// for the individuals they share?) and a publisher that produces m-invariant
// sequential releases from snapshots of a growing table.
package republish

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/ppdp/ppdp/internal/dataset"
)

// Common errors.
var (
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("republish: invalid configuration")
	// ErrEligibility is returned when a snapshot cannot be partitioned into
	// m-diverse buckets (some sensitive value is too frequent).
	ErrEligibility = errors.New("republish: sensitive distribution violates the m-eligibility condition")
	// ErrUnknownID is returned when a record lacks the identity column used
	// to track individuals across releases.
	ErrUnknownID = errors.New("republish: record id column missing")
)

// CounterfeitValue marks counterfeit identities injected to keep signatures
// stable across releases.
const CounterfeitValue = "counterfeit"

// Release is one published version of the growing table.
type Release struct {
	// Version is the 1-based release number.
	Version int
	// QIT maps each (possibly counterfeit) record to its bucket: the QI
	// columns plus "bucket" and the tracking id column.
	QIT *dataset.Table
	// ST lists each bucket's sensitive values and counts.
	ST *dataset.Table
	// Signatures maps record id -> sorted signature of sensitive values of
	// its bucket in this release.
	Signatures map[string][]string
	// Counterfeits is the number of counterfeit records added.
	Counterfeits int
}

// Config controls a sequential publisher.
type Config struct {
	// M is the required number of distinct sensitive values per bucket (and
	// per cross-release signature).
	M int
	// ID names the column that identifies individuals across releases (it
	// is pseudonymous in the output: needed to audit invariance, dropped by
	// callers who only forward QIT/ST).
	ID string
	// Sensitive names the sensitive attribute; defaults to the schema's
	// first sensitive column.
	Sensitive string
	// QuasiIdentifiers lists the columns published in the QIT; defaults to
	// the schema's quasi-identifier columns.
	QuasiIdentifiers []string
	// Progress, when non-nil, receives (done, total) events as snapshot rows
	// are materialized into the release; total is the snapshot's row count.
	Progress func(done, total int)
}

// Publisher produces m-invariant sequential releases.
type Publisher struct {
	cfg Config
	// signatures fixes each individual's sensitive-value signature at first
	// publication.
	signatures map[string][]string
	releases   []*Release
}

// NewPublisher validates the configuration.
func NewPublisher(cfg Config) (*Publisher, error) {
	if cfg.M < 2 {
		return nil, fmt.Errorf("%w: m = %d", ErrConfig, cfg.M)
	}
	if cfg.ID == "" {
		return nil, fmt.Errorf("%w: an id column is required to track individuals", ErrConfig)
	}
	return &Publisher{cfg: cfg, signatures: make(map[string][]string)}, nil
}

// Releases returns the releases published so far.
func (p *Publisher) Releases() []*Release { return p.releases }

// Publish produces the next release from the current snapshot of the table.
// The snapshot must contain every previously published individual that is
// still present plus any newly inserted ones (deletions are allowed: absent
// individuals simply stop appearing).
func (p *Publisher) Publish(snapshot *dataset.Table) (*Release, error) {
	return p.PublishContext(context.Background(), snapshot)
}

// PublishContext is Publish under a context: the publisher polls ctx once
// per materialized row, so a canceled request aborts the release mid-build.
func (p *Publisher) PublishContext(ctx context.Context, snapshot *dataset.Table) (*Release, error) {
	sensitive := p.cfg.Sensitive
	if sensitive == "" {
		names := snapshot.Schema().SensitiveNames()
		if len(names) == 0 {
			return nil, fmt.Errorf("%w: no sensitive attribute", ErrConfig)
		}
		sensitive = names[0]
	}
	qi := p.cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = snapshot.Schema().QuasiIdentifierNames()
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("%w: no quasi-identifier attributes", ErrConfig)
	}
	idCol, err := snapshot.Schema().Index(p.cfg.ID)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownID, err)
	}
	sensCol, err := snapshot.Schema().Index(sensitive)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}

	var existing, fresh []record
	for r := 0; r < snapshot.Len(); r++ {
		row, err := snapshot.Row(r)
		if err != nil {
			return nil, err
		}
		rc := record{row: r, id: row[idCol], sens: row[sensCol]}
		if _, ok := p.signatures[rc.id]; ok {
			existing = append(existing, rc)
		} else {
			fresh = append(fresh, rc)
		}
	}
	sort.Slice(existing, func(i, j int) bool { return existing[i].id < existing[j].id })
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].id < fresh[j].id })

	// Bucket existing individuals by their fixed signature. Records whose
	// current sensitive value is no longer in their signature keep the
	// signature (m-invariance fixes it forever); their bucket is padded with
	// counterfeits for the missing values.
	buckets := make(map[string]*freshBucket)
	keyOf := func(sig []string) string { return strings.Join(sig, "\x1f") }
	for _, rc := range existing {
		sig := p.signatures[rc.id]
		k := keyOf(sig)
		if buckets[k] == nil {
			buckets[k] = &freshBucket{signature: sig}
		}
		buckets[k].members = append(buckets[k].members, rc)
	}

	// Partition fresh individuals into new m-diverse buckets using the
	// Anatomy-style greedy assignment.
	if len(fresh) > 0 {
		newBuckets, err := partitionFresh(fresh, p.cfg.M)
		if err != nil {
			return nil, err
		}
		for _, b := range newBuckets {
			k := keyOf(b.signature)
			if buckets[k] == nil {
				buckets[k] = &freshBucket{signature: b.signature}
			}
			buckets[k].members = append(buckets[k].members, b.members...)
			for _, rc := range b.members {
				p.signatures[rc.id] = b.signature
			}
		}
	}

	// Materialize the release: each signature bucket must expose exactly its
	// signature's value set; counterfeit records cover values with no live
	// member.
	rel := &Release{
		Version:    len(p.releases) + 1,
		Signatures: make(map[string][]string),
	}
	qitSchema, stSchema, err := releaseSchemas(snapshot, qi, sensitive, p.cfg.ID)
	if err != nil {
		return nil, err
	}
	qit := dataset.NewTable(qitSchema)
	st := dataset.NewTable(stSchema)
	qiCols := make([]int, len(qi))
	for i, a := range qi {
		qiCols[i] = snapshot.Schema().MustIndex(a)
	}

	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bucketID := 0
	done, total := 0, snapshot.Len()
	for _, k := range keys {
		b := buckets[k]
		counts := make(map[string]int)
		for _, rc := range b.members {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			row, err := snapshot.Row(rc.row)
			if err != nil {
				return nil, err
			}
			out := make(dataset.Row, 0, len(qi)+2)
			for _, c := range qiCols {
				out = append(out, row[c])
			}
			out = append(out, fmt.Sprint(bucketID), rc.id)
			if err := qit.Append(out); err != nil {
				return nil, err
			}
			// The published histogram lists the signature values; a member
			// whose current value left the signature is counted under its
			// original signature slot to keep the release m-invariant.
			v := rc.sens
			if !contains(b.signature, v) {
				v = b.signature[0]
			}
			counts[v]++
			rel.Signatures[rc.id] = b.signature
			done++
			if p.cfg.Progress != nil {
				p.cfg.Progress(done, total)
			}
		}
		// Counterfeits for signature values with no member.
		for _, v := range b.signature {
			if counts[v] == 0 {
				counterfeit := make(dataset.Row, 0, len(qi)+2)
				for range qi {
					counterfeit = append(counterfeit, dataset.SuppressedValue)
				}
				counterfeit = append(counterfeit, fmt.Sprint(bucketID), CounterfeitValue)
				if err := qit.Append(counterfeit); err != nil {
					return nil, err
				}
				counts[v]++
				rel.Counterfeits++
			}
		}
		for _, v := range b.signature {
			if err := st.Append(dataset.Row{fmt.Sprint(bucketID), v, fmt.Sprint(counts[v])}); err != nil {
				return nil, err
			}
		}
		bucketID++
	}
	rel.QIT = qit
	rel.ST = st
	p.releases = append(p.releases, rel)
	return rel, nil
}

// record is one individual's row in the current snapshot.
type record struct {
	row  int
	id   string
	sens string
}

// freshBucket groups records sharing one sensitive-value signature.
type freshBucket struct {
	signature []string
	members   []record
}

// partitionFresh groups never-published individuals into buckets of exactly m
// distinct sensitive values using the Anatomy bucketization; the resulting
// value sets become their permanent signatures.
func partitionFresh(fresh []record, m int) ([]freshBucket, error) {
	byValue := make(map[string][]record)
	for _, rc := range fresh {
		byValue[rc.sens] = append(byValue[rc.sens], rc)
	}
	var out []freshBucket
	for {
		values := make([]string, 0, len(byValue))
		for v := range byValue {
			values = append(values, v)
		}
		if len(values) < m {
			break
		}
		sort.Slice(values, func(i, j int) bool {
			ni, nj := len(byValue[values[i]]), len(byValue[values[j]])
			if ni != nj {
				return ni > nj
			}
			return values[i] < values[j]
		})
		chosen := values[:m]
		sig := append([]string(nil), chosen...)
		sort.Strings(sig)
		b := freshBucket{signature: sig}
		for _, v := range chosen {
			rows := byValue[v]
			b.members = append(b.members, rows[len(rows)-1])
			byValue[v] = rows[:len(rows)-1]
			if len(byValue[v]) == 0 {
				delete(byValue, v)
			}
		}
		out = append(out, b)
	}
	// Residuals join an existing bucket whose signature contains their value.
	for v, rows := range byValue {
		for _, rc := range rows {
			placed := false
			for i := range out {
				if contains(out[i].signature, v) {
					out[i].members = append(out[i].members, rc)
					placed = true
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("%w: value %q too frequent among new records for m=%d", ErrEligibility, v, m)
			}
		}
	}
	if len(out) == 0 && len(fresh) > 0 {
		return nil, fmt.Errorf("%w: fewer than %d distinct sensitive values among new records", ErrEligibility, m)
	}
	return out, nil
}

func contains(values []string, v string) bool {
	for _, x := range values {
		if x == v {
			return true
		}
	}
	return false
}

// releaseSchemas builds the QIT and ST schemas of a release.
func releaseSchemas(snapshot *dataset.Table, qi []string, sensitive, id string) (*dataset.Schema, *dataset.Schema, error) {
	attrs := make([]dataset.Attribute, 0, len(qi)+2)
	for _, a := range qi {
		attr, err := snapshot.Schema().ByName(a)
		if err != nil {
			return nil, nil, err
		}
		attrs = append(attrs, attr)
	}
	attrs = append(attrs,
		dataset.Attribute{Name: "bucket", Kind: dataset.Insensitive, Type: dataset.Numeric},
		dataset.Attribute{Name: id, Kind: dataset.Identifier, Type: dataset.Categorical},
	)
	qitSchema, err := dataset.NewSchema(attrs...)
	if err != nil {
		return nil, nil, err
	}
	stSchema, err := dataset.NewSchema(
		dataset.Attribute{Name: "bucket", Kind: dataset.Insensitive, Type: dataset.Numeric},
		dataset.Attribute{Name: sensitive, Kind: dataset.Sensitive, Type: dataset.Categorical},
		dataset.Attribute{Name: "count", Kind: dataset.Insensitive, Type: dataset.Numeric},
	)
	if err != nil {
		return nil, nil, err
	}
	return qitSchema, stSchema, nil
}

// CheckInvariance verifies that a series of releases is m-invariant: every
// individual appearing in more than one release has exactly the same
// signature (set of sensitive values of its bucket) in each of them, and
// every signature has at least m distinct values.
func CheckInvariance(releases []*Release, m int) (bool, string, error) {
	if m < 2 {
		return false, "", fmt.Errorf("%w: m = %d", ErrConfig, m)
	}
	seen := make(map[string][]string)
	for _, rel := range releases {
		for id, sig := range rel.Signatures {
			if id == CounterfeitValue {
				continue
			}
			if len(uniq(sig)) < m {
				return false, fmt.Sprintf("release %d: individual %s has signature %v with fewer than %d distinct values", rel.Version, id, sig, m), nil
			}
			prev, ok := seen[id]
			if !ok {
				seen[id] = sig
				continue
			}
			if !equalSignature(prev, sig) {
				return false, fmt.Sprintf("individual %s changed signature from %v to %v", id, prev, sig), nil
			}
		}
	}
	return true, "", nil
}

func uniq(values []string) []string {
	set := make(map[string]struct{}, len(values))
	for _, v := range values {
		set[v] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

func equalSignature(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]string(nil), a...), append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// IntersectionAttack simulates the attack m-invariance is designed to stop:
// for every individual present in two consecutive releases, the attacker
// intersects the sensitive-value sets of the individual's buckets. It returns
// the fraction of shared individuals whose intersection shrinks to a single
// value (full disclosure) and the average intersection size.
func IntersectionAttack(first, second *Release) (disclosed float64, avgIntersection float64) {
	shared := 0
	disclosedCount := 0
	totalSize := 0
	for id, sigA := range first.Signatures {
		sigB, ok := second.Signatures[id]
		if !ok || id == CounterfeitValue {
			continue
		}
		shared++
		inter := intersect(uniq(sigA), uniq(sigB))
		totalSize += len(inter)
		if len(inter) <= 1 {
			disclosedCount++
		}
	}
	if shared == 0 {
		return 0, 0
	}
	return float64(disclosedCount) / float64(shared), float64(totalSize) / float64(shared)
}

func intersect(a, b []string) []string {
	set := make(map[string]struct{}, len(a))
	for _, v := range a {
		set[v] = struct{}{}
	}
	var out []string
	for _, v := range b {
		if _, ok := set[v]; ok {
			out = append(out, v)
		}
	}
	return out
}
