package republish

import (
	"errors"
	"strings"
	"testing"

	"github.com/ppdp/ppdp/internal/synth"
)

// publishHistory runs a fresh publisher over growing hospital snapshots and
// returns the accumulated releases.
func publishHistory(t *testing.T, m int, sizes ...int) []*Release {
	t.Helper()
	full := synth.Hospital(900, 1)
	pub, err := NewPublisher(Config{M: m, ID: "name"})
	if err != nil {
		t.Fatal(err)
	}
	var out []*Release
	for _, n := range sizes {
		rel, err := pub.Publish(snapshotAt(t, full, n))
		if err != nil {
			t.Fatalf("publish at %d rows: %v", n, err)
		}
		out = append(out, rel)
	}
	return out
}

// TestReleaseFromTablesRoundTrip rebuilds each release from nothing but its
// published QIT/ST tables — exactly what store recovery does — and checks the
// derived signature map and counterfeit count match the originals.
func TestReleaseFromTablesRoundTrip(t *testing.T) {
	for _, rel := range publishHistory(t, 3, 300, 600, 900) {
		got, err := ReleaseFromTables(rel.Version, rel.QIT, rel.ST)
		if err != nil {
			t.Fatalf("release %d: %v", rel.Version, err)
		}
		if got.Version != rel.Version || got.Counterfeits != rel.Counterfeits {
			t.Errorf("release %d: rebuilt version/counterfeits = %d/%d, want %d/%d",
				rel.Version, got.Version, got.Counterfeits, rel.Version, rel.Counterfeits)
		}
		if len(got.Signatures) != len(rel.Signatures) {
			t.Fatalf("release %d: rebuilt %d signatures, want %d", rel.Version, len(got.Signatures), len(rel.Signatures))
		}
		for id, sig := range rel.Signatures {
			if !equalSignature(got.Signatures[id], sig) {
				t.Fatalf("release %d: signature for %s rebuilt as %v, want %v", rel.Version, id, got.Signatures[id], sig)
			}
		}
	}
}

// TestReleaseFromTablesRejectsForeignTables feeds tables that are not a
// QIT/ST pair and expects configuration errors, not panics or bogus
// histories.
func TestReleaseFromTablesRejectsForeignTables(t *testing.T) {
	raw := synth.Hospital(50, 1)
	if _, err := ReleaseFromTables(1, raw, raw); !errors.Is(err, ErrConfig) {
		t.Errorf("raw microdata accepted as QIT: %v", err)
	}
	rel := publishHistory(t, 3, 300)[0]
	if _, err := ReleaseFromTables(1, rel.QIT, raw); !errors.Is(err, ErrConfig) {
		t.Errorf("raw microdata accepted as ST: %v", err)
	}
}

// TestRestoreContinuesPublication is the restart contract: a publisher
// rebuilt from a stored history must keep every fixed signature and publish
// the next release so the full chain stays m-invariant.
func TestRestoreContinuesPublication(t *testing.T) {
	hist := publishHistory(t, 3, 300, 600)
	pub, err := Restore(Config{M: 3, ID: "name"}, hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(pub.Releases()) != 2 {
		t.Fatalf("restored publisher holds %d releases", len(pub.Releases()))
	}
	full := synth.Hospital(900, 1)
	rel, err := pub.Publish(snapshotAt(t, full, 900))
	if err != nil {
		t.Fatalf("publish after restore: %v", err)
	}
	if rel.Version != 3 {
		t.Fatalf("release after restore carries version %d, want 3", rel.Version)
	}
	ok, why, err := CheckInvariance(pub.Releases(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("chain across restore is not 3-invariant: %s", why)
	}
}

// TestRestoreValidation covers the corrupt-history rejections: version gaps,
// signature drift between releases, and signatures that do not meet the
// configured m.
func TestRestoreValidation(t *testing.T) {
	hist := publishHistory(t, 3, 300, 600)

	// Version gap.
	gapped := []*Release{hist[1]}
	if _, err := Restore(Config{M: 3, ID: "name"}, gapped); !errors.Is(err, ErrConfig) {
		t.Errorf("version gap accepted: %v", err)
	}

	// Signature drift: mutate one individual's signature in release 2.
	var victim string
	for id := range hist[1].Signatures {
		if _, ok := hist[0].Signatures[id]; ok {
			victim = id
			break
		}
	}
	if victim == "" {
		t.Fatal("no individual spans both releases")
	}
	drifted := &Release{Version: 2, QIT: hist[1].QIT, ST: hist[1].ST,
		Signatures: make(map[string][]string), Counterfeits: hist[1].Counterfeits}
	for id, sig := range hist[1].Signatures {
		drifted.Signatures[id] = sig
	}
	drifted.Signatures[victim] = []string{"flu", "ulcer", "gastritis"}
	if !equalSignature(drifted.Signatures[victim], hist[0].Signatures[victim]) {
		_, err := Restore(Config{M: 3, ID: "name"}, []*Release{hist[0], drifted})
		if !errors.Is(err, ErrConfig) {
			t.Errorf("signature drift accepted: %v", err)
		} else if !strings.Contains(err.Error(), victim) {
			t.Errorf("drift error does not name the individual: %v", err)
		}
	}

	// A stored 3-signature history cannot back an m=4 publisher.
	if _, err := Restore(Config{M: 4, ID: "name"}, hist[:1]); !errors.Is(err, ErrEligibility) {
		t.Errorf("undersized signatures accepted for m=4: %v", err)
	}

	// The configuration itself is still validated first.
	if _, err := Restore(Config{M: 1, ID: "name"}, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("m=1 accepted: %v", err)
	}
}
