package republish

import (
	"fmt"
	"sort"

	"github.com/ppdp/ppdp/internal/dataset"
)

// ReleaseFromTables reconstructs a Release from its published QIT and ST
// tables. The signature map and counterfeit count are fully derivable from
// the tables (the QIT carries each record's bucket and tracking id, the ST
// each bucket's value set in signature order), so durable storage only needs
// the two table snapshots — this is the recovery half of persisting a
// sequential-publication history through the content-addressed store.
func ReleaseFromTables(version int, qit, st *dataset.Table) (*Release, error) {
	bucketCol, err := qit.Schema().Index("bucket")
	if err != nil {
		return nil, fmt.Errorf("%w: QIT: %v", ErrConfig, err)
	}
	idIdx := qit.Schema().IdentifierIndices()
	if len(idIdx) != 1 {
		return nil, fmt.Errorf("%w: QIT must carry exactly one identifier column (got %d)", ErrConfig, len(idIdx))
	}
	idCol := idIdx[0]
	stBucketCol, err := st.Schema().Index("bucket")
	if err != nil {
		return nil, fmt.Errorf("%w: ST: %v", ErrConfig, err)
	}
	sensIdx := st.Schema().SensitiveIndices()
	if len(sensIdx) != 1 {
		return nil, fmt.Errorf("%w: ST must carry exactly one sensitive column (got %d)", ErrConfig, len(sensIdx))
	}
	sensCol := sensIdx[0]

	// The publisher emits ST rows per bucket in signature order, so the
	// per-bucket value list rebuilds the signature exactly.
	sigByBucket := make(map[string][]string)
	for r := 0; r < st.Len(); r++ {
		row, err := st.Row(r)
		if err != nil {
			return nil, err
		}
		b := row[stBucketCol]
		sigByBucket[b] = append(sigByBucket[b], row[sensCol])
	}

	rel := &Release{Version: version, QIT: qit, ST: st, Signatures: make(map[string][]string)}
	for r := 0; r < qit.Len(); r++ {
		row, err := qit.Row(r)
		if err != nil {
			return nil, err
		}
		id := row[idCol]
		if id == CounterfeitValue {
			rel.Counterfeits++
			continue
		}
		sig, ok := sigByBucket[row[bucketCol]]
		if !ok {
			return nil, fmt.Errorf("%w: QIT bucket %q has no ST rows", ErrConfig, row[bucketCol])
		}
		rel.Signatures[id] = sig
	}
	return rel, nil
}

// Restore rebuilds a publisher from a previously published history so
// publication can continue after a restart: every individual's signature is
// re-fixed from the release it first appeared in, and the next Publish call
// produces release len(history)+1. The history must be m-invariant under the
// configuration's m (a signature drift means the stored history is corrupt
// or was produced under a different policy).
func Restore(cfg Config, history []*Release) (*Publisher, error) {
	p, err := NewPublisher(cfg)
	if err != nil {
		return nil, err
	}
	for i, rel := range history {
		if rel.Version != i+1 {
			return nil, fmt.Errorf("%w: release %d carries version %d", ErrConfig, i+1, rel.Version)
		}
		for _, id := range sortedIDs(rel.Signatures) {
			sig := rel.Signatures[id]
			if len(uniq(sig)) < cfg.M {
				return nil, fmt.Errorf("%w: release %d: individual %s has signature %v with fewer than %d distinct values",
					ErrEligibility, rel.Version, id, sig, cfg.M)
			}
			prev, ok := p.signatures[id]
			if !ok {
				p.signatures[id] = sig
				continue
			}
			if !equalSignature(prev, sig) {
				return nil, fmt.Errorf("%w: release %d: individual %s changed signature from %v to %v",
					ErrConfig, rel.Version, id, prev, sig)
			}
		}
		p.releases = append(p.releases, rel)
	}
	return p, nil
}

func sortedIDs(sigs map[string][]string) []string {
	out := make([]string, 0, len(sigs))
	for id := range sigs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
