package republish

import (
	"context"
	"errors"
	"fmt"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/policy"
)

// adapter plugs the m-invariant publisher into the engine registry as the
// "republish" algorithm. A one-shot run publishes release 1 of a fresh
// history (the stateless view clients get through POST /v1/anonymize); the
// reconciler drives the stateful sequential mode directly through
// Restore/Publish, accumulating releases across dataset generations.
type adapter struct{}

func init() { engine.Register(adapter{}) }

func (adapter) Name() string { return "republish" }

func (adapter) Describe() engine.Info {
	return engine.Info{
		Name:        "republish",
		Description: "m-invariant bucketization for sequential re-publication (QIT/ST with counterfeit padding)",
		Kind:        engine.Bucketized,
		Criteria:    []string{policy.MInvariance},
		Parameters: []engine.Param{
			{Name: "policy", Type: "object", Required: true, Description: "policy document carrying the m-invariance criterion (m >= 2, id column)"},
			{Name: "sensitive", Type: "string", Description: "sensitive attribute (schema's first sensitive column when empty)"},
			{Name: "quasi_identifiers", Type: "[]string", Description: "columns published in the QIT (schema QI columns when empty)"},
		},
	}
}

// criterion extracts the m-invariance criterion the run is driven by.
func criterion(spec engine.Spec) (policy.Criterion, error) {
	if spec.Policy == nil {
		return policy.Criterion{}, engine.ConfigError(fmt.Errorf("republish: a policy with an %s criterion is required (flat parameters cannot express it)", policy.MInvariance))
	}
	c, ok := spec.Policy.Find(policy.MInvariance)
	if !ok {
		return policy.Criterion{}, engine.ConfigError(fmt.Errorf("republish: the policy must carry an %s criterion", policy.MInvariance))
	}
	return c, nil
}

func (adapter) Validate(spec engine.Spec) error {
	if err := engine.ValidateCriteria(adapter{}.Describe(), spec); err != nil {
		return err
	}
	c, err := criterion(spec)
	if err != nil {
		return err
	}
	if _, err := NewPublisher(publisherConfig(c, spec)); err != nil {
		return classify(err)
	}
	return nil
}

func (adapter) Run(ctx context.Context, t *dataset.Table, spec engine.Spec) (*engine.Result, error) {
	c, err := criterion(spec)
	if err != nil {
		return nil, err
	}
	cfg := publisherConfig(c, spec)
	cfg.Progress = engine.Monotone(spec.Progress)
	p, err := NewPublisher(cfg)
	if err != nil {
		return nil, classify(err)
	}
	rel, err := p.PublishContext(ctx, t)
	if err != nil {
		return nil, classify(err)
	}
	return &engine.Result{QIT: rel.QIT, ST: rel.ST, Extra: rel}, nil
}

// publisherConfig maps a criterion plus the run spec onto the publisher's
// configuration. The criterion's sensitive attribute wins over the spec's:
// the policy layer resolves defaults into the criterion before the run.
func publisherConfig(c policy.Criterion, spec engine.Spec) Config {
	sensitive := c.Sensitive
	if sensitive == "" {
		sensitive = spec.Sensitive
	}
	return Config{M: c.M, ID: c.ID, Sensitive: sensitive, QuasiIdentifiers: spec.QuasiIdentifiers}
}

// classify wraps the package's sentinel errors with the engine's error
// classes so the service layer can map them without importing this package.
func classify(err error) error {
	switch {
	case errors.Is(err, ErrConfig), errors.Is(err, ErrUnknownID):
		return engine.ConfigError(err)
	case errors.Is(err, ErrEligibility):
		return engine.UnsatisfiableError(err)
	}
	return err
}
