package republish

import (
	"errors"
	"fmt"
	"strconv"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/synth"
)

// snapshotAt returns the first n rows of the hospital table as the table
// state at one publication time.
func snapshotAt(t *testing.T, full *dataset.Table, n int) *dataset.Table {
	t.Helper()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	snap, err := full.Select(idx)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestNewPublisherValidation(t *testing.T) {
	if _, err := NewPublisher(Config{M: 1, ID: "name"}); !errors.Is(err, ErrConfig) {
		t.Errorf("m=1 error = %v", err)
	}
	if _, err := NewPublisher(Config{M: 2}); !errors.Is(err, ErrConfig) {
		t.Errorf("missing id error = %v", err)
	}
	if _, err := NewPublisher(Config{M: 2, ID: "name"}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSequentialReleasesAreMInvariant(t *testing.T) {
	full := synth.Hospital(900, 1)
	pub, err := NewPublisher(Config{M: 3, ID: "name"})
	if err != nil {
		t.Fatal(err)
	}
	var releases []*Release
	for _, n := range []int{300, 600, 900} {
		rel, err := pub.Publish(snapshotAt(t, full, n))
		if err != nil {
			t.Fatalf("publish at %d rows: %v", n, err)
		}
		releases = append(releases, rel)
		// Every bucket in the ST exposes at least m distinct values.
		perBucket := make(map[string]map[string]bool)
		for i := 0; i < rel.ST.Len(); i++ {
			row, _ := rel.ST.Row(i)
			if perBucket[row[0]] == nil {
				perBucket[row[0]] = make(map[string]bool)
			}
			perBucket[row[0]][row[1]] = true
		}
		for b, values := range perBucket {
			if len(values) < 3 {
				t.Errorf("release %d bucket %s has %d distinct sensitive values", rel.Version, b, len(values))
			}
		}
		if rel.QIT.Len() < n {
			t.Errorf("release %d QIT has %d rows for %d individuals", rel.Version, rel.QIT.Len(), n)
		}
	}
	ok, why, err := CheckInvariance(releases, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("releases are not 3-invariant: %s", why)
	}
	if len(pub.Releases()) != 3 {
		t.Errorf("Releases() = %d", len(pub.Releases()))
	}
}

func TestIntersectionAttackBlocked(t *testing.T) {
	full := synth.Hospital(600, 2)
	pub, err := NewPublisher(Config{M: 2, ID: "name"})
	if err != nil {
		t.Fatal(err)
	}
	first, err := pub.Publish(snapshotAt(t, full, 300))
	if err != nil {
		t.Fatal(err)
	}
	second, err := pub.Publish(snapshotAt(t, full, 600))
	if err != nil {
		t.Fatal(err)
	}
	disclosed, avg := IntersectionAttack(first, second)
	if disclosed > 0 {
		t.Errorf("intersection attack discloses %.3f of shared individuals under m-invariance", disclosed)
	}
	if avg < 2 {
		t.Errorf("average intersection size %.2f below m", avg)
	}
}

func TestIntersectionAttackSucceedsWithoutInvariance(t *testing.T) {
	// Construct two hand-made releases where an individual's bucket changes
	// signature; the intersection shrinks to one value.
	a := &Release{Version: 1, Signatures: map[string][]string{"p1": {"flu", "hiv"}}}
	b := &Release{Version: 2, Signatures: map[string][]string{"p1": {"flu", "cancer"}}}
	disclosed, avg := IntersectionAttack(a, b)
	if disclosed != 1 {
		t.Errorf("disclosed = %v, want 1", disclosed)
	}
	if avg != 1 {
		t.Errorf("avg intersection = %v, want 1", avg)
	}
	ok, why, err := CheckInvariance([]*Release{a, b}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("CheckInvariance accepted signature change")
	}
	if why == "" {
		t.Error("CheckInvariance should explain the violation")
	}
	// No shared individuals.
	if d, g := IntersectionAttack(a, &Release{Version: 3, Signatures: map[string][]string{}}); d != 0 || g != 0 {
		t.Errorf("empty intersection attack = %v, %v", d, g)
	}
}

func TestCheckInvarianceParameters(t *testing.T) {
	if _, _, err := CheckInvariance(nil, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("m=1 error = %v", err)
	}
	weak := &Release{Version: 1, Signatures: map[string][]string{"p": {"flu"}}}
	ok, why, err := CheckInvariance([]*Release{weak}, 2)
	if err != nil || ok || why == "" {
		t.Errorf("thin signature accepted: %v %q %v", ok, why, err)
	}
}

func TestPublishErrors(t *testing.T) {
	full := synth.Hospital(100, 3)
	pub, _ := NewPublisher(Config{M: 3, ID: "missing-column"})
	if _, err := pub.Publish(full); !errors.Is(err, ErrUnknownID) {
		t.Errorf("missing id column error = %v", err)
	}
	// A snapshot with a single sensitive value cannot be partitioned.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "id", Kind: dataset.Identifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
		dataset.Attribute{Name: "diag", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
	tbl := dataset.NewTable(schema)
	for i := 0; i < 10; i++ {
		_ = tbl.Append(dataset.Row{fmt.Sprintf("p%d", i), strconv.Itoa(20 + i), "flu"})
	}
	pub2, _ := NewPublisher(Config{M: 2, ID: "id"})
	if _, err := pub2.Publish(tbl); !errors.Is(err, ErrEligibility) {
		t.Errorf("single-value snapshot error = %v", err)
	}
	// No sensitive column at all.
	plain := dataset.MustSchema(
		dataset.Attribute{Name: "id", Kind: dataset.Identifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
	)
	pt, _ := dataset.FromRows(plain, []dataset.Row{{"p1", "30"}})
	pub3, _ := NewPublisher(Config{M: 2, ID: "id"})
	if _, err := pub3.Publish(pt); !errors.Is(err, ErrConfig) {
		t.Errorf("no sensitive column error = %v", err)
	}
}

func TestCounterfeitsKeepSignaturesStable(t *testing.T) {
	// Build a snapshot where one individual's signature partner value never
	// reappears in the second snapshot, forcing a counterfeit.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "id", Kind: dataset.Identifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
		dataset.Attribute{Name: "diag", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
	first, _ := dataset.FromRows(schema, []dataset.Row{
		{"p1", "30", "flu"},
		{"p2", "31", "hiv"},
		{"p3", "40", "cancer"},
		{"p4", "41", "asthma"},
	})
	// p2 (hiv) leaves; p1 stays; newcomers all share p1's other bucket values.
	second, _ := dataset.FromRows(schema, []dataset.Row{
		{"p1", "30", "flu"},
		{"p3", "40", "cancer"},
		{"p4", "41", "asthma"},
		{"p5", "50", "flu"},
		{"p6", "51", "cancer"},
	})
	pub, err := NewPublisher(Config{M: 2, ID: "id"})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := pub.Publish(first)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pub.Publish(second)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Counterfeits == 0 {
		t.Error("expected at least one counterfeit record when a signature partner disappears")
	}
	ok, why, err := CheckInvariance([]*Release{r1, r2}, 2)
	if err != nil || !ok {
		t.Errorf("releases not 2-invariant: %q %v", why, err)
	}
	disclosed, _ := IntersectionAttack(r1, r2)
	if disclosed > 0 {
		t.Errorf("intersection attack disclosed %.2f despite counterfeits", disclosed)
	}
}
