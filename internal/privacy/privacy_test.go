package privacy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/ppdp/ppdp/internal/dataset"
)

// buildTable constructs a released table with two QI columns (age already
// generalized, zip) and a sensitive diagnosis column.
func buildTable(t *testing.T, rows []dataset.Row) (*dataset.Table, []dataset.EquivalenceClass) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "zip", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "diagnosis", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
	tbl, err := dataset.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	classes, err := tbl.GroupByQuasiIdentifier()
	if err != nil {
		t.Fatal(err)
	}
	return tbl, classes
}

func anonRows() []dataset.Row {
	return []dataset.Row{
		{"[20-30)", "303**", "flu"},
		{"[20-30)", "303**", "cancer"},
		{"[20-30)", "303**", "hiv"},
		{"[30-40)", "303**", "flu"},
		{"[30-40)", "303**", "flu"},
		{"[30-40)", "303**", "gastritis"},
	}
}

func TestKAnonymity(t *testing.T) {
	tbl, classes := buildTable(t, anonRows())
	for _, tc := range []struct {
		k    int
		want bool
	}{{1, true}, {2, true}, {3, true}, {4, false}} {
		ok, err := KAnonymity{K: tc.k}.Check(tbl, classes)
		if err != nil {
			t.Fatal(err)
		}
		if ok != tc.want {
			t.Errorf("k=%d: got %v, want %v", tc.k, ok, tc.want)
		}
	}
	if MeasureK(classes) != 3 {
		t.Errorf("MeasureK = %d", MeasureK(classes))
	}
	if _, err := (KAnonymity{K: 0}).Check(tbl, classes); !errors.Is(err, ErrParameter) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := (KAnonymity{K: 2}).Check(tbl, nil); !errors.Is(err, ErrNoClasses) {
		t.Errorf("no classes error = %v", err)
	}
	if got := (KAnonymity{K: 5}).Name(); got != "5-anonymity" {
		t.Errorf("Name = %q", got)
	}
}

func TestAlphaKAnonymity(t *testing.T) {
	tbl, classes := buildTable(t, anonRows())
	// Second class is 2/3 flu; alpha 0.5 fails, alpha 0.7 passes.
	ok, err := AlphaKAnonymity{K: 2, Alpha: 0.5, Sensitive: "diagnosis"}.Check(tbl, classes)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("alpha=0.5 should fail")
	}
	ok, err = AlphaKAnonymity{K: 2, Alpha: 0.7, Sensitive: "diagnosis"}.Check(tbl, classes)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("alpha=0.7 should pass")
	}
	// K gate.
	ok, _ = AlphaKAnonymity{K: 4, Alpha: 1, Sensitive: "diagnosis"}.Check(tbl, classes)
	if ok {
		t.Error("k=4 should fail before alpha is considered")
	}
	if _, err := (AlphaKAnonymity{K: 1, Alpha: 0, Sensitive: "diagnosis"}).Check(tbl, classes); !errors.Is(err, ErrParameter) {
		t.Errorf("alpha=0 error = %v", err)
	}
	if _, err := (AlphaKAnonymity{K: 1, Alpha: 0.5, Sensitive: "nope"}).Check(tbl, classes); err == nil {
		t.Error("unknown sensitive accepted")
	}
	if _, err := (AlphaKAnonymity{K: 1, Alpha: 0.5, Sensitive: "diagnosis"}).Check(tbl, nil); !errors.Is(err, ErrNoClasses) {
		t.Errorf("no classes error = %v", err)
	}
}

func TestDistinctLDiversity(t *testing.T) {
	tbl, classes := buildTable(t, anonRows())
	// Class 1 has 3 distinct, class 2 has 2 distinct => release is 2-diverse.
	l, err := MeasureDistinctL(tbl, classes, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if l != 2 {
		t.Errorf("MeasureDistinctL = %d", l)
	}
	ok, _ := DistinctLDiversity{L: 2, Sensitive: "diagnosis"}.Check(tbl, classes)
	if !ok {
		t.Error("2-diversity should hold")
	}
	ok, _ = DistinctLDiversity{L: 3, Sensitive: "diagnosis"}.Check(tbl, classes)
	if ok {
		t.Error("3-diversity should fail")
	}
	if _, err := (DistinctLDiversity{L: 0, Sensitive: "diagnosis"}).Check(tbl, classes); !errors.Is(err, ErrParameter) {
		t.Errorf("l=0 error = %v", err)
	}
	if _, err := (DistinctLDiversity{L: 2, Sensitive: "diagnosis"}).Check(tbl, nil); !errors.Is(err, ErrNoClasses) {
		t.Errorf("no classes error = %v", err)
	}
	if l, _ := MeasureDistinctL(tbl, nil, "diagnosis"); l != 0 {
		t.Errorf("MeasureDistinctL(empty) = %d", l)
	}
	if _, err := MeasureDistinctL(tbl, classes, "nope"); err == nil {
		t.Error("unknown sensitive accepted")
	}
}

func TestEntropyLDiversity(t *testing.T) {
	tbl, classes := buildTable(t, anonRows())
	h, err := MeasureEntropyL(tbl, classes, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	// Worst class: {flu:2, gastritis:1}: H = -(2/3)ln(2/3) - (1/3)ln(1/3).
	want := -(2.0/3)*math.Log(2.0/3) - (1.0/3)*math.Log(1.0/3)
	if math.Abs(h-want) > 1e-9 {
		t.Errorf("MeasureEntropyL = %v, want %v", h, want)
	}
	// exp(want) ~ 1.88: entropy 1.8-diversity holds, 2-diversity fails.
	ok, _ := EntropyLDiversity{L: 1.8, Sensitive: "diagnosis"}.Check(tbl, classes)
	if !ok {
		t.Error("entropy 1.8-diversity should hold")
	}
	ok, _ = EntropyLDiversity{L: 2, Sensitive: "diagnosis"}.Check(tbl, classes)
	if ok {
		t.Error("entropy 2-diversity should fail")
	}
	if _, err := (EntropyLDiversity{L: 0.5, Sensitive: "diagnosis"}).Check(tbl, classes); !errors.Is(err, ErrParameter) {
		t.Errorf("l<1 error = %v", err)
	}
	if _, err := (EntropyLDiversity{L: 2, Sensitive: "diagnosis"}).Check(tbl, nil); !errors.Is(err, ErrNoClasses) {
		t.Errorf("no classes error = %v", err)
	}
	if h, _ := MeasureEntropyL(tbl, nil, "diagnosis"); h != 0 {
		t.Errorf("MeasureEntropyL(empty) = %v", h)
	}
}

func TestRecursiveCLDiversity(t *testing.T) {
	tbl, classes := buildTable(t, anonRows())
	// Worst class counts sorted: [2,1]. For l=2: r1=2, tail=1. Need 2 < c*1.
	ok, err := RecursiveCLDiversity{C: 3, L: 2, Sensitive: "diagnosis"}.Check(tbl, classes)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("(3,2)-diversity should hold")
	}
	ok, _ = RecursiveCLDiversity{C: 1.5, L: 2, Sensitive: "diagnosis"}.Check(tbl, classes)
	if ok {
		t.Error("(1.5,2)-diversity should fail")
	}
	// l larger than the number of distinct values fails.
	ok, _ = RecursiveCLDiversity{C: 10, L: 3, Sensitive: "diagnosis"}.Check(tbl, classes)
	if ok {
		t.Error("(10,3)-diversity should fail (only 2 distinct values in a class)")
	}
	if _, err := (RecursiveCLDiversity{C: 0, L: 2, Sensitive: "diagnosis"}).Check(tbl, classes); !errors.Is(err, ErrParameter) {
		t.Errorf("c=0 error = %v", err)
	}
	if _, err := (RecursiveCLDiversity{C: 1, L: 1, Sensitive: "nope"}).Check(tbl, classes); err == nil {
		t.Error("unknown sensitive accepted")
	}
	if _, err := (RecursiveCLDiversity{C: 1, L: 1, Sensitive: "diagnosis"}).Check(tbl, nil); !errors.Is(err, ErrNoClasses) {
		t.Errorf("no classes error = %v", err)
	}
}

func TestTCloseness(t *testing.T) {
	// Global: flu 3/6, cancer 1/6, hiv 1/6, gastritis 1/6.
	tbl, classes := buildTable(t, anonRows())
	maxEMD, err := MeasureMaxEMD(tbl, classes, "diagnosis", false)
	if err != nil {
		t.Fatal(err)
	}
	// Class1 dist: flu 1/3, cancer 1/3, hiv 1/3, gastritis 0
	// |1/3-1/2| + |1/3-1/6| + |1/3-1/6| + |0-1/6| = 1/6+1/6+1/6+1/6 = 2/3 -> EMD 1/3.
	if math.Abs(maxEMD-1.0/3) > 1e-9 {
		t.Errorf("MeasureMaxEMD = %v, want 1/3", maxEMD)
	}
	ok, _ := TCloseness{T: 0.35, Sensitive: "diagnosis"}.Check(tbl, classes)
	if !ok {
		t.Error("0.35-closeness should hold")
	}
	ok, _ = TCloseness{T: 0.2, Sensitive: "diagnosis"}.Check(tbl, classes)
	if ok {
		t.Error("0.2-closeness should fail")
	}
	if _, err := (TCloseness{T: -1, Sensitive: "diagnosis"}).Check(tbl, classes); !errors.Is(err, ErrParameter) {
		t.Errorf("t<0 error = %v", err)
	}
	if _, err := (TCloseness{T: 0.5, Sensitive: "diagnosis"}).Check(tbl, nil); !errors.Is(err, ErrNoClasses) {
		t.Errorf("no classes error = %v", err)
	}
	if _, err := MeasureMaxEMD(tbl, classes, "nope", false); err == nil {
		t.Error("unknown sensitive accepted")
	}
}

func TestTClosenessOrdered(t *testing.T) {
	// Numeric sensitive attribute (say salary in thousands).
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "grp", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "salary", Kind: dataset.Sensitive, Type: dataset.Numeric},
	)
	rows := []dataset.Row{
		{"a", "10"}, {"a", "20"}, {"a", "30"},
		{"b", "70"}, {"b", "80"}, {"b", "90"},
	}
	tbl, err := dataset.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	classes, _ := tbl.GroupByQuasiIdentifier()
	ordered, err := MeasureMaxEMD(tbl, classes, "salary", true)
	if err != nil {
		t.Fatal(err)
	}
	equal, err := MeasureMaxEMD(tbl, classes, "salary", false)
	if err != nil {
		t.Fatal(err)
	}
	// Both classes concentrate on one end of the ordered domain, so the
	// ordered EMD should be strictly larger than 0 and also larger than the
	// equal-distance EMD divided by domain effects; the key property is that
	// the ordered distance notices how far the mass moved.
	if ordered <= 0 || equal <= 0 {
		t.Fatalf("EMDs should be positive: ordered=%v equal=%v", ordered, equal)
	}
	if ordered <= 0.3 {
		t.Errorf("ordered EMD %v suspiciously small for fully separated classes", ordered)
	}
}

func TestCheckAll(t *testing.T) {
	tbl, classes := buildTable(t, anonRows())
	ok, failed, err := CheckAll(tbl, classes,
		KAnonymity{K: 2},
		DistinctLDiversity{L: 2, Sensitive: "diagnosis"},
	)
	if err != nil || !ok || failed != "" {
		t.Errorf("CheckAll = %v, %q, %v", ok, failed, err)
	}
	ok, failed, err = CheckAll(tbl, classes,
		KAnonymity{K: 2},
		DistinctLDiversity{L: 5, Sensitive: "diagnosis"},
	)
	if err != nil || ok {
		t.Errorf("CheckAll should fail: %v, %v", ok, err)
	}
	if failed == "" {
		t.Error("CheckAll should report the failed criterion")
	}
	_, failed, err = CheckAll(tbl, classes, KAnonymity{K: 0})
	if err == nil || failed == "" {
		t.Error("CheckAll should propagate errors with the criterion name")
	}
}

func TestDeltaPresence(t *testing.T) {
	pubSchema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "zip", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
	)
	public, err := dataset.FromRows(pubSchema, []dataset.Row{
		{"[20-30)", "303**"}, {"[20-30)", "303**"}, {"[20-30)", "303**"}, {"[20-30)", "303**"},
		{"[30-40)", "303**"}, {"[30-40)", "303**"}, {"[30-40)", "303**"},
	})
	if err != nil {
		t.Fatal(err)
	}
	privSchema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "zip", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "diagnosis", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
	private, err := dataset.FromRows(privSchema, []dataset.Row{
		{"[20-30)", "303**", "flu"},
		{"[20-30)", "303**", "hiv"},
		{"[30-40)", "303**", "flu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := MeasurePresence(private, public)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-1.0/3) > 1e-9 || math.Abs(hi-0.5) > 1e-9 {
		t.Errorf("presence bounds = [%v, %v], want [1/3, 1/2]", lo, hi)
	}
	ok, err := DeltaPresence{DeltaMin: 0.2, DeltaMax: 0.6, Public: public}.Check(private, nil)
	if err != nil || !ok {
		t.Errorf("presence check = %v, %v", ok, err)
	}
	ok, _ = DeltaPresence{DeltaMin: 0.4, DeltaMax: 0.6, Public: public}.Check(private, nil)
	if ok {
		t.Error("delta-min violation not detected")
	}
	ok, _ = DeltaPresence{DeltaMin: 0.0, DeltaMax: 0.4, Public: public}.Check(private, nil)
	if ok {
		t.Error("delta-max violation not detected")
	}
	if _, err := (DeltaPresence{DeltaMin: 0.9, DeltaMax: 0.1, Public: public}).Check(private, nil); !errors.Is(err, ErrParameter) {
		t.Errorf("inverted delta range error = %v", err)
	}
	if _, _, err := MeasurePresence(private, nil); err == nil {
		t.Error("nil public table accepted")
	}
	if got := (DeltaPresence{DeltaMin: 0.1, DeltaMax: 0.5}).Name(); got != "(0.10,0.50)-presence" {
		t.Errorf("Name = %q", got)
	}
}

// Property: for random small releases, MeasureK equals the smallest class
// size, and KAnonymity.Check agrees with comparing against MeasureK.
func TestMeasureKConsistencyProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		rows := propertyRows(seed)
		schema := dataset.MustSchema(
			dataset.Attribute{Name: "qi", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
			dataset.Attribute{Name: "s", Kind: dataset.Sensitive, Type: dataset.Categorical},
		)
		tbl, err := dataset.FromRows(schema, rows)
		if err != nil {
			return false
		}
		classes, err := tbl.GroupByQuasiIdentifier()
		if err != nil {
			return false
		}
		ok, err := KAnonymity{K: k}.Check(tbl, classes)
		if err != nil {
			return false
		}
		return ok == (MeasureK(classes) >= k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// propertyRows builds a small deterministic pseudo-random release.
func propertyRows(seed int64) []dataset.Row {
	qis := []string{"a", "b", "c"}
	ss := []string{"x", "y", "z"}
	n := 6 + int(seed%7+7)%7
	rows := make([]dataset.Row, 0, n)
	state := uint64(seed)
	next := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % m
	}
	for i := 0; i < n; i++ {
		rows = append(rows, dataset.Row{qis[next(3)], ss[next(3)]})
	}
	return rows
}

// TestMeasureMaxAlpha checks the (α,k) measurement against the hand-built
// table: class one is 1/3-homogeneous per value, class two has flu at 2/3.
func TestMeasureMaxAlpha(t *testing.T) {
	tbl, classes := buildTable(t, anonRows())
	alpha, err := MeasureMaxAlpha(tbl, classes, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0 / 3.0; math.Abs(alpha-want) > 1e-12 {
		t.Errorf("MeasureMaxAlpha = %v, want %v", alpha, want)
	}
	// Consistency with the checkable criterion: the measured α is the
	// smallest cap the release satisfies.
	if ok, err := (AlphaKAnonymity{K: 1, Alpha: alpha, Sensitive: "diagnosis"}).Check(tbl, classes); err != nil || !ok {
		t.Errorf("Check at measured alpha = %v, %v", ok, err)
	}
	if ok, _ := (AlphaKAnonymity{K: 1, Alpha: alpha - 0.01, Sensitive: "diagnosis"}).Check(tbl, classes); ok {
		t.Error("Check below measured alpha should fail")
	}
}

// TestMeasureRecursiveC checks the recursive (c,l) measurement: at l=2,
// class two has counts (2,1) so the worst r1/tail ratio is 2/1.
func TestMeasureRecursiveC(t *testing.T) {
	tbl, classes := buildTable(t, anonRows())
	c, err := MeasureRecursiveC(tbl, classes, 2, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0; c != want {
		t.Errorf("MeasureRecursiveC(l=2) = %v, want %v", c, want)
	}
	// Any c strictly above the measurement satisfies the criterion; the
	// measurement itself does not (strict inequality).
	if ok, err := (RecursiveCLDiversity{C: c + 0.01, L: 2, Sensitive: "diagnosis"}).Check(tbl, classes); err != nil || !ok {
		t.Errorf("Check above measured c = %v, %v", ok, err)
	}
	if ok, _ := (RecursiveCLDiversity{C: c, L: 2, Sensitive: "diagnosis"}).Check(tbl, classes); ok {
		t.Error("Check at measured c should fail (strict inequality)")
	}
	// A class with fewer than l distinct values satisfies no c.
	c4, err := MeasureRecursiveC(tbl, classes, 4, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c4, 1) {
		t.Errorf("MeasureRecursiveC(l=4) = %v, want +Inf", c4)
	}
	if _, err := MeasureRecursiveC(tbl, classes, 0, "diagnosis"); !errors.Is(err, ErrParameter) {
		t.Errorf("l=0 error = %v, want ErrParameter", err)
	}
}
