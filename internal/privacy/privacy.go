// Package privacy implements the privacy models (release criteria) cataloged
// by the PPDP survey: k-anonymity and (α,k)-anonymity against record linkage,
// the l-diversity family and t-closeness against attribute linkage, and
// δ-presence against table linkage. Each model is both *checkable* (does a
// release satisfy it?) and *measurable* (what is the strongest parameter the
// release satisfies?), because the algorithms use checks while the experiment
// harness reports measurements.
package privacy

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/ppdp/ppdp/internal/dataset"
)

// Common errors.
var (
	// ErrParameter is returned for non-sensical model parameters
	// (k < 1, l < 1, t outside [0,1], ...).
	ErrParameter = errors.New("privacy: invalid model parameter")
	// ErrNoClasses is returned when a model is checked against an empty
	// release.
	ErrNoClasses = errors.New("privacy: release has no equivalence classes")
)

// Criterion is a privacy model that can be checked against a released table
// partitioned into quasi-identifier equivalence classes.
type Criterion interface {
	// Name returns a short human-readable description such as "5-anonymity".
	Name() string
	// Check reports whether the release satisfies the criterion. The classes
	// must be the quasi-identifier equivalence classes of t.
	Check(t *dataset.Table, classes []dataset.EquivalenceClass) (bool, error)
}

// CheckAll evaluates all criteria and returns true only if every one is
// satisfied. The first dissatisfied criterion's name is returned for
// diagnostics.
func CheckAll(t *dataset.Table, classes []dataset.EquivalenceClass, criteria ...Criterion) (bool, string, error) {
	for _, c := range criteria {
		ok, err := c.Check(t, classes)
		if err != nil {
			return false, c.Name(), err
		}
		if !ok {
			return false, c.Name(), nil
		}
	}
	return true, "", nil
}

// ---------------------------------------------------------------------------
// k-anonymity
// ---------------------------------------------------------------------------

// KAnonymity requires every equivalence class to contain at least K records,
// bounding record-linkage (re-identification) probability by 1/K.
type KAnonymity struct {
	K int
}

// Name implements Criterion.
func (k KAnonymity) Name() string { return fmt.Sprintf("%d-anonymity", k.K) }

// Check implements Criterion.
func (k KAnonymity) Check(_ *dataset.Table, classes []dataset.EquivalenceClass) (bool, error) {
	if k.K < 1 {
		return false, fmt.Errorf("%w: k = %d", ErrParameter, k.K)
	}
	if len(classes) == 0 {
		return false, ErrNoClasses
	}
	return dataset.MinClassSize(classes) >= k.K, nil
}

// MeasureK returns the largest k for which the release is k-anonymous, i.e.
// the minimum equivalence-class size (0 for an empty release).
func MeasureK(classes []dataset.EquivalenceClass) int {
	return dataset.MinClassSize(classes)
}

// ---------------------------------------------------------------------------
// (α, k)-anonymity
// ---------------------------------------------------------------------------

// AlphaKAnonymity augments k-anonymity with a cap on the relative frequency
// of every sensitive value inside each class: no value may account for more
// than Alpha of a class. It is a simple guard against near-homogeneous
// classes.
type AlphaKAnonymity struct {
	K         int
	Alpha     float64
	Sensitive string
}

// Name implements Criterion.
func (a AlphaKAnonymity) Name() string {
	return fmt.Sprintf("(%.2f,%d)-anonymity[%s]", a.Alpha, a.K, a.Sensitive)
}

// Check implements Criterion.
func (a AlphaKAnonymity) Check(t *dataset.Table, classes []dataset.EquivalenceClass) (bool, error) {
	if a.K < 1 || a.Alpha <= 0 || a.Alpha > 1 {
		return false, fmt.Errorf("%w: alpha=%v k=%d", ErrParameter, a.Alpha, a.K)
	}
	if len(classes) == 0 {
		return false, ErrNoClasses
	}
	if dataset.MinClassSize(classes) < a.K {
		return false, nil
	}
	for _, c := range classes {
		dist, err := t.SensitiveDistribution(c, a.Sensitive)
		if err != nil {
			return false, err
		}
		for _, n := range dist {
			if float64(n)/float64(c.Size()) > a.Alpha {
				return false, nil
			}
		}
	}
	return true, nil
}

// MeasureMaxAlpha returns the largest relative frequency any sensitive value
// reaches inside one equivalence class — the smallest α for which the release
// is (α,k)-anonymous (given it is k-anonymous).
func MeasureMaxAlpha(t *dataset.Table, classes []dataset.EquivalenceClass, sensitive string) (float64, error) {
	max := 0.0
	for _, c := range classes {
		dist, err := t.SensitiveDistribution(c, sensitive)
		if err != nil {
			return 0, err
		}
		for _, n := range dist {
			if f := float64(n) / float64(c.Size()); f > max {
				max = f
			}
		}
	}
	return max, nil
}

// ---------------------------------------------------------------------------
// l-diversity family
// ---------------------------------------------------------------------------

// DistinctLDiversity requires every equivalence class to contain at least L
// distinct values of the sensitive attribute.
type DistinctLDiversity struct {
	L         int
	Sensitive string
}

// Name implements Criterion.
func (d DistinctLDiversity) Name() string {
	return fmt.Sprintf("distinct %d-diversity[%s]", d.L, d.Sensitive)
}

// Check implements Criterion.
func (d DistinctLDiversity) Check(t *dataset.Table, classes []dataset.EquivalenceClass) (bool, error) {
	if d.L < 1 {
		return false, fmt.Errorf("%w: l = %d", ErrParameter, d.L)
	}
	if len(classes) == 0 {
		return false, ErrNoClasses
	}
	l, err := MeasureDistinctL(t, classes, d.Sensitive)
	if err != nil {
		return false, err
	}
	return l >= d.L, nil
}

// MeasureDistinctL returns the minimum number of distinct sensitive values
// over all classes — the strongest distinct l-diversity the release satisfies.
func MeasureDistinctL(t *dataset.Table, classes []dataset.EquivalenceClass, sensitive string) (int, error) {
	min := math.MaxInt
	for _, c := range classes {
		dist, err := t.SensitiveDistribution(c, sensitive)
		if err != nil {
			return 0, err
		}
		if len(dist) < min {
			min = len(dist)
		}
	}
	if len(classes) == 0 {
		return 0, nil
	}
	return min, nil
}

// EntropyLDiversity requires the entropy of the sensitive distribution in
// every class to be at least log(L).
type EntropyLDiversity struct {
	L         float64
	Sensitive string
}

// Name implements Criterion.
func (e EntropyLDiversity) Name() string {
	return fmt.Sprintf("entropy %.2f-diversity[%s]", e.L, e.Sensitive)
}

// Check implements Criterion.
func (e EntropyLDiversity) Check(t *dataset.Table, classes []dataset.EquivalenceClass) (bool, error) {
	if e.L < 1 {
		return false, fmt.Errorf("%w: l = %v", ErrParameter, e.L)
	}
	if len(classes) == 0 {
		return false, ErrNoClasses
	}
	minEntropy, err := MeasureEntropyL(t, classes, e.Sensitive)
	if err != nil {
		return false, err
	}
	return minEntropy >= math.Log(e.L)-1e-12, nil
}

// MeasureEntropyL returns the minimum sensitive-value entropy (natural log)
// over all classes. A release satisfies entropy l-diversity iff this value is
// at least log(l).
func MeasureEntropyL(t *dataset.Table, classes []dataset.EquivalenceClass, sensitive string) (float64, error) {
	min := math.Inf(1)
	for _, c := range classes {
		dist, err := t.SensitiveDistribution(c, sensitive)
		if err != nil {
			return 0, err
		}
		h := 0.0
		for _, n := range dist {
			p := float64(n) / float64(c.Size())
			if p > 0 {
				h -= p * math.Log(p)
			}
		}
		if h < min {
			min = h
		}
	}
	if len(classes) == 0 {
		return 0, nil
	}
	return min, nil
}

// RecursiveCLDiversity implements recursive (c, l)-diversity: in every class,
// with sensitive value counts sorted descending r1 >= r2 >= ..., it requires
// r1 < c * (r_l + r_{l+1} + ... + r_m).
type RecursiveCLDiversity struct {
	C         float64
	L         int
	Sensitive string
}

// Name implements Criterion.
func (r RecursiveCLDiversity) Name() string {
	return fmt.Sprintf("recursive (%.1f,%d)-diversity[%s]", r.C, r.L, r.Sensitive)
}

// Check implements Criterion.
func (r RecursiveCLDiversity) Check(t *dataset.Table, classes []dataset.EquivalenceClass) (bool, error) {
	if r.C <= 0 || r.L < 1 {
		return false, fmt.Errorf("%w: c=%v l=%d", ErrParameter, r.C, r.L)
	}
	if len(classes) == 0 {
		return false, ErrNoClasses
	}
	for _, cls := range classes {
		dist, err := t.SensitiveDistribution(cls, r.Sensitive)
		if err != nil {
			return false, err
		}
		counts := make([]int, 0, len(dist))
		for _, n := range dist {
			counts = append(counts, n)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		if len(counts) < r.L {
			return false, nil
		}
		tail := 0
		for i := r.L - 1; i < len(counts); i++ {
			tail += counts[i]
		}
		if float64(counts[0]) >= r.C*float64(tail) {
			return false, nil
		}
	}
	return true, nil
}

// MeasureRecursiveC returns the smallest c for which the release satisfies
// recursive (c,l)-diversity at the given l: the maximum over classes of
// r1 / (r_l + ... + r_m) with counts sorted descending (plus a hair, since
// the criterion is a strict inequality). A class with fewer than l distinct
// sensitive values satisfies no c, reported as +Inf.
func MeasureRecursiveC(t *dataset.Table, classes []dataset.EquivalenceClass, l int, sensitive string) (float64, error) {
	if l < 1 {
		return 0, fmt.Errorf("%w: l = %d", ErrParameter, l)
	}
	max := 0.0
	for _, cls := range classes {
		dist, err := t.SensitiveDistribution(cls, sensitive)
		if err != nil {
			return 0, err
		}
		counts := make([]int, 0, len(dist))
		for _, n := range dist {
			counts = append(counts, n)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		if len(counts) < l {
			return math.Inf(1), nil
		}
		tail := 0
		for i := l - 1; i < len(counts); i++ {
			tail += counts[i]
		}
		if ratio := float64(counts[0]) / float64(tail); ratio > max {
			max = ratio
		}
	}
	return max, nil
}

// ---------------------------------------------------------------------------
// t-closeness
// ---------------------------------------------------------------------------

// TCloseness requires the earth mover's distance between each class's
// sensitive-value distribution and the overall table distribution to be at
// most T. Categorical sensitive attributes use the equal ground distance
// (EMD = total variation distance); numeric sensitive attributes use the
// ordered ground distance of Li et al.
type TCloseness struct {
	T         float64
	Sensitive string
	// Ordered selects the ordered-distance EMD; when false the equal
	// ground distance is used. Numeric sensitive attributes should set it.
	Ordered bool
}

// Name implements Criterion.
func (tc TCloseness) Name() string {
	return fmt.Sprintf("%.2f-closeness[%s]", tc.T, tc.Sensitive)
}

// Check implements Criterion.
func (tc TCloseness) Check(t *dataset.Table, classes []dataset.EquivalenceClass) (bool, error) {
	if tc.T < 0 || tc.T > 1 {
		return false, fmt.Errorf("%w: t = %v", ErrParameter, tc.T)
	}
	if len(classes) == 0 {
		return false, ErrNoClasses
	}
	maxEMD, err := MeasureMaxEMD(t, classes, tc.Sensitive, tc.Ordered)
	if err != nil {
		return false, err
	}
	return maxEMD <= tc.T+1e-12, nil
}

// MeasureMaxEMD returns the maximum earth mover's distance between any
// class's sensitive distribution and the global distribution — the strongest
// t for which the release is t-close.
func MeasureMaxEMD(t *dataset.Table, classes []dataset.EquivalenceClass, sensitive string, ordered bool) (float64, error) {
	global, err := t.Frequencies(sensitive)
	if err != nil {
		return 0, err
	}
	domain := sortedDomain(global, ordered)
	globalDist := normalize(global, domain, t.Len())

	max := 0.0
	for _, c := range classes {
		local, err := t.SensitiveDistribution(c, sensitive)
		if err != nil {
			return 0, err
		}
		localDist := normalize(local, domain, c.Size())
		var d float64
		if ordered {
			d = orderedEMD(localDist, globalDist)
		} else {
			d = equalEMD(localDist, globalDist)
		}
		if d > max {
			max = d
		}
	}
	return max, nil
}

// sortedDomain orders the sensitive domain: numerically when ordered EMD is
// requested and all values parse as numbers, lexicographically otherwise.
func sortedDomain(freq map[string]int, ordered bool) []string {
	domain := make([]string, 0, len(freq))
	for v := range freq {
		domain = append(domain, v)
	}
	if ordered {
		numeric := true
		for _, v := range domain {
			if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err != nil {
				numeric = false
				break
			}
		}
		if numeric {
			sort.Slice(domain, func(i, j int) bool {
				a, _ := strconv.ParseFloat(domain[i], 64)
				b, _ := strconv.ParseFloat(domain[j], 64)
				return a < b
			})
			return domain
		}
	}
	sort.Strings(domain)
	return domain
}

func normalize(freq map[string]int, domain []string, total int) []float64 {
	out := make([]float64, len(domain))
	if total == 0 {
		return out
	}
	for i, v := range domain {
		out[i] = float64(freq[v]) / float64(total)
	}
	return out
}

// equalEMD is the earth mover's distance under the equal ground distance,
// which reduces to the total variation distance.
func equalEMD(p, q []float64) float64 {
	sum := 0.0
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2
}

// orderedEMD is the earth mover's distance for an ordered domain: the mean of
// absolute prefix sums of (p - q), normalized by (m - 1).
func orderedEMD(p, q []float64) float64 {
	m := len(p)
	if m <= 1 {
		return 0
	}
	sum, prefix := 0.0, 0.0
	for i := 0; i < m; i++ {
		prefix += p[i] - q[i]
		sum += math.Abs(prefix)
	}
	return sum / float64(m-1)
}

// ---------------------------------------------------------------------------
// δ-presence (table linkage)
// ---------------------------------------------------------------------------

// DeltaPresence bounds the probability that an adversary who knows an
// individual is in a public table P can infer the individual is also in the
// released private table T ⊆ P. For every equivalence class of the release
// (computed over the public table's quasi-identifier recoding), the ratio
// |class ∩ T| / |class ∩ P| must lie in [DeltaMin, DeltaMax].
type DeltaPresence struct {
	DeltaMin float64
	DeltaMax float64
	// Public is the public superset table generalized with the same recoding
	// as the checked release.
	Public *dataset.Table
}

// Name implements Criterion.
func (d DeltaPresence) Name() string {
	return fmt.Sprintf("(%.2f,%.2f)-presence", d.DeltaMin, d.DeltaMax)
}

// Check implements Criterion.
func (d DeltaPresence) Check(t *dataset.Table, _ []dataset.EquivalenceClass) (bool, error) {
	lo, hi, err := MeasurePresence(t, d.Public)
	if err != nil {
		return false, err
	}
	if d.DeltaMin < 0 || d.DeltaMax > 1 || d.DeltaMin > d.DeltaMax {
		return false, fmt.Errorf("%w: delta range [%v, %v]", ErrParameter, d.DeltaMin, d.DeltaMax)
	}
	return lo >= d.DeltaMin-1e-12 && hi <= d.DeltaMax+1e-12, nil
}

// MeasurePresence computes the minimum and maximum presence ratio
// |class ∩ private| / |class ∩ public| over the public table's
// quasi-identifier equivalence classes. Classes of the public table with no
// private members contribute a ratio of 0.
func MeasurePresence(private, public *dataset.Table) (min, max float64, err error) {
	if public == nil {
		return 0, 0, errors.New("privacy: delta-presence requires a public table")
	}
	qi := public.Schema().QuasiIdentifierNames()
	if len(qi) == 0 {
		return 0, 0, errors.New("privacy: public table has no quasi-identifiers")
	}
	pubClasses, err := public.GroupBy(qi...)
	if err != nil {
		return 0, 0, err
	}
	// Count private rows per signature using the same QI columns.
	privCounts := make(map[string]int)
	cols := make([]int, len(qi))
	for i, a := range qi {
		c, err := private.Schema().Index(a)
		if err != nil {
			return 0, 0, err
		}
		cols[i] = c
	}
	for r := 0; r < private.Len(); r++ {
		row, err := private.Row(r)
		if err != nil {
			return 0, 0, err
		}
		key := make([]string, len(cols))
		for i, c := range cols {
			key[i] = row[c]
		}
		privCounts[dataset.Signature(key)]++
	}
	min, max = 1, 0
	if len(pubClasses) == 0 {
		return 0, 0, ErrNoClasses
	}
	for _, c := range pubClasses {
		ratio := float64(privCounts[c.Signature]) / float64(c.Size())
		if ratio < min {
			min = ratio
		}
		if ratio > max {
			max = ratio
		}
	}
	return min, max, nil
}
