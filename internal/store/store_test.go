package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ppdp/ppdp/internal/dataset"
)

func testTable(t testing.TB, seed int) *dataset.Table {
	t.Helper()
	schema, err := dataset.NewSchema(
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
		dataset.Attribute{Name: "disease", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := []dataset.Row{
		{fmt.Sprintf("%d", 20+seed%50), fmt.Sprintf("d%d", seed%7)},
		{fmt.Sprintf("%d", 30+seed%40), fmt.Sprintf("d%d", (seed+3)%7)},
		{fmt.Sprintf("%d", seed), "flu"},
	}
	tbl, err := dataset.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func meta(s string) json.RawMessage { return json.RawMessage(s) }

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := testTable(t, 1)
	fp, err := st.PutTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if fp != tbl.Fingerprint() {
		t.Fatalf("PutTable fp = %s, want %s", fp, tbl.Fingerprint())
	}
	ops := []Op{
		{Op: OpPut, Kind: KindDataset, Key: "census", Tables: []string{fp}, Meta: meta(`{"tenant":"t1"}`)},
		{Op: OpPut, Kind: KindPolicy, Key: "p1", Meta: meta(`{"k":5}`)},
		{Op: OpPut, Kind: KindRelease, Key: "r0", Seq: 0, Tables: []string{fp}, Meta: meta(`{"alg":"datafly"}`)},
		{Op: OpPut, Kind: KindRelease, Key: "r1", Seq: 1, Tables: []string{fp}, Meta: meta(`{"alg":"mondrian"}`)},
		{Op: OpDelete, Kind: KindRelease, Key: "r0"},
	}
	for _, op := range ops {
		if err := st.Apply(op); err != nil {
			t.Fatalf("apply %+v: %v", op, err)
		}
	}
	if got := st.NextSeq(); got != 2 {
		t.Fatalf("NextSeq = %d, want 2", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ds := st2.Records(KindDataset)
	if len(ds) != 1 || ds[0].Key != "census" || string(ds[0].Meta) != `{"tenant":"t1"}` {
		t.Fatalf("datasets = %+v", ds)
	}
	rel := st2.Records(KindRelease)
	if len(rel) != 1 || rel[0].Key != "r1" || rel[0].Seq != 1 {
		t.Fatalf("releases = %+v", rel)
	}
	if pol := st2.Records(KindPolicy); len(pol) != 1 || pol[0].Key != "p1" {
		t.Fatalf("policies = %+v", pol)
	}
	if got := st2.NextSeq(); got != 2 {
		t.Fatalf("recovered NextSeq = %d, want 2", got)
	}
	loaded, err := st2.Table(fp)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != fp {
		t.Fatalf("loaded fingerprint %s, want %s", loaded.Fingerprint(), fp)
	}
	if loaded.Len() != tbl.Len() {
		t.Fatalf("loaded Len = %d, want %d", loaded.Len(), tbl.Len())
	}
	stats := st2.Stats()
	if stats.RecoveredRecords != len(ops) {
		t.Fatalf("RecoveredRecords = %d, want %d", stats.RecoveredRecords, len(ops))
	}
	if stats.MappedTables != 1 {
		t.Fatalf("MappedTables = %d, want 1", stats.MappedTables)
	}
}

func TestStorePutTableDedupes(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fp1, err := st.PutTable(testTable(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := st.PutTable(testTable(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("identical tables got different addresses: %s vs %s", fp1, fp2)
	}
	if st.Stats().TableFiles != 1 {
		t.Fatalf("TableFiles = %d, want 1", st.Stats().TableFiles)
	}
}

func TestStoreCheckpointAndGC(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := st.PutTable(testTable(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(Op{Op: OpPut, Kind: KindDataset, Key: "d", Tables: []string{fp1}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fp2, err := st.PutTable(testTable(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(Op{Op: OpPut, Kind: KindDataset, Key: "d", Tables: []string{fp2}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(st.tablePath(fp1)); !os.IsNotExist(err) {
		t.Fatalf("unreferenced table %s not garbage-collected (err=%v)", fp1, err)
	}
	if _, err := os.Stat(st.tablePath(fp2)); err != nil {
		t.Fatalf("referenced table missing: %v", err)
	}
	stats := st.Stats()
	if stats.Generation != 2 || stats.WALBytes != 0 || stats.WALRecords != 0 {
		t.Fatalf("post-checkpoint stats = %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ds := st2.Records(KindDataset)
	if len(ds) != 1 || len(ds[0].Tables) != 1 || ds[0].Tables[0] != fp2 {
		t.Fatalf("recovered datasets = %+v", ds)
	}
}

func TestStoreAutoCheckpoint(t *testing.T) {
	st, err := Open(t.TempDir(), Options{CheckpointBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 20; i++ {
		op := Op{Op: OpPut, Kind: KindPolicy, Key: fmt.Sprintf("p%d", i), Meta: meta(`{"k":3}`)}
		if err := st.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Generation == 0 {
		t.Fatal("WAL growth never triggered a checkpoint")
	}
	if stats.WALBytes >= 512 {
		t.Fatalf("WAL kept growing: %d bytes", stats.WALBytes)
	}
	if got := len(st.Records(KindPolicy)); got != 20 {
		t.Fatalf("policies = %d, want 20", got)
	}
}

func TestStoreApplyUnknownTableRefused(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = st.Apply(Op{Op: OpPut, Kind: KindDataset, Key: "d", Tables: []string{"deadbeef"}})
	if !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("err = %v, want ErrUnknownTable", err)
	}
	if len(st.Records(KindDataset)) != 0 {
		t.Fatal("rejected op left a record")
	}
	st.Close()
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(st2.Records(KindDataset)) != 0 {
		t.Fatal("rejected op was journaled")
	}
}

func walFile(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), walPrefix) {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatal("no WAL file found")
	return ""
}

func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Apply(Op{Op: OpPut, Kind: KindPolicy, Key: fmt.Sprintf("p%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	// Simulate a crash mid-append: a partial frame at the tail.
	wal := walFile(t, dir)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn tail must recover cleanly, got %v", err)
	}
	defer st2.Close()
	if got := len(st2.Records(KindPolicy)); got != 3 {
		t.Fatalf("policies = %d, want 3", got)
	}
	if !st2.Stats().RecoveredTorn {
		t.Fatal("RecoveredTorn not reported")
	}
	// The tail was truncated: appending resumes on a clean boundary.
	if err := st2.Apply(Op{Op: OpPut, Kind: KindPolicy, Key: "p3"}); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := len(st3.Records(KindPolicy)); got != 4 {
		t.Fatalf("after resume, policies = %d, want 4", got)
	}
}

func TestStoreInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Apply(Op{Op: OpPut, Kind: KindPolicy, Key: fmt.Sprintf("p%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	wal := walFile(t, dir)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("err = %v, want ErrWALCorrupt", err)
	}
}

func TestStoreManifestCorruptRefused(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	if !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("err = %v, want ErrManifestCorrupt", err)
	}
}

func TestStoreMissingTableRefusedAtBoot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := st.PutTable(testTable(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(Op{Op: OpPut, Kind: KindDataset, Key: "d", Tables: []string{fp}}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := os.Remove(filepath.Join(dir, tablesDir, fp+".tbl")); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	if err == nil || !(strings.Contains(err.Error(), "missing table snapshot") || errors.Is(err, ErrUnknownTable)) {
		t.Fatalf("err = %v, want missing-table diagnostic", err)
	}
}

func TestStoreCorruptTableNeverServed(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := st.PutTable(testTable(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(Op{Op: OpPut, Kind: KindDataset, Key: "d", Tables: []string{fp}}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Damage the table snapshot in place (past the header, inside data).
	path := filepath.Join(dir, tablesDir, fp+".tbl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-4] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err) // presence is checked at boot; content at load
	}
	defer st2.Close()
	if _, err := st2.Table(fp); !errors.Is(err, dataset.ErrSnapshotCorrupt) {
		t.Fatalf("Table(corrupt) = %v, want ErrSnapshotCorrupt", err)
	}
}

func TestStoreStaleFilesCleaned(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(Op{Op: OpPut, Kind: KindPolicy, Key: "p"}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Leftovers from a hypothetical interrupted checkpoint.
	for _, name := range []string{manifestName + tmpSuffix, walPrefix + "99999999"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, tablesDir, "x.tbl"+tmpSuffix), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for _, name := range []string{manifestName + tmpSuffix, walPrefix + "99999999", filepath.Join(tablesDir, "x.tbl"+tmpSuffix)} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("stale file %s survived recovery", name)
		}
	}
}

func TestStoreFsyncObserver(t *testing.T) {
	var observed int
	now := time.Unix(1000, 0)
	st, err := Open(t.TempDir(), Options{
		Now:     func() time.Time { now = now.Add(time.Millisecond); return now },
		OnFsync: func(d time.Duration) { observed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Apply(Op{Op: OpPut, Kind: KindPolicy, Key: "p"}); err != nil {
		t.Fatal(err)
	}
	if observed != 1 {
		t.Fatalf("OnFsync observed %d appends, want 1", observed)
	}
}
