package store

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/ppdp/ppdp/internal/synth"
)

// BenchmarkStoreApply measures one journaled registry mutation end to end:
// marshal the WAL frame, append, fsync, apply to the in-memory state. This
// is the latency every durable HTTP write pays on top of the handler.
func BenchmarkStoreApply(b *testing.B) {
	st, err := Open(b.TempDir(), Options{CheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	meta := json.RawMessage(`{"k":5,"algorithm":"mondrian"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := Op{Op: OpPut, Kind: KindPolicy, Key: fmt.Sprintf("p%d", i), Meta: meta}
		if err := st.Apply(op); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreOpenRecovery measures cold boot of a populated directory:
// manifest load, WAL replay and reference verification. Table segments stay
// unmapped (they load lazily on first access), so this is the "instant boot"
// path the server's recovery time rides on.
func BenchmarkStoreOpenRecovery(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir, Options{CheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	fp, err := st.PutTable(synth.Census(5000, 1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		op := Op{Op: OpPut, Kind: KindRelease, Key: fmt.Sprintf("r%d", i), Seq: uint64(i),
			Tables: []string{fp}, Meta: json.RawMessage(`{"algorithm":"mondrian"}`)}
		if err := st.Apply(op); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Open(dir, Options{CheckpointBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
