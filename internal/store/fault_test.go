package store

import (
	"errors"
	"fmt"
	"testing"
)

// These tests drive the store through an injectable filesystem (FaultFS) and
// assert the durability contract of ISSUE 8: after a short write, fsync
// failure, or full disk, the store either keeps serving the acknowledged
// prefix or refuses cleanly — it never acknowledges a lost mutation and
// never serves corrupt data.

func openFault(t *testing.T, dir string) (*Store, *FaultFS) {
	t.Helper()
	ffs := NewFaultFS(nil)
	st, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	return st, ffs
}

func TestFaultDiskFullDuringWALAppend(t *testing.T) {
	dir := t.TempDir()
	st, ffs := openFault(t, dir)
	for i := 0; i < 3; i++ {
		if err := st.Apply(Op{Op: OpPut, Kind: KindPolicy, Key: fmt.Sprintf("p%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Let the next append write only a few bytes before the disk fills:
	// exactly the torn-tail shape a real ENOSPC mid-append leaves behind.
	ffs.SetWriteBudget(5)
	err := st.Apply(Op{Op: OpPut, Kind: KindPolicy, Key: "lost"})
	if err == nil {
		t.Fatal("append on a full disk succeeded")
	}
	if got := len(st.Records(KindPolicy)); got != 3 {
		t.Fatalf("failed append mutated state: %d records", got)
	}
	ffs.SetWriteBudget(-1)
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after ENOSPC failed: %v", err)
	}
	defer st2.Close()
	recs := st2.Records(KindPolicy)
	if len(recs) != 3 {
		t.Fatalf("recovered %d policies, want the 3 acknowledged", len(recs))
	}
	for _, r := range recs {
		if r.Key == "lost" {
			t.Fatal("unacknowledged op recovered as state")
		}
	}
	if !st2.Stats().RecoveredTorn {
		t.Fatal("short append did not leave a (truncated) torn tail")
	}
}

func TestFaultFsyncErrorFailsApply(t *testing.T) {
	dir := t.TempDir()
	st, ffs := openFault(t, dir)
	if err := st.Apply(Op{Op: OpPut, Kind: KindPolicy, Key: "p0"}); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncAfter(1)
	err := st.Apply(Op{Op: OpPut, Kind: KindPolicy, Key: "unsynced"})
	if err == nil {
		t.Fatal("apply acknowledged without a durable fsync")
	}
	if got := len(st.Records(KindPolicy)); got != 1 {
		t.Fatalf("failed fsync mutated state: %d records", got)
	}
	ffs.DisarmSync()
	// The store stays usable: the WAL handle is reopened on the next apply.
	if err := st.Apply(Op{Op: OpPut, Kind: KindPolicy, Key: "p1"}); err != nil {
		t.Fatalf("apply after disarmed fsync fault: %v", err)
	}
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// The unacknowledged record may or may not have reached the platters
	// (fsync failed after the write); both outcomes are consistent. What
	// recovery must guarantee: the acknowledged ops are all present and the
	// state is cleanly replayable.
	keys := map[string]bool{}
	for _, r := range st2.Records(KindPolicy) {
		keys[r.Key] = true
	}
	if !keys["p0"] || !keys["p1"] {
		t.Fatalf("acknowledged ops lost: %v", keys)
	}
}

func TestFaultDiskFullDuringPutTable(t *testing.T) {
	dir := t.TempDir()
	st, ffs := openFault(t, dir)
	defer st.Close()
	ffs.SetWriteBudget(64) // not enough for a table snapshot
	_, err := st.PutTable(testTable(t, 1))
	if err == nil {
		t.Fatal("PutTable succeeded on a full disk")
	}
	ffs.SetWriteBudget(-1)
	if st.Stats().TableFiles != 0 {
		t.Fatal("failed PutTable left the table addressable")
	}
	// Retry succeeds and the content round-trips.
	fp, err := st.PutTable(testTable(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := st.Table(fp)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Fingerprint() != fp {
		t.Fatal("retried table content mismatch")
	}
}

func TestFaultFsyncErrorDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, ffs := openFault(t, dir)
	fp, err := st.PutTable(testTable(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(Op{Op: OpPut, Kind: KindDataset, Key: "d", Tables: []string{fp}}); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncAfter(1)
	if err := st.Checkpoint(); err == nil {
		t.Fatal("checkpoint acknowledged without durable manifest")
	}
	ffs.DisarmSync()
	if got := len(st.Records(KindDataset)); got != 1 {
		t.Fatalf("failed checkpoint lost live state: %d records", got)
	}
	st.Close()

	// The failed checkpoint must not have retired the WAL: recovery still
	// sees the acknowledged dataset.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after failed checkpoint: %v", err)
	}
	defer st2.Close()
	ds := st2.Records(KindDataset)
	if len(ds) != 1 || ds[0].Key != "d" {
		t.Fatalf("recovered datasets = %+v", ds)
	}
	if _, err := st2.Table(fp); err != nil {
		t.Fatalf("recovered table unloadable: %v", err)
	}
}

func TestFaultClosedStoreRefuses(t *testing.T) {
	st, _ := openFault(t, t.TempDir())
	st.Close()
	if err := st.Apply(Op{Op: OpPut, Kind: KindPolicy, Key: "p"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply on closed store = %v, want ErrClosed", err)
	}
	if _, err := st.PutTable(testTable(t, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("PutTable on closed store = %v, want ErrClosed", err)
	}
	if _, err := st.Table("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Table on closed store = %v, want ErrClosed", err)
	}
}
