package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ppdp/ppdp/internal/dataset"
)

// Store errors.
var (
	// ErrWALCorrupt reports damaged acknowledged history: an interior WAL
	// record failing its checksum. Recovery refuses to guess; restore from a
	// snapshot directory instead.
	ErrWALCorrupt = errors.New("store: WAL corrupt")
	// ErrManifestCorrupt reports an unreadable checkpoint manifest.
	ErrManifestCorrupt = errors.New("store: manifest corrupt")
	// ErrUnknownTable is returned when a record references a table snapshot
	// that is not in the store.
	ErrUnknownTable = errors.New("store: unknown table snapshot")
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("store: closed")
)

// Record kinds journaled by the registry.
const (
	KindDataset = "dataset"
	KindRelease = "release"
	KindPolicy  = "policy"
	KindSpec    = "spec"
)

// Op codes.
const (
	OpPut    = "put"
	OpDelete = "delete"
)

// Op is one journaled registry mutation. Meta is opaque to the store — the
// server serializes whatever bookkeeping it needs (tenants, parameters,
// measurements) and gets the same bytes back at recovery. Tables lists the
// content fingerprints of the table snapshots the record depends on; Apply
// verifies they exist before acknowledging, so a recovered record can always
// load its data.
type Op struct {
	Op     string          `json:"op"`
	Kind   string          `json:"kind"`
	Key    string          `json:"key"`
	Seq    uint64          `json:"seq,omitempty"`
	Tables []string        `json:"tables,omitempty"`
	Meta   json.RawMessage `json:"meta,omitempty"`
}

// Record is the durable state of one registry object.
type Record struct {
	Kind   string          `json:"kind"`
	Key    string          `json:"key"`
	Seq    uint64          `json:"seq,omitempty"`
	Tables []string        `json:"tables,omitempty"`
	Meta   json.RawMessage `json:"meta,omitempty"`
}

// manifestName is the checkpoint manifest file; walPrefix names WAL
// generations (wal.<gen>); tablesDir holds content-addressed table
// snapshots (<fingerprint>.tbl).
const (
	manifestName = "manifest.json"
	walPrefix    = "wal."
	tablesDir    = "tables"
	tmpSuffix    = ".tmp"
)

type manifestJSON struct {
	Version     int      `json:"version"`
	Gen         uint64   `json:"gen"`
	NextSeq     uint64   `json:"next_seq"`
	CreatedUnix int64    `json:"created_unix"`
	Records     []Record `json:"records"`
}

// Options configures a Store.
type Options struct {
	// FS overrides the filesystem (for fault injection); nil uses the OS.
	FS FS
	// CheckpointBytes triggers an automatic checkpoint when the WAL grows
	// past it. Zero selects the default (8 MiB); negative disables automatic
	// checkpoints.
	CheckpointBytes int64
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
	// OnFsync, when set, observes the duration of every WAL fsync.
	OnFsync func(time.Duration)
}

const defaultCheckpointBytes = 8 << 20

// Store is the durable registry state: an in-memory view of the records,
// kept in lockstep with a WAL-journaled, checkpointed on-disk image, plus
// the mmap-backed table snapshots the records reference.
type Store struct {
	dir  string
	fs   FS
	now  func() time.Time
	opts Options

	mu      sync.Mutex
	closed  bool
	records map[string]map[string]Record // kind → key → record
	nextSeq uint64

	gen            uint64
	wal            File
	walPath        string
	walSize        int64
	walRecords     int64
	walFsyncs      int64
	checkpointT    time.Time
	checkpointErrs int64

	tables map[string]int64 // fingerprint → snapshot file size
	mapped map[string]*dataset.MappedTable
	cached map[string]*dataset.Table

	recovery         time.Duration
	recoveredRecords int
	recoveredTorn    bool
}

// Open opens (or initializes) the store rooted at dir and recovers its
// state: the latest checkpoint manifest is loaded and the current WAL
// generation replayed over it, truncating a torn final record if the last
// run crashed mid-append. Open fails — rather than serving partial state —
// if acknowledged history is damaged (ErrWALCorrupt, ErrManifestCorrupt) or
// a recovered record references a missing table snapshot.
func Open(dir string, opts Options) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS()
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = defaultCheckpointBytes
	}
	start := now()
	if err := fs.MkdirAll(filepath.Join(dir, tablesDir), 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		fs:      fs,
		now:     now,
		opts:    opts,
		records: map[string]map[string]Record{},
		tables:  map[string]int64{},
		mapped:  map[string]*dataset.MappedTable{},
		cached:  map[string]*dataset.Table{},
	}

	man, err := s.loadManifest()
	if err != nil {
		return nil, err
	}
	s.gen = man.Gen
	s.nextSeq = man.NextSeq
	s.checkpointT = time.Unix(man.CreatedUnix, 0)
	if man.CreatedUnix == 0 {
		s.checkpointT = start
	}
	for _, r := range man.Records {
		s.setRecord(r)
	}

	if err := s.scanTables(); err != nil {
		return nil, err
	}

	s.walPath = filepath.Join(dir, fmt.Sprintf("%s%08d", walPrefix, s.gen))
	rep, err := loadWAL(fs, s.walPath)
	if err != nil {
		return nil, err
	}
	s.recoveredTorn = rep.torn
	for _, payload := range rep.payloads {
		var op Op
		if err := json.Unmarshal(payload, &op); err != nil {
			return nil, fmt.Errorf("%w: %s: undecodable record: %v", ErrWALCorrupt, s.walPath, err)
		}
		if err := s.applyLocked(op); err != nil {
			return nil, fmt.Errorf("store: replay %s: %w", s.walPath, err)
		}
		s.recoveredRecords++
	}
	s.walSize = rep.size
	s.walRecords = int64(len(rep.payloads))

	// Every recovered record must be loadable: verify table references now
	// so boot fails loudly instead of a later request 500ing.
	for _, byKey := range s.records {
		for _, r := range byKey {
			for _, fp := range r.Tables {
				if _, ok := s.tables[fp]; !ok {
					return nil, fmt.Errorf("store: %s %q references missing table snapshot %s",
						r.Kind, r.Key, fp)
				}
			}
		}
	}

	s.removeStaleFiles()
	s.recovery = now().Sub(start)
	return s, nil
}

func (s *Store) loadManifest() (manifestJSON, error) {
	path := filepath.Join(s.dir, manifestName)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return manifestJSON{Version: 1}, nil
		}
		return manifestJSON{}, err
	}
	var man manifestJSON
	if err := json.Unmarshal(data, &man); err != nil {
		return manifestJSON{}, fmt.Errorf("%w: %s: %v", ErrManifestCorrupt, path, err)
	}
	if man.Version != 1 {
		return manifestJSON{}, fmt.Errorf("%w: %s: unsupported version %d", ErrManifestCorrupt, path, man.Version)
	}
	return man, nil
}

// scanTables indexes the content-addressed snapshot files.
func (s *Store) scanTables() error {
	entries, err := s.fs.ReadDir(filepath.Join(s.dir, tablesDir))
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".tbl") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.tables[strings.TrimSuffix(name, ".tbl")] = info.Size()
	}
	return nil
}

// removeStaleFiles deletes leftovers from interrupted checkpoints and table
// writes: temp files and WAL files of other generations. Best-effort — a
// failure here only leaks disk, never state.
func (s *Store) removeStaleFiles() {
	if entries, err := s.fs.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			name := e.Name()
			stale := strings.HasSuffix(name, tmpSuffix) ||
				(strings.HasPrefix(name, walPrefix) && filepath.Join(s.dir, name) != s.walPath)
			if stale {
				_ = s.fs.Remove(filepath.Join(s.dir, name))
			}
		}
	}
	if entries, err := s.fs.ReadDir(filepath.Join(s.dir, tablesDir)); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), tmpSuffix) {
				_ = s.fs.Remove(filepath.Join(s.dir, tablesDir, e.Name()))
			}
		}
	}
}

func (s *Store) setRecord(r Record) {
	byKey := s.records[r.Kind]
	if byKey == nil {
		byKey = map[string]Record{}
		s.records[r.Kind] = byKey
	}
	byKey[r.Key] = r
	if r.Seq >= s.nextSeq {
		s.nextSeq = r.Seq + 1
	}
}

// applyLocked mutates the in-memory view. It is used both by live Apply
// (after the WAL append) and by replay.
func (s *Store) applyLocked(op Op) error {
	switch op.Op {
	case OpPut:
		for _, fp := range op.Tables {
			if _, ok := s.tables[fp]; !ok {
				return fmt.Errorf("%w: %s (%s %q)", ErrUnknownTable, fp, op.Kind, op.Key)
			}
		}
		s.setRecord(Record{Kind: op.Kind, Key: op.Key, Seq: op.Seq, Tables: op.Tables, Meta: op.Meta})
	case OpDelete:
		delete(s.records[op.Kind], op.Key)
		if op.Seq >= s.nextSeq {
			s.nextSeq = op.Seq + 1
		}
	default:
		return fmt.Errorf("store: unknown op %q", op.Op)
	}
	return nil
}

// Apply journals op (append + fsync) and then applies it to the in-memory
// view. If journaling fails the view is untouched and the caller must treat
// the mutation as not having happened.
func (s *Store) Apply(op Op) error {
	if op.Kind == "" || op.Key == "" {
		return fmt.Errorf("store: op needs kind and key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Validate before journaling so a rejected op leaves no WAL trace.
	if op.Op == OpPut {
		for _, fp := range op.Tables {
			if _, ok := s.tables[fp]; !ok {
				return fmt.Errorf("%w: %s (%s %q)", ErrUnknownTable, fp, op.Kind, op.Key)
			}
		}
	}
	payload, err := json.Marshal(op)
	if err != nil {
		return err
	}
	if s.wal == nil {
		f, err := s.fs.OpenFile(s.walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		if err := s.fs.SyncDir(s.dir); err != nil {
			f.Close()
			return err
		}
		s.wal = f
	}
	fsyncStart := s.now()
	n, err := appendWALRecord(s.wal, payload)
	if err != nil {
		// The frame may be partially on disk; reopen-on-boot truncates it.
		// Close the handle so no later append can extend a torn tail.
		s.wal.Close()
		s.wal = nil
		return fmt.Errorf("store: journal %s %s %q: %w", op.Op, op.Kind, op.Key, err)
	}
	if s.opts.OnFsync != nil {
		s.opts.OnFsync(s.now().Sub(fsyncStart))
	}
	s.walSize += n
	s.walRecords++
	s.walFsyncs++
	if err := s.applyLocked(op); err != nil {
		return err
	}
	if s.opts.CheckpointBytes > 0 && s.walSize >= s.opts.CheckpointBytes {
		// Threshold checkpoint; the op is already journaled and applied, so a
		// checkpoint failure must not fail the acknowledged mutation (callers
		// would otherwise desynchronize from durable state). It is recorded
		// in Stats so operators see the disk problem, and the WAL simply
		// keeps growing until a checkpoint succeeds.
		if err := s.checkpointLocked(); err != nil {
			s.checkpointErrs++
		}
	}
	return nil
}

// NextSeq returns the lowest sequence number never used by an applied op.
func (s *Store) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq
}

// Records returns the current records of one kind, sorted by key.
func (s *Store) Records(kind string) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	byKey := s.records[kind]
	out := make([]Record, 0, len(byKey))
	for _, r := range byKey {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// PutTable persists t as a content-addressed snapshot and returns its
// fingerprint. Identical content is stored once (datasets and the release
// origins pinned to them share bytes). The file is fully durable — written
// to a temp name, fsynced, renamed, directory fsynced — before PutTable
// returns, so a subsequent Apply referencing it survives any crash.
func (s *Store) PutTable(t *dataset.Table) (string, error) {
	fp := t.Fingerprint()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", ErrClosed
	}
	if _, ok := s.tables[fp]; ok {
		s.mu.Unlock()
		return fp, nil
	}
	s.mu.Unlock()

	// Encode outside the lock; snapshot writes can be large.
	final := s.tablePath(fp)
	tmp := final + tmpSuffix
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	werr := t.WriteSnapshot(f)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = s.fs.Rename(tmp, final)
	}
	if werr == nil {
		werr = s.fs.SyncDir(filepath.Join(s.dir, tablesDir))
	}
	if werr != nil {
		_ = s.fs.Remove(tmp)
		return "", fmt.Errorf("store: write table snapshot %s: %w", fp, werr)
	}
	size := int64(0)
	if info, err := s.fs.Stat(final); err == nil {
		size = info.Size()
	}
	s.mu.Lock()
	if !s.closed {
		s.tables[fp] = size
	}
	s.mu.Unlock()
	return fp, nil
}

// Table opens (or returns the already-mapped) table snapshot fp. The table
// aliases an mmap held by the store; it stays valid until Close. Loads are
// verified: a snapshot whose content does not match fp is refused.
func (s *Store) Table(fp string) (*dataset.Table, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if t, ok := s.cached[fp]; ok {
		s.mu.Unlock()
		return t, nil
	}
	if _, ok := s.tables[fp]; !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownTable, fp)
	}
	s.mu.Unlock()

	mt, err := dataset.OpenSnapshot(s.tablePath(fp))
	if err != nil {
		return nil, err
	}
	if got := mt.Table().Fingerprint(); got != fp {
		mt.Close()
		return nil, fmt.Errorf("%w: %s: content fingerprint %s does not match its address",
			dataset.ErrSnapshotCorrupt, s.tablePath(fp), got)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		mt.Close()
		return nil, ErrClosed
	}
	if t, ok := s.cached[fp]; ok { // lost a race with another loader
		mt.Close()
		return t, nil
	}
	s.mapped[fp] = mt
	s.cached[fp] = mt.Table()
	return mt.Table(), nil
}

func (s *Store) tablePath(fp string) string {
	return filepath.Join(s.dir, tablesDir, fp+".tbl")
}

// Checkpoint writes the current state as a new manifest generation,
// truncates the WAL, and garbage-collects table snapshots no record
// references. It is also the "snapshot" operation exposed over the API: a
// copy of the directory taken after Checkpoint is a consistent backup.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	man := manifestJSON{
		Version:     1,
		Gen:         s.gen + 1,
		NextSeq:     s.nextSeq,
		CreatedUnix: s.now().Unix(),
	}
	for _, kind := range []string{KindDataset, KindRelease, KindPolicy} {
		keys := make([]string, 0, len(s.records[kind]))
		for k := range s.records[kind] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			man.Records = append(man.Records, s.records[kind][k])
		}
	}
	for kind, byKey := range s.records {
		if kind == KindDataset || kind == KindRelease || kind == KindPolicy {
			continue
		}
		for _, r := range byKey {
			man.Records = append(man.Records, r)
		}
	}
	// Compact marshaling keeps Record.Meta byte-stable across checkpoint
	// round trips (MarshalIndent would re-indent the raw JSON in place).
	data, err := json.Marshal(man)
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, manifestName)
	tmp := path + tmpSuffix
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	werr := func() error {
		if _, err := f.Write(data); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = s.fs.Rename(tmp, path)
	}
	if werr == nil {
		werr = s.fs.SyncDir(s.dir)
	}
	if werr != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: write manifest: %w", werr)
	}

	// The manifest now carries everything the old WAL did: retire it.
	oldWAL := s.walPath
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	s.gen = man.Gen
	s.walPath = filepath.Join(s.dir, fmt.Sprintf("%s%08d", walPrefix, s.gen))
	s.walSize = 0
	s.walRecords = 0
	s.checkpointT = s.now()
	_ = s.fs.Remove(oldWAL)

	// GC table snapshots nothing references anymore.
	referenced := map[string]bool{}
	for _, byKey := range s.records {
		for _, r := range byKey {
			for _, fp := range r.Tables {
				referenced[fp] = true
			}
		}
	}
	for fp := range s.tables {
		if referenced[fp] {
			continue
		}
		if mt, ok := s.mapped[fp]; ok {
			// Still mapped by a live reader from before the delete; keep the
			// mapping open (the file stays readable through it on POSIX) but
			// drop our handles.
			_ = mt
		}
		_ = s.fs.Remove(s.tablePath(fp))
		delete(s.tables, fp)
	}
	return nil
}

// Stats is a point-in-time snapshot of storage health, exported as
// ppdp_store_* metrics and the /healthz storage block.
type Stats struct {
	Generation       uint64
	WALBytes         int64
	WALRecords       int64
	WALFsyncs        int64
	CheckpointUnix   int64
	CheckpointErrors int64
	RecoverySeconds  float64
	RecoveredRecords int
	RecoveredTorn    bool
	MappedTables     int
	MappedBytes      int64
	TableFiles       int
	TableBytes       int64
	Datasets         int
	Releases         int
	Policies         int
	Specs            int
}

// Stats returns current storage statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Generation:       s.gen,
		WALBytes:         s.walSize,
		WALRecords:       s.walRecords,
		WALFsyncs:        s.walFsyncs,
		CheckpointUnix:   s.checkpointT.Unix(),
		CheckpointErrors: s.checkpointErrs,
		RecoverySeconds:  s.recovery.Seconds(),
		RecoveredRecords: s.recoveredRecords,
		RecoveredTorn:    s.recoveredTorn,
		MappedTables:     len(s.mapped),
		TableFiles:       len(s.tables),
		Datasets:         len(s.records[KindDataset]),
		Releases:         len(s.records[KindRelease]),
		Policies:         len(s.records[KindPolicy]),
		Specs:            len(s.records[KindSpec]),
	}
	for _, mt := range s.mapped {
		st.MappedBytes += mt.Size()
	}
	for _, size := range s.tables {
		st.TableBytes += size
	}
	return st
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the WAL handle and every table mapping. Tables obtained
// from the store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			first = err
		}
		s.wal = nil
	}
	for fp, mt := range s.mapped {
		if err := mt.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.mapped, fp)
		delete(s.cached, fp)
	}
	return first
}
