package store

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestCrashRecoveryPrefixConsistency is the crash-recovery property test of
// ISSUE 8: random mutation sequences run against a live store, the process
// "dies" at a random WAL offset (simulated by copying the directory and
// truncating the journal mid-file), and the rebooted store must recover a
// prefix-consistent state — exactly the state after some prefix of the
// acknowledged mutations, with every referenced table loading fingerprint-
// verified. A concurrent reader hammers the store throughout so the suite is
// meaningful under -race.
func TestCrashRecoveryPrefixConsistency(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 3
	}
	for iter := 0; iter < iters; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("seed=%d", iter), func(t *testing.T) {
			t.Parallel()
			runCrashScenario(t, int64(1000+iter))
		})
	}
}

// stateKey canonicalizes a store state for prefix comparison.
func stateKey(records map[string][]Record) string {
	var parts []string
	for _, kind := range []string{KindDataset, KindRelease, KindPolicy} {
		for _, r := range records[kind] {
			parts = append(parts, fmt.Sprintf("%s|%s|%d|%s|%s",
				r.Kind, r.Key, r.Seq, strings.Join(r.Tables, ","), string(r.Meta)))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

func liveState(st *Store) map[string][]Record {
	out := map[string][]Record{}
	for _, kind := range []string{KindDataset, KindRelease, KindPolicy} {
		out[kind] = st.Records(kind)
	}
	return out
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyDir(t, sp, dp)
			continue
		}
		in, err := os.Open(sp)
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(dp)
		if err != nil {
			in.Close()
			t.Fatal(err)
		}
		_, cerr := io.Copy(out, in)
		in.Close()
		if err := out.Close(); cerr == nil {
			cerr = err
		}
		if cerr != nil {
			t.Fatal(cerr)
		}
	}
}

func runCrashScenario(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()

	// Half the scenarios run with an aggressively small checkpoint threshold
	// so crashes land across generation boundaries too.
	opts := Options{CheckpointBytes: -1}
	if rng.Intn(2) == 0 {
		opts.CheckpointBytes = 1 << 10
	}
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent reader: races against mutations unless the store locks
	// correctly.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = st.Stats()
			for _, r := range st.Records(KindDataset) {
				if len(r.Tables) > 0 {
					if tbl, err := st.Table(r.Tables[0]); err == nil {
						_ = tbl.Len()
					}
				}
			}
		}
	}()

	// Random mutation sequence; record the expected state after every
	// acknowledged op.
	type expected struct{ key string }
	var states []expected
	states = append(states, expected{stateKey(liveState(st))})
	tableFPs := map[string]string{} // dataset key -> table fp
	var datasetKeys, releaseKeys, policyKeys []string

	nOps := 20 + rng.Intn(20)
	for i := 0; i < nOps; i++ {
		var op Op
		switch k := rng.Intn(10); {
		case k < 4: // dataset put (fresh or replace)
			key := fmt.Sprintf("d%d", rng.Intn(6))
			tbl := testTable(t, rng.Intn(1000))
			fp, err := st.PutTable(tbl)
			if err != nil {
				t.Fatal(err)
			}
			op = Op{Op: OpPut, Kind: KindDataset, Key: key, Tables: []string{fp},
				Meta: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))}
			tableFPs[key] = fp
			datasetKeys = append(datasetKeys, key)
		case k < 6 && len(datasetKeys) > 0: // release referencing a dataset table
			ds := datasetKeys[rng.Intn(len(datasetKeys))]
			key := fmt.Sprintf("r%d", st.NextSeq())
			op = Op{Op: OpPut, Kind: KindRelease, Key: key, Seq: st.NextSeq(),
				Tables: []string{tableFPs[ds]},
				Meta:   json.RawMessage(fmt.Sprintf(`{"dataset":%q}`, ds))}
			releaseKeys = append(releaseKeys, key)
		case k < 8: // policy put
			key := fmt.Sprintf("p%d", rng.Intn(8))
			op = Op{Op: OpPut, Kind: KindPolicy, Key: key,
				Meta: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))}
			policyKeys = append(policyKeys, key)
		case len(releaseKeys) > 0: // delete a release
			op = Op{Op: OpDelete, Kind: KindRelease, Key: releaseKeys[rng.Intn(len(releaseKeys))]}
		case len(policyKeys) > 0:
			op = Op{Op: OpDelete, Kind: KindPolicy, Key: policyKeys[rng.Intn(len(policyKeys))]}
		default:
			op = Op{Op: OpPut, Kind: KindPolicy, Key: "p-default"}
		}
		if err := st.Apply(op); err != nil {
			t.Fatalf("op %d (%+v): %v", i, op, err)
		}
		states = append(states, expected{stateKey(liveState(st))})
	}
	close(stop)
	wg.Wait()

	// Crash: copy the directory as the kernel left it (WAL appends were
	// fsynced, so the copy is what a post-crash disk holds), then sever the
	// journal at a random byte offset.
	crashDir := filepath.Join(t.TempDir(), "crash")
	copyDir(t, dir, crashDir)
	st.Close()
	wal := ""
	if entries, err := os.ReadDir(crashDir); err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), walPrefix) {
				wal = filepath.Join(crashDir, e.Name())
			}
		}
	}
	if wal != "" {
		info, err := os.Stat(wal)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > 0 {
			cut := rng.Int63n(info.Size() + 1)
			if err := os.Truncate(wal, cut); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Reboot. Recovery must succeed and land exactly on one of the states
	// the live sequence passed through.
	st2, err := Open(crashDir, opts)
	if err != nil {
		t.Fatalf("seed %d: recovery failed: %v", seed, err)
	}
	defer st2.Close()
	recovered := stateKey(liveState(st2))
	found := -1
	for i, s := range states {
		if s.key == recovered {
			found = i
			break
		}
	}
	if found < 0 {
		t.Fatalf("seed %d: recovered state matches no acknowledged prefix:\n%s", seed, recovered)
	}

	// Every table any recovered record references must load and verify.
	for _, kind := range []string{KindDataset, KindRelease} {
		for _, r := range st2.Records(kind) {
			for _, fp := range r.Tables {
				tbl, err := st2.Table(fp)
				if err != nil {
					t.Fatalf("seed %d: recovered %s %q: table %s unloadable: %v", seed, kind, r.Key, fp, err)
				}
				if tbl.Fingerprint() != fp {
					t.Fatalf("seed %d: table %s content mismatch", seed, fp)
				}
			}
		}
	}
}
