package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// The write-ahead log is a sequence of framed records:
//
//	length  uint32 LE   payload byte count
//	crc     uint32 LE   CRC-32 (IEEE) of the payload
//	payload length bytes of JSON (one Op)
//
// Append writes the frame and fsyncs before the caller applies the mutation
// in memory, so an acknowledged mutation is always on disk. Replay
// distinguishes two failure shapes:
//
//   - A torn tail — the file ends inside the final frame, or the final frame's
//     checksum fails — is the signature of a crash mid-append. The record was
//     never acknowledged; replay truncates it away and recovers the clean
//     prefix.
//   - A checksum failure on an interior record means acknowledged history was
//     damaged after the fact. There is no safe prefix to pick; replay refuses
//     with ErrWALCorrupt and the operator must restore from a snapshot.
//
// walRecordMax bounds a single payload so a garbage length field cannot force
// a giant allocation during replay.
const walRecordMax = 64 << 20

// walFrameOverhead is the per-record framing cost in bytes.
const walFrameOverhead = 8

// appendWALRecord frames payload onto f and fsyncs. It returns the framed
// size on success; on any error the record must be considered not written
// (the caller abandons the in-memory apply).
func appendWALRecord(f File, payload []byte) (int64, error) {
	if len(payload) > walRecordMax {
		return 0, fmt.Errorf("store: WAL record of %d bytes exceeds limit %d", len(payload), walRecordMax)
	}
	frame := make([]byte, walFrameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := f.Write(frame); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return int64(len(frame)), nil
}

// walReplay is the result of reading a WAL file back.
type walReplay struct {
	// payloads holds every intact record payload in append order.
	payloads [][]byte
	// size is the byte offset of the clean prefix; bytes past it (a torn
	// final record) must be truncated before appending resumes.
	size int64
	// torn reports whether a torn final record was discarded.
	torn bool
}

// replayWAL parses the framed records in data (the full WAL file contents).
func replayWAL(path string, data []byte) (walReplay, error) {
	var out walReplay
	off := int64(0)
	n := int64(len(data))
	for off < n {
		rest := n - off
		if rest < walFrameOverhead {
			out.torn = true // crash inside a frame header
			break
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > walRecordMax || off+walFrameOverhead+length > n {
			// The header promises more bytes than exist: final record torn
			// mid-payload (or the header itself is garbage from a torn
			// header write — indistinguishable, and equally unacknowledged).
			out.torn = true
			break
		}
		payload := data[off+walFrameOverhead : off+walFrameOverhead+length]
		if crc32.ChecksumIEEE(payload) != crc {
			if off+walFrameOverhead+length == n {
				// Final record, full length present, bad checksum: torn
				// payload write. Discard it.
				out.torn = true
				break
			}
			return walReplay{}, fmt.Errorf("%w: %s: record at offset %d fails checksum",
				ErrWALCorrupt, path, off)
		}
		out.payloads = append(out.payloads, payload)
		off += walFrameOverhead + length
	}
	out.size = off
	return out, nil
}

// loadWAL reads and replays the WAL at path, truncating a torn tail so the
// file ends on a record boundary. A missing file is an empty WAL.
func loadWAL(fs FS, path string) (walReplay, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return walReplay{}, nil
		}
		return walReplay{}, err
	}
	rep, err := replayWAL(path, data)
	if err != nil {
		return walReplay{}, err
	}
	if rep.torn {
		if err := fs.Truncate(path, rep.size); err != nil {
			return walReplay{}, fmt.Errorf("store: truncate torn WAL tail of %s: %w", path, err)
		}
	}
	return rep, nil
}
