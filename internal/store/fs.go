// Package store implements the durable half of the ppdp registry: a
// write-ahead journal for registry mutations, checkpointed JSON manifests,
// and content-addressed columnar table snapshots opened via mmap (see
// internal/dataset's snapshot format). The invariant the package maintains is
// prefix consistency: every mutation is journaled and fsynced before it is
// applied, so the state recovered after any crash is exactly the state after
// some prefix of the acknowledged mutation sequence — never a torn mixture,
// never corrupt data (every table load is CRC- and fingerprint-verified).
package store

import (
	"errors"
	"io"
	"os"
	"sync"
)

// Injected fault sentinels, wrapped in *os.PathError like their real
// counterparts so callers exercising error paths see realistic shapes.
var (
	errNoSpace = errors.New("no space left on device (injected)")
	errIO      = errors.New("input/output error (injected)")
)

// FS is the slice of filesystem behavior the store depends on. Production
// uses the operating system (osFS); durability tests substitute FaultFS to
// inject short writes, fsync failures and full disks at exact points.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames and creates inside it
	// durable.
	SyncDir(name string) error
}

// File is the subset of *os.File the store writes through.
type File interface {
	io.Writer
	io.Closer
	Sync() error
}

// osFS is the production FS backed by the operating system.
type osFS struct{}

// OSFS returns the production filesystem.
func OSFS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// FaultFS wraps another FS and injects write-path faults for durability
// tests: a byte budget after which writes fail like a full disk (optionally
// after a short write), and scheduled fsync failures. All knobs are
// goroutine-safe; the zero configuration injects nothing.
type FaultFS struct {
	inner FS

	mu sync.Mutex
	// writeBudget is the number of bytes still writable; negative means
	// unlimited. A write that would exceed it is truncated to the remaining
	// budget (the short write) and fails with errInjectedFull.
	writeBudget int64
	// syncFailures counts down on every file fsync; when it hits zero that
	// fsync (and every later one, until rearmed) fails with errInjectedSync.
	syncCountdown int
	syncArmed     bool
	syncs         int
}

// NewFaultFS returns a FaultFS delegating to inner (the OS when nil).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS()
	}
	return &FaultFS{inner: inner, writeBudget: -1}
}

// SetWriteBudget allows n more bytes of writes; further bytes are cut short
// and fail like a full disk. Negative restores unlimited writes.
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	f.writeBudget = n
	f.mu.Unlock()
}

// FailSyncAfter arms fsync failure: the n-th future file fsync (1-based) and
// all subsequent ones fail until the fault is disarmed with DisarmSync.
func (f *FaultFS) FailSyncAfter(n int) {
	f.mu.Lock()
	f.syncArmed = true
	f.syncCountdown = n
	f.mu.Unlock()
}

// DisarmSync clears a pending fsync failure.
func (f *FaultFS) DisarmSync() {
	f.mu.Lock()
	f.syncArmed = false
	f.mu.Unlock()
}

// Syncs returns the number of file fsyncs observed.
func (f *FaultFS) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// errInjected* mimic the real failure modes: ENOSPC for budget exhaustion,
// EIO for fsync.
var (
	errInjectedFull = &os.PathError{Op: "write", Path: "faultfs", Err: errNoSpace}
	errInjectedSync = &os.PathError{Op: "sync", Path: "faultfs", Err: errIO}
)

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error)         { return f.inner.ReadFile(name) }
func (f *FaultFS) Rename(oldpath, newpath string) error         { return f.inner.Rename(oldpath, newpath) }
func (f *FaultFS) Remove(name string) error                     { return f.inner.Remove(name) }
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error)   { return f.inner.ReadDir(name) }
func (f *FaultFS) Stat(name string) (os.FileInfo, error)        { return f.inner.Stat(name) }
func (f *FaultFS) Truncate(name string, size int64) error       { return f.inner.Truncate(name, size) }
func (f *FaultFS) SyncDir(name string) error                    { return f.inner.SyncDir(name) }

// faultFile applies the FaultFS write budget and fsync schedule to one file.
type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(b []byte) (int, error) {
	f.fs.mu.Lock()
	budget := f.fs.writeBudget
	allowed := len(b)
	if budget >= 0 {
		if int64(allowed) > budget {
			allowed = int(budget)
		}
		f.fs.writeBudget = budget - int64(allowed)
	}
	f.fs.mu.Unlock()
	if allowed < len(b) {
		// Short write: persist the prefix the "disk" had room for, then fail.
		n, err := f.File.Write(b[:allowed])
		if err != nil {
			return n, err
		}
		return n, errInjectedFull
	}
	return f.File.Write(b)
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.syncs++
	fail := false
	if f.fs.syncArmed {
		f.fs.syncCountdown--
		if f.fs.syncCountdown <= 0 {
			fail = true
		}
	}
	f.fs.mu.Unlock()
	if fail {
		return errInjectedSync
	}
	return f.File.Sync()
}
