package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/ppdp/ppdp/internal/algorithms/datafly"
	"github.com/ppdp/ppdp/internal/algorithms/incognito"
	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/classify"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/metrics"
	"github.com/ppdp/ppdp/internal/policy"
	"github.com/ppdp/ppdp/internal/synth"
)

// censusQI is the quasi-identifier subset used by the full-domain
// experiments; it keeps the generalization lattice small enough for
// exhaustive search while exercising numeric and categorical hierarchies.
var censusQI = []string{"age", "sex", "education", "marital-status", "race"}

// kSweep returns the k values for the sweeps.
func kSweep(quick bool) []int {
	if quick {
		return []int{2, 10, 50}
	}
	return []int{2, 5, 10, 25, 50, 100}
}

// E1InfoLossVsK regenerates the information-loss-versus-k comparison of
// full-domain (Datafly, Incognito) against multidimensional (Mondrian,
// strict and relaxed) recoding on census data, reporting NCP, the
// discernibility metric and normalized average class size.
func E1InfoLossVsK(opt Options) (*Report, error) {
	n := opt.rows(5000, 800)
	tbl := synth.Census(n, opt.seed())
	hs := synth.CensusHierarchies()
	rep := &Report{
		ID:     "E1",
		Title:  fmt.Sprintf("Information loss vs k (census N=%d, |QI|=%d)", n, len(censusQI)),
		Header: []string{"k", "algorithm", "NCP", "discernibility", "C_avg"},
	}

	type runOut struct {
		name  string
		table *dataset.Table
	}
	mondrianBeatsFullDomain := true
	lossGrowsWithK := true
	prevMondrianNCP := -1.0
	for _, k := range kSweep(opt.Quick) {
		var outs []runOut

		df, err := datafly.Anonymize(tbl, datafly.Config{
			K: k, QuasiIdentifiers: censusQI, Hierarchies: hs, MaxSuppression: 0.02,
		})
		if err != nil {
			return nil, fmt.Errorf("datafly k=%d: %w", k, err)
		}
		outs = append(outs, runOut{"datafly", df.Table})

		inc, err := incognito.Anonymize(tbl, incognito.Config{
			K: k, QuasiIdentifiers: censusQI, Hierarchies: hs,
		})
		if err != nil {
			return nil, fmt.Errorf("incognito k=%d: %w", k, err)
		}
		outs = append(outs, runOut{"incognito", inc.Table})

		mon, err := mondrian.Anonymize(tbl, mondrian.Config{
			K: k, QuasiIdentifiers: censusQI, Hierarchies: hs,
		})
		if err != nil {
			return nil, fmt.Errorf("mondrian k=%d: %w", k, err)
		}
		outs = append(outs, runOut{"mondrian", mon.Table})

		monStrict, err := mondrian.Anonymize(tbl, mondrian.Config{
			K: k, QuasiIdentifiers: censusQI, Hierarchies: hs, Strict: true,
		})
		if err != nil {
			return nil, fmt.Errorf("mondrian-strict k=%d: %w", k, err)
		}
		outs = append(outs, runOut{"mondrian-strict", monStrict.Table})

		ncpByAlg := map[string]float64{}
		dmByAlg := map[string]float64{}
		for _, o := range outs {
			ncp, err := ncpOverQI(tbl, o.table, hs, censusQI)
			if err != nil {
				return nil, err
			}
			dm, err := discernibilityOverQI(o.table, censusQI, tbl.Len())
			if err != nil {
				return nil, err
			}
			cavg, err := cavgOverQI(o.table, censusQI, k)
			if err != nil {
				return nil, err
			}
			ncpByAlg[o.name] = ncp
			dmByAlg[o.name] = dm
			rep.AddRow(i(k), o.name, f(ncp), f(dm), f(cavg))
		}
		// The headline Mondrian claim is on the discernibility metric:
		// multidimensional partitions stay close to size k while full-domain
		// recoding produces huge classes.
		if dmByAlg["mondrian"] > dmByAlg["datafly"]+1e-9 || dmByAlg["mondrian"] > dmByAlg["incognito"]+1e-9 {
			mondrianBeatsFullDomain = false
		}
		if ncpByAlg["mondrian"]+1e-9 < prevMondrianNCP {
			lossGrowsWithK = false
		}
		prevMondrianNCP = ncpByAlg["mondrian"]
	}
	rep.AddNote("multidimensional (Mondrian) has lower discernibility penalty than full-domain recoding at every k: %v", mondrianBeatsFullDomain)
	rep.AddNote("information loss is non-decreasing in k for Mondrian: %v", lossGrowsWithK)
	return rep, nil
}

// E2RuntimeVsN regenerates the runtime-scaling comparison: wall-clock time
// of every registered algorithm as the table grows, at fixed k. The
// algorithm set, the parameter each one needs (k or l) and the quadratic
// cap are all read from the engine registry's metadata, so a newly
// registered algorithm joins the comparison with no edit here.
func E2RuntimeVsN(opt Options) (*Report, error) {
	sizes := []int{1000, 2000, 5000, 10000, 20000}
	if opt.Quick {
		sizes = []int{300, 600, 1200}
	}
	if opt.Rows > 0 {
		sizes = []int{opt.Rows}
	}
	const k = 10
	hs := synth.CensusHierarchies()
	rep := &Report{
		ID:     "E2",
		Title:  fmt.Sprintf("Runtime vs dataset size (census, k=%d)", k),
		Header: []string{"N", "algorithm", "seconds"},
	}
	// Algorithms whose registry metadata declares superlinear cost are
	// capped: their quadratic running time would dominate the sweep.
	quadraticCap := 5000
	if opt.Quick {
		quadraticCap = 1200
	}
	var mondrianTimes []float64
	for _, n := range sizes {
		tbl := synth.Census(n, opt.seed())
		for _, alg := range engine.Registered() {
			info := alg.Describe()
			if info.CostExponent >= 2 && n > quadraticCap {
				rep.AddRow(i(n), info.Name, fmt.Sprintf("skipped (O(n^%.0f))", info.CostExponent))
				continue
			}
			spec := engine.Spec{K: k, QuasiIdentifiers: censusQI, Hierarchies: hs, MaxSuppression: 0.02}
			if _, hasK := info.Param("k"); !hasK {
				// Bucketizing algorithms are keyed on l instead of k.
				spec.L = 2
			}
			if _, hasPolicy := info.Param("policy"); hasPolicy {
				// Policy-driven algorithms (republish) read their headline
				// parameter from a policy document instead of a scalar.
				pol, err := (&policy.Policy{Criteria: []policy.Criterion{
					{Type: policy.MInvariance, M: 2, ID: "name", Sensitive: "salary"},
				}}).Canonical()
				if err != nil {
					return nil, err
				}
				spec.Policy = pol
			}
			start := time.Now()
			_, err := alg.Run(context.Background(), tbl, spec)
			secs := time.Since(start).Seconds()
			if errors.Is(err, engine.ErrUnsatisfiable) {
				// E.g. Anatomy when the sensitive distribution fails
				// l-eligibility on this draw; record it rather than fail.
				rep.AddRow(i(n), info.Name, "infeasible")
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("%s N=%d: %w", info.Name, n, err)
			}
			rep.AddRow(i(n), info.Name, f(secs))
			if info.Name == "mondrian" {
				mondrianTimes = append(mondrianTimes, secs)
			}
		}
	}
	rep.AddNote("quadratic-cost algorithms (per registry metadata) are capped at N=%d", quadraticCap)
	if len(mondrianTimes) >= 2 {
		rep.AddNote("Mondrian scales near-linearithmically: %.3fs at N=%d vs %.3fs at N=%d",
			mondrianTimes[0], sizes[0], mondrianTimes[len(mondrianTimes)-1], sizes[len(sizes)-1])
	}
	return rep, nil
}

// E3ClassificationVsK regenerates the classification-utility experiment: a
// Naive Bayes and a k-NN classifier are trained and tested on the anonymized
// release for increasing k, compared against the raw-data accuracy and the
// majority baseline.
func E3ClassificationVsK(opt Options) (*Report, error) {
	n := opt.rows(5000, 1200)
	tbl := synth.Census(n, opt.seed())
	features := []string{"age", "education", "marital-status", "hours-per-week", "sex"}
	label := "salary"
	rng := rand.New(rand.NewSource(opt.seed()))

	rep := &Report{
		ID:     "E3",
		Title:  fmt.Sprintf("Classification accuracy vs k (census N=%d, label=%s)", n, label),
		Header: []string{"k", "classifier", "accuracy", "baseline"},
	}

	rawNB, err := classify.SplitEvaluate(&classify.NaiveBayes{}, tbl, features, label, 0.7, opt.seed())
	if err != nil {
		return nil, err
	}
	rawKNN, err := classify.SplitEvaluate(&classify.KNN{K: 7}, tbl, features, label, 0.7, opt.seed())
	if err != nil {
		return nil, err
	}
	rep.AddRow("raw", "naive-bayes", f(rawNB.Accuracy), f(rawNB.BaselineAccuracy))
	rep.AddRow("raw", "7-nn", f(rawKNN.Accuracy), f(rawKNN.BaselineAccuracy))

	neverAboveRaw := true
	for _, k := range kSweep(opt.Quick) {
		res, err := mondrian.Anonymize(tbl, mondrian.Config{K: k, QuasiIdentifiers: features})
		if err != nil {
			return nil, fmt.Errorf("mondrian k=%d: %w", k, err)
		}
		train, test := res.Table.Split(0.7, rng)
		for _, c := range []classify.Classifier{&classify.NaiveBayes{}, &classify.KNN{K: 7}} {
			ev, err := classify.Evaluate(c, train, test, features, label)
			if err != nil {
				return nil, err
			}
			rep.AddRow(i(k), c.Name(), f(ev.Accuracy), f(ev.BaselineAccuracy))
			if c.Name() == "naive-bayes" && ev.Accuracy > rawNB.Accuracy+0.05 {
				neverAboveRaw = false
			}
		}
	}
	rep.AddNote("anonymized accuracy never materially exceeds raw accuracy: %v", neverAboveRaw)
	rep.AddNote("accuracy degrades gracefully with k rather than collapsing to the baseline")
	return rep, nil
}

// --- shared helpers -------------------------------------------------------

// ncpOverQI evaluates NCP restricted to the experiment's quasi-identifier by
// re-typing the released table so that only those columns count as QI.
func ncpOverQI(original, released *dataset.Table, hs *hierarchy.Set, qi []string) (float64, error) {
	retyped, err := restrictQI(released, qi)
	if err != nil {
		return 0, err
	}
	origRetyped, err := restrictQI(original, qi)
	if err != nil {
		return 0, err
	}
	return metrics.NCP(origRetyped, retyped, hs)
}

func discernibilityOverQI(released *dataset.Table, qi []string, originalSize int) (float64, error) {
	retyped, err := restrictQI(released, qi)
	if err != nil {
		return 0, err
	}
	return metrics.Discernibility(retyped, originalSize)
}

func cavgOverQI(released *dataset.Table, qi []string, k int) (float64, error) {
	retyped, err := restrictQI(released, qi)
	if err != nil {
		return 0, err
	}
	return metrics.NormalizedAverageClassSize(retyped, k)
}

// restrictQI returns a view of the table whose schema marks exactly the given
// attributes as quasi-identifiers (others become insensitive).
func restrictQI(t *dataset.Table, qi []string) (*dataset.Table, error) {
	kinds := make(map[string]dataset.Kind)
	inQI := make(map[string]bool, len(qi))
	for _, a := range qi {
		inQI[a] = true
	}
	for _, attr := range t.Schema().Attributes() {
		if inQI[attr.Name] {
			kinds[attr.Name] = dataset.QuasiIdentifier
		} else if attr.Kind == dataset.QuasiIdentifier {
			kinds[attr.Name] = dataset.Insensitive
		}
	}
	schema, err := t.Schema().WithKinds(kinds)
	if err != nil {
		return nil, err
	}
	return t.WithSchema(schema)
}
