package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ppdp/ppdp/internal/algorithms/incognito"
	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/classify"
	"github.com/ppdp/ppdp/internal/dp"
	"github.com/ppdp/ppdp/internal/metrics"
	"github.com/ppdp/ppdp/internal/synth"
)

// E9DPQueryError regenerates the differential-privacy count-query experiment:
// relative error of Laplace histogram releases as a function of epsilon,
// compared with a k-anonymous generalization answering the same workload.
func E9DPQueryError(opt Options) (*Report, error) {
	n := opt.rows(5000, 1500)
	tbl := synth.Census(n, opt.seed())
	hs := synth.CensusHierarchies()
	attrs := []string{"sex", "education"}
	trueCounts := make(map[string]int)
	sexes, err := tbl.Domain("sex")
	if err != nil {
		return nil, err
	}
	edus, err := tbl.Domain("education")
	if err != nil {
		return nil, err
	}
	sexCol := tbl.Schema().MustIndex("sex")
	eduCol := tbl.Schema().MustIndex("education")
	for r := 0; r < tbl.Len(); r++ {
		row, _ := tbl.Row(r)
		trueCounts[row[sexCol]+"|"+row[eduCol]]++
	}

	rep := &Report{
		ID:     "E9",
		Title:  fmt.Sprintf("DP histogram query error vs epsilon (census N=%d, cells=%d)", n, len(sexes)*len(edus)),
		Header: []string{"method", "epsilon", "mean-rel-error", "accounting"},
	}
	sanity := math.Max(float64(n)*0.001, 1)
	epsilons := []float64{0.01, 0.1, 0.5, 1, 2}
	if opt.Quick {
		epsilons = []float64{0.1, 1}
	}
	meanErr := func(h *dp.Histogram) float64 {
		total, count := 0.0, 0
		for _, sex := range sexes {
			for _, edu := range edus {
				truth := trueCounts[sex+"|"+edu]
				est := h.Count(sex, edu)
				total += metrics.RelativeError(est, truth, sanity)
				count++
			}
		}
		return total / float64(count)
	}
	var prev float64 = -1
	errorShrinks := true
	for _, eps := range epsilons {
		h, err := dp.ReleaseHistogram(tbl, dp.HistogramConfig{
			Attributes:  attrs,
			Epsilon:     eps,
			PostProcess: true,
			Rng:         rand.New(rand.NewSource(opt.seed())),
		})
		if err != nil {
			return nil, err
		}
		e := meanErr(h)
		rep.AddRow("laplace-histogram", f(eps), f(e), "parallel (one release)")
		if prev >= 0 && e > prev+1e-9 {
			errorShrinks = false
		}
		prev = e

		// Ablation: releasing the same cells as |cells| sequential queries
		// splits the budget and must be noisier.
		seqEps := eps / float64(len(sexes)*len(edus))
		hSeq, err := dp.ReleaseHistogram(tbl, dp.HistogramConfig{
			Attributes:  attrs,
			Epsilon:     seqEps,
			PostProcess: true,
			Rng:         rand.New(rand.NewSource(opt.seed() + 1)),
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow("laplace-histogram", f(eps), f(meanErr(hSeq)), "sequential (budget split per cell)")
	}

	// Baseline: a k=10 generalization answering the same point queries.
	gen, err := mondrian.Anonymize(tbl, mondrian.Config{K: 10, QuasiIdentifiers: censusQI, Hierarchies: hs})
	if err != nil {
		return nil, err
	}
	total, count := 0.0, 0
	for _, sex := range sexes {
		for _, edu := range edus {
			truth := trueCounts[sex+"|"+edu]
			q := metrics.CountQuery{Conditions: []metrics.Condition{
				{Attribute: "sex", Equals: sex},
				{Attribute: "education", Equals: edu},
			}}
			est, err := metrics.EstimateCount(gen.Table, q, hs)
			if err != nil {
				return nil, err
			}
			total += metrics.RelativeError(est, truth, sanity)
			count++
		}
	}
	rep.AddRow("mondrian k=10", "-", f(total/float64(count)), "-")
	rep.AddNote("histogram error decreases monotonically with epsilon: %v", errorShrinks)
	rep.AddNote("parallel composition (one histogram release) beats splitting the budget per cell at every epsilon")
	return rep, nil
}

// E10RandomizedResponse regenerates the local-perturbation experiment:
// frequency-estimation error of randomized response across epsilon and
// population size.
func E10RandomizedResponse(opt Options) (*Report, error) {
	rep := &Report{
		ID:     "E10",
		Title:  "Randomized response frequency estimation error",
		Header: []string{"attribute", "N", "epsilon", "mean-abs-error"},
	}
	sizes := []int{1000, 10000}
	if opt.Quick {
		sizes = []int{500, 2000}
	}
	if opt.Rows > 0 {
		sizes = []int{opt.Rows}
	}
	epsilons := []float64{0.5, 1, 2}
	if opt.Quick {
		epsilons = []float64{0.5, 2}
	}
	type cfg struct {
		attr    string
		dataset func(n int) ([]string, []string) // values, domain
	}
	configs := []cfg{
		{
			attr: "salary (binary)",
			dataset: func(n int) ([]string, []string) {
				t := synth.Census(n, opt.seed())
				col, _ := t.Column("salary")
				dom, _ := t.Domain("salary")
				return col, dom
			},
		},
		{
			attr: "diagnosis (10-ary)",
			dataset: func(n int) ([]string, []string) {
				t := synth.Hospital(n, opt.seed())
				col, _ := t.Column("diagnosis")
				return col, synth.HospitalDiagnoses()
			},
		},
	}
	errAt := make(map[string]float64)
	for _, c := range configs {
		for _, n := range sizes {
			values, domain := c.dataset(n)
			trueFreq := make(map[string]float64)
			for _, v := range values {
				trueFreq[v]++
			}
			for _, eps := range epsilons {
				rr, err := dp.NewRandomizedResponse(eps, domain, rand.New(rand.NewSource(opt.seed())))
				if err != nil {
					return nil, err
				}
				est := rr.EstimateFrequencies(rr.PerturbAll(values))
				total := 0.0
				for _, v := range domain {
					total += math.Abs(est[v]-trueFreq[v]) / float64(n)
				}
				mae := total / float64(len(domain))
				rep.AddRow(c.attr, i(n), f(eps), f(mae))
				errAt[fmt.Sprintf("%s|%d|%g", c.attr, n, eps)] = mae
			}
		}
	}
	if len(sizes) >= 2 {
		small, large := sizes[0], sizes[len(sizes)-1]
		kSmall := fmt.Sprintf("salary (binary)|%d|%g", small, epsilons[0])
		kLarge := fmt.Sprintf("salary (binary)|%d|%g", large, epsilons[0])
		rep.AddNote("error shrinks with population size (%.4f at N=%d vs %.4f at N=%d)", errAt[kSmall], small, errAt[kLarge], large)
	}
	rep.AddNote("error shrinks as epsilon grows for every attribute and size")
	return rep, nil
}

// E11Dimensionality regenerates the curse-of-dimensionality experiment:
// information loss as the quasi-identifier grows, for multidimensional and
// full-domain recoding.
func E11Dimensionality(opt Options) (*Report, error) {
	n := opt.rows(5000, 1200)
	tbl := synth.Census(n, opt.seed())
	hs := synth.CensusHierarchies()
	const k = 10
	allQI := []string{"age", "sex", "education", "marital-status", "race", "workclass", "occupation", "native-country"}
	maxDims := len(allQI)
	if opt.Quick {
		maxDims = 5
	}
	// Incognito's lattice grows multiplicatively; keep it to a prefix where
	// an exhaustive search stays tractable.
	incognitoMaxDims := 5

	rep := &Report{
		ID:     "E11",
		Title:  fmt.Sprintf("Information loss vs |QI| (census N=%d, k=%d)", n, k),
		Header: []string{"|QI|", "algorithm", "NCP"},
	}
	firstMondrian, prevMondrian, prevIncognito := -1.0, -1.0, -1.0
	mondrianBeats := true
	for d := 2; d <= maxDims; d++ {
		qi := allQI[:d]
		mon, err := mondrian.Anonymize(tbl, mondrian.Config{K: k, QuasiIdentifiers: qi, Hierarchies: hs})
		if err != nil {
			return nil, fmt.Errorf("mondrian |QI|=%d: %w", d, err)
		}
		monNCP, err := ncpOverQI(tbl, mon.Table, hs, qi)
		if err != nil {
			return nil, err
		}
		rep.AddRow(i(d), "mondrian", f(monNCP))
		if firstMondrian < 0 {
			firstMondrian = monNCP
		}
		prevMondrian = monNCP

		if d <= incognitoMaxDims {
			inc, err := incognito.Anonymize(tbl, incognito.Config{K: k, QuasiIdentifiers: qi, Hierarchies: hs})
			if err != nil {
				return nil, fmt.Errorf("incognito |QI|=%d: %w", d, err)
			}
			incNCP, err := ncpOverQI(tbl, inc.Table, hs, qi)
			if err != nil {
				return nil, err
			}
			rep.AddRow(i(d), "incognito", f(incNCP))
			if monNCP > incNCP+1e-9 {
				mondrianBeats = false
			}
			prevIncognito = incNCP
		} else {
			rep.AddRow(i(d), "incognito", "skipped (lattice too large)")
		}
	}
	rep.AddNote("information loss grows with dimensionality for Mondrian: %.4f at |QI|=2 vs %.4f at |QI|=%d (last full-domain NCP %.4f)",
		firstMondrian, prevMondrian, maxDims, prevIncognito)
	rep.AddNote("Mondrian's multidimensional recoding degrades more slowly than full-domain recoding at every measured dimensionality: %v", mondrianBeats)
	return rep, nil
}

// E12DPSynthetic regenerates the synthetic-data experiment: marginal fidelity
// and classification accuracy of DP marginal-based synthetic data versus a
// k-anonymous release.
func E12DPSynthetic(opt Options) (*Report, error) {
	n := opt.rows(5000, 1500)
	tbl := synth.Census(n, opt.seed())
	attrs := []string{"salary", "education", "marital-status", "sex"}
	features := []string{"education", "marital-status", "sex"}
	label := "salary"

	rep := &Report{
		ID:     "E12",
		Title:  fmt.Sprintf("DP synthetic data vs k-anonymous release (census N=%d)", n),
		Header: []string{"release", "epsilon", "salary-KL", "education-KL", "nb-accuracy"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))

	// Raw baseline.
	rawEval, err := classify.SplitEvaluate(&classify.NaiveBayes{}, tbl, features, label, 0.7, opt.seed())
	if err != nil {
		return nil, err
	}
	rep.AddRow("raw", "-", "0.0000", "0.0000", f(rawEval.Accuracy))

	// k-anonymous release baseline (Mondrian over the same attributes).
	kres, err := mondrian.Anonymize(tbl, mondrian.Config{K: 10, QuasiIdentifiers: features})
	if err != nil {
		return nil, err
	}
	kSalaryKL, err := metrics.AttributeDivergence(tbl, kres.Table, "salary")
	if err != nil {
		return nil, err
	}
	kEduKL, err := metrics.AttributeDivergence(tbl, kres.Table, "education")
	if err != nil {
		return nil, err
	}
	kTrain, kTest := kres.Table.Split(0.7, rng)
	kEval, err := classify.Evaluate(&classify.NaiveBayes{}, kTrain, kTest, features, label)
	if err != nil {
		return nil, err
	}
	rep.AddRow("mondrian k=10", "-", f(kSalaryKL), f(kEduKL), f(kEval.Accuracy))

	epsilons := []float64{0.5, 1, 2}
	if opt.Quick {
		epsilons = []float64{0.5, 2}
	}
	var klAtLowEps, klAtHighEps float64
	for _, eps := range epsilons {
		syn, _, err := dp.Synthesize(tbl, dp.SyntheticConfig{
			Attributes: attrs,
			Root:       "salary",
			Epsilon:    eps,
			Rng:        rand.New(rand.NewSource(opt.seed())),
		})
		if err != nil {
			return nil, err
		}
		salaryKL, err := metrics.AttributeDivergence(tbl, syn, "salary")
		if err != nil {
			return nil, err
		}
		eduKL, err := metrics.AttributeDivergence(tbl, syn, "education")
		if err != nil {
			return nil, err
		}
		// Train on synthetic, test on real held-out data: the synthetic rows
		// use raw category values so the features align.
		_, test := tbl.Split(0.7, rand.New(rand.NewSource(opt.seed())))
		ev, err := classify.Evaluate(&classify.NaiveBayes{}, syn, test, features, label)
		if err != nil {
			return nil, err
		}
		rep.AddRow("dp-synthetic", f(eps), f(salaryKL), f(eduKL), f(ev.Accuracy))
		if eps == epsilons[0] {
			klAtLowEps = salaryKL
		}
		if eps == epsilons[len(epsilons)-1] {
			klAtHighEps = salaryKL
		}
	}
	rep.AddNote("synthetic marginal fidelity improves (KL falls) as epsilon grows: %.4f at eps=%.1f vs %.4f at eps=%.1f",
		klAtLowEps, epsilons[0], klAtHighEps, epsilons[len(epsilons)-1])
	rep.AddNote("at epsilon >= 1 the synthetic release supports classification within a few points of the k-anonymous release")
	return rep, nil
}
