package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quickOpt keeps every experiment in unit-test territory.
var quickOpt = Options{Quick: true, Seed: 7}

func TestIDsAndDispatch(t *testing.T) {
	ids := IDs()
	if len(ids) != 12 {
		t.Fatalf("IDs = %v", ids)
	}
	if ids[0] != "E1" || ids[len(ids)-1] != "E12" {
		t.Errorf("IDs not in numeric order: %v", ids)
	}
	if _, err := Run("nope", quickOpt); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Case-insensitive dispatch.
	rep, err := Run("e10", quickOpt)
	if err != nil {
		t.Fatalf("Run(e10): %v", err)
	}
	if rep.ID != "E10" {
		t.Errorf("dispatched wrong experiment: %s", rep.ID)
	}
}

func TestReportPrint(t *testing.T) {
	rep := &Report{ID: "EX", Title: "demo", Header: []string{"a", "b"}}
	rep.AddRow("1", "2")
	rep.AddNote("shape holds: %v", true)
	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	for _, want := range []string{"EX", "demo", "a", "note: shape holds: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

// column returns the values of the named column for rows matching the filter.
func column(rep *Report, name string, keep func(row []string) bool) []string {
	idx := -1
	for i, h := range rep.Header {
		if h == name {
			idx = i
		}
	}
	var out []string
	for _, row := range rep.Rows {
		if keep == nil || keep(row) {
			out = append(out, row[idx])
		}
	}
	return out
}

func toF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a float: %q", s)
	}
	return v
}

func TestE1ShapesHold(t *testing.T) {
	rep, err := E1InfoLossVsK(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Mondrian's discernibility penalty must never exceed Datafly's at the
	// same k (the multidimensional-vs-full-domain headline result), and its
	// NCP must stay in the same ballpark or better.
	for _, k := range kSweep(true) {
		kStr := strconv.Itoa(k)
		mondDM := column(rep, "discernibility", func(r []string) bool { return r[0] == kStr && r[1] == "mondrian" })
		dataDM := column(rep, "discernibility", func(r []string) bool { return r[0] == kStr && r[1] == "datafly" })
		mondNCP := column(rep, "NCP", func(r []string) bool { return r[0] == kStr && r[1] == "mondrian" })
		dataNCP := column(rep, "NCP", func(r []string) bool { return r[0] == kStr && r[1] == "datafly" })
		if len(mondDM) != 1 || len(dataDM) != 1 {
			t.Fatalf("missing rows for k=%d", k)
		}
		if toF(t, mondDM[0]) > toF(t, dataDM[0])+1e-9 {
			t.Errorf("k=%d: mondrian discernibility %s above datafly %s", k, mondDM[0], dataDM[0])
		}
		if toF(t, mondNCP[0]) > toF(t, dataNCP[0])+0.05 {
			t.Errorf("k=%d: mondrian NCP %s far above datafly %s", k, mondNCP[0], dataNCP[0])
		}
	}
}

func TestE2Runs(t *testing.T) {
	rep, err := E2RuntimeVsN(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 6 {
		t.Errorf("too few rows: %d", len(rep.Rows))
	}
}

func TestE3ShapesHold(t *testing.T) {
	rep, err := E3ClassificationVsK(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	accs := column(rep, "accuracy", func(r []string) bool { return r[1] == "naive-bayes" && r[0] != "raw" })
	raw := column(rep, "accuracy", func(r []string) bool { return r[1] == "naive-bayes" && r[0] == "raw" })
	if len(raw) != 1 || len(accs) == 0 {
		t.Fatal("missing accuracy rows")
	}
	for _, a := range accs {
		if toF(t, a) < 0.4 {
			t.Errorf("anonymized accuracy %s collapsed", a)
		}
		if toF(t, a) > toF(t, raw[0])+0.08 {
			t.Errorf("anonymized accuracy %s exceeds raw %s", a, raw[0])
		}
	}
}

func TestE4ShapesHold(t *testing.T) {
	rep, err := E4LDiversity(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	kOnly := column(rep, "fully-disclosed", func(r []string) bool { return r[0] == "k-anonymity only" })
	l2 := column(rep, "fully-disclosed", func(r []string) bool { return r[0] == "distinct 2-diversity" })
	if len(kOnly) != 1 || len(l2) != 1 {
		t.Fatal("missing rows")
	}
	if toF(t, l2[0]) > 0 {
		t.Errorf("2-diversity release still fully discloses %s of records", l2[0])
	}
	if toF(t, l2[0]) > toF(t, kOnly[0]) {
		t.Errorf("l-diversity increased disclosure: %s vs %s", l2[0], kOnly[0])
	}
}

func TestE5ShapesHold(t *testing.T) {
	rep, err := E5TCloseness(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Every explicit t-closeness row satisfies its own threshold.
	for _, row := range rep.Rows {
		if strings.HasSuffix(row[0], "-closeness") {
			threshold := toF(t, strings.TrimSuffix(row[0], "-closeness"))
			if toF(t, row[1]) > threshold+1e-9 {
				t.Errorf("%s: max EMD %s exceeds threshold", row[0], row[1])
			}
		}
	}
}

func TestE6ShapesHold(t *testing.T) {
	rep, err := E6AnatomyQueries(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"2", "4"} {
		gen := column(rep, "mean-rel-error", func(r []string) bool { return r[0] == l && r[1] == "generalization" })
		anat := column(rep, "mean-rel-error", func(r []string) bool { return r[0] == l && r[1] == "anatomy" })
		if len(gen) != 1 || len(anat) != 1 {
			t.Fatalf("missing rows for l=%s", l)
		}
		if toF(t, anat[0]) > toF(t, gen[0])+1e-9 {
			t.Errorf("l=%s: anatomy error %s not below generalization %s", l, anat[0], gen[0])
		}
	}
}

func TestE7Runs(t *testing.T) {
	rep, err := E7DeltaPresence(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 3 {
		t.Errorf("too few rows: %d", len(rep.Rows))
	}
	// Delta bounds always bracket the 30% sampling rate.
	for _, row := range rep.Rows {
		lo, hi := toF(t, row[1]), toF(t, row[2])
		if lo > 0.3+1e-9 || hi < 0.3-1e-9 {
			t.Errorf("presence bounds [%v, %v] do not bracket the sampling rate", lo, hi)
		}
		if lo > hi {
			t.Errorf("inverted presence bounds [%v, %v]", lo, hi)
		}
	}
}

func TestE8ShapesHold(t *testing.T) {
	rep, err := E8LinkageRisk(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	raw := column(rep, "unique-links", func(r []string) bool { return r[0] == "1" })
	k25 := column(rep, "unique-links", func(r []string) bool { return r[0] == "25" })
	if len(raw) != 1 || len(k25) != 1 {
		t.Fatal("missing rows")
	}
	rawU, _ := strconv.Atoi(raw[0])
	k25U, _ := strconv.Atoi(k25[0])
	if k25U > rawU {
		t.Errorf("unique links grew with k: %d vs %d", k25U, rawU)
	}
}

func TestE9ShapesHold(t *testing.T) {
	rep, err := E9DPQueryError(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	parallel := column(rep, "mean-rel-error", func(r []string) bool {
		return r[0] == "laplace-histogram" && strings.HasPrefix(r[3], "parallel")
	})
	if len(parallel) < 2 {
		t.Fatal("missing histogram rows")
	}
	if toF(t, parallel[len(parallel)-1]) > toF(t, parallel[0])+1e-9 {
		t.Errorf("error did not shrink with epsilon: %v", parallel)
	}
	// Sequential accounting is never better than parallel at the same epsilon.
	seq := column(rep, "mean-rel-error", func(r []string) bool {
		return r[0] == "laplace-histogram" && strings.HasPrefix(r[3], "sequential")
	})
	for i := range parallel {
		if toF(t, seq[i])+1e-9 < toF(t, parallel[i]) {
			t.Errorf("sequential accounting beat parallel at index %d", i)
		}
	}
}

func TestE10ShapesHold(t *testing.T) {
	rep, err := E10RandomizedResponse(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// For the binary attribute at fixed N, error at eps=2 must be below eps=0.5.
	low := column(rep, "mean-abs-error", func(r []string) bool {
		return r[0] == "salary (binary)" && r[1] == "2000" && r[2] == "0.5000"
	})
	high := column(rep, "mean-abs-error", func(r []string) bool {
		return r[0] == "salary (binary)" && r[1] == "2000" && r[2] == "2.0000"
	})
	if len(low) != 1 || len(high) != 1 {
		t.Fatalf("missing randomized-response rows: %v / %v", low, high)
	}
	if toF(t, high[0]) > toF(t, low[0])+1e-9 {
		t.Errorf("error did not shrink with epsilon: %s vs %s", high[0], low[0])
	}
}

func TestE11ShapesHold(t *testing.T) {
	rep, err := E11Dimensionality(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	mond := column(rep, "NCP", func(r []string) bool { return r[1] == "mondrian" })
	if len(mond) < 3 {
		t.Fatal("missing mondrian rows")
	}
	if toF(t, mond[len(mond)-1])+1e-9 < toF(t, mond[0]) {
		t.Errorf("information loss did not grow with dimensionality: %v", mond)
	}
}

func TestE12Runs(t *testing.T) {
	rep, err := E12DPSynthetic(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 4 {
		t.Errorf("too few rows: %d", len(rep.Rows))
	}
	// Synthetic accuracy stays meaningfully above coin flipping at eps=2.
	acc := column(rep, "nb-accuracy", func(r []string) bool { return r[0] == "dp-synthetic" && r[1] == "2.0000" })
	if len(acc) == 1 && toF(t, acc[0]) < 0.5 {
		t.Errorf("synthetic accuracy %s below 0.5", acc[0])
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is covered by the individual experiment tests")
	}
	var buf bytes.Buffer
	if err := RunAll(quickOpt, &buf); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for _, id := range IDs() {
		if !strings.Contains(buf.String(), "== "+id+":") {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}
