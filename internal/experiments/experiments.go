// Package experiments implements the reproduction harness: one runner per
// experiment in DESIGN.md (E1–E12), each regenerating the corresponding
// comparison from the PPDP survey as a printable table of rows/series. The
// CLI exposes them via `ppdp experiment <id>` and the repository-level
// benchmarks wrap them in testing.B loops.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	// The runtime comparison (E2) sweeps every algorithm in the engine
	// registry; make sure all built-ins are registered.
	_ "github.com/ppdp/ppdp/internal/engine/all"
)

// Options tunes an experiment run.
type Options struct {
	// Rows overrides the dataset size (0 uses the experiment's default).
	Rows int
	// Seed makes the synthetic data and randomized sweeps reproducible.
	Seed int64
	// Quick shrinks parameter sweeps and dataset sizes so the run finishes
	// in seconds; used by unit tests and iterative development.
	Quick bool
}

// seed returns the configured seed or a default.
func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// rows returns the dataset size, preferring the override, then the quick
// size, then the full default.
func (o Options) rows(def, quick int) int {
	if o.Rows > 0 {
		return o.Rows
	}
	if o.Quick {
		return quick
	}
	return def
}

// Report is the printable outcome of one experiment.
type Report struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes the regenerated table/figure.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the result series, one row per parameter/algorithm
	// combination.
	Rows [][]string
	// Notes lists observations the experiment asserts about the shape of
	// the results (who wins, direction of trends).
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(values ...string) { r.Rows = append(r.Rows, values) }

// AddNote appends a shape observation.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(r.Header)
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner is an experiment entry point.
type Runner func(Options) (*Report, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"E1":  E1InfoLossVsK,
	"E2":  E2RuntimeVsN,
	"E3":  E3ClassificationVsK,
	"E4":  E4LDiversity,
	"E5":  E5TCloseness,
	"E6":  E6AnatomyQueries,
	"E7":  E7DeltaPresence,
	"E8":  E8LinkageRisk,
	"E9":  E9DPQueryError,
	"E10": E10RandomizedResponse,
	"E11": E11Dimensionality,
	"E12": E12DPSynthetic,
}

// IDs lists all experiment identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric order: E1, E2, ..., E10, E11, E12.
		return expNumber(out[i]) < expNumber(out[j])
	})
	return out
}

func expNumber(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// Run dispatches an experiment by id.
func Run(id string, opt Options) (*Report, error) {
	r, ok := registry[strings.ToUpper(strings.TrimSpace(id))]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(opt)
}

// RunAll executes every experiment in order, printing each report to w.
func RunAll(opt Options, w io.Writer) error {
	for _, id := range IDs() {
		rep, err := Run(id, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		rep.Print(w)
	}
	return nil
}

// f formats a float compactly for report rows.
func f(v float64) string { return fmt.Sprintf("%.4f", v) }

// i formats an int for report rows.
func i(v int) string { return fmt.Sprintf("%d", v) }
