package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"

	"github.com/ppdp/ppdp/internal/algorithms/anatomy"
	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/generalize"
	"github.com/ppdp/ppdp/internal/lattice"
	"github.com/ppdp/ppdp/internal/metrics"
	"github.com/ppdp/ppdp/internal/privacy"
	"github.com/ppdp/ppdp/internal/risk"
	"github.com/ppdp/ppdp/internal/synth"
)

// E4LDiversity regenerates the homogeneity-attack comparison: k-anonymity
// alone versus distinct/entropy/recursive l-diversity on hospital data,
// reporting the attribute-disclosure attack success and the utility cost.
func E4LDiversity(opt Options) (*Report, error) {
	n := opt.rows(5000, 1200)
	tbl := synth.Hospital(n, opt.seed())
	hs := synth.HospitalHierarchies()
	// A small k keeps partitions tight so that k-anonymity alone leaves
	// homogeneous (or near-homogeneous) classes for the attack to exploit —
	// the situation the l-diversity paper's motivating table shows.
	const k = 4
	sensitive := "diagnosis"

	rep := &Report{
		ID:     "E4",
		Title:  fmt.Sprintf("Attribute disclosure under k-anonymity vs l-diversity (hospital N=%d, k=%d)", n, k),
		Header: []string{"model", "fully-disclosed", "guess-rate", "min-distinct-l", "NCP"},
	}
	baseline, err := risk.BaselineGuessRate(tbl, sensitive)
	if err != nil {
		return nil, err
	}
	rep.AddRow("baseline (no release)", "0.0000", f(baseline), "-", "-")

	type variant struct {
		name  string
		extra []privacy.Criterion
	}
	lSweep := []int{2, 3, 4, 6}
	if opt.Quick {
		lSweep = []int{2, 3}
	}
	variants := []variant{{name: "k-anonymity only"}}
	for _, l := range lSweep {
		variants = append(variants, variant{
			name:  fmt.Sprintf("distinct %d-diversity", l),
			extra: []privacy.Criterion{privacy.DistinctLDiversity{L: l, Sensitive: sensitive}},
		})
	}
	variants = append(variants,
		variant{name: "entropy 3-diversity", extra: []privacy.Criterion{privacy.EntropyLDiversity{L: 3, Sensitive: sensitive}}},
		variant{name: "recursive (3,3)-diversity", extra: []privacy.Criterion{privacy.RecursiveCLDiversity{C: 3, L: 3, Sensitive: sensitive}}},
	)

	var kOnlyDisclosed, lDisclosed float64
	for _, v := range variants {
		res, err := mondrian.Anonymize(tbl, mondrian.Config{K: k, Hierarchies: hs, Extra: v.extra})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		attack, err := risk.HomogeneityAttack(res.Table, sensitive)
		if err != nil {
			return nil, err
		}
		classes, err := res.Table.GroupByQuasiIdentifier()
		if err != nil {
			return nil, err
		}
		minL, err := privacy.MeasureDistinctL(res.Table, classes, sensitive)
		if err != nil {
			return nil, err
		}
		ncp, err := metrics.NCP(tbl, res.Table, hs)
		if err != nil {
			return nil, err
		}
		rep.AddRow(v.name, f(attack.FullyDisclosed), f(attack.ExpectedGuessRate), i(minL), f(ncp))
		if v.name == "k-anonymity only" {
			kOnlyDisclosed = attack.FullyDisclosed
		}
		if v.name == "distinct 2-diversity" {
			lDisclosed = attack.FullyDisclosed
		}
	}
	rep.AddNote("full disclosure drops from %.4f (k-anonymity only) to %.4f once distinct 2-diversity is enforced", kOnlyDisclosed, lDisclosed)
	rep.AddNote("utility cost (NCP) grows with l")
	return rep, nil
}

// E5TCloseness regenerates the skewness/similarity-attack comparison between
// l-diversity and t-closeness on the skewed hospital sensitive attribute.
func E5TCloseness(opt Options) (*Report, error) {
	n := opt.rows(5000, 1200)
	tbl := synth.Hospital(n, opt.seed())
	hs := synth.HospitalHierarchies()
	const k = 10
	sensitive := "diagnosis"

	rep := &Report{
		ID:     "E5",
		Title:  fmt.Sprintf("t-closeness vs l-diversity on a skewed sensitive attribute (hospital N=%d, k=%d)", n, k),
		Header: []string{"model", "max-EMD", "worst-class-share", "NCP"},
	}
	tSweep := []float64{0.5, 0.3, 0.2, 0.15}
	if opt.Quick {
		tSweep = []float64{0.5, 0.3}
	}
	type variant struct {
		name  string
		extra []privacy.Criterion
		t     float64
	}
	variants := []variant{
		{name: "k-anonymity only"},
		{name: "distinct 3-diversity", extra: []privacy.Criterion{privacy.DistinctLDiversity{L: 3, Sensitive: sensitive}}},
	}
	for _, t := range tSweep {
		variants = append(variants, variant{
			name:  fmt.Sprintf("%.2f-closeness", t),
			extra: []privacy.Criterion{privacy.TCloseness{T: t, Sensitive: sensitive}},
			t:     t,
		})
	}
	prevNCP := -1.0
	tighterTCostsMore := true
	for _, v := range variants {
		res, err := mondrian.Anonymize(tbl, mondrian.Config{K: k, Hierarchies: hs, Extra: v.extra})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		classes, err := res.Table.GroupByQuasiIdentifier()
		if err != nil {
			return nil, err
		}
		emd, err := privacy.MeasureMaxEMD(res.Table, classes, sensitive, false)
		if err != nil {
			return nil, err
		}
		attack, err := risk.HomogeneityAttack(res.Table, sensitive)
		if err != nil {
			return nil, err
		}
		ncp, err := metrics.NCP(tbl, res.Table, hs)
		if err != nil {
			return nil, err
		}
		rep.AddRow(v.name, f(emd), f(attack.WorstClassShare), f(ncp))
		if v.t > 0 {
			if prevNCP >= 0 && ncp+1e-9 < prevNCP {
				tighterTCostsMore = false
			}
			prevNCP = ncp
		}
	}
	rep.AddNote("every t-closeness release keeps max EMD within its threshold")
	rep.AddNote("tightening t monotonically increases NCP: %v", tighterTCostsMore)
	return rep, nil
}

// E6AnatomyQueries regenerates Anatomy's headline comparison: aggregate
// count-query accuracy of bucketization versus generalization at equal l.
func E6AnatomyQueries(opt Options) (*Report, error) {
	n := opt.rows(5000, 1500)
	tbl := synth.Hospital(n, opt.seed())
	hs := synth.HospitalHierarchies()
	sensitive := "diagnosis"
	queries := 60
	if opt.Quick {
		queries = 25
	}
	workload, err := metrics.GenerateWorkload(tbl, metrics.WorkloadConfig{
		Queries:   queries,
		Sensitive: sensitive,
		Rng:       rand.New(rand.NewSource(opt.seed())),
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "E6",
		Title:  fmt.Sprintf("Aggregate query error: Anatomy vs generalization (hospital N=%d, %d queries)", n, queries),
		Header: []string{"l", "method", "mean-rel-error", "median-rel-error"},
	}
	lSweep := []int{2, 3, 4, 6}
	if opt.Quick {
		lSweep = []int{2, 4}
	}
	anatomyAlwaysWins := true
	const genK = 10
	for _, l := range lSweep {
		// Generalization baseline: a realistic release that is both
		// k-anonymous (k=10) and l-diverse, recoded multidimensionally. The
		// Anatomy comparison is about what severing the QI/SA link buys over
		// publishing generalized quasi-identifiers of any realistic release.
		gen, err := mondrian.Anonymize(tbl, mondrian.Config{
			K:     genK,
			Extra: []privacy.Criterion{privacy.DistinctLDiversity{L: l, Sensitive: sensitive}},
		})
		if err != nil {
			return nil, fmt.Errorf("generalization l=%d: %w", l, err)
		}
		genErrs, err := metrics.EvaluateWorkload(tbl, gen.Table, workload, hs)
		if err != nil {
			return nil, err
		}
		genSummary := metrics.Summarize(genErrs)
		rep.AddRow(i(l), "generalization", f(genSummary.Mean), f(genSummary.Median))

		anat, err := anatomy.Anonymize(tbl, anatomy.Config{L: l, Sensitive: sensitive})
		if errors.Is(err, anatomy.ErrEligibility) {
			rep.AddRow(i(l), "anatomy", "infeasible (eligibility)", "-")
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("anatomy l=%d: %w", l, err)
		}
		anatErrs, err := evaluateAnatomyWorkload(tbl, anat, workload)
		if err != nil {
			return nil, err
		}
		anatSummary := metrics.Summarize(anatErrs)
		rep.AddRow(i(l), "anatomy", f(anatSummary.Mean), f(anatSummary.Median))
		if anatSummary.Mean > genSummary.Mean+1e-9 {
			anatomyAlwaysWins = false
		}
	}
	rep.AddNote("anatomy answers the QI+sensitive count workload with lower mean error than generalization at every l: %v", anatomyAlwaysWins)
	return rep, nil
}

// evaluateAnatomyWorkload answers each workload query from the anatomized
// release. Queries must carry exactly one sensitive equality predicate (the
// workload generator appends it last).
func evaluateAnatomyWorkload(original *dataset.Table, res *anatomy.Result, w *metrics.Workload) ([]float64, error) {
	sanity := float64(original.Len()) * 0.001
	if sanity < 1 {
		sanity = 1
	}
	qiIndex := make(map[string]int, len(res.QuasiIdentifiers))
	for idx, a := range res.QuasiIdentifiers {
		qiIndex[a] = idx
	}
	errs := make([]float64, 0, len(w.Queries))
	for _, q := range w.Queries {
		truth, err := metrics.ExactCount(original, q)
		if err != nil {
			return nil, err
		}
		sensitiveValue := ""
		var qiConds []metrics.Condition
		for _, c := range q.Conditions {
			if c.Attribute == res.Sensitive {
				sensitiveValue = c.Equals
			} else {
				qiConds = append(qiConds, c)
			}
		}
		pred := func(qi []string) bool {
			for _, c := range qiConds {
				idx, ok := qiIndex[c.Attribute]
				if !ok {
					return false
				}
				v := qi[idx]
				if c.IsRange {
					fv, err := strconv.ParseFloat(v, 64)
					if err != nil || fv < c.Lo || fv >= c.Hi {
						return false
					}
				} else if v != c.Equals {
					return false
				}
			}
			return true
		}
		est := res.EstimateCount(pred, sensitiveValue)
		errs = append(errs, metrics.RelativeError(est, truth, sanity))
	}
	return errs, nil
}

// E7DeltaPresence regenerates the table-linkage experiment: a private subset
// of a public census is released at increasing full-domain generalization
// levels, and the presence-disclosure bounds are reported.
func E7DeltaPresence(opt Options) (*Report, error) {
	n := opt.rows(5000, 1500)
	public := synth.Census(n, opt.seed())
	publicNoID, err := public.DropIdentifiers()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	private := publicNoID.Sample(int(float64(publicNoID.Len())*0.3), rng)
	hs := synth.CensusHierarchies()
	qi := []string{"age", "sex", "education"}

	rep := &Report{
		ID:     "E7",
		Title:  fmt.Sprintf("delta-presence bounds vs generalization level (census N=%d, private 30%%)", n),
		Header: []string{"levels", "delta-min", "delta-max", "NCP"},
	}
	maxLevels, err := hs.MaxLevels(qi)
	if err != nil {
		return nil, err
	}
	prevRange := 2.0
	rangeNarrows := true
	steps := 4
	if opt.Quick {
		steps = 3
	}
	for step := 0; step < steps; step++ {
		node := make(lattice.Node, len(qi))
		for j := range node {
			node[j] = step * maxLevels[j] / (steps - 1)
		}
		pubRecoded, err := generalize.FullDomain(publicNoID, qi, hs, node)
		if err != nil {
			return nil, err
		}
		privRecoded, err := generalize.FullDomain(private, qi, hs, node)
		if err != nil {
			return nil, err
		}
		pubView, err := restrictQI(pubRecoded, qi)
		if err != nil {
			return nil, err
		}
		privView, err := restrictQI(privRecoded, qi)
		if err != nil {
			return nil, err
		}
		lo, hi, err := privacy.MeasurePresence(privView, pubView)
		if err != nil {
			return nil, err
		}
		ncp, err := ncpOverQI(publicNoID, pubRecoded, hs, qi)
		if err != nil {
			return nil, err
		}
		rep.AddRow(node.Key(), f(lo), f(hi), f(ncp))
		if hi-lo > prevRange+1e-9 {
			rangeNarrows = false
		}
		prevRange = hi - lo
	}
	rep.AddNote("the presence-disclosure interval [delta-min, delta-max] narrows toward the 0.30 sampling rate as generalization increases: %v", rangeNarrows)
	return rep, nil
}

// E8LinkageRisk regenerates the re-identification experiment: an identified
// register is linked against releases of increasing k, reporting unique
// links, expected re-identifications and prosecutor risk.
func E8LinkageRisk(opt Options) (*Report, error) {
	n := opt.rows(3000, 800)
	private := synth.Hospital(n, opt.seed())
	register, err := synth.IdentifiedRegister(private, 0.3, n/10, opt.seed()+1)
	if err != nil {
		return nil, err
	}
	hs := synth.HospitalHierarchies()
	rep := &Report{
		ID:     "E8",
		Title:  fmt.Sprintf("Linkage attack vs k (hospital N=%d, register %d rows)", n, register.Len()),
		Header: []string{"k", "unique-links", "expected-reid", "avg-match-size", "prosecutor-max"},
	}
	ks := []int{1, 2, 5, 10, 25, 50}
	if opt.Quick {
		ks = []int{1, 5, 25}
	}
	prevUnique := -1
	uniqueNonIncreasing := true
	for _, k := range ks {
		var released *dataset.Table
		if k == 1 {
			released, err = private.DropIdentifiers()
			if err != nil {
				return nil, err
			}
		} else {
			res, err := mondrian.Anonymize(private, mondrian.Config{K: k, Hierarchies: hs})
			if err != nil {
				return nil, fmt.Errorf("k=%d: %w", k, err)
			}
			released = res.Table
		}
		attack, err := risk.LinkageAttack(released, register, hs)
		if err != nil {
			return nil, err
		}
		reid, err := risk.MeasureReidentification(released, 0.2)
		if err != nil {
			return nil, err
		}
		rep.AddRow(i(k), i(attack.UniqueLinks), f(attack.ExpectedReidentifications), f(attack.AverageMatchSize), f(reid.ProsecutorMax))
		if prevUnique >= 0 && attack.UniqueLinks > prevUnique {
			uniqueNonIncreasing = false
		}
		prevUnique = attack.UniqueLinks
	}
	rep.AddNote("unique links never increase as k grows: %v", uniqueNonIncreasing)
	rep.AddNote("prosecutor risk is bounded by 1/k at every k >= 2")
	return rep, nil
}
