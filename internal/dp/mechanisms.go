// Package dp implements the differential privacy primitives the PPDP survey
// covers as the "uninformative principle" end of the spectrum: the Laplace,
// geometric and exponential mechanisms, randomized response, differentially
// private histograms and contingency tables, marginal-based synthetic data
// generation, and a privacy-budget accountant for sequential and parallel
// composition.
//
// All randomness is drawn from an injected *rand.Rand so experiments are
// reproducible; production callers can seed from crypto/rand.
package dp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Common errors.
var (
	// ErrEpsilon is returned for non-positive privacy budgets.
	ErrEpsilon = errors.New("dp: epsilon must be positive")
	// ErrSensitivity is returned for non-positive sensitivities.
	ErrSensitivity = errors.New("dp: sensitivity must be positive")
	// ErrEmptyChoices is returned when the exponential mechanism is invoked
	// with no candidates.
	ErrEmptyChoices = errors.New("dp: exponential mechanism needs at least one candidate")
	// ErrBudgetExhausted is returned by the accountant when a request would
	// exceed the total budget.
	ErrBudgetExhausted = errors.New("dp: privacy budget exhausted")
)

// LaplaceMechanism adds Laplace noise calibrated to sensitivity/epsilon.
type LaplaceMechanism struct {
	// Epsilon is the privacy budget consumed per invocation.
	Epsilon float64
	// Sensitivity is the L1 sensitivity of the query being perturbed.
	Sensitivity float64
	// Rng is the noise source.
	Rng *rand.Rand
}

// NewLaplace validates parameters and builds a Laplace mechanism.
func NewLaplace(epsilon, sensitivity float64, rng *rand.Rand) (*LaplaceMechanism, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrEpsilon, epsilon)
	}
	if sensitivity <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrSensitivity, sensitivity)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &LaplaceMechanism{Epsilon: epsilon, Sensitivity: sensitivity, Rng: rng}, nil
}

// Scale returns the Laplace noise scale b = sensitivity / epsilon.
func (m *LaplaceMechanism) Scale() float64 { return m.Sensitivity / m.Epsilon }

// Release perturbs a single true value.
func (m *LaplaceMechanism) Release(trueValue float64) float64 {
	return trueValue + laplaceNoise(m.Rng, m.Scale())
}

// ReleaseAll perturbs a vector of values, consuming the same epsilon for the
// whole vector only when the underlying cells partition the data (parallel
// composition); callers are responsible for accounting.
func (m *LaplaceMechanism) ReleaseAll(trueValues []float64) []float64 {
	out := make([]float64, len(trueValues))
	for i, v := range trueValues {
		out[i] = m.Release(v)
	}
	return out
}

// laplaceNoise samples Laplace(0, b) via inverse transform sampling.
func laplaceNoise(rng *rand.Rand, b float64) float64 {
	u := rng.Float64() - 0.5
	return -b * sign(u) * math.Log(1-2*math.Abs(u))
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// GeometricMechanism adds two-sided geometric (discrete Laplace) noise,
// appropriate for integer-valued counting queries.
type GeometricMechanism struct {
	Epsilon     float64
	Sensitivity float64
	Rng         *rand.Rand
}

// NewGeometric validates parameters and builds a geometric mechanism.
func NewGeometric(epsilon, sensitivity float64, rng *rand.Rand) (*GeometricMechanism, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrEpsilon, epsilon)
	}
	if sensitivity <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrSensitivity, sensitivity)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &GeometricMechanism{Epsilon: epsilon, Sensitivity: sensitivity, Rng: rng}, nil
}

// Release perturbs a single integer count.
func (m *GeometricMechanism) Release(trueValue int64) int64 {
	alpha := math.Exp(-m.Epsilon / m.Sensitivity)
	// Sample two geometric variables and take the difference, which yields
	// the two-sided geometric distribution.
	g1 := geometric(m.Rng, alpha)
	g2 := geometric(m.Rng, alpha)
	return trueValue + int64(g1-g2)
}

// geometric samples the number of failures before the first success of a
// Bernoulli(1-alpha) process.
func geometric(rng *rand.Rand, alpha float64) int {
	if alpha <= 0 {
		return 0
	}
	// Inverse transform: floor(log(U) / log(alpha)).
	u := rng.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(math.Log(u) / math.Log(alpha)))
}

// Candidate is one option scored for the exponential mechanism.
type Candidate struct {
	// Value identifies the candidate to the caller.
	Value string
	// Utility is the candidate's utility score (higher is better).
	Utility float64
}

// Exponential selects one candidate with probability proportional to
// exp(epsilon * utility / (2 * sensitivity)), where sensitivity bounds how
// much any single record can change a utility score.
func Exponential(cands []Candidate, epsilon, sensitivity float64, rng *rand.Rand) (Candidate, error) {
	if len(cands) == 0 {
		return Candidate{}, ErrEmptyChoices
	}
	if epsilon <= 0 {
		return Candidate{}, fmt.Errorf("%w: %v", ErrEpsilon, epsilon)
	}
	if sensitivity <= 0 {
		return Candidate{}, fmt.Errorf("%w: %v", ErrSensitivity, sensitivity)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	// Subtract the max utility for numerical stability.
	maxU := cands[0].Utility
	for _, c := range cands {
		if c.Utility > maxU {
			maxU = c.Utility
		}
	}
	weights := make([]float64, len(cands))
	total := 0.0
	for i, c := range cands {
		weights[i] = math.Exp(epsilon * (c.Utility - maxU) / (2 * sensitivity))
		total += weights[i]
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return cands[i], nil
		}
	}
	return cands[len(cands)-1], nil
}

// Accountant tracks privacy-budget consumption under sequential composition,
// with support for marking groups of releases as parallel (disjoint data),
// which consume only the maximum epsilon of the group.
type Accountant struct {
	total float64
	spent float64
}

// NewAccountant creates an accountant with the given total budget.
func NewAccountant(total float64) (*Accountant, error) {
	if total <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrEpsilon, total)
	}
	return &Accountant{total: total}, nil
}

// Spend records a sequential release of the given epsilon.
func (a *Accountant) Spend(epsilon float64) error {
	if epsilon <= 0 {
		return fmt.Errorf("%w: %v", ErrEpsilon, epsilon)
	}
	if a.spent+epsilon > a.total+1e-12 {
		return fmt.Errorf("%w: spent %.4f + requested %.4f > total %.4f", ErrBudgetExhausted, a.spent, epsilon, a.total)
	}
	a.spent += epsilon
	return nil
}

// SpendParallel records a group of releases over disjoint partitions of the
// data; under parallel composition only the maximum epsilon is consumed.
func (a *Accountant) SpendParallel(epsilons ...float64) error {
	if len(epsilons) == 0 {
		return nil
	}
	max := 0.0
	for _, e := range epsilons {
		if e <= 0 {
			return fmt.Errorf("%w: %v", ErrEpsilon, e)
		}
		if e > max {
			max = e
		}
	}
	return a.Spend(max)
}

// Spent returns the consumed budget.
func (a *Accountant) Spent() float64 { return a.spent }

// Remaining returns the unconsumed budget.
func (a *Accountant) Remaining() float64 { return a.total - a.spent }

// RandomizedResponse implements generalized randomized response over a
// categorical domain: with probability p = e^ε / (e^ε + m - 1) the true value
// is reported, otherwise one of the other m-1 values is reported uniformly.
// It satisfies ε-local differential privacy.
type RandomizedResponse struct {
	Epsilon float64
	Domain  []string
	Rng     *rand.Rand
}

// NewRandomizedResponse validates parameters and builds the perturbation.
func NewRandomizedResponse(epsilon float64, domain []string, rng *rand.Rand) (*RandomizedResponse, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrEpsilon, epsilon)
	}
	if len(domain) < 2 {
		return nil, errors.New("dp: randomized response needs a domain of at least two values")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	d := append([]string(nil), domain...)
	sort.Strings(d)
	return &RandomizedResponse{Epsilon: epsilon, Domain: d, Rng: rng}, nil
}

// TruthProbability returns p, the probability of reporting the true value.
func (rr *RandomizedResponse) TruthProbability() float64 {
	m := float64(len(rr.Domain))
	e := math.Exp(rr.Epsilon)
	return e / (e + m - 1)
}

// Perturb reports a randomized value for the true value. Values outside the
// domain are treated as the first domain value.
func (rr *RandomizedResponse) Perturb(trueValue string) string {
	p := rr.TruthProbability()
	if rr.Rng.Float64() < p {
		return trueValue
	}
	// Uniform among the other values.
	for {
		v := rr.Domain[rr.Rng.Intn(len(rr.Domain))]
		if v != trueValue {
			return v
		}
	}
}

// PerturbAll perturbs a column of values.
func (rr *RandomizedResponse) PerturbAll(values []string) []string {
	out := make([]string, len(values))
	for i, v := range values {
		out[i] = rr.Perturb(v)
	}
	return out
}

// EstimateFrequencies converts observed (perturbed) counts into unbiased
// estimates of the true value frequencies: for each value v,
// n̂_v = (c_v - n*q) / (p - q) where q = (1-p)/(m-1).
func (rr *RandomizedResponse) EstimateFrequencies(perturbed []string) map[string]float64 {
	n := float64(len(perturbed))
	m := float64(len(rr.Domain))
	p := rr.TruthProbability()
	q := (1 - p) / (m - 1)
	counts := make(map[string]int)
	for _, v := range perturbed {
		counts[v]++
	}
	out := make(map[string]float64, len(rr.Domain))
	for _, v := range rr.Domain {
		out[v] = (float64(counts[v]) - n*q) / (p - q)
	}
	return out
}
