package dp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/synth"
)

func TestNewLaplaceValidation(t *testing.T) {
	if _, err := NewLaplace(0, 1, nil); !errors.Is(err, ErrEpsilon) {
		t.Errorf("epsilon=0 error = %v", err)
	}
	if _, err := NewLaplace(1, 0, nil); !errors.Is(err, ErrSensitivity) {
		t.Errorf("sensitivity=0 error = %v", err)
	}
	m, err := NewLaplace(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scale() != 0.5 {
		t.Errorf("Scale = %v", m.Scale())
	}
}

func TestLaplaceNoiseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, _ := NewLaplace(1, 1, rng)
	n := 20000
	sum, sumAbs := 0.0, 0.0
	for i := 0; i < n; i++ {
		noise := m.Release(0)
		sum += noise
		sumAbs += math.Abs(noise)
	}
	mean := sum / float64(n)
	meanAbs := sumAbs / float64(n)
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace noise mean %v not near 0", mean)
	}
	// E|X| = b = 1 for Laplace(0,1).
	if math.Abs(meanAbs-1) > 0.1 {
		t.Errorf("Laplace noise mean absolute %v not near 1", meanAbs)
	}
	// Larger epsilon means less noise.
	tight, _ := NewLaplace(10, 1, rand.New(rand.NewSource(2)))
	sumAbsTight := 0.0
	for i := 0; i < n; i++ {
		sumAbsTight += math.Abs(tight.Release(0))
	}
	if sumAbsTight/float64(n) >= meanAbs {
		t.Error("epsilon=10 noise not smaller than epsilon=1 noise")
	}
	if got := len(m.ReleaseAll([]float64{1, 2, 3})); got != 3 {
		t.Errorf("ReleaseAll len = %d", got)
	}
}

func TestGeometricMechanism(t *testing.T) {
	if _, err := NewGeometric(0, 1, nil); !errors.Is(err, ErrEpsilon) {
		t.Errorf("epsilon=0 error = %v", err)
	}
	if _, err := NewGeometric(1, -1, nil); !errors.Is(err, ErrSensitivity) {
		t.Errorf("bad sensitivity error = %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	m, _ := NewGeometric(1, 1, rng)
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(m.Release(100) - 100)
	}
	if math.Abs(sum/float64(n)) > 0.2 {
		t.Errorf("geometric noise mean %v not near 0", sum/float64(n))
	}
}

func TestExponentialMechanism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cands := []Candidate{
		{Value: "bad", Utility: 0},
		{Value: "good", Utility: 10},
	}
	good := 0
	for i := 0; i < 2000; i++ {
		c, err := Exponential(cands, 2, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value == "good" {
			good++
		}
	}
	if good < 1800 {
		t.Errorf("exponential mechanism picked the high-utility candidate only %d/2000 times", good)
	}
	if _, err := Exponential(nil, 1, 1, rng); !errors.Is(err, ErrEmptyChoices) {
		t.Errorf("empty candidates error = %v", err)
	}
	if _, err := Exponential(cands, 0, 1, rng); !errors.Is(err, ErrEpsilon) {
		t.Errorf("epsilon=0 error = %v", err)
	}
	if _, err := Exponential(cands, 1, 0, rng); !errors.Is(err, ErrSensitivity) {
		t.Errorf("sensitivity=0 error = %v", err)
	}
}

func TestAccountant(t *testing.T) {
	if _, err := NewAccountant(0); !errors.Is(err, ErrEpsilon) {
		t.Errorf("zero budget error = %v", err)
	}
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.SpendParallel(0.3, 0.2, 0.3); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Spent()-0.7) > 1e-12 {
		t.Errorf("Spent = %v", a.Spent())
	}
	if math.Abs(a.Remaining()-0.3) > 1e-12 {
		t.Errorf("Remaining = %v", a.Remaining())
	}
	if err := a.Spend(0.5); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("over-budget error = %v", err)
	}
	if err := a.Spend(-1); !errors.Is(err, ErrEpsilon) {
		t.Errorf("negative spend error = %v", err)
	}
	if err := a.SpendParallel(); err != nil {
		t.Errorf("empty parallel spend error = %v", err)
	}
	if err := a.SpendParallel(-1); !errors.Is(err, ErrEpsilon) {
		t.Errorf("negative parallel spend error = %v", err)
	}
}

func TestRandomizedResponse(t *testing.T) {
	if _, err := NewRandomizedResponse(0, []string{"a", "b"}, nil); !errors.Is(err, ErrEpsilon) {
		t.Errorf("epsilon=0 error = %v", err)
	}
	if _, err := NewRandomizedResponse(1, []string{"a"}, nil); err == nil {
		t.Error("single-value domain accepted")
	}
	rng := rand.New(rand.NewSource(5))
	rr, err := NewRandomizedResponse(1.0, []string{"yes", "no"}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := rr.TruthProbability()
	want := math.Exp(1) / (math.Exp(1) + 1)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("TruthProbability = %v, want %v", p, want)
	}

	// Build a true column with 30% "yes" and check the unbiased estimator.
	n := 20000
	truth := make([]string, n)
	for i := range truth {
		if i < n*3/10 {
			truth[i] = "yes"
		} else {
			truth[i] = "no"
		}
	}
	perturbed := rr.PerturbAll(truth)
	est := rr.EstimateFrequencies(perturbed)
	if math.Abs(est["yes"]-float64(n)*0.3) > float64(n)*0.03 {
		t.Errorf("estimated yes count %v, want about %v", est["yes"], float64(n)*0.3)
	}
	if math.Abs(est["yes"]+est["no"]-float64(n)) > float64(n)*0.05 {
		t.Errorf("estimates do not sum to n: %v", est)
	}
}

func TestRandomizedResponseLargerEpsilonMoreTruthful(t *testing.T) {
	f := func(raw uint8) bool {
		eps := 0.1 + float64(raw%50)/10
		rrLow, err := NewRandomizedResponse(eps, []string{"a", "b", "c"}, nil)
		if err != nil {
			return false
		}
		rrHigh, err := NewRandomizedResponse(eps+1, []string{"a", "b", "c"}, nil)
		if err != nil {
			return false
		}
		return rrHigh.TruthProbability() > rrLow.TruthProbability()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReleaseHistogram(t *testing.T) {
	tbl := synth.Hospital(2000, 1)
	rng := rand.New(rand.NewSource(6))
	h, err := ReleaseHistogram(tbl, HistogramConfig{
		Attributes:  []string{"sex"},
		Epsilon:     2.0,
		PostProcess: true,
		Rng:         rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	trueFreq, _ := tbl.Frequencies("sex")
	for v, n := range trueFreq {
		noisy := h.Count(v)
		if math.Abs(noisy-float64(n)) > 20 {
			t.Errorf("noisy count for %q = %v, true %d: error too large for eps=2", v, noisy, n)
		}
		if noisy < 0 {
			t.Errorf("post-processed count negative: %v", noisy)
		}
	}
	if math.Abs(h.Total()-float64(tbl.Len())) > 50 {
		t.Errorf("noisy total %v far from %d", h.Total(), tbl.Len())
	}
	if _, err := ReleaseHistogram(tbl, HistogramConfig{Attributes: nil, Epsilon: 1}); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := ReleaseHistogram(tbl, HistogramConfig{Attributes: []string{"sex"}, Epsilon: 0}); err == nil {
		t.Error("epsilon=0 accepted")
	}
	if _, err := ReleaseHistogram(tbl, HistogramConfig{Attributes: []string{"missing"}, Epsilon: 1}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestHistogramErrorShrinksWithEpsilon(t *testing.T) {
	tbl := synth.Hospital(3000, 2)
	trueFreq, _ := tbl.Frequencies("diagnosis")
	avgErr := func(eps float64, seed int64) float64 {
		h, err := ReleaseHistogram(tbl, HistogramConfig{
			Attributes: []string{"diagnosis"},
			Epsilon:    eps,
			Rng:        rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			t.Fatal(err)
		}
		total, n := 0.0, 0
		for v, c := range trueFreq {
			total += math.Abs(h.Count(v) - float64(c))
			n++
		}
		return total / float64(n)
	}
	// Average over several seeds to keep the comparison stable.
	lowEps, highEps := 0.0, 0.0
	for s := int64(0); s < 10; s++ {
		lowEps += avgErr(0.05, s)
		highEps += avgErr(2.0, s)
	}
	if highEps >= lowEps {
		t.Errorf("average error with eps=2 (%v) not below eps=0.05 (%v)", highEps/10, lowEps/10)
	}
}

func TestSynthesize(t *testing.T) {
	tbl := synth.Hospital(3000, 3)
	rng := rand.New(rand.NewSource(7))
	syn, release, err := Synthesize(tbl, SyntheticConfig{
		Attributes: []string{"sex", "diagnosis"},
		Root:       "sex",
		Epsilon:    4.0,
		Rng:        rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Len() != tbl.Len() {
		t.Errorf("synthetic rows = %d, want %d", syn.Len(), tbl.Len())
	}
	if release.Epsilon != 4.0 || release.Root != "sex" {
		t.Errorf("release metadata wrong: %+v", release)
	}
	// The synthetic marginal of sex should be within a few percentage points
	// of the original at this generous epsilon.
	origFreq, _ := tbl.Frequencies("sex")
	synFreq, _ := syn.Frequencies("sex")
	for v, n := range origFreq {
		origP := float64(n) / float64(tbl.Len())
		synP := float64(synFreq[v]) / float64(syn.Len())
		if math.Abs(origP-synP) > 0.08 {
			t.Errorf("marginal of %q drifted: %v vs %v", v, origP, synP)
		}
	}
	// Schema of the synthetic table contains only the requested columns.
	if syn.Schema().Len() != 2 {
		t.Errorf("synthetic schema has %d columns", syn.Schema().Len())
	}
}

func TestSynthesizeErrors(t *testing.T) {
	tbl := synth.Hospital(100, 4)
	if _, _, err := Synthesize(tbl, SyntheticConfig{Epsilon: 0}); err == nil {
		t.Error("epsilon=0 accepted")
	}
	if _, _, err := Synthesize(tbl, SyntheticConfig{Epsilon: 1, Attributes: []string{"sex"}, Root: "missing"}); err == nil {
		t.Error("root not among attributes accepted")
	}
	if _, _, err := Synthesize(tbl, SyntheticConfig{Epsilon: 1, Attributes: []string{"missing"}}); err == nil {
		t.Error("unknown attribute accepted")
	}
	// Custom row count.
	syn, _, err := Synthesize(tbl, SyntheticConfig{Epsilon: 2, Attributes: []string{"sex", "diagnosis"}, Rows: 37, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Len() != 37 {
		t.Errorf("synthetic rows = %d, want 37", syn.Len())
	}
}

func TestHistogramDistributionFiltering(t *testing.T) {
	h := &Histogram{
		Attributes: []string{"a", "b"},
		Counts: map[string]float64{
			dataset.Signature([]string{"x", "p"}): 5,
			dataset.Signature([]string{"x", "q"}): 3,
			dataset.Signature([]string{"y", "p"}): 2,
			dataset.Signature([]string{"y", "q"}): -1, // clamped cells are skipped
		},
	}
	values, weights := histogramDistribution(h, func(sig []string) bool { return sig[0] == "x" })
	if len(values) != 2 {
		t.Fatalf("values = %v", values)
	}
	total := weights[0] + weights[1]
	if total != 8 {
		t.Errorf("weights sum = %v", total)
	}
	all, _ := histogramDistribution(h, nil)
	if len(all) != 2 { // p and q aggregated over both roots
		t.Errorf("unfiltered values = %v", all)
	}
}
