package dp

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/ppdp/ppdp/internal/dataset"
)

// Histogram is a noisy frequency table over the cross product of one or more
// categorical (or pre-discretized) attributes.
type Histogram struct {
	// Attributes are the histogram dimensions, in key order.
	Attributes []string
	// Counts maps the signature of the attribute values (dataset.Signature)
	// to the noisy count. Negative noisy counts are clamped to zero when
	// PostProcess is true at release time.
	Counts map[string]float64
	// Epsilon is the budget the release consumed.
	Epsilon float64
}

// Count returns the noisy count of one cell (0 for cells never observed and
// never materialized).
func (h *Histogram) Count(values ...string) float64 {
	return h.Counts[dataset.Signature(values)]
}

// Total returns the sum of all noisy counts.
func (h *Histogram) Total() float64 {
	t := 0.0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// HistogramConfig controls a DP histogram release.
type HistogramConfig struct {
	// Attributes are the histogram dimensions.
	Attributes []string
	// Epsilon is the privacy budget for the whole histogram (cells partition
	// the data, so each cell is perturbed with the full epsilon under
	// parallel composition).
	Epsilon float64
	// PostProcess clamps negative counts to zero (a standard post-processing
	// step that cannot hurt privacy).
	PostProcess bool
	// Rng is the noise source.
	Rng *rand.Rand
}

// ReleaseHistogram publishes a differentially private histogram of the table
// over the configured attributes using the Laplace mechanism with
// sensitivity 1.
func ReleaseHistogram(t *dataset.Table, cfg HistogramConfig) (*Histogram, error) {
	if len(cfg.Attributes) == 0 {
		return nil, errors.New("dp: histogram needs at least one attribute")
	}
	mech, err := NewLaplace(cfg.Epsilon, 1, cfg.Rng)
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(cfg.Attributes))
	for i, a := range cfg.Attributes {
		c, err := t.Schema().Index(a)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	trueCounts := make(map[string]int)
	for r := 0; r < t.Len(); r++ {
		row, err := t.Row(r)
		if err != nil {
			return nil, err
		}
		key := make([]string, len(cols))
		for i, c := range cols {
			key[i] = row[c]
		}
		trueCounts[dataset.Signature(key)]++
	}
	noisy := make(map[string]float64, len(trueCounts))
	for sig, n := range trueCounts {
		v := mech.Release(float64(n))
		if cfg.PostProcess && v < 0 {
			v = 0
		}
		noisy[sig] = v
	}
	return &Histogram{
		Attributes: append([]string(nil), cfg.Attributes...),
		Counts:     noisy,
		Epsilon:    cfg.Epsilon,
	}, nil
}

// ContingencyRelease holds a set of noisy pairwise contingency tables used by
// the synthetic-data generator: the marginal of a root attribute and one
// table per (root, other) attribute pair.
type ContingencyRelease struct {
	// Root is the attribute whose marginal anchors the chain.
	Root string
	// RootMarginal is the noisy marginal of Root.
	RootMarginal *Histogram
	// Pairs maps each non-root attribute to the noisy (Root, attribute)
	// contingency table.
	Pairs map[string]*Histogram
	// Epsilon is the total sequential budget consumed.
	Epsilon float64
}

// SyntheticConfig controls marginal-based DP synthetic data generation.
type SyntheticConfig struct {
	// Attributes are the columns to synthesize; when empty all columns are
	// used.
	Attributes []string
	// Root is the attribute anchoring the dependency chain; when empty the
	// first attribute is used.
	Root string
	// Epsilon is the total privacy budget, split evenly between the root
	// marginal and the pairwise tables (sequential composition).
	Epsilon float64
	// Rows is the number of synthetic rows to sample; when 0 the original
	// row count is used.
	Rows int
	// Rng drives both the noise and the sampling.
	Rng *rand.Rand
}

// Synthesize releases a differentially private synthetic table: it measures a
// noisy marginal of the root attribute and noisy pairwise contingency tables
// (root, other) for every other attribute, then samples rows attribute by
// attribute from those distributions. Because the sampled rows are a function
// only of the noisy measurements, the release inherits their differential
// privacy guarantee.
func Synthesize(t *dataset.Table, cfg SyntheticConfig) (*dataset.Table, *ContingencyRelease, error) {
	attrs := cfg.Attributes
	if len(attrs) == 0 {
		attrs = t.Schema().Names()
	}
	if len(attrs) == 0 {
		return nil, nil, errors.New("dp: nothing to synthesize")
	}
	root := cfg.Root
	if root == "" {
		root = attrs[0]
	}
	if cfg.Epsilon <= 0 {
		return nil, nil, fmt.Errorf("%w: %v", ErrEpsilon, cfg.Epsilon)
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	rootFound := false
	for _, a := range attrs {
		if a == root {
			rootFound = true
		}
	}
	if !rootFound {
		return nil, nil, fmt.Errorf("dp: root attribute %q not among synthesized attributes", root)
	}

	// Budget split: one share for the root marginal plus one per pair.
	shares := 1 + (len(attrs) - 1)
	perMeasure := cfg.Epsilon / float64(shares)

	rootMarginal, err := ReleaseHistogram(t, HistogramConfig{
		Attributes:  []string{root},
		Epsilon:     perMeasure,
		PostProcess: true,
		Rng:         rng,
	})
	if err != nil {
		return nil, nil, err
	}
	pairs := make(map[string]*Histogram)
	for _, a := range attrs {
		if a == root {
			continue
		}
		h, err := ReleaseHistogram(t, HistogramConfig{
			Attributes:  []string{root, a},
			Epsilon:     perMeasure,
			PostProcess: true,
			Rng:         rng,
		})
		if err != nil {
			return nil, nil, err
		}
		pairs[a] = h
	}
	release := &ContingencyRelease{
		Root:         root,
		RootMarginal: rootMarginal,
		Pairs:        pairs,
		Epsilon:      cfg.Epsilon,
	}

	// Build the output schema in the requested attribute order.
	outAttrs := make([]dataset.Attribute, 0, len(attrs))
	for _, a := range attrs {
		attr, err := t.Schema().ByName(a)
		if err != nil {
			return nil, nil, err
		}
		outAttrs = append(outAttrs, attr)
	}
	schema, err := dataset.NewSchema(outAttrs...)
	if err != nil {
		return nil, nil, err
	}
	out := dataset.NewTable(schema)

	rows := cfg.Rows
	if rows <= 0 {
		rows = t.Len()
	}
	rootValues, rootWeights := histogramDistribution(rootMarginal, nil)
	if len(rootValues) == 0 {
		return nil, nil, errors.New("dp: noisy root marginal is empty")
	}
	for i := 0; i < rows; i++ {
		rootVal := sampleWeighted(rng, rootValues, rootWeights)
		row := make(dataset.Row, len(attrs))
		for j, a := range attrs {
			if a == root {
				row[j] = rootVal
				continue
			}
			values, weights := histogramDistribution(pairs[a], func(sig []string) bool { return sig[0] == rootVal })
			if len(values) == 0 {
				// The noisy slice for this root value is empty; fall back to
				// the attribute's unconditional noisy distribution.
				values, weights = histogramDistribution(pairs[a], nil)
			}
			if len(values) == 0 {
				row[j] = dataset.SuppressedValue
				continue
			}
			row[j] = sampleWeighted(rng, values, weights)
		}
		if err := out.Append(row); err != nil {
			return nil, nil, err
		}
	}
	return out, release, nil
}

// histogramDistribution extracts (values, weights) of the *last* attribute of
// the histogram, optionally filtering cells by a predicate on the full
// signature. Weights are the noisy counts clamped at zero.
func histogramDistribution(h *Histogram, keep func(sig []string) bool) ([]string, []float64) {
	agg := make(map[string]float64)
	for sig, c := range h.Counts {
		if c <= 0 {
			continue
		}
		parts := dataset.SplitSignature(sig)
		if keep != nil && !keep(parts) {
			continue
		}
		agg[parts[len(parts)-1]] += c
	}
	values := make([]string, 0, len(agg))
	for v := range agg {
		values = append(values, v)
	}
	sort.Strings(values)
	weights := make([]float64, len(values))
	for i, v := range values {
		weights[i] = agg[v]
	}
	return values, weights
}

func sampleWeighted(rng *rand.Rand, values []string, weights []float64) string {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return values[rng.Intn(len(values))]
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return values[i]
		}
	}
	return values[len(values)-1]
}
