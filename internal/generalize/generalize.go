// Package generalize applies recodings to tables: full-domain generalization
// driven by a lattice node, record suppression, cell suppression, and
// multidimensional (per-group) recoding used by partitioning algorithms such
// as Mondrian and k-member clustering.
package generalize

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/lattice"
)

// ErrNodeArity is returned when a lattice node does not have one level per
// quasi-identifier attribute.
var ErrNodeArity = errors.New("generalize: node arity does not match attribute count")

// FullDomain applies the full-domain recoding described by node: the i-th
// quasi-identifier attribute in attrs is generalized to level node[i] using
// its hierarchy. All other columns are left untouched. The input table is not
// modified.
func FullDomain(t *dataset.Table, attrs []string, hs *hierarchy.Set, node lattice.Node) (*dataset.Table, error) {
	if len(attrs) != len(node) {
		return nil, fmt.Errorf("%w: %d attributes, %d levels", ErrNodeArity, len(attrs), len(node))
	}
	out := t.Clone()
	for i, attr := range attrs {
		level := node[i]
		if level == 0 {
			continue
		}
		h, err := hs.Get(attr)
		if err != nil {
			return nil, err
		}
		col, err := t.Schema().Index(attr)
		if err != nil {
			return nil, err
		}
		// Cache per distinct value: generalization is value-deterministic.
		cache := make(map[string]string)
		for r := 0; r < out.Len(); r++ {
			v, err := out.Value(r, col)
			if err != nil {
				return nil, err
			}
			g, ok := cache[v]
			if !ok {
				g, err = h.Generalize(v, level)
				if err != nil {
					return nil, fmt.Errorf("generalize: row %d attribute %q: %w", r, attr, err)
				}
				cache[v] = g
			}
			if err := out.SetValue(r, col, g); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SuppressRows returns a copy of the table with the given row indices
// removed. The indices of all other rows shift accordingly.
func SuppressRows(t *dataset.Table, drop []int) (*dataset.Table, error) {
	dropped := make(map[int]bool, len(drop))
	for _, i := range drop {
		if i < 0 || i >= t.Len() {
			return nil, fmt.Errorf("generalize: suppress row %d out of range", i)
		}
		dropped[i] = true
	}
	keep := make([]int, 0, t.Len()-len(dropped))
	for i := 0; i < t.Len(); i++ {
		if !dropped[i] {
			keep = append(keep, i)
		}
	}
	return t.Select(keep)
}

// SuppressCells overwrites the named columns of the given rows with the
// suppression marker "*". It modifies a copy and returns it.
func SuppressCells(t *dataset.Table, rows []int, attrs []string) (*dataset.Table, error) {
	out := t.Clone()
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		c, err := t.Schema().Index(a)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	for _, r := range rows {
		for _, c := range cols {
			if err := out.SetValue(r, c, dataset.SuppressedValue); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// GroupSummary describes the recoded quasi-identifier values shared by one
// group of rows under multidimensional recoding.
type GroupSummary struct {
	// Rows are the member row indices in the original table.
	Rows []int
	// Values holds one recoded value per quasi-identifier attribute, in the
	// order the attrs argument was given.
	Values []string
}

// RecodeGroups performs multidimensional (per-group) recoding: every group of
// row indices becomes one equivalence class whose quasi-identifier values are
// replaced by a summary of the group's values — a "[lo-hi)" interval for
// numeric attributes (or the single value when all members agree) and the
// lowest common generalization for categorical attributes (falling back to a
// brace-enclosed value set when no hierarchy is available).
//
// It returns the recoded table together with the per-group summaries.
func RecodeGroups(t *dataset.Table, attrs []string, hs *hierarchy.Set, groups [][]int) (*dataset.Table, []GroupSummary, error) {
	schema := t.Schema()
	cols := make([]int, len(attrs))
	numeric := make([]bool, len(attrs))
	for i, a := range attrs {
		c, err := schema.Index(a)
		if err != nil {
			return nil, nil, err
		}
		cols[i] = c
		attr, _ := schema.ByName(a)
		numeric[i] = attr.Type == dataset.Numeric
	}

	out := t.Clone()
	summaries := make([]GroupSummary, 0, len(groups))
	seen := make([]bool, t.Len())
	for gi, g := range groups {
		if len(g) == 0 {
			return nil, nil, fmt.Errorf("generalize: group %d is empty", gi)
		}
		values := make([]string, len(attrs))
		for ai := range attrs {
			vals := make([]string, 0, len(g))
			for _, r := range g {
				if r < 0 || r >= t.Len() {
					return nil, nil, fmt.Errorf("generalize: group %d references row %d out of range", gi, r)
				}
				v, err := t.Value(r, cols[ai])
				if err != nil {
					return nil, nil, err
				}
				vals = append(vals, v)
			}
			summary, err := summarize(attrs[ai], vals, numeric[ai], hs)
			if err != nil {
				return nil, nil, err
			}
			values[ai] = summary
		}
		for _, r := range g {
			if seen[r] {
				return nil, nil, fmt.Errorf("generalize: row %d appears in more than one group", r)
			}
			seen[r] = true
			for ai := range attrs {
				if err := out.SetValue(r, cols[ai], values[ai]); err != nil {
					return nil, nil, err
				}
			}
		}
		summaries = append(summaries, GroupSummary{Rows: append([]int(nil), g...), Values: values})
	}
	return out, summaries, nil
}

// summarize recodes one attribute's group values into a single released value.
func summarize(attr string, vals []string, isNumeric bool, hs *hierarchy.Set) (string, error) {
	if allEqual(vals) {
		return vals[0], nil
	}
	if isNumeric {
		lo, hi, ok := numericSpan(vals)
		if ok {
			// Intervals are half-open; widen the upper bound to include the max.
			return hierarchy.FormatInterval(lo, hi+1, isIntegral(vals)), nil
		}
	}
	if hs != nil && hs.Has(attr) {
		h, err := hs.Get(attr)
		if err != nil {
			return "", err
		}
		if g, ok := lowestCommonGeneralization(h, vals); ok {
			return g, nil
		}
	}
	return valueSet(vals), nil
}

func allEqual(vals []string) bool {
	for _, v := range vals[1:] {
		if v != vals[0] {
			return false
		}
	}
	return true
}

func numericSpan(vals []string) (lo, hi float64, ok bool) {
	for i, v := range vals {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return 0, 0, false
		}
		if i == 0 || f < lo {
			lo = f
		}
		if i == 0 || f > hi {
			hi = f
		}
	}
	return lo, hi, true
}

func isIntegral(vals []string) bool {
	for _, v := range vals {
		if strings.ContainsAny(v, ".eE") {
			return false
		}
	}
	return true
}

// lowestCommonGeneralization finds the smallest hierarchy level at which all
// values share a generalization, returning that shared value.
func lowestCommonGeneralization(h hierarchy.Hierarchy, vals []string) (string, bool) {
	for level := 1; level <= h.MaxLevel(); level++ {
		g0, err := h.Generalize(vals[0], level)
		if err != nil {
			return "", false
		}
		same := true
		for _, v := range vals[1:] {
			g, err := h.Generalize(v, level)
			if err != nil {
				return "", false
			}
			if g != g0 {
				same = false
				break
			}
		}
		if same {
			return g0, true
		}
	}
	return "", false
}

// valueSet renders distinct values as a sorted brace-enclosed set.
func valueSet(vals []string) string {
	set := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	distinct := make([]string, 0, len(set))
	for v := range set {
		distinct = append(distinct, v)
	}
	sort.Strings(distinct)
	return "{" + strings.Join(distinct, ",") + "}"
}
