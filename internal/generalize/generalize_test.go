package generalize

import (
	"errors"
	"strings"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/lattice"
)

func testTable(t *testing.T) (*dataset.Table, *hierarchy.Set) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
		dataset.Attribute{Name: "sex", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "diag", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
	rows := []dataset.Row{
		{"23", "male", "flu"},
		{"27", "female", "flu"},
		{"31", "male", "hiv"},
		{"38", "female", "cancer"},
		{"45", "male", "flu"},
	}
	tbl, err := dataset.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	hs := hierarchy.MustSet(
		hierarchy.MustInterval("age", 0, 99, []float64{10, 25}),
		hierarchy.MustCategory("sex", map[string][]string{"male": {"*"}, "female": {"*"}}),
	)
	return tbl, hs
}

func TestFullDomain(t *testing.T) {
	tbl, hs := testTable(t)
	out, err := FullDomain(tbl, []string{"age", "sex"}, hs, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := out.Value(0, 0)
	if v != "[20-30)" {
		t.Errorf("age recode = %q", v)
	}
	v, _ = out.Value(0, 1)
	if v != "*" {
		t.Errorf("sex recode = %q", v)
	}
	// Sensitive column untouched.
	v, _ = out.Value(0, 2)
	if v != "flu" {
		t.Errorf("sensitive changed: %q", v)
	}
	// Original table untouched.
	v, _ = tbl.Value(0, 0)
	if v != "23" {
		t.Errorf("original mutated: %q", v)
	}
	// Level 0 keeps values.
	same, err := FullDomain(tbl, []string{"age", "sex"}, hs, lattice.Node{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	v, _ = same.Value(2, 0)
	if v != "31" {
		t.Errorf("level 0 changed value: %q", v)
	}
}

func TestFullDomainErrors(t *testing.T) {
	tbl, hs := testTable(t)
	if _, err := FullDomain(tbl, []string{"age"}, hs, lattice.Node{1, 1}); !errors.Is(err, ErrNodeArity) {
		t.Errorf("arity error = %v", err)
	}
	if _, err := FullDomain(tbl, []string{"diag"}, hs, lattice.Node{1}); err == nil {
		t.Error("missing hierarchy accepted")
	}
	if _, err := FullDomain(tbl, []string{"nope"}, hs, lattice.Node{1}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := FullDomain(tbl, []string{"age"}, hs, lattice.Node{99}); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestSuppressRows(t *testing.T) {
	tbl, _ := testTable(t)
	out, err := SuppressRows(tbl, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("len = %d", out.Len())
	}
	v, _ := out.Value(1, 0)
	if v != "31" {
		t.Errorf("row shift wrong: %q", v)
	}
	if _, err := SuppressRows(tbl, []int{99}); err == nil {
		t.Error("out of range row accepted")
	}
	none, err := SuppressRows(tbl, nil)
	if err != nil || none.Len() != tbl.Len() {
		t.Errorf("no-op suppression wrong: %v %d", err, none.Len())
	}
}

func TestSuppressCells(t *testing.T) {
	tbl, _ := testTable(t)
	out, err := SuppressCells(tbl, []int{0, 2}, []string{"age"})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := out.Value(0, 0)
	if v != dataset.SuppressedValue {
		t.Errorf("cell not suppressed: %q", v)
	}
	v, _ = out.Value(1, 0)
	if v != "27" {
		t.Errorf("untouched cell changed: %q", v)
	}
	v, _ = tbl.Value(0, 0)
	if v != "23" {
		t.Errorf("original mutated: %q", v)
	}
	if _, err := SuppressCells(tbl, []int{0}, []string{"nope"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := SuppressCells(tbl, []int{99}, []string{"age"}); err == nil {
		t.Error("out of range row accepted")
	}
}

func TestRecodeGroups(t *testing.T) {
	tbl, hs := testTable(t)
	groups := [][]int{{0, 1, 2}, {3, 4}}
	out, summaries, err := RecodeGroups(tbl, []string{"age", "sex"}, hs, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 2 {
		t.Fatalf("summaries = %d", len(summaries))
	}
	// Group 0 ages 23..31 -> [23-32); sexes differ -> lowest common generalization "*".
	v, _ := out.Value(0, 0)
	if v != "[23-32)" {
		t.Errorf("group0 age = %q", v)
	}
	v, _ = out.Value(1, 1)
	if v != "*" {
		t.Errorf("group0 sex = %q", v)
	}
	// Group 1 ages 38..45.
	v, _ = out.Value(3, 0)
	if v != "[38-46)" {
		t.Errorf("group1 age = %q", v)
	}
	// Equivalence classes over recoded QI should match the groups.
	classes, err := out.GroupBy("age", "sex")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Errorf("recoded classes = %d", len(classes))
	}
	if summaries[0].Values[0] != "[23-32)" {
		t.Errorf("summary values = %v", summaries[0].Values)
	}
}

func TestRecodeGroupsSingleValueAndSet(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "city", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
	)
	tbl, _ := dataset.FromRows(schema, []dataset.Row{{"atlanta"}, {"boston"}, {"atlanta"}})
	// No hierarchy: distinct values fall back to a set.
	out, _, err := RecodeGroups(tbl, []string{"city"}, nil, [][]int{{0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := out.Value(0, 0)
	if v != "{atlanta,boston}" {
		t.Errorf("set recode = %q", v)
	}
	v, _ = out.Value(2, 0)
	if v != "atlanta" {
		t.Errorf("singleton recode = %q", v)
	}
}

func TestRecodeGroupsErrors(t *testing.T) {
	tbl, hs := testTable(t)
	if _, _, err := RecodeGroups(tbl, []string{"nope"}, hs, [][]int{{0}}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, _, err := RecodeGroups(tbl, []string{"age"}, hs, [][]int{{}}); err == nil {
		t.Error("empty group accepted")
	}
	if _, _, err := RecodeGroups(tbl, []string{"age"}, hs, [][]int{{99}}); err == nil {
		t.Error("out of range row accepted")
	}
	if _, _, err := RecodeGroups(tbl, []string{"age"}, hs, [][]int{{0, 1}, {1, 2}}); err == nil {
		t.Error("overlapping groups accepted")
	}
}

func TestValueSetDeterministic(t *testing.T) {
	a := valueSet([]string{"b", "a", "b", "c"})
	if a != "{a,b,c}" {
		t.Errorf("valueSet = %q", a)
	}
	if !strings.HasPrefix(a, "{") || !strings.HasSuffix(a, "}") {
		t.Errorf("valueSet format = %q", a)
	}
}

func TestLowestCommonGeneralization(t *testing.T) {
	h := hierarchy.MustCategory("edu", map[string][]string{
		"bachelors": {"higher", "any"},
		"masters":   {"higher", "any"},
		"hs-grad":   {"secondary", "any"},
	})
	g, ok := lowestCommonGeneralization(h, []string{"bachelors", "masters"})
	if !ok || g != "higher" {
		t.Errorf("lcg = %q, %v", g, ok)
	}
	g, ok = lowestCommonGeneralization(h, []string{"bachelors", "hs-grad"})
	if !ok || g != "any" {
		t.Errorf("lcg = %q, %v", g, ok)
	}
	if _, ok := lowestCommonGeneralization(h, []string{"bachelors", "unknown"}); ok {
		t.Error("lcg with unknown value should fail")
	}
}
