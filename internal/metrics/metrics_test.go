package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/synth"
)

func smallRelease(t *testing.T) (*dataset.Table, *dataset.Table) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
		dataset.Attribute{Name: "sex", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "diag", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
	orig, err := dataset.FromRows(schema, []dataset.Row{
		{"20", "male", "flu"},
		{"25", "male", "flu"},
		{"30", "female", "hiv"},
		{"35", "female", "cancer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	released, err := dataset.FromRows(schema, []dataset.Row{
		{"[20-30)", "male", "flu"},
		{"[20-30)", "male", "flu"},
		{"[30-40)", "female", "hiv"},
		{"[30-40)", "female", "cancer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return orig, released
}

func TestDiscernibility(t *testing.T) {
	_, released := smallRelease(t)
	dm, err := Discernibility(released, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two classes of size 2: 4 + 4 = 8.
	if dm != 8 {
		t.Errorf("DM = %v, want 8", dm)
	}
	// With one suppressed record (original size 5) the penalty adds 5.
	dm, err = Discernibility(released, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dm != 13 {
		t.Errorf("DM with suppression = %v, want 13", dm)
	}
	plain := dataset.MustSchema(dataset.Attribute{Name: "x", Kind: dataset.Insensitive})
	pt, _ := dataset.FromRows(plain, []dataset.Row{{"1"}})
	if _, err := Discernibility(pt, 1); !errors.Is(err, ErrNoQuasiIdentifiers) {
		t.Errorf("no QI error = %v", err)
	}
}

func TestNormalizedAverageClassSize(t *testing.T) {
	_, released := smallRelease(t)
	cavg, err := NormalizedAverageClassSize(released, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 4 rows / 2 classes / k=2 = 1.
	if cavg != 1 {
		t.Errorf("C_avg = %v, want 1", cavg)
	}
	if _, err := NormalizedAverageClassSize(released, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestGeneralizationPrecision(t *testing.T) {
	p, err := GeneralizationPrecision([]int{1, 2}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-12 {
		t.Errorf("precision = %v, want 0.5", p)
	}
	p, err = GeneralizationPrecision([]int{0, 0}, []int{2, 4})
	if err != nil || p != 1 {
		t.Errorf("no generalization precision = %v, %v", p, err)
	}
	if _, err := GeneralizationPrecision([]int{1}, []int{1, 2}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := GeneralizationPrecision([]int{5}, []int{2}); err == nil {
		t.Error("out of range level accepted")
	}
	// Attributes with zero max level are skipped, not divided by zero.
	if _, err := GeneralizationPrecision([]int{0, 1}, []int{0, 2}); err != nil {
		t.Errorf("zero max level: %v", err)
	}
}

func TestNCP(t *testing.T) {
	orig, released := smallRelease(t)
	hs := hierarchy.MustSet(
		hierarchy.MustInterval("age", 0, 99, []float64{10}),
		hierarchy.MustCategory("sex", map[string][]string{"male": {"*"}, "female": {"*"}}),
	)
	ncp, err := NCP(orig, released, hs)
	if err != nil {
		t.Fatal(err)
	}
	// Age cells: width 10 over domain 15 => 10/15 each. Sex cells exact => 0.
	want := (10.0 / 15.0) / 2.0
	if math.Abs(ncp-want) > 1e-9 {
		t.Errorf("NCP = %v, want %v", ncp, want)
	}
	// The original table has zero NCP.
	zero, err := NCP(orig, orig, hs)
	if err != nil || zero != 0 {
		t.Errorf("NCP(original) = %v, %v", zero, err)
	}
	// A fully suppressed release has NCP 1.
	full := released.Clone()
	for r := 0; r < full.Len(); r++ {
		_ = full.SetValue(r, 0, dataset.SuppressedValue)
		_ = full.SetValue(r, 1, dataset.SuppressedValue)
	}
	one, err := NCP(orig, full, hs)
	if err != nil || one != 1 {
		t.Errorf("NCP(suppressed) = %v, %v", one, err)
	}
}

func TestNCPOrdersAlgorithms(t *testing.T) {
	// Mondrian at k=5 must lose less information than Mondrian at k=50.
	tbl := synth.Hospital(1200, 1)
	hs := synth.HospitalHierarchies()
	res5, err := mondrian.Anonymize(tbl, mondrian.Config{K: 5, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	res50, err := mondrian.Anonymize(tbl, mondrian.Config{K: 50, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	n5, err := NCP(tbl, res5.Table, hs)
	if err != nil {
		t.Fatal(err)
	}
	n50, err := NCP(tbl, res50.Table, hs)
	if err != nil {
		t.Fatal(err)
	}
	if n5 >= n50 {
		t.Errorf("NCP(k=5) = %v not below NCP(k=50) = %v", n5, n50)
	}
}

func TestAttributeDivergence(t *testing.T) {
	orig, released := smallRelease(t)
	// Identical sensitive columns: divergence near zero.
	d, err := AttributeDivergence(orig, released, "diag")
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Errorf("divergence of identical columns = %v", d)
	}
	// Distorted column: divergence strictly positive.
	distorted := released.Clone()
	for r := 0; r < distorted.Len(); r++ {
		_ = distorted.SetValue(r, 2, "flu")
	}
	d2, err := AttributeDivergence(orig, distorted, "diag")
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d {
		t.Errorf("distorted divergence %v not above identical %v", d2, d)
	}
	if _, err := AttributeDivergence(orig, released, "missing"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestExactAndEstimateCount(t *testing.T) {
	orig, released := smallRelease(t)
	q := CountQuery{Conditions: []Condition{
		{Attribute: "age", IsRange: true, Lo: 20, Hi: 30},
		{Attribute: "sex", Equals: "male"},
	}}
	truth, err := ExactCount(orig, q)
	if err != nil {
		t.Fatal(err)
	}
	if truth != 2 {
		t.Errorf("ExactCount = %d, want 2", truth)
	}
	hs := hierarchy.MustSet(
		hierarchy.MustInterval("age", 0, 99, []float64{10}),
		hierarchy.MustCategory("sex", map[string][]string{"male": {"*"}, "female": {"*"}}),
	)
	est, err := EstimateCount(released, q, hs)
	if err != nil {
		t.Fatal(err)
	}
	// Both male records lie fully inside [20,30): estimate 2.
	if math.Abs(est-2) > 1e-9 {
		t.Errorf("EstimateCount = %v, want 2", est)
	}
	// Partial overlap: [25,35) covers half of [20-30) and half of [30-40).
	q2 := CountQuery{Conditions: []Condition{{Attribute: "age", IsRange: true, Lo: 25, Hi: 35}}}
	est2, err := EstimateCount(released, q2, hs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est2-2) > 1e-9 {
		t.Errorf("partial overlap estimate = %v, want 2", est2)
	}
	if _, err := ExactCount(orig, CountQuery{Conditions: []Condition{{Attribute: "missing", Equals: "x"}}}); err == nil {
		t.Error("unknown attribute accepted by ExactCount")
	}
	if _, err := EstimateCount(released, CountQuery{Conditions: []Condition{{Attribute: "missing", Equals: "x"}}}, hs); err == nil {
		t.Error("unknown attribute accepted by EstimateCount")
	}
}

func TestMatchProbabilityCategorical(t *testing.T) {
	edu := hierarchy.MustCategory("edu", map[string][]string{
		"bachelors": {"higher", "*"},
		"masters":   {"higher", "*"},
		"hs-grad":   {"secondary", "*"},
	})
	// Released value "higher" covers 2 leaves; query for bachelors gets 1/2.
	p := matchProbability("higher", Condition{Attribute: "edu", Equals: "bachelors"}, edu)
	if math.Abs(p-0.5) > 1e-12 {
		t.Errorf("matchProbability = %v, want 0.5", p)
	}
	if p := matchProbability("secondary", Condition{Attribute: "edu", Equals: "bachelors"}, edu); p != 0 {
		t.Errorf("non-covering generalization probability = %v", p)
	}
	if p := matchProbability("*", Condition{Attribute: "edu", Equals: "bachelors"}, edu); math.Abs(p-1.0/3.0) > 1e-12 {
		t.Errorf("suppressed probability = %v, want 1/3", p)
	}
	if p := matchProbability("{a,b}", Condition{Attribute: "edu", Equals: "a"}, nil); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("set probability = %v, want 0.5", p)
	}
	if p := matchProbability("bachelors", Condition{Attribute: "edu", Equals: "bachelors"}, edu); p != 1 {
		t.Errorf("exact probability = %v", p)
	}
}

func TestRelativeErrorAndSummarize(t *testing.T) {
	if got := RelativeError(12, 10, 1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RelativeError = %v", got)
	}
	if got := RelativeError(5, 0, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RelativeError with sanity bound = %v", got)
	}
	if got := RelativeError(0, 0, 0); got != 0 {
		t.Errorf("degenerate RelativeError = %v", got)
	}
	s := Summarize([]float64{0.1, 0.5, 0.3})
	if math.Abs(s.Mean-0.3) > 1e-12 || s.Median != 0.3 || s.Max != 0.5 {
		t.Errorf("Summarize = %+v", s)
	}
	if s := Summarize(nil); s.Mean != 0 || s.Max != 0 {
		t.Errorf("empty Summarize = %+v", s)
	}
}

func TestGenerateAndEvaluateWorkload(t *testing.T) {
	tbl := synth.Hospital(1500, 2)
	hs := synth.HospitalHierarchies()
	w, err := GenerateWorkload(tbl, WorkloadConfig{
		Queries:   30,
		Sensitive: "diagnosis",
		Rng:       rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 30 {
		t.Fatalf("workload size = %d", len(w.Queries))
	}
	for _, q := range w.Queries {
		if len(q.Conditions) < 2 {
			t.Errorf("query with too few predicates: %v", q)
		}
		if q.String() == "" {
			t.Error("empty query rendering")
		}
	}
	// The original table answers its own workload exactly.
	errsOrig, err := EvaluateWorkload(tbl, tbl, w, hs)
	if err != nil {
		t.Fatal(err)
	}
	if Summarize(errsOrig).Max > 1e-9 {
		t.Errorf("original-vs-original workload error = %v", Summarize(errsOrig))
	}
	// A k=25 generalized release answers with positive but bounded error.
	res, err := mondrian.Anonymize(tbl, mondrian.Config{K: 25, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	errsAnon, err := EvaluateWorkload(tbl, res.Table, w, hs)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(errsAnon)
	if s.Mean <= 0 {
		t.Error("anonymized release should not answer the workload exactly")
	}
	if s.Mean > 5 {
		t.Errorf("anonymized workload error unexpectedly large: %+v", s)
	}

	if _, err := GenerateWorkload(tbl, WorkloadConfig{Queries: 0}); err == nil {
		t.Error("zero queries accepted")
	}
	if _, err := GenerateWorkload(tbl, WorkloadConfig{Queries: 5, Attributes: []string{"missing"}}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := GenerateWorkload(tbl, WorkloadConfig{Queries: 5, Sensitive: "missing"}); err == nil {
		t.Error("unknown sensitive accepted")
	}
}
