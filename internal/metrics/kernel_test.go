package metrics

import (
	"math/rand"
	"testing"

	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/synth"
)

// These tests pin the worker-invariance contract of the chunked metric
// scans: the cross-request result cache deliberately excludes Workers from
// its key, so NCP and ExactCount must return bit-identical values for every
// scan-worker bound — not merely close ones. The fixtures exceed
// parallel.MinChunk rows so the chunked paths genuinely run.

func TestNCPWorkerInvariance(t *testing.T) {
	tbl := synth.Hospital(3000, 1)
	hs := synth.HospitalHierarchies()
	res, err := mondrian.Anonymize(tbl, mondrian.Config{K: 10, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	want, err := NCP(tbl, res.Table, hs)
	if err != nil {
		t.Fatal(err)
	}
	if want <= 0 || want >= 1 {
		t.Fatalf("NCP = %v, expected a value in (0,1) for a k=10 release", want)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		res.Table.SetScanWorkers(workers)
		got, err := NCP(tbl, res.Table, hs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: NCP = %v, want exactly %v (cache keys assume worker invariance)", workers, got, want)
		}
	}
}

func TestExactCountWorkerInvariance(t *testing.T) {
	tbl := synth.Census(3000, 1)
	w, err := GenerateWorkload(tbl, WorkloadConfig{Queries: 20, Rng: rand.New(rand.NewSource(42))})
	if err != nil {
		t.Fatal(err)
	}
	truths := make([]int, len(w.Queries))
	for i, q := range w.Queries {
		truths[i], err = ExactCount(tbl, q)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		tbl.SetScanWorkers(workers)
		for i, q := range w.Queries {
			got, err := ExactCount(tbl, q)
			if err != nil {
				t.Fatalf("workers=%d query %d: %v", workers, i, err)
			}
			if got != truths[i] {
				t.Errorf("workers=%d query %q: count %d, want %d", workers, q, got, truths[i])
			}
		}
	}
	// Cross-check one worker count against the single-cell reference
	// semantics to guard the chunked matcher loop itself.
	tbl.SetScanWorkers(4)
	for i, q := range w.Queries {
		brute := 0
		for r := 0; r < tbl.Len(); r++ {
			match := true
			for _, c := range q.Conditions {
				col := tbl.Schema().MustIndex(c.Attribute)
				v, err := tbl.Value(r, col)
				if err != nil {
					t.Fatal(err)
				}
				if !matchesExact(v, c) {
					match = false
					break
				}
			}
			if match {
				brute++
			}
		}
		if brute != truths[i] {
			t.Errorf("query %d: brute-force count %d, want %d", i, brute, truths[i])
		}
	}
}
