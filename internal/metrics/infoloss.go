// Package metrics implements the information/utility metrics the PPDP survey
// uses to compare anonymization algorithms: generalization precision, the
// discernibility metric, normalized average class size, the normalized
// certainty penalty (NCP/ILoss), attribute-distribution divergence, and
// aggregate count-query workloads with relative-error summaries.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/parallel"
)

// Common errors.
var (
	// ErrNoQuasiIdentifiers is returned when a metric needs quasi-identifier
	// columns and the table has none.
	ErrNoQuasiIdentifiers = errors.New("metrics: table has no quasi-identifier attributes")
	// ErrMismatchedTables is returned when original and released tables
	// cannot be compared.
	ErrMismatchedTables = errors.New("metrics: original and released tables are not comparable")
)

// Discernibility computes the discernibility metric DM of a release: each
// record is penalized by the size of its equivalence class, and every
// suppressed record is penalized by the size of the original table. Lower is
// better; the minimum is N (every record in a singleton class) and the
// maximum is N² (one giant class or full suppression).
func Discernibility(released *dataset.Table, originalSize int) (float64, error) {
	qi := released.Schema().QuasiIdentifierNames()
	if len(qi) == 0 {
		return 0, ErrNoQuasiIdentifiers
	}
	classes, err := released.GroupBy(qi...)
	if err != nil {
		return 0, err
	}
	dm := 0.0
	for _, c := range classes {
		dm += float64(c.Size()) * float64(c.Size())
	}
	suppressed := originalSize - released.Len()
	if suppressed > 0 {
		dm += float64(suppressed) * float64(originalSize)
	}
	return dm, nil
}

// NormalizedAverageClassSize computes C_avg = (N / #classes) / k, the
// normalized average equivalence-class size of LeFevre et al. A value of 1 is
// optimal (classes exactly of size k); larger values indicate unnecessary
// generalization.
func NormalizedAverageClassSize(released *dataset.Table, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("metrics: k must be positive, got %d", k)
	}
	qi := released.Schema().QuasiIdentifierNames()
	if len(qi) == 0 {
		return 0, ErrNoQuasiIdentifiers
	}
	classes, err := released.GroupBy(qi...)
	if err != nil {
		return 0, err
	}
	if len(classes) == 0 {
		return 0, nil
	}
	return (float64(released.Len()) / float64(len(classes))) / float64(k), nil
}

// GeneralizationPrecision computes Sweeney's precision metric of a
// full-domain release: 1 minus the average fraction of hierarchy height used
// per quasi-identifier cell. 1 means no generalization, 0 means full
// suppression of every cell.
func GeneralizationPrecision(node []int, maxLevels []int) (float64, error) {
	if len(node) != len(maxLevels) || len(node) == 0 {
		return 0, fmt.Errorf("metrics: node arity %d does not match level bounds %d", len(node), len(maxLevels))
	}
	total := 0.0
	for i := range node {
		if maxLevels[i] == 0 {
			continue
		}
		if node[i] < 0 || node[i] > maxLevels[i] {
			return 0, fmt.Errorf("metrics: node level %d out of range [0,%d]", node[i], maxLevels[i])
		}
		total += float64(node[i]) / float64(maxLevels[i])
	}
	return 1 - total/float64(len(node)), nil
}

// NCP computes the normalized certainty penalty (equivalently ILoss) of a
// released table: for each quasi-identifier cell, the fraction of its domain
// the released value spans (0 for an exact value, 1 for "*"), averaged over
// all cells. Hierarchies provide categorical group sizes; numeric cells use
// interval width over the domain range of the original table.
func NCP(original, released *dataset.Table, hs *hierarchy.Set) (float64, error) {
	qi := released.Schema().QuasiIdentifierNames()
	if len(qi) == 0 {
		return 0, ErrNoQuasiIdentifiers
	}
	if released.Len() == 0 {
		return 0, nil
	}
	type colInfo struct {
		col      int
		numeric  bool
		domain   float64 // numeric range or categorical domain size
		catSizes func(value string) float64
	}
	infos := make([]colInfo, 0, len(qi))
	for _, a := range qi {
		col, err := released.Schema().Index(a)
		if err != nil {
			return 0, err
		}
		attr, _ := released.Schema().ByName(a)
		ci := colInfo{col: col, numeric: attr.Type == dataset.Numeric}
		if ci.numeric {
			lo, hi, err := original.NumericRange(a)
			if err != nil {
				return 0, fmt.Errorf("%w: %v", ErrMismatchedTables, err)
			}
			ci.domain = hi - lo
			if ci.domain <= 0 {
				ci.domain = 1
			}
		} else {
			dom, err := original.Domain(a)
			if err != nil {
				return 0, fmt.Errorf("%w: %v", ErrMismatchedTables, err)
			}
			domainSize := float64(len(dom))
			if domainSize <= 1 {
				domainSize = 1
			}
			var h hierarchy.Hierarchy
			if hs != nil && hs.Has(a) {
				h, _ = hs.Get(a)
			}
			ci.domain = domainSize
			ci.catSizes = func(value string) float64 {
				if value == dataset.SuppressedValue {
					return domainSize
				}
				if strings.HasPrefix(value, "{") && strings.HasSuffix(value, "}") {
					return float64(len(strings.Split(value[1:len(value)-1], ",")))
				}
				if h != nil {
					if ch, ok := h.(*hierarchy.CategoryHierarchy); ok {
						return float64(ch.GroupSizeOfGeneralized(value))
					}
					if h.Contains(value) {
						return 1
					}
				}
				// Unknown released value: if it appears in the original
				// domain it is exact, otherwise assume full uncertainty.
				for _, d := range dom {
					if d == value {
						return 1
					}
				}
				return domainSize
			}
		}
		infos = append(infos, ci)
	}

	// The released table holds a handful of distinct values per column (that
	// is the point of generalization), so compute the span of each distinct
	// value once and stream the per-cell sum over the dictionary codes —
	// no cell is parsed or matched against hierarchies more than once.
	spans := make([][]float64, len(infos))
	codes := make([][]uint32, len(infos))
	for i, ci := range infos {
		cc, err := released.CodedColumn(ci.col)
		if err != nil {
			return 0, err
		}
		spans[i] = make([]float64, cc.Cardinality())
		codes[i] = cc.Codes
		for code, v := range cc.Dict {
			var span float64
			if ci.numeric {
				span = numericSpan(v, ci.domain)
			} else {
				n := ci.catSizes(v)
				if n <= 1 {
					span = 0
				} else {
					span = (n - 1) / math.Max(ci.domain-1, 1)
				}
			}
			if span > 1 {
				span = 1
			}
			spans[i][code] = span
		}
	}
	// Accumulate by counting code occurrences rather than summing row-major:
	// the row scan becomes pure integer increments whose per-chunk partials
	// merge exactly, so the result is identical for every worker count — a
	// hard requirement, because the cross-request result cache deliberately
	// excludes Workers from its key (NCP must be output-invariant under the
	// parallelism knob). Each distinct value's span then enters the sum once,
	// in fixed (column, code) order, weighted by its count. The boundary
	// cases stay exact: an unmodified release sums zeros to 0, and a fully
	// suppressed one sums spans of 1 scaled by integer counts to cells.
	rows := released.Len()
	counts := codeCounts(codes, spans, rows, released.ScanWorkers())
	total := 0.0
	cells := rows * len(infos)
	for i, sp := range spans {
		for code, cnt := range counts[i] {
			if cnt != 0 {
				total += sp[code] * float64(cnt)
			}
		}
	}
	if cells == 0 {
		return 0, nil
	}
	return total / float64(cells), nil
}

// codeCounts tallies, per column, how many rows carry each dictionary code,
// scanning contiguous row chunks on up to workers goroutines. Integer
// partials merge exactly, so every worker count yields identical counts.
func codeCounts(codes [][]uint32, spans [][]float64, rows, workers int) [][]int64 {
	tally := func(lo, hi int) ([][]int64, error) {
		part := make([][]int64, len(codes))
		for i := range codes {
			part[i] = make([]int64, len(spans[i]))
		}
		for i, col := range codes {
			cnt := part[i]
			for _, code := range col[lo:hi] {
				cnt[code]++
			}
		}
		return part, nil
	}
	add := func(acc, next [][]int64) ([][]int64, error) {
		for i := range acc {
			for code, c := range next[i] {
				acc[i][code] += c
			}
		}
		return acc, nil
	}
	counts, _ := parallel.Fold(rows, workers, 0, tally, add)
	return counts
}

// numericSpan returns the fraction of the numeric domain covered by a
// released value: 0 for exact numbers, interval width over domain for
// "[lo-hi)" values, and 1 for suppressed or unparseable values.
func numericSpan(value string, domain float64) float64 {
	if value == dataset.SuppressedValue {
		return 1
	}
	if _, err := strconv.ParseFloat(strings.TrimSpace(value), 64); err == nil {
		return 0
	}
	if lo, hi, ok := hierarchy.ParseInterval(value); ok {
		if hi <= lo {
			return 0
		}
		return (hi - lo) / domain
	}
	return 1
}

// AttributeDivergence computes the Kullback-Leibler divergence between the
// original and released distributions of the named attribute, with add-one
// smoothing over the union of observed values. It quantifies how much the
// release distorts single-attribute statistics (0 means identical
// distributions).
func AttributeDivergence(original, released *dataset.Table, attr string) (float64, error) {
	p, err := original.Frequencies(attr)
	if err != nil {
		return 0, err
	}
	q, err := released.Frequencies(attr)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrMismatchedTables, err)
	}
	values := make(map[string]struct{})
	for v := range p {
		values[v] = struct{}{}
	}
	for v := range q {
		values[v] = struct{}{}
	}
	domain := make([]string, 0, len(values))
	for v := range values {
		domain = append(domain, v)
	}
	sort.Strings(domain)
	pn := float64(original.Len() + len(domain))
	qn := float64(released.Len() + len(domain))
	kl := 0.0
	for _, v := range domain {
		pv := (float64(p[v]) + 1) / pn
		qv := (float64(q[v]) + 1) / qn
		kl += pv * math.Log(pv/qv)
	}
	return kl, nil
}
