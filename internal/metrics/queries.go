package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/parallel"
)

// Condition is one predicate of a count query.
type Condition struct {
	// Attribute names the column the condition applies to.
	Attribute string
	// Equals matches categorical values exactly; it is ignored when IsRange
	// is set.
	Equals string
	// IsRange selects a numeric range predicate [Lo, Hi).
	IsRange bool
	Lo, Hi  float64
}

// String renders the condition for experiment output.
func (c Condition) String() string {
	if c.IsRange {
		return fmt.Sprintf("%s in [%g,%g)", c.Attribute, c.Lo, c.Hi)
	}
	return fmt.Sprintf("%s = %s", c.Attribute, c.Equals)
}

// CountQuery is a conjunctive count query over a table.
type CountQuery struct {
	Conditions []Condition
}

// String renders the query for experiment output.
func (q CountQuery) String() string {
	parts := make([]string, len(q.Conditions))
	for i, c := range q.Conditions {
		parts[i] = c.String()
	}
	return "COUNT(*) WHERE " + strings.Join(parts, " AND ")
}

// ExactCount evaluates the query on a table of raw (ungeneralized) values.
// Range predicates scan the parse-once FloatColumn and equality predicates
// compare interned dictionary codes, so no cell is parsed or compared as a
// string in the per-row loop.
func ExactCount(t *dataset.Table, q CountQuery) (int, error) {
	type matcher struct {
		isRange bool
		fc      *dataset.FloatColumn
		lo, hi  float64
		codes   []uint32
		code    uint32
	}
	matchers := make([]matcher, len(q.Conditions))
	impossible := false
	for i, c := range q.Conditions {
		idx, err := t.Schema().Index(c.Attribute)
		if err != nil {
			return 0, err
		}
		if c.IsRange {
			fc, err := t.FloatColumn(idx)
			if err != nil {
				return 0, err
			}
			matchers[i] = matcher{isRange: true, fc: fc, lo: c.Lo, hi: c.Hi}
			continue
		}
		cc, err := t.CodedColumn(idx)
		if err != nil {
			return 0, err
		}
		code, present := cc.Code(c.Equals)
		if !present {
			// The value never occurs: the conjunctive query cannot match.
			// Keep resolving the remaining conditions so unknown attributes
			// still error, then skip the scan.
			impossible = true
			continue
		}
		matchers[i] = matcher{codes: cc.Codes, code: code}
	}
	if impossible {
		return 0, nil
	}
	// Contiguous row chunks count matches on up to ScanWorkers goroutines;
	// the integer partials sum exactly, so the count is identical for every
	// worker count. The matchers are read-only once built.
	return parallel.Fold(t.Len(), t.ScanWorkers(), 0,
		func(lo, hi int) (int, error) {
			count := 0
			for r := lo; r < hi; r++ {
				match := true
				for i := range matchers {
					m := &matchers[i]
					if m.isRange {
						if !m.fc.Valid[r] || m.fc.Values[r] < m.lo || m.fc.Values[r] >= m.hi {
							match = false
							break
						}
					} else if m.codes[r] != m.code {
						match = false
						break
					}
				}
				if match {
					count++
				}
			}
			return count, nil
		},
		func(a, b int) (int, error) { return a + b, nil })
}

// matchesExact is the single-cell reference semantics of ExactCount's
// predicates, kept for tests and documentation.
func matchesExact(value string, c Condition) bool {
	if c.IsRange {
		f, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
		if err != nil {
			return false
		}
		return f >= c.Lo && f < c.Hi
	}
	return value == c.Equals
}

// EstimateCount evaluates the query on a generalized release under the
// uniformity assumption: a generalized cell contributes the fraction of its
// span that overlaps the predicate. Intervals use length overlap; categorical
// generalizations use the fraction of covered leaves that satisfy the
// predicate (1/groupSize for equality predicates); suppressed cells
// contribute the predicate's selectivity over the original domain.
// EstimateCount memoizes the per-value match probability over each column's
// dictionary: a released column holds few distinct (generalized) values, so
// the interval parsing and hierarchy walks run once per distinct value and
// the per-row loop is pure table lookups.
func EstimateCount(released *dataset.Table, q CountQuery, hs *hierarchy.Set) (float64, error) {
	codes := make([][]uint32, len(q.Conditions))
	probs := make([][]float64, len(q.Conditions))
	for i, c := range q.Conditions {
		idx, err := released.Schema().Index(c.Attribute)
		if err != nil {
			return 0, err
		}
		cc, err := released.CodedColumn(idx)
		if err != nil {
			return 0, err
		}
		codes[i] = cc.Codes
		probs[i] = make([]float64, cc.Cardinality())
		h := lookup(hs, c.Attribute)
		for code, v := range cc.Dict {
			probs[i][code] = matchProbability(v, c, h)
		}
	}
	total := 0.0
	for r := 0; r < released.Len(); r++ {
		p := 1.0
		for i := range probs {
			p *= probs[i][codes[i][r]]
			if p == 0 {
				break
			}
		}
		total += p
	}
	return total, nil
}

func lookup(hs *hierarchy.Set, attr string) hierarchy.Hierarchy {
	if hs == nil || !hs.Has(attr) {
		return nil
	}
	h, err := hs.Get(attr)
	if err != nil {
		return nil
	}
	return h
}

// matchProbability estimates the probability that a record whose released
// value is `value` satisfies the condition, assuming uniformity within the
// generalized group.
func matchProbability(value string, c Condition, h hierarchy.Hierarchy) float64 {
	if c.IsRange {
		// Exact numeric value.
		if f, err := strconv.ParseFloat(strings.TrimSpace(value), 64); err == nil {
			if f >= c.Lo && f < c.Hi {
				return 1
			}
			return 0
		}
		if lo, hi, ok := hierarchy.ParseInterval(value); ok && hi > lo {
			overlap := math.Min(hi, c.Hi) - math.Max(lo, c.Lo)
			if overlap <= 0 {
				return 0
			}
			return overlap / (hi - lo)
		}
		if value == dataset.SuppressedValue {
			if ih, ok := h.(*hierarchy.IntervalHierarchy); ok {
				span := ih.Max() - ih.Min()
				if span <= 0 {
					return 0
				}
				overlap := math.Min(ih.Max()+1, c.Hi) - math.Max(ih.Min(), c.Lo)
				if overlap <= 0 {
					return 0
				}
				return overlap / (span + 1)
			}
			return 0.5
		}
		return 0
	}

	// Equality predicate.
	if value == c.Equals {
		return 1
	}
	if value == dataset.SuppressedValue {
		if h != nil && h.DomainSize() > 0 {
			return 1 / float64(h.DomainSize())
		}
		return 0
	}
	if strings.HasPrefix(value, "{") && strings.HasSuffix(value, "}") {
		parts := strings.Split(value[1:len(value)-1], ",")
		for _, p := range parts {
			if strings.TrimSpace(p) == c.Equals {
				return 1 / float64(len(parts))
			}
		}
		return 0
	}
	if ch, ok := h.(*hierarchy.CategoryHierarchy); ok && ch.Contains(c.Equals) {
		// Does the released value generalize the queried leaf?
		for level := 1; level <= ch.MaxLevel(); level++ {
			g, err := ch.Generalize(c.Equals, level)
			if err != nil {
				return 0
			}
			if g == value {
				size := ch.GroupSizeOfGeneralized(value)
				if size <= 0 {
					return 0
				}
				return 1 / float64(size)
			}
		}
	}
	return 0
}

// RelativeError returns |estimate - truth| / max(truth, sanity), the standard
// workload-error measure; sanity (usually a small fraction of the table)
// prevents division blow-ups on very selective queries.
func RelativeError(estimate float64, truth int, sanity float64) float64 {
	denom := math.Max(float64(truth), sanity)
	if denom == 0 {
		return 0
	}
	return math.Abs(estimate-float64(truth)) / denom
}

// Workload is a set of count queries with summary helpers.
type Workload struct {
	Queries []CountQuery
}

// WorkloadConfig controls random workload generation.
type WorkloadConfig struct {
	// Queries is the number of queries to generate.
	Queries int
	// Attributes are the candidate predicate attributes.
	Attributes []string
	// Sensitive optionally adds an equality predicate on this sensitive
	// attribute to every query (for the Anatomy-style experiments that ask
	// "how many young males have HIV").
	Sensitive string
	// PredicatesPerQuery is the number of QI predicates per query (default 2).
	PredicatesPerQuery int
	// Rng drives the random choices.
	Rng *rand.Rand
}

// GenerateWorkload draws random conjunctive count queries against the
// original table: numeric attributes get random ranges covering 10–50% of
// their domain, categorical attributes get random equality predicates.
func GenerateWorkload(original *dataset.Table, cfg WorkloadConfig) (*Workload, error) {
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("metrics: workload needs a positive query count, got %d", cfg.Queries)
	}
	attrs := cfg.Attributes
	if len(attrs) == 0 {
		attrs = original.Schema().QuasiIdentifierNames()
	}
	if len(attrs) == 0 {
		return nil, ErrNoQuasiIdentifiers
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	per := cfg.PredicatesPerQuery
	if per <= 0 {
		per = 2
	}
	if per > len(attrs) {
		per = len(attrs)
	}

	type attrInfo struct {
		name    string
		numeric bool
		lo, hi  float64
		domain  []string
	}
	infos := make([]attrInfo, 0, len(attrs))
	for _, a := range attrs {
		attr, err := original.Schema().ByName(a)
		if err != nil {
			return nil, err
		}
		ai := attrInfo{name: a, numeric: attr.Type == dataset.Numeric}
		if ai.numeric {
			lo, hi, err := original.NumericRange(a)
			if err != nil {
				return nil, err
			}
			ai.lo, ai.hi = lo, hi
		} else {
			dom, err := original.Domain(a)
			if err != nil {
				return nil, err
			}
			ai.domain = dom
		}
		infos = append(infos, ai)
	}
	var sensDomain []string
	if cfg.Sensitive != "" {
		dom, err := original.Domain(cfg.Sensitive)
		if err != nil {
			return nil, err
		}
		sensDomain = dom
	}

	w := &Workload{}
	for qi := 0; qi < cfg.Queries; qi++ {
		perm := rng.Perm(len(infos))[:per]
		sort.Ints(perm)
		q := CountQuery{}
		for _, idx := range perm {
			ai := infos[idx]
			if ai.numeric {
				span := ai.hi - ai.lo
				width := span * (0.1 + 0.4*rng.Float64())
				start := ai.lo + rng.Float64()*(span-width)
				q.Conditions = append(q.Conditions, Condition{
					Attribute: ai.name, IsRange: true, Lo: math.Floor(start), Hi: math.Ceil(start + width),
				})
			} else {
				q.Conditions = append(q.Conditions, Condition{
					Attribute: ai.name, Equals: ai.domain[rng.Intn(len(ai.domain))],
				})
			}
		}
		if cfg.Sensitive != "" && len(sensDomain) > 0 {
			q.Conditions = append(q.Conditions, Condition{
				Attribute: cfg.Sensitive, Equals: sensDomain[rng.Intn(len(sensDomain))],
			})
		}
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}

// ErrorSummary aggregates per-query relative errors.
type ErrorSummary struct {
	Mean   float64
	Median float64
	Max    float64
}

// Summarize computes mean, median and max of the given errors.
func Summarize(errs []float64) ErrorSummary {
	if len(errs) == 0 {
		return ErrorSummary{}
	}
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	total := 0.0
	for _, e := range sorted {
		total += e
	}
	return ErrorSummary{
		Mean:   total / float64(len(sorted)),
		Median: sorted[len(sorted)/2],
		Max:    sorted[len(sorted)-1],
	}
}

// EvaluateWorkload runs every query exactly on the original table and
// approximately on the released table, returning the relative errors. The
// sanity bound is 0.1% of the original table (at least 1).
func EvaluateWorkload(original, released *dataset.Table, w *Workload, hs *hierarchy.Set) ([]float64, error) {
	sanity := math.Max(float64(original.Len())*0.001, 1)
	errs := make([]float64, 0, len(w.Queries))
	for _, q := range w.Queries {
		truth, err := ExactCount(original, q)
		if err != nil {
			return nil, err
		}
		est, err := EstimateCount(released, q, hs)
		if err != nil {
			return nil, err
		}
		errs = append(errs, RelativeError(est, truth, sanity))
	}
	return errs, nil
}
