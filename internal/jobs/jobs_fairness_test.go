package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestNoStarvationAcrossTenants is the fair-share acceptance property: tenant
// A saturates the service with a 50-job burst, then tenant B submits one job;
// B must start within one run slot — at most one more A job may begin between
// B's submission and B's start — for every worker count. Runners are gated so
// run slots free one at a time, making the dispatch order fully deterministic
// to observe.
func TestNoStarvationAcrossTenants(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const burst = 50
			m := newTestManager(t, Config{Workers: workers, QueueDepth: burst + 1})
			started := make(chan string, burst+1)
			release := make(chan struct{})
			runner := func(tenant string) Runner {
				return func(ctx context.Context, _ func(done, total int)) (any, error) {
					started <- tenant
					select {
					case <-release:
						return nil, nil
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
			}
			for i := 0; i < burst; i++ {
				if _, err := m.Submit(runner("A"), Options{Tenant: "A"}); err != nil {
					t.Fatalf("submit A #%d: %v", i, err)
				}
			}
			// Let the pool fill: every worker is now pinned on an A job.
			for i := 0; i < workers; i++ {
				if got := <-started; got != "A" {
					t.Fatalf("pre-burst start %d: got tenant %q, want A", i, got)
				}
			}
			if _, err := m.Submit(runner("B"), Options{Tenant: "B"}); err != nil {
				t.Fatalf("submit B: %v", err)
			}
			// Free run slots one at a time and watch who gets each.
			aStartsBeforeB := 0
			for {
				release <- struct{}{}
				tenant := <-started
				if tenant == "B" {
					break
				}
				aStartsBeforeB++
				if aStartsBeforeB > 1 {
					t.Fatalf("tenant B starved: %d A jobs started after B's submission", aStartsBeforeB)
				}
			}
			// Drain: unblock everything still running or queued.
			close(release)
			for i := 0; i < burst-workers-aStartsBeforeB; i++ {
				<-started
			}
		})
	}
}

// TestRoundRobinMatchesReferenceSimulation submits a randomized multi-tenant
// interleaving while the single worker is plugged, then checks the actual
// execution order against an independent round-robin oracle: tenants rotate
// in order of first submission, each contributing its oldest queued job per
// turn. This implies per-tenant FIFO (each tenant's jobs run in submission
// order) and cross-tenant fairness in one equality.
func TestRoundRobinMatchesReferenceSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tenants := []string{"alpha", "beta", "gamma", "delta"}
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(30)
		submissions := make([]string, n)
		for i := range submissions {
			submissions[i] = tenants[rng.Intn(len(tenants))]
		}

		m := newTestManager(t, Config{Workers: 1, QueueDepth: n + 1})
		var mu sync.Mutex
		var order []string // "tenant/seq" in execution order
		plugRelease := make(chan struct{})
		plugEntered := make(chan string, 1)
		if _, err := m.Submit(gatedRunner(plugEntered, plugRelease, nil), Options{Tenant: "plug"}); err != nil {
			t.Fatalf("trial %d: submit plug: %v", trial, err)
		}
		<-plugEntered // worker is pinned; all further submissions stay queued

		perTenantSeq := map[string]int{}
		var wantIDs []string
		for _, tenant := range submissions {
			seq := perTenantSeq[tenant]
			perTenantSeq[tenant]++
			label := fmt.Sprintf("%s/%d", tenant, seq)
			wantIDs = append(wantIDs, label)
			if _, err := m.Submit(func(ctx context.Context, _ func(done, total int)) (any, error) {
				mu.Lock()
				order = append(order, label)
				mu.Unlock()
				return nil, nil
			}, Options{Tenant: tenant, Meta: label}); err != nil {
				t.Fatalf("trial %d: submit %s: %v", trial, label, err)
			}
		}

		want := referenceRoundRobin(submissions, wantIDs)

		// Before anything dispatches, every queued job's QueuePos must equal
		// its 1-based rank in the oracle's dispatch order.
		wantRank := map[string]int{}
		for i, label := range want {
			wantRank[label] = i + 1
		}
		for _, s := range m.List() {
			if s.State != Queued {
				continue
			}
			label, _ := s.Meta.(string)
			if s.QueuePos != wantRank[label] {
				t.Fatalf("trial %d: job %s (%s) reports QueuePos %d, oracle says %d",
					trial, s.ID, label, s.QueuePos, wantRank[label])
			}
		}

		close(plugRelease)
		deadline := time.Now().Add(10 * time.Second)
		for {
			q, r, _ := m.Counts()
			if q == 0 && r == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("trial %d: jobs did not drain", trial)
			}
			time.Sleep(time.Millisecond)
		}

		mu.Lock()
		got := append([]string(nil), order...)
		mu.Unlock()
		if len(got) != len(want) {
			t.Fatalf("trial %d: executed %d jobs, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: execution order diverges at %d: got %q, want %q\nfull got:  %v\nfull want: %v",
					trial, i, got[i], want[i], got, want)
			}
		}
	}
}

// referenceRoundRobin is the independent oracle: given the submission order
// of tenants (and the matching job labels), it returns the label order a
// per-tenant round-robin dispatcher produces when every job is queued before
// the first dispatch. Tenants enter the rotation in order of first
// submission; each rotation turn takes the tenant's oldest job; an exhausted
// tenant leaves the rotation without advancing the cursor.
func referenceRoundRobin(submissions, labels []string) []string {
	queues := map[string][]string{}
	var rotation []string
	for i, tenant := range submissions {
		if len(queues[tenant]) == 0 {
			rotation = append(rotation, tenant)
		}
		queues[tenant] = append(queues[tenant], labels[i])
	}
	var out []string
	cur := 0
	for len(rotation) > 0 {
		if cur >= len(rotation) {
			cur = 0
		}
		tenant := rotation[cur]
		q := queues[tenant]
		out = append(out, q[0])
		q = q[1:]
		queues[tenant] = q
		if len(q) == 0 {
			rotation = append(rotation[:cur], rotation[cur+1:]...)
		} else {
			cur++
		}
	}
	return out
}

// TestTenantQuota exercises Config.MaxPerTenant: the cap counts queued plus
// running jobs, rejects the overflow submission with ErrTenantQuota, leaves
// other tenants unaffected, and frees capacity as jobs finish.
func TestTenantQuota(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 16, MaxPerTenant: 2})
	entered := make(chan string, 4)
	release := make(chan struct{})
	if _, err := m.Submit(gatedRunner(entered, release, nil), Options{Tenant: "A"}); err != nil {
		t.Fatalf("submit A1: %v", err)
	}
	<-entered // A1 running
	if _, err := m.Submit(gatedRunner(nil, release, nil), Options{Tenant: "A"}); err != nil {
		t.Fatalf("submit A2: %v", err)
	}
	_, err := m.Submit(gatedRunner(nil, release, nil), Options{Tenant: "A"})
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("A3 over quota: got %v, want ErrTenantQuota", err)
	}
	// Another tenant is not affected by A's saturation.
	if _, err := m.Submit(gatedRunner(nil, release, nil), Options{Tenant: "B"}); err != nil {
		t.Fatalf("submit B1: %v", err)
	}
	if got := m.TenantCounts(); got["A"] != 2 || got["B"] != 1 {
		t.Fatalf("TenantCounts = %v, want A:2 B:1", got)
	}
	// Finishing A's jobs frees quota.
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if q, r, _ := m.Counts(); q == 0 && r == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs did not drain")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		return nil, nil
	}, Options{Tenant: "A"}); err != nil {
		t.Fatalf("submit A after drain: %v", err)
	}
}

// recordingObserver collects lifecycle events for assertions.
type recordingObserver struct {
	mu       sync.Mutex
	started  []string
	finished map[State]int
	waits    []time.Duration
}

func (o *recordingObserver) JobStarted(tenant string, wait time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started = append(o.started, tenant)
	o.waits = append(o.waits, wait)
}

func (o *recordingObserver) JobFinished(tenant string, state State) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.finished == nil {
		o.finished = map[State]int{}
	}
	o.finished[state]++
}

// TestObserverLifecycleEvents checks the Observer hook: one JobStarted per
// dispatched job with a non-negative queue wait, and one JobFinished per
// terminal transition — including queued-then-canceled jobs that never ran
// and born-succeeded Complete jobs.
func TestObserverLifecycleEvents(t *testing.T) {
	obs := &recordingObserver{}
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 8, Observer: obs})
	entered := make(chan string, 1)
	release := make(chan struct{})
	if _, err := m.Submit(gatedRunner(entered, release, nil), Options{Tenant: "A"}); err != nil {
		t.Fatalf("submit gate: %v", err)
	}
	<-entered
	queued, err := m.Submit(gatedRunner(nil, release, nil), Options{Tenant: "A"})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if _, err := m.Complete("cached", Options{Tenant: "B"}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	failing, err := m.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		return nil, errors.New("boom")
	}, Options{Tenant: "A"})
	if err != nil {
		t.Fatalf("submit failing: %v", err)
	}
	close(release)
	if _, err := m.Wait(context.Background(), failing.ID); err != nil {
		t.Fatalf("wait failing: %v", err)
	}

	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.started) != 2 { // the gate job and the failing job; canceled+Complete never start
		t.Errorf("JobStarted fired %d times, want 2 (%v)", len(obs.started), obs.started)
	}
	for i, w := range obs.waits {
		if w < 0 {
			t.Errorf("queue wait %d is negative: %v", i, w)
		}
	}
	want := map[State]int{Succeeded: 2, Canceled: 1, Failed: 1}
	for state, n := range want {
		if obs.finished[state] != n {
			t.Errorf("JobFinished[%s] = %d, want %d (all: %v)", state, obs.finished[state], n, obs.finished)
		}
	}
}
