// Package jobs is the asynchronous execution layer of the anonymization
// service: a job manager that runs arbitrary work on a bounded worker pool
// behind a FIFO admission queue, with job lifecycle states, live progress
// snapshots, per-job cancellation and TTL-based garbage collection of
// finished jobs.
//
// The manager is the single executor both request paths of the HTTP service
// share: POST /v1/jobs submits and returns immediately, while the synchronous
// /v1/anonymize submits and waits — so one admission queue governs both, and
// a saturated service rejects with ErrQueueFull instead of accepting
// unbounded concurrent work.
//
// Lifecycle: a submitted job is queued until a worker picks it up, running
// while its Runner executes, and ends succeeded, failed or canceled. Queued
// jobs report their 1-based queue position; running jobs report the (done,
// total) progress their Runner publishes (the engine's per-algorithm sinks,
// for the anonymization service). Finished jobs are retained for Config.TTL
// so clients can poll the outcome, then evicted lazily by the next manager
// operation.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle state.
type State string

// Lifecycle states: queued → running → succeeded | failed | canceled.
const (
	Queued    State = "queued"
	Running   State = "running"
	Succeeded State = "succeeded"
	Failed    State = "failed"
	Canceled  State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == Succeeded || s == Failed || s == Canceled
}

// Runner is one job's unit of work. It receives the job's context — canceled
// by Cancel, Close, or the job's run timeout — and a progress sink that feeds
// the job's live snapshot; both may be ignored by trivial work. The returned
// value is retained in the job's snapshot until the job is garbage-collected.
type Runner func(ctx context.Context, progress func(done, total int)) (any, error)

// Manager errors.
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity. Callers translate it into backpressure (HTTP 429).
	ErrQueueFull = errors.New("jobs: admission queue is full")
	// ErrNotFound is returned for unknown (or already evicted) job ids.
	ErrNotFound = errors.New("jobs: job not found")
	// ErrFinished rejects cancellation of a job that already reached a
	// terminal state.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrClosed rejects submissions to a closed manager.
	ErrClosed = errors.New("jobs: manager is closed")
)

// Config tunes a Manager. The zero value is usable: GOMAXPROCS workers, a
// 64-deep queue and a 15-minute retention of finished jobs.
type Config struct {
	// Workers is the number of jobs that run concurrently (GOMAXPROCS when
	// zero). Each worker runs one job at a time, so Workers is the service's
	// admission-controlled concurrency bound.
	Workers int
	// QueueDepth bounds the jobs waiting for a worker (64 when zero; the
	// total admitted work is therefore Workers running + QueueDepth queued).
	// A full queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// TTL is how long finished jobs stay queryable (15 minutes when zero).
	// Eviction is lazy: every manager operation prunes expired jobs first.
	TTL time.Duration
	// MaxFinished caps how many finished jobs are retained inside the TTL
	// window (1024 when zero): results can be large (a job retains its full
	// response payload), so a burst of submissions must not pin unbounded
	// memory until the TTL expires. The oldest finished jobs are evicted
	// first.
	MaxFinished int
	// RunTimeout, when positive, bounds the running phase of every job: the
	// job's context gets the deadline when a worker picks it up, not while it
	// waits in the queue.
	RunTimeout time.Duration
	// Now is the clock (time.Now when nil); tests inject a deterministic one
	// to exercise TTL eviction without sleeping.
	Now func() time.Time
}

// Defaults for the zero Config.
const (
	DefaultQueueDepth  = 64
	DefaultTTL         = 15 * time.Minute
	DefaultMaxFinished = 1024
)

// Progress is a point-in-time view of a job's reported progress.
type Progress struct {
	// Done and Total are the last (done, total) event the job's Runner
	// published; both zero before the first event.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Snapshot is a point-in-time view of one job.
type Snapshot struct {
	// ID is the manager-assigned job id ("j1", "j2", ...).
	ID string
	// State is the lifecycle state at snapshot time.
	State State
	// Meta echoes the Options.Meta the job was submitted with.
	Meta any
	// Progress is the job's live progress (zero until the Runner reports).
	Progress Progress
	// QueuePos is the job's 1-based position in the admission queue (0 when
	// not queued).
	QueuePos int
	// Created, Started and Finished are the lifecycle timestamps (zero when
	// the phase has not been reached).
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Result is the Runner's return value (nil unless State is Succeeded).
	Result any
	// Err is the Runner's error (nil unless State is Failed or Canceled).
	Err error
}

// job is the manager-internal record. The manager mutex guards state and the
// timestamps; progress is atomic so high-frequency reporting never contends
// with snapshotting.
type job struct {
	id      string
	meta    any
	run     Runner
	timeout time.Duration

	cancel    context.CancelFunc
	ctx       context.Context
	done      chan struct{} // closed on reaching a terminal state
	canceling bool          // Cancel was requested while running

	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	result   any
	err      error

	progressDone  atomic.Int64
	progressTotal atomic.Int64
}

// Manager runs jobs on a bounded worker pool behind a FIFO admission queue.
// Create one with New; it is safe for concurrent use.
type Manager struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond

	jobs     map[string]*job
	queue    []*job // FIFO of queued jobs
	finished []*job // terminal jobs in finish order, for TTL eviction
	seq      int
	closed   bool
	wg       sync.WaitGroup
}

// New builds a Manager and starts its worker pool.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.MaxFinished <= 0 {
		cfg.MaxFinished = DefaultMaxFinished
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	m := &Manager{cfg: cfg, jobs: make(map[string]*job)}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Options tunes one submission.
type Options struct {
	// Meta is an arbitrary caller payload echoed in every Snapshot (the HTTP
	// service stores the request summary here for job listings).
	Meta any
	// Timeout overrides Config.RunTimeout for this job (0 keeps the config).
	Timeout time.Duration
}

// Submit admits a job into the queue and returns its initial snapshot. It
// fails with ErrQueueFull when the admission queue is at capacity and
// ErrClosed after Close.
func (m *Manager) Submit(run Runner, opts Options) (Snapshot, error) {
	if run == nil {
		return Snapshot{}, errors.New("jobs: nil Runner")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, ErrClosed
	}
	m.evictExpiredLocked()
	if len(m.queue) >= m.cfg.QueueDepth {
		return Snapshot{}, fmt.Errorf("%w: %d jobs waiting (limit %d)", ErrQueueFull, len(m.queue), m.cfg.QueueDepth)
	}
	m.seq++
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = m.cfg.RunTimeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:      fmt.Sprintf("j%d", m.seq),
		meta:    opts.Meta,
		run:     run,
		timeout: timeout,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   Queued,
		created: m.cfg.Now(),
	}
	m.jobs[j.id] = j
	m.queue = append(m.queue, j)
	m.cond.Signal()
	return m.snapshotLocked(j), nil
}

// Complete records a job that is already succeeded without queueing any work:
// the job is born in the Succeeded state carrying the given result, with all
// three lifecycle timestamps set to now, and is retained (and TTL-evicted)
// exactly like a job that ran. The HTTP service uses it when a result cache
// hit satisfies an asynchronous submission — the client still gets a job id
// to poll, but no worker slot or queue capacity is consumed.
func (m *Manager) Complete(result any, opts Options) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, ErrClosed
	}
	m.evictExpiredLocked()
	m.seq++
	now := m.cfg.Now()
	j := &job{
		id:       fmt.Sprintf("j%d", m.seq),
		meta:     opts.Meta,
		done:     make(chan struct{}),
		state:    Succeeded,
		created:  now,
		started:  now,
		finished: now,
		result:   result,
	}
	m.jobs[j.id] = j
	m.finished = append(m.finished, j)
	close(j.done)
	return m.snapshotLocked(j), nil
}

// worker pulls queued jobs in FIFO order and runs them until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queue) == 0 && m.closed {
			m.mu.Unlock()
			return
		}
		j := m.queue[0]
		m.queue = m.queue[1:]
		j.state = Running
		j.started = m.cfg.Now()
		ctx, timeoutCancel := j.ctx, context.CancelFunc(func() {})
		if j.timeout > 0 {
			ctx, timeoutCancel = context.WithTimeout(j.ctx, j.timeout)
		}
		m.mu.Unlock()

		result, err := runRecovered(j, ctx)
		timeoutCancel()

		m.mu.Lock()
		j.finished = m.cfg.Now()
		switch {
		case err == nil:
			j.state = Succeeded
			j.result = result
		case j.canceling && errors.Is(err, context.Canceled):
			j.state = Canceled
			j.err = err
		default:
			j.state = Failed
			j.err = err
		}
		m.finished = append(m.finished, j)
		close(j.done)
		m.mu.Unlock()
	}
}

// runRecovered executes one job's Runner, converting a panic into a failed
// job. Requests used to run on net/http handler goroutines, where a panicking
// algorithm killed only its own connection; a worker goroutine has no such
// net, and one poisonous request must not take the whole service down.
func runRecovered(j *job, ctx context.Context) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			result = nil
			err = fmt.Errorf("jobs: runner panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return j.run(ctx, j.report)
}

// report is the progress sink handed to every Runner. Total tracks the last
// event; done only ever advances, so a racy reporter cannot make a snapshot
// move backwards.
func (j *job) report(done, total int) {
	j.progressTotal.Store(int64(total))
	for {
		cur := j.progressDone.Load()
		if int64(done) <= cur || j.progressDone.CompareAndSwap(cur, int64(done)) {
			return
		}
	}
}

// Get returns the snapshot of one job.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return m.snapshotLocked(j), nil
}

// List returns a snapshot of every retained job in submission order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.snapshotLocked(j))
	}
	// Submission order: ids are a counter, so creation time break ties by id
	// length then lexicographic ("j2" < "j10").
	sortSnapshots(out)
	return out
}

// Cancel requests cancellation of a queued or running job. A queued job
// becomes canceled immediately and never runs; a running job has its context
// canceled and reaches the canceled state when its Runner returns. Canceling
// a finished job fails with ErrFinished.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch j.state {
	case Queued:
		for i, q := range m.queue {
			if q == j {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		j.cancel()
		j.state = Canceled
		j.err = context.Canceled
		j.finished = m.cfg.Now()
		m.finished = append(m.finished, j)
		close(j.done)
		return nil
	case Running:
		j.canceling = true
		j.cancel()
		return nil
	default:
		return fmt.Errorf("%w: %s is %s", ErrFinished, id, j.state)
	}
}

// Wait blocks until the job reaches a terminal state (returning its final
// snapshot) or ctx is done (returning ctx's error). It does not cancel the
// job on ctx expiry — that is the caller's decision.
func (m *Manager) Wait(ctx context.Context, id string) (Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	select {
	case <-j.done:
		// Snapshot the job directly rather than via Get: a terminal job is
		// immutable, and Get could already have TTL-evicted it.
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.snapshotLocked(j), nil
	case <-ctx.Done():
		return Snapshot{}, ctx.Err()
	}
}

// Forget drops a terminal job immediately instead of waiting for the TTL.
// Callers that consumed the result synchronously (the service's
// submit-and-wait path) use it so waited-for responses do not pin memory for
// the retention window. Forgetting a job that is still queued or running
// fails — Cancel is the way to stop live work.
func (m *Manager) Forget(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if !j.state.Terminal() {
		return fmt.Errorf("jobs: job %s is %s, not terminal", id, j.state)
	}
	delete(m.jobs, id)
	for i, f := range m.finished {
		if f == j {
			m.finished = append(m.finished[:i], m.finished[i+1:]...)
			break
		}
	}
	return nil
}

// Counts reports queue occupancy: jobs waiting, running, and retained in a
// terminal state.
func (m *Manager) Counts() (queued, running, finished int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked()
	for _, j := range m.jobs {
		switch j.state {
		case Queued:
			queued++
		case Running:
			running++
		default:
			finished++
		}
	}
	return
}

// Close stops the manager: queued jobs are canceled, running jobs have their
// contexts canceled, and Close returns once every worker has drained. Further
// submissions fail with ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	for _, j := range m.queue {
		j.cancel()
		j.state = Canceled
		j.err = context.Canceled
		j.finished = m.cfg.Now()
		m.finished = append(m.finished, j)
		close(j.done)
	}
	m.queue = nil
	for _, j := range m.jobs {
		if j.state == Running {
			j.canceling = true
			j.cancel()
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// snapshotLocked builds a Snapshot; the manager mutex must be held.
func (m *Manager) snapshotLocked(j *job) Snapshot {
	s := Snapshot{
		ID:       j.id,
		State:    j.state,
		Meta:     j.meta,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Result:   j.result,
		Err:      j.err,
		Progress: Progress{
			Done:  int(j.progressDone.Load()),
			Total: int(j.progressTotal.Load()),
		},
	}
	if j.state == Queued {
		for i, q := range m.queue {
			if q == j {
				s.QueuePos = i + 1
				break
			}
		}
	}
	return s
}

// evictExpiredLocked drops finished jobs whose TTL has passed, and the
// oldest ones beyond the MaxFinished cap; the manager mutex must be held.
// The finished list is in finish order, so TTL eviction stops at the first
// unexpired entry.
func (m *Manager) evictExpiredLocked() {
	cutoff := m.cfg.Now().Add(-m.cfg.TTL)
	for len(m.finished) > 0 &&
		(len(m.finished) > m.cfg.MaxFinished || !m.finished[0].finished.After(cutoff)) {
		delete(m.jobs, m.finished[0].id)
		m.finished = m.finished[1:]
	}
}

// sortSnapshots orders by job id's numeric suffix (submission order): ids
// compare by length first ("j9" < "j10"), which is exactly the counter
// order.
func sortSnapshots(s []Snapshot) {
	sort.Slice(s, func(i, j int) bool {
		a, b := s[i].ID, s[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
}
