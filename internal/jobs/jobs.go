// Package jobs is the asynchronous execution layer of the anonymization
// service: a job manager that runs arbitrary work on a bounded worker pool
// behind a tenant-fair admission queue, with job lifecycle states, live
// progress snapshots, per-job cancellation and TTL-based garbage collection
// of finished jobs.
//
// The manager is the single executor both request paths of the HTTP service
// share: POST /v1/jobs submits and returns immediately, while the synchronous
// /v1/anonymize submits and waits — so one admission queue governs both, and
// a saturated service rejects with ErrQueueFull instead of accepting
// unbounded concurrent work.
//
// Dispatch is per-tenant round-robin, not global FIFO: each tenant has its
// own FIFO queue, and free workers take the head job of the next tenant in a
// rotation. Within a tenant, submission order is preserved exactly; across
// tenants, a 50-job burst from one tenant cannot delay another tenant's
// first job by more than one run slot, because the newcomer joins the
// rotation and is picked on the next dispatch. Untenanted submissions share
// the "" tenant, which degenerates to the old global FIFO when the service
// runs unauthenticated.
//
// Lifecycle: a submitted job is queued until a worker picks it up, running
// while its Runner executes, and ends succeeded, failed or canceled. Queued
// jobs report their 1-based dispatch position; running jobs report the
// (done, total) progress their Runner publishes (the engine's per-algorithm
// sinks, for the anonymization service). Finished jobs are retained for
// Config.TTL so clients can poll the outcome, then evicted lazily by the
// next manager operation.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle state.
type State string

// Lifecycle states: queued → running → succeeded | failed | canceled.
const (
	Queued    State = "queued"
	Running   State = "running"
	Succeeded State = "succeeded"
	Failed    State = "failed"
	Canceled  State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == Succeeded || s == Failed || s == Canceled
}

// Runner is one job's unit of work. It receives the job's context — canceled
// by Cancel, Close, or the job's run timeout — and a progress sink that feeds
// the job's live snapshot; both may be ignored by trivial work. The returned
// value is retained in the job's snapshot until the job is garbage-collected.
type Runner func(ctx context.Context, progress func(done, total int)) (any, error)

// Observer receives job lifecycle events for metrics. Both methods are called
// synchronously but outside the manager mutex, so implementations may call
// back into the Manager; they must be safe for concurrent use.
type Observer interface {
	// JobStarted fires when a worker picks a job up; queueWait is the time the
	// job spent queued.
	JobStarted(tenant string, queueWait time.Duration)
	// JobFinished fires when a job reaches a terminal state (including queued
	// jobs canceled before running and cache-hit jobs born succeeded via
	// Complete).
	JobFinished(tenant string, state State)
}

// Manager errors.
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity. Callers translate it into backpressure (HTTP 429).
	ErrQueueFull = errors.New("jobs: admission queue is full")
	// ErrTenantQuota rejects a submission when the tenant already has
	// Config.MaxPerTenant jobs admitted (queued or running).
	ErrTenantQuota = errors.New("jobs: tenant job quota exceeded")
	// ErrNotFound is returned for unknown (or already evicted) job ids.
	ErrNotFound = errors.New("jobs: job not found")
	// ErrFinished rejects cancellation of a job that already reached a
	// terminal state.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrClosed rejects submissions to a closed manager.
	ErrClosed = errors.New("jobs: manager is closed")
)

// Config tunes a Manager. The zero value is usable: GOMAXPROCS workers, a
// 64-deep queue and a 15-minute retention of finished jobs.
type Config struct {
	// Workers is the number of jobs that run concurrently (GOMAXPROCS when
	// zero). Each worker runs one job at a time, so Workers is the service's
	// admission-controlled concurrency bound.
	Workers int
	// QueueDepth bounds the jobs waiting for a worker, summed across all
	// tenants (64 when zero; the total admitted work is therefore Workers
	// running + QueueDepth queued). A full queue rejects submissions with
	// ErrQueueFull.
	QueueDepth int
	// MaxPerTenant, when positive, caps one tenant's admitted jobs (queued
	// plus running); submissions beyond it fail with ErrTenantQuota. Zero
	// means no per-tenant cap.
	MaxPerTenant int
	// TTL is how long finished jobs stay queryable (15 minutes when zero).
	// Eviction is lazy: every manager operation prunes expired jobs first.
	TTL time.Duration
	// MaxFinished caps how many finished jobs are retained inside the TTL
	// window (1024 when zero): results can be large (a job retains its full
	// response payload), so a burst of submissions must not pin unbounded
	// memory until the TTL expires. The oldest finished jobs are evicted
	// first.
	MaxFinished int
	// RunTimeout, when positive, bounds the running phase of every job: the
	// job's context gets the deadline when a worker picks it up, not while it
	// waits in the queue.
	RunTimeout time.Duration
	// Now is the clock (time.Now when nil); tests inject a deterministic one
	// to exercise TTL eviction without sleeping.
	Now func() time.Time
	// Observer, when non-nil, receives lifecycle events for metrics.
	Observer Observer
}

// Defaults for the zero Config.
const (
	DefaultQueueDepth  = 64
	DefaultTTL         = 15 * time.Minute
	DefaultMaxFinished = 1024
)

// Progress is a point-in-time view of a job's reported progress.
type Progress struct {
	// Done and Total are the last (done, total) event the job's Runner
	// published; both zero before the first event.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Snapshot is a point-in-time view of one job.
type Snapshot struct {
	// ID is the manager-assigned job id ("j1", "j2", ...).
	ID string
	// Tenant is the tenant the job was submitted under ("" when untenanted).
	Tenant string
	// State is the lifecycle state at snapshot time.
	State State
	// Meta echoes the Options.Meta the job was submitted with.
	Meta any
	// Progress is the job's live progress (zero until the Runner reports).
	Progress Progress
	// QueuePos is the job's 1-based position in dispatch order across all
	// tenant queues (0 when not queued). With multiple active tenants this is
	// the round-robin pick order, not raw submission order.
	QueuePos int
	// Created, Started and Finished are the lifecycle timestamps (zero when
	// the phase has not been reached).
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Result is the Runner's return value (nil unless State is Succeeded).
	Result any
	// Err is the Runner's error (nil unless State is Failed or Canceled).
	Err error
}

// job is the manager-internal record. The manager mutex guards state and the
// timestamps; progress is atomic so high-frequency reporting never contends
// with snapshotting.
type job struct {
	id      string
	tenant  string
	meta    any
	run     Runner
	timeout time.Duration

	cancel    context.CancelFunc
	ctx       context.Context
	done      chan struct{} // closed on reaching a terminal state
	canceling bool          // Cancel was requested while running

	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	result   any
	err      error

	progressDone  atomic.Int64
	progressTotal atomic.Int64

	// tq is the tenant's admission record, set while the job is admitted
	// (queued or running) so dequeue and completion never need a map lookup.
	tq *tenantQueue
}

// tenantQueue is one tenant's admission state: its FIFO of queued jobs and
// the count of admitted (queued + running) jobs backing the quota check. The
// rotation references these records directly, so the per-job dispatch path
// touches no maps.
type tenantQueue struct {
	tenant string
	queue  []*job
	active int
}

// Manager runs jobs on a bounded worker pool behind per-tenant FIFO queues
// dispatched round-robin. Create one with New; it is safe for concurrent use.
type Manager struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond

	jobs map[string]*job
	// Admission state: each tenant with admitted jobs has a record in
	// tenants; tenants with a non-empty queue additionally hold exactly one
	// slot in rotation, and rrNext is the rotation cursor. Newly active
	// tenants join at the END of the rotation — joining at the cursor would
	// bound the newcomer's wait tighter, but would let two alternating
	// tenants starve a third forever. queuedCount is the sum of all queue
	// lengths.
	tenants     map[string]*tenantQueue
	rotation    []*tenantQueue
	rrNext      int
	queuedCount int

	finished []*job // terminal jobs in finish order, for TTL eviction
	seq      int
	closed   bool
	wg       sync.WaitGroup
}

// New builds a Manager and starts its worker pool.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.MaxFinished <= 0 {
		cfg.MaxFinished = DefaultMaxFinished
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	m := &Manager{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		tenants: make(map[string]*tenantQueue),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Options tunes one submission.
type Options struct {
	// Tenant attributes the job to a tenant for fair-share dispatch and the
	// per-tenant quota ("" is the shared anonymous tenant).
	Tenant string
	// Meta is an arbitrary caller payload echoed in every Snapshot (the HTTP
	// service stores the request summary here for job listings).
	Meta any
	// Timeout overrides Config.RunTimeout for this job (0 keeps the config).
	Timeout time.Duration
}

// Submit admits a job into its tenant's queue and returns its initial
// snapshot. It fails with ErrQueueFull when the admission queue is at
// capacity, ErrTenantQuota when the tenant's cap is reached, and ErrClosed
// after Close.
func (m *Manager) Submit(run Runner, opts Options) (Snapshot, error) {
	if run == nil {
		return Snapshot{}, errors.New("jobs: nil Runner")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, ErrClosed
	}
	m.evictExpiredLocked()
	if m.queuedCount >= m.cfg.QueueDepth {
		return Snapshot{}, fmt.Errorf("%w: %d jobs waiting (limit %d)", ErrQueueFull, m.queuedCount, m.cfg.QueueDepth)
	}
	tq := m.tenants[opts.Tenant]
	if m.cfg.MaxPerTenant > 0 && tq != nil && tq.active >= m.cfg.MaxPerTenant {
		return Snapshot{}, fmt.Errorf("%w: tenant %q has %d jobs admitted (limit %d)",
			ErrTenantQuota, opts.Tenant, tq.active, m.cfg.MaxPerTenant)
	}
	m.seq++
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = m.cfg.RunTimeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:      fmt.Sprintf("j%d", m.seq),
		tenant:  opts.Tenant,
		meta:    opts.Meta,
		run:     run,
		timeout: timeout,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   Queued,
		created: m.cfg.Now(),
	}
	m.jobs[j.id] = j
	if tq == nil {
		tq = &tenantQueue{tenant: opts.Tenant}
		m.tenants[opts.Tenant] = tq
	}
	j.tq = tq
	if len(tq.queue) == 0 {
		m.rotation = append(m.rotation, tq)
	}
	tq.queue = append(tq.queue, j)
	tq.active++
	m.queuedCount++
	m.cond.Signal()
	return m.snapshotLocked(j), nil
}

// Complete records a job that is already succeeded without queueing any work:
// the job is born in the Succeeded state carrying the given result, with all
// three lifecycle timestamps set to now, and is retained (and TTL-evicted)
// exactly like a job that ran. The HTTP service uses it when a result cache
// hit satisfies an asynchronous submission — the client still gets a job id
// to poll, but no worker slot or queue capacity is consumed.
func (m *Manager) Complete(result any, opts Options) (Snapshot, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	m.evictExpiredLocked()
	m.seq++
	now := m.cfg.Now()
	j := &job{
		id:       fmt.Sprintf("j%d", m.seq),
		tenant:   opts.Tenant,
		meta:     opts.Meta,
		done:     make(chan struct{}),
		state:    Succeeded,
		created:  now,
		started:  now,
		finished: now,
		result:   result,
	}
	m.jobs[j.id] = j
	m.finished = append(m.finished, j)
	close(j.done)
	snap := m.snapshotLocked(j)
	m.mu.Unlock()
	if obs := m.cfg.Observer; obs != nil {
		obs.JobFinished(j.tenant, Succeeded)
	}
	return snap, nil
}

// dequeueLocked pops the next job in round-robin order: the head of the
// rotation tenant's queue. A tenant whose queue empties leaves the rotation
// without advancing the cursor (the next tenant slides into its slot), so no
// tenant is skipped. Returns nil when nothing is queued. The manager mutex
// must be held.
func (m *Manager) dequeueLocked() *job {
	if m.queuedCount == 0 {
		return nil
	}
	if m.rrNext >= len(m.rotation) {
		m.rrNext = 0
	}
	tq := m.rotation[m.rrNext]
	j := tq.queue[0]
	tq.queue = tq.queue[1:]
	if len(tq.queue) == 0 {
		m.rotation = append(m.rotation[:m.rrNext], m.rotation[m.rrNext+1:]...)
	} else {
		m.rrNext++
	}
	m.queuedCount--
	return j
}

// releaseTenantLocked drops one admitted job from its tenant's accounting,
// retiring the tenant record once its last job leaves so a flood of distinct
// tenant names cannot grow the map unboundedly. The shared anonymous record
// stays resident — it is a single struct, and deleting it would make every
// unauthenticated drain/refill cycle reallocate it. The manager mutex must be
// held.
func (m *Manager) releaseTenantLocked(j *job) {
	j.tq.active--
	if j.tq.active == 0 && j.tq.tenant != "" {
		delete(m.tenants, j.tq.tenant)
	}
}

// removeQueuedLocked unlinks a queued job from its tenant's queue (for
// Cancel), maintaining the rotation and cursor. The manager mutex must be
// held.
func (m *Manager) removeQueuedLocked(j *job) {
	tq := j.tq
	for i, cand := range tq.queue {
		if cand == j {
			tq.queue = append(tq.queue[:i], tq.queue[i+1:]...)
			break
		}
	}
	if len(tq.queue) == 0 {
		for i, r := range m.rotation {
			if r == tq {
				m.rotation = append(m.rotation[:i], m.rotation[i+1:]...)
				if i < m.rrNext {
					m.rrNext--
				}
				break
			}
		}
	}
	m.queuedCount--
	m.releaseTenantLocked(j)
}

// worker pulls jobs in per-tenant round-robin order and runs them until
// Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for m.queuedCount == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.queuedCount == 0 && m.closed {
			m.mu.Unlock()
			return
		}
		j := m.dequeueLocked()
		j.state = Running
		j.started = m.cfg.Now()
		wait := j.started.Sub(j.created)
		ctx, timeoutCancel := j.ctx, context.CancelFunc(func() {})
		if j.timeout > 0 {
			ctx, timeoutCancel = context.WithTimeout(j.ctx, j.timeout)
		}
		m.mu.Unlock()

		obs := m.cfg.Observer
		if obs != nil {
			obs.JobStarted(j.tenant, wait)
		}

		result, err := runRecovered(j, ctx)
		timeoutCancel()

		m.mu.Lock()
		j.finished = m.cfg.Now()
		switch {
		case err == nil:
			j.state = Succeeded
			j.result = result
		case j.canceling && errors.Is(err, context.Canceled):
			j.state = Canceled
			j.err = err
		default:
			j.state = Failed
			j.err = err
		}
		terminal := j.state
		m.releaseTenantLocked(j)
		m.finished = append(m.finished, j)
		close(j.done)
		m.mu.Unlock()

		if obs != nil {
			obs.JobFinished(j.tenant, terminal)
		}
	}
}

// runRecovered executes one job's Runner, converting a panic into a failed
// job. Requests used to run on net/http handler goroutines, where a panicking
// algorithm killed only its own connection; a worker goroutine has no such
// net, and one poisonous request must not take the whole service down.
func runRecovered(j *job, ctx context.Context) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			result = nil
			err = fmt.Errorf("jobs: runner panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return j.run(ctx, j.report)
}

// report is the progress sink handed to every Runner. Total tracks the last
// event; done only ever advances, so a racy reporter cannot make a snapshot
// move backwards.
func (j *job) report(done, total int) {
	j.progressTotal.Store(int64(total))
	for {
		cur := j.progressDone.Load()
		if int64(done) <= cur || j.progressDone.CompareAndSwap(cur, int64(done)) {
			return
		}
	}
}

// Get returns the snapshot of one job.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return m.snapshotLocked(j), nil
}

// List returns a snapshot of every retained job in submission order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.snapshotLocked(j))
	}
	// Submission order: ids are a counter, so creation time break ties by id
	// length then lexicographic ("j2" < "j10").
	sortSnapshots(out)
	return out
}

// Cancel requests cancellation of a queued or running job. A queued job
// becomes canceled immediately and never runs; a running job has its context
// canceled and reaches the canceled state when its Runner returns. Canceling
// a finished job fails with ErrFinished.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	m.evictExpiredLocked()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch j.state {
	case Queued:
		m.removeQueuedLocked(j)
		j.cancel()
		j.state = Canceled
		j.err = context.Canceled
		j.finished = m.cfg.Now()
		m.finished = append(m.finished, j)
		close(j.done)
		m.mu.Unlock()
		if obs := m.cfg.Observer; obs != nil {
			obs.JobFinished(j.tenant, Canceled)
		}
		return nil
	case Running:
		j.canceling = true
		j.cancel()
		m.mu.Unlock()
		return nil
	default:
		state := j.state
		m.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrFinished, id, state)
	}
}

// Wait blocks until the job reaches a terminal state (returning its final
// snapshot) or ctx is done (returning ctx's error). It does not cancel the
// job on ctx expiry — that is the caller's decision.
func (m *Manager) Wait(ctx context.Context, id string) (Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	select {
	case <-j.done:
		// Snapshot the job directly rather than via Get: a terminal job is
		// immutable, and Get could already have TTL-evicted it.
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.snapshotLocked(j), nil
	case <-ctx.Done():
		return Snapshot{}, ctx.Err()
	}
}

// Forget drops a terminal job immediately instead of waiting for the TTL.
// Callers that consumed the result synchronously (the service's
// submit-and-wait path) use it so waited-for responses do not pin memory for
// the retention window. Forgetting a job that is still queued or running
// fails — Cancel is the way to stop live work.
func (m *Manager) Forget(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if !j.state.Terminal() {
		return fmt.Errorf("jobs: job %s is %s, not terminal", id, j.state)
	}
	delete(m.jobs, id)
	for i, f := range m.finished {
		if f == j {
			m.finished = append(m.finished[:i], m.finished[i+1:]...)
			break
		}
	}
	return nil
}

// Counts reports queue occupancy: jobs waiting, running, and retained in a
// terminal state.
func (m *Manager) Counts() (queued, running, finished int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictExpiredLocked()
	for _, j := range m.jobs {
		switch j.state {
		case Queued:
			queued++
		case Running:
			running++
		default:
			finished++
		}
	}
	return
}

// TenantCounts reports each tenant's admitted (queued + running) jobs; the
// HTTP service surfaces it for quota observability.
func (m *Manager) TenantCounts() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.tenants))
	for name, tq := range m.tenants {
		if tq.active > 0 { // the anonymous record stays resident at zero
			out[name] = tq.active
		}
	}
	return out
}

// Close stops the manager: queued jobs are canceled, running jobs have their
// contexts canceled, and Close returns once every worker has drained. Further
// submissions fail with ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	var drained []*job
	for j := m.dequeueLocked(); j != nil; j = m.dequeueLocked() {
		j.cancel()
		j.state = Canceled
		j.err = context.Canceled
		j.finished = m.cfg.Now()
		m.releaseTenantLocked(j)
		m.finished = append(m.finished, j)
		close(j.done)
		drained = append(drained, j)
	}
	for _, j := range m.jobs {
		if j.state == Running {
			j.canceling = true
			j.cancel()
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	if obs := m.cfg.Observer; obs != nil {
		for _, j := range drained {
			obs.JobFinished(j.tenant, Canceled)
		}
	}
	m.wg.Wait()
}

// snapshotLocked builds a Snapshot; the manager mutex must be held.
func (m *Manager) snapshotLocked(j *job) Snapshot {
	s := Snapshot{
		ID:       j.id,
		Tenant:   j.tenant,
		State:    j.state,
		Meta:     j.meta,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Result:   j.result,
		Err:      j.err,
		Progress: Progress{
			Done:  int(j.progressDone.Load()),
			Total: int(j.progressTotal.Load()),
		},
	}
	if j.state == Queued {
		s.QueuePos = m.queuePosLocked(j)
	}
	return s
}

// queuePosLocked computes a queued job's 1-based dispatch position by
// simulating round-robin draining from the current cursor. O(queued jobs),
// bounded by QueueDepth. The manager mutex must be held.
func (m *Manager) queuePosLocked(target *job) int {
	// One active tenant — the whole unauthenticated service, and any moment
	// the other tenants' queues have drained — dispatches in plain FIFO
	// order, so the position is the index in that queue. This keeps the
	// hot submit-snapshot path allocation-free.
	if len(m.rotation) == 1 {
		for i, j := range m.rotation[0].queue {
			if j == target {
				return i + 1
			}
		}
		return 0
	}
	rot := append([]*tenantQueue(nil), m.rotation...)
	next := make(map[*tenantQueue]int, len(rot))
	cur := m.rrNext
	pos := 0
	for len(rot) > 0 {
		if cur >= len(rot) {
			cur = 0
		}
		tq := rot[cur]
		j := tq.queue[next[tq]]
		pos++
		if j == target {
			return pos
		}
		next[tq]++
		if next[tq] >= len(tq.queue) {
			rot = append(rot[:cur], rot[cur+1:]...)
		} else {
			cur++
		}
	}
	return 0
}

// evictExpiredLocked drops finished jobs whose TTL has passed, and the
// oldest ones beyond the MaxFinished cap; the manager mutex must be held.
// The finished list is in finish order, so TTL eviction stops at the first
// unexpired entry.
func (m *Manager) evictExpiredLocked() {
	cutoff := m.cfg.Now().Add(-m.cfg.TTL)
	for len(m.finished) > 0 &&
		(len(m.finished) > m.cfg.MaxFinished || !m.finished[0].finished.After(cutoff)) {
		delete(m.jobs, m.finished[0].id)
		m.finished = m.finished[1:]
	}
}

// sortSnapshots orders by job id's numeric suffix (submission order): ids
// compare by length first ("j9" < "j10"), which is exactly the counter
// order.
func sortSnapshots(s []Snapshot) {
	sort.Slice(s, func(i, j int) bool {
		a, b := s[i].ID, s[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
}
