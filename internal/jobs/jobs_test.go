package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestManager builds a manager that the test always closes.
func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := New(cfg)
	t.Cleanup(m.Close)
	return m
}

// gatedRunner returns a runner that signals `entered` when it starts and then
// blocks until release is closed or the job context is canceled — the
// deterministic hook that lets tests pin a job in the running state.
func gatedRunner(entered chan<- string, release <-chan struct{}, result any) Runner {
	return func(ctx context.Context, progress func(done, total int)) (any, error) {
		if entered != nil {
			entered <- "entered"
		}
		select {
		case <-release:
			return result, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestJobLifecycleSucceeds(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	snap, err := m.Submit(func(ctx context.Context, progress func(done, total int)) (any, error) {
		progress(1, 2)
		progress(2, 2)
		return "payload", nil
	}, Options{Meta: "meta"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap.State != Queued || snap.ID == "" {
		t.Fatalf("initial snapshot = %+v, want queued with id", snap)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != Succeeded {
		t.Fatalf("final state = %s (err %v), want succeeded", final.State, final.Err)
	}
	if final.Result != "payload" || final.Meta != "meta" {
		t.Errorf("final snapshot result/meta = %v/%v", final.Result, final.Meta)
	}
	if final.Progress != (Progress{Done: 2, Total: 2}) {
		t.Errorf("final progress = %+v, want 2/2", final.Progress)
	}
	if final.Created.IsZero() || final.Started.IsZero() || final.Finished.IsZero() {
		t.Errorf("lifecycle timestamps incomplete: %+v", final)
	}
}

func TestJobLifecycleFails(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	boom := errors.New("boom")
	snap, err := m.Submit(func(context.Context, func(int, int)) (any, error) {
		return nil, boom
	}, Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != Failed || !errors.Is(final.Err, boom) {
		t.Fatalf("final = %s/%v, want failed/boom", final.State, final.Err)
	}
}

func TestQueueFullRejectsSubmission(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1})
	entered := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)

	// Occupy the single worker...
	running, err := m.Submit(gatedRunner(entered, release, nil), Options{})
	if err != nil {
		t.Fatalf("Submit running: %v", err)
	}
	<-entered
	// ...fill the one queue slot...
	queued, err := m.Submit(gatedRunner(nil, release, nil), Options{})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	if got, _ := m.Get(queued.ID); got.QueuePos != 1 {
		t.Errorf("queued job position = %d, want 1", got.QueuePos)
	}
	// ...and the next submission must be rejected.
	if _, err := m.Submit(gatedRunner(nil, release, nil), Options{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Submit error = %v, want ErrQueueFull", err)
	}
	if q, r, _ := m.Counts(); q != 1 || r != 1 {
		t.Errorf("Counts = %d queued %d running, want 1/1", q, r)
	}
	_ = running
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 4})
	entered := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	if _, err := m.Submit(gatedRunner(entered, release, nil), Options{}); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-entered

	ran := make(chan struct{})
	queued, err := m.Submit(func(context.Context, func(int, int)) (any, error) {
		close(ran)
		return nil, nil
	}, Options{})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	snap, err := m.Get(queued.ID)
	if err != nil || snap.State != Canceled {
		t.Fatalf("after cancel: %+v, %v; want canceled", snap, err)
	}
	// Unblock the worker; the canceled job must never start.
	select {
	case <-ran:
		t.Fatal("canceled queued job still ran")
	case <-time.After(20 * time.Millisecond):
	}
	if err := m.Cancel(queued.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("second cancel error = %v, want ErrFinished", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	entered := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	snap, err := m.Submit(gatedRunner(entered, release, nil), Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-entered
	if err := m.Cancel(snap.ID); err != nil {
		t.Fatalf("Cancel running: %v", err)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != Canceled || !errors.Is(final.Err, context.Canceled) {
		t.Fatalf("final = %s/%v, want canceled/context.Canceled", final.State, final.Err)
	}
}

// TestPanickingRunnerFailsJobOnly pins the containment guarantee: a panic in
// one job's Runner becomes that job's failure, the worker survives, and the
// manager keeps serving subsequent jobs.
func TestPanickingRunnerFailsJobOnly(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	bad, err := m.Submit(func(context.Context, func(int, int)) (any, error) {
		panic("algorithm bug")
	}, Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := m.Wait(context.Background(), bad.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != Failed || final.Err == nil || !strings.Contains(final.Err.Error(), "algorithm bug") {
		t.Fatalf("panicked job = %s/%v, want failed with the panic value", final.State, final.Err)
	}
	// The single worker survived the panic and still runs jobs.
	good, err := m.Submit(func(context.Context, func(int, int)) (any, error) { return "ok", nil }, Options{})
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	if snap, err := m.Wait(context.Background(), good.ID); err != nil || snap.State != Succeeded {
		t.Fatalf("job after panic = %+v, %v; want succeeded", snap, err)
	}
}

func TestRunTimeoutFailsJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, RunTimeout: 5 * time.Millisecond})
	snap, err := m.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != Failed || !errors.Is(final.Err, context.DeadlineExceeded) {
		t.Fatalf("final = %s/%v, want failed/deadline exceeded", final.State, final.Err)
	}
}

func TestWaitHonorsCallerContext(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	entered := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	snap, err := m.Submit(gatedRunner(entered, release, nil), Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Wait(ctx, snap.ID); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
	// The job itself is untouched by the caller's context.
	if got, _ := m.Get(snap.ID); got.State != Running {
		t.Errorf("job state after abandoned Wait = %s, want running", got.State)
	}
}

func TestTTLEvictsFinishedJobs(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
	m := newTestManager(t, Config{Workers: 1, TTL: time.Minute, Now: now})
	snap, err := m.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }, Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := m.Wait(context.Background(), snap.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// Still retained inside the TTL...
	advance(59 * time.Second)
	if got, err := m.Get(snap.ID); err != nil || !got.State.Terminal() {
		t.Fatalf("inside TTL: %+v, %v; want retained terminal job", got, err)
	}
	// ...gone after it.
	advance(2 * time.Second)
	if _, err := m.Get(snap.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after TTL: error = %v, want ErrNotFound", err)
	}
	if len(m.List()) != 0 {
		t.Errorf("List after TTL = %v, want empty", m.List())
	}
}

// TestConcurrentSubmitPollCancel hammers one manager from many goroutines —
// submissions racing polls, cancels and completions — and checks the final
// accounting. Run with -race, this is the jobs-layer concurrency guard.
func TestConcurrentSubmitPollCancel(t *testing.T) {
	m := newTestManager(t, Config{Workers: 4, QueueDepth: 1024})
	const n = 60
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, err := m.Submit(func(ctx context.Context, progress func(done, total int)) (any, error) {
				for u := 1; u <= 10; u++ {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					progress(u, 10)
				}
				return i, nil
			}, Options{Meta: i})
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			ids[i] = snap.ID
			// Poll concurrently with the run.
			if _, err := m.Get(snap.ID); err != nil {
				t.Errorf("Get %d: %v", i, err)
			}
			if i%3 == 0 {
				// Cancel a third of the jobs at a random point in their life;
				// both outcomes (canceled in time, or already finished) are
				// legal — the invariant is a clean terminal state.
				_ = m.Cancel(snap.ID)
			}
			final, err := m.Wait(context.Background(), snap.ID)
			if err != nil {
				t.Errorf("Wait %d: %v", i, err)
				return
			}
			if !final.State.Terminal() {
				t.Errorf("job %d final state %s not terminal", i, final.State)
			}
			if final.State == Succeeded && final.Result != i {
				t.Errorf("job %d result = %v, want %d", i, final.Result, i)
			}
		}(i)
	}
	wg.Wait()
	if q, r, f := m.Counts(); q != 0 || r != 0 || f != n {
		t.Errorf("Counts = %d/%d/%d, want 0/0/%d", q, r, f, n)
	}
}

// TestFIFOOrder checks the admission queue is first-in-first-out: with one
// worker, jobs run in submission order.
func TestFIFOOrder(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 16})
	entered := make(chan string, 1)
	release := make(chan struct{})
	if _, err := m.Submit(gatedRunner(entered, release, nil), Options{}); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-entered

	var mu sync.Mutex
	var order []int
	var ids []string
	for i := 0; i < 5; i++ {
		i := i
		snap, err := m.Submit(func(context.Context, func(int, int)) (any, error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil, nil
		}, Options{})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, snap.ID)
	}
	// Queue positions reflect submission order before the worker frees up.
	for i, id := range ids {
		if snap, _ := m.Get(id); snap.QueuePos != i+1 {
			t.Errorf("job %s queue position = %d, want %d", id, snap.QueuePos, i+1)
		}
	}
	close(release)
	for _, id := range ids {
		if _, err := m.Wait(context.Background(), id); err != nil {
			t.Fatalf("Wait %s: %v", id, err)
		}
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("run order = %v, want FIFO", order)
		}
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 8})
	entered := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	running, err := m.Submit(gatedRunner(entered, release, nil), Options{})
	if err != nil {
		t.Fatalf("Submit running: %v", err)
	}
	<-entered
	queued, err := m.Submit(gatedRunner(nil, release, nil), Options{})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	m.Close()
	for _, id := range []string{running.ID, queued.ID} {
		snap, err := m.Get(id)
		if err != nil || snap.State != Canceled {
			t.Errorf("after Close, job %s = %+v, %v; want canceled", id, snap, err)
		}
	}
	if _, err := m.Submit(gatedRunner(nil, release, nil), Options{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close error = %v, want ErrClosed", err)
	}
}

func TestProgressSnapshotNeverRegresses(t *testing.T) {
	j := &job{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				j.report(g*1000+i, 4000)
			}
		}(g)
	}
	donech := make(chan struct{})
	go func() {
		defer close(donech)
		last := 0
		for i := 0; i < 10000; i++ {
			d := int(j.progressDone.Load())
			if d < last {
				t.Errorf("progress regressed: %d after %d", d, last)
				return
			}
			last = d
		}
	}()
	wg.Wait()
	<-donech
}

func TestForgetDropsTerminalJobsOnly(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	entered := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	running, err := m.Submit(gatedRunner(entered, release, nil), Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-entered
	if err := m.Forget(running.ID); err == nil {
		t.Error("Forget of a running job succeeded")
	}
	done, err := m.Submit(func(context.Context, func(int, int)) (any, error) { return "x", nil }, Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// The gated job holds the single worker; free it so the second job runs.
	if err := m.Cancel(running.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if _, err := m.Wait(context.Background(), done.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := m.Forget(done.ID); err != nil {
		t.Fatalf("Forget terminal job: %v", err)
	}
	if _, err := m.Get(done.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("forgotten job still retained: %v", err)
	}
	if err := m.Forget("j999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Forget unknown = %v, want ErrNotFound", err)
	}
}

// TestMaxFinishedCapsRetention submits more jobs than the retention cap and
// checks the oldest finished ones are evicted even though the TTL has not
// expired — results can be large, so a burst must not pin memory.
func TestMaxFinishedCapsRetention(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 32, MaxFinished: 3})
	var ids []string
	for i := 0; i < 8; i++ {
		snap, err := m.Submit(func(context.Context, func(int, int)) (any, error) { return nil, nil }, Options{})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, snap.ID)
		if _, err := m.Wait(context.Background(), snap.ID); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}
	if got := len(m.List()); got > 3 {
		t.Errorf("retained %d finished jobs, cap is 3", got)
	}
	// The newest job survives; the oldest is gone.
	if _, err := m.Get(ids[len(ids)-1]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest job retained beyond the cap: %v", err)
	}
}

func TestGetUnknownJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	if _, err := m.Get("j999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get unknown = %v, want ErrNotFound", err)
	}
	if err := m.Cancel("j999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel unknown = %v, want ErrNotFound", err)
	}
	if _, err := m.Wait(context.Background(), "j999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Wait unknown = %v, want ErrNotFound", err)
	}
}

// BenchmarkJobThroughput measures the manager's per-job overhead: submit and
// drain batches of trivial jobs through a small worker pool. The number is
// the full queued→running→succeeded round trip including snapshots.
func BenchmarkJobThroughput(b *testing.B) {
	m := New(Config{Workers: 4, QueueDepth: DefaultQueueDepth})
	defer m.Close()
	noop := Runner(func(context.Context, func(int, int)) (any, error) { return nil, nil })
	b.ReportAllocs()
	for i := 0; i < b.N; i += DefaultQueueDepth {
		batch := min(DefaultQueueDepth, b.N-i)
		ids := make([]string, 0, batch)
		for k := 0; k < batch; k++ {
			snap, err := m.Submit(noop, Options{})
			if err != nil {
				b.Fatalf("Submit: %v", err)
			}
			ids = append(ids, snap.ID)
		}
		for _, id := range ids {
			if _, err := m.Wait(context.Background(), id); err != nil {
				b.Fatalf("Wait: %v", err)
			}
		}
	}
}

func ExampleManager() {
	m := New(Config{Workers: 1})
	defer m.Close()
	snap, _ := m.Submit(func(ctx context.Context, progress func(done, total int)) (any, error) {
		progress(1, 1)
		return 42, nil
	}, Options{})
	final, _ := m.Wait(context.Background(), snap.ID)
	fmt.Println(final.State, final.Result)
	// Output: succeeded 42
}
