// Package parallel provides the bounded, deterministic fork-join helpers
// shared by the algorithms that evaluate independent candidates concurrently
// (Incognito's lattice layers, TopDown's specialization candidates) and by
// the row-chunked scan kernels in internal/dataset and internal/metrics. The
// result is indexed like the input and the first error in index order wins,
// so callers behave identically for every worker count.
package parallel

import (
	"sync"
	"sync/atomic"
)

// MinChunk is the default smallest number of row-granular items a single
// chunk of a Fold or Chunks call should hold. Below roughly a thousand rows
// the goroutine hand-off costs more than the scan itself, so smaller inputs
// run inline on the calling goroutine. Map deliberately has no such cutoff:
// its callers hand it a few coarse, expensive tasks (lattice nodes, scan
// candidates), where inlining small n would serialize exactly the work the
// pool exists for.
const MinChunk = 1024

// Map computes f(0..n-1) on a pool of at most workers goroutines and returns
// the results in index order. workers <= 1 runs sequentially on the calling
// goroutine (stopping at the first error); the parallel path stops claiming
// new indices after a failure and returns the failed index's error with the
// smallest position, keeping error reporting deterministic. f must be safe
// for concurrent calls when workers > 1.
func Map[T any](n, workers int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	workers = min(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := f(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := f(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Fold splits [0, n) into at most workers contiguous chunks of at least
// minChunk items each (MinChunk when minChunk <= 0), computes fold(lo, hi)
// for every chunk concurrently, and combines the partial states strictly
// left to right with merge. When the input is too small to fill two chunks
// — or workers <= 1 — the whole range folds inline on the calling goroutine
// and merge is never called, so tiny inputs pay no goroutine overhead.
//
// Determinism contract: chunk boundaries depend on workers, so the combined
// state is identical for every worker count only when merge is exact —
// integer accumulation, map/list unions, anything boundary-invariant.
// Floating-point accumulation whose rounding depends on where the chunks
// split must not be folded directly; reformulate it into exact partials
// first (see metrics.NCP's count-based scan). Errors surface in chunk
// order: the lowest-indexed failing chunk wins, and a merge error wins over
// any fold error from a later chunk.
func Fold[S any](n, workers, minChunk int, fold func(lo, hi int) (S, error), merge func(acc, next S) (S, error)) (S, error) {
	if minChunk <= 0 {
		minChunk = MinChunk
	}
	chunks := n / minChunk
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		return fold(0, n)
	}
	parts, err := Map(chunks, workers, func(ci int) (S, error) {
		return fold(ci*n/chunks, (ci+1)*n/chunks)
	})
	if err != nil {
		var zero S
		return zero, err
	}
	acc := parts[0]
	for _, next := range parts[1:] {
		if acc, err = merge(acc, next); err != nil {
			var zero S
			return zero, err
		}
	}
	return acc, nil
}

// Chunks runs body over contiguous sub-ranges of [0, n) concurrently, with
// the same chunk sizing and inline small-n cutoff as Fold. It is meant for
// side-effecting scans that write disjoint regions of a shared buffer
// (fingerprint cell hashing, per-row scatter); body must touch only state
// derived from its own [lo, hi) range.
func Chunks(n, workers, minChunk int, body func(lo, hi int)) {
	type void = struct{}
	_, _ = Fold(n, workers, minChunk,
		func(lo, hi int) (void, error) { body(lo, hi); return void{}, nil },
		func(acc, _ void) (void, error) { return acc, nil })
}
