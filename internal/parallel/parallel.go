// Package parallel provides the bounded, deterministic fork-join helper
// shared by the algorithms that evaluate independent candidates concurrently
// (Incognito's lattice layers, TopDown's specialization candidates). The
// result is indexed like the input and the first error in index order wins,
// so callers behave identically for every worker count.
package parallel

import (
	"sync"
	"sync/atomic"
)

// Map computes f(0..n-1) on a pool of at most workers goroutines and returns
// the results in index order. workers <= 1 runs sequentially on the calling
// goroutine (stopping at the first error); the parallel path stops claiming
// new indices after a failure and returns the failed index's error with the
// smallest position, keeping error reporting deterministic. f must be safe
// for concurrent calls when workers > 1.
func Map[T any](n, workers int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	workers = min(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := f(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := f(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
