package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		out, err := Map(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: len=%d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, 4, func(int) (string, error) { return "", errors.New("never called") })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map = %v, %v", out, err)
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		_, err := Map(20, workers, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 7:
				return 0, errB
			}
			return i, nil
		})
		// Index 3 fails; in the sequential path index 7 is never reached, and
		// in the parallel path the smallest failed index is reported.
		if !errors.Is(err, errA) && !(workers > 1 && errors.Is(err, errB)) {
			t.Fatalf("workers=%d: err=%v", workers, err)
		}
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
	}
}

func TestMapStopsClaimingAfterFailure(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	_, err := Map(10_000, 4, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := calls.Load(); n == 10_000 {
		t.Error("pool kept claiming work after a failure")
	}
}

// TestMapBoundsConcurrency pins the worker-cap semantics the scan kernels
// (and kmember's chunked scanBest) rely on: Map never runs more than
// `workers` invocations of f at once, whatever n is.
func TestMapBoundsConcurrency(t *testing.T) {
	for _, workers := range []int{1, 2, 3} {
		var active, peak atomic.Int64
		_, err := Map(64, workers, func(i int) (int, error) {
			cur := active.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond) // widen the overlap window
			active.Add(-1)
			return i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if p := peak.Load(); p > int64(workers) {
			t.Errorf("workers=%d: observed %d concurrent calls", workers, p)
		}
	}
}

func TestFoldMatchesSequential(t *testing.T) {
	const n = 10_000
	want := 0
	for i := 0; i < n; i++ {
		want += i
	}
	sum := func(lo, hi int) (int, error) {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		return s, nil
	}
	add := func(a, b int) (int, error) { return a + b, nil }
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		for _, minChunk := range []int{0, 1, 64, n, 2 * n} {
			got, err := Fold(n, workers, minChunk, sum, add)
			if err != nil {
				t.Fatalf("workers=%d minChunk=%d: %v", workers, minChunk, err)
			}
			if got != want {
				t.Fatalf("workers=%d minChunk=%d: sum=%d want %d", workers, minChunk, got, want)
			}
		}
	}
}

// TestFoldMergeOrder proves partials merge strictly left to right: folding
// index ranges into slices must reassemble the identity permutation.
func TestFoldMergeOrder(t *testing.T) {
	const n = 4096
	got, err := Fold(n, 8, 16,
		func(lo, hi int) ([]int, error) {
			part := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				part = append(part, i)
			}
			return part, nil
		},
		func(acc, next []int) ([]int, error) { return append(acc, next...), nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("len=%d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d]=%d: chunks merged out of order", i, v)
		}
	}
}

// TestFoldInlineCutoff: inputs too small to fill two minChunk-sized chunks
// run on the calling goroutine in a single fold call, and merge never runs.
func TestFoldInlineCutoff(t *testing.T) {
	folds, merges := 0, 0 // non-atomic on purpose: inline path is single-goroutine
	got, err := Fold(MinChunk*2-1, 8, 0,
		func(lo, hi int) (int, error) { folds++; return hi - lo, nil },
		func(a, b int) (int, error) { merges++; return a + b, nil })
	if err != nil || got != MinChunk*2-1 {
		t.Fatalf("got %d, %v", got, err)
	}
	if folds != 1 || merges != 0 {
		t.Errorf("folds=%d merges=%d; want 1 inline fold, no merges", folds, merges)
	}
	// workers <= 1 stays inline no matter how large n is.
	folds = 0
	if _, err := Fold(1_000_000, 1, 1,
		func(lo, hi int) (int, error) { folds++; return 0, nil },
		func(a, b int) (int, error) { merges++; return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if folds != 1 || merges != 0 {
		t.Errorf("workers=1: folds=%d merges=%d", folds, merges)
	}
}

func TestFoldErrors(t *testing.T) {
	boom := errors.New("boom")
	// Lowest-indexed failing chunk wins regardless of completion order.
	_, err := Fold(8192, 4, 1024,
		func(lo, hi int) (int, error) {
			if lo == 0 {
				return 0, boom
			}
			return hi - lo, nil
		},
		func(a, b int) (int, error) { return a + b, nil })
	if !errors.Is(err, boom) {
		t.Fatalf("fold error = %v", err)
	}
	// A merge error surfaces too.
	_, err = Fold(8192, 4, 1024,
		func(lo, hi int) (int, error) { return hi - lo, nil },
		func(a, b int) (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("merge error = %v", err)
	}
}

func TestChunksCoversRange(t *testing.T) {
	const n = 50_000
	seen := make([]int32, n)
	var mu sync.Mutex
	var spans [][2]int
	Chunks(n, 4, 1024, func(lo, hi int) {
		mu.Lock()
		spans = append(spans, [2]int{lo, hi})
		mu.Unlock()
		for i := lo; i < hi; i++ {
			seen[i]++ // disjoint ranges: no atomics needed
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	if len(spans) != 4 {
		t.Fatalf("chunks=%d want 4", len(spans))
	}
}
