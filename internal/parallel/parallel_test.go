package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		out, err := Map(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: len=%d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, 4, func(int) (string, error) { return "", errors.New("never called") })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map = %v, %v", out, err)
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		_, err := Map(20, workers, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 7:
				return 0, errB
			}
			return i, nil
		})
		// Index 3 fails; in the sequential path index 7 is never reached, and
		// in the parallel path the smallest failed index is reported.
		if !errors.Is(err, errA) && !(workers > 1 && errors.Is(err, errB)) {
			t.Fatalf("workers=%d: err=%v", workers, err)
		}
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
	}
}

func TestMapStopsClaimingAfterFailure(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	_, err := Map(10_000, 4, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := calls.Load(); n == 10_000 {
		t.Error("pool kept claiming work after a failure")
	}
}
