// Package classify provides the lightweight classifiers used to measure the
// classification utility of anonymized releases: a categorical Naive Bayes
// with Laplace smoothing, a mixed-attribute k-nearest-neighbours classifier,
// and a majority-class baseline. The survey's classification-metric
// experiments train on the (anonymized) release and test on held-out records,
// reporting accuracy; generalized values are simply treated as categories,
// which is exactly how the original experiments handle them.
package classify

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/ppdp/ppdp/internal/dataset"
)

// Common errors.
var (
	// ErrNoLabel is returned when the label attribute is missing.
	ErrNoLabel = errors.New("classify: label attribute not in table")
	// ErrNotTrained is returned when Predict is called before Train.
	ErrNotTrained = errors.New("classify: model has not been trained")
	// ErrEmptyTraining is returned when a training table has no rows.
	ErrEmptyTraining = errors.New("classify: training table is empty")
)

// Classifier is a supervised model over table rows.
type Classifier interface {
	// Name identifies the classifier in experiment output.
	Name() string
	// Train fits the model to the table, predicting the label attribute from
	// the feature attributes.
	Train(t *dataset.Table, features []string, label string) error
	// Predict returns the predicted label for a feature vector given in the
	// training feature order.
	Predict(features []string) (string, error)
}

// ---------------------------------------------------------------------------
// Majority baseline
// ---------------------------------------------------------------------------

// Majority always predicts the most frequent training label. It is the
// baseline every anonymized release must beat for the release to carry any
// classification utility.
type Majority struct {
	label string
}

// Name implements Classifier.
func (m *Majority) Name() string { return "majority" }

// Train implements Classifier.
func (m *Majority) Train(t *dataset.Table, _ []string, label string) error {
	if t.Len() == 0 {
		return ErrEmptyTraining
	}
	freq, err := t.Frequencies(label)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoLabel, err)
	}
	best, bestN := "", -1
	keys := make([]string, 0, len(freq))
	for v := range freq {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	for _, v := range keys {
		if freq[v] > bestN {
			best, bestN = v, freq[v]
		}
	}
	m.label = best
	return nil
}

// Predict implements Classifier.
func (m *Majority) Predict(_ []string) (string, error) {
	if m.label == "" {
		return "", ErrNotTrained
	}
	return m.label, nil
}

// ---------------------------------------------------------------------------
// Naive Bayes
// ---------------------------------------------------------------------------

// NaiveBayes is a categorical Naive Bayes classifier with Laplace smoothing.
// Numeric and generalized values are treated as opaque categories, which
// keeps the classifier applicable to anonymized releases without special
// casing.
type NaiveBayes struct {
	features []string
	labels   []string
	prior    map[string]float64
	// cond[featureIndex][label][value] = smoothed conditional probability.
	cond []map[string]map[string]float64
	// domain[featureIndex] = number of distinct values (for smoothing of
	// unseen values).
	domain []int
	// trainSize caches the training count per label for unseen-value
	// smoothing.
	labelCount map[string]int
}

// Name implements Classifier.
func (nb *NaiveBayes) Name() string { return "naive-bayes" }

// Train implements Classifier.
func (nb *NaiveBayes) Train(t *dataset.Table, features []string, label string) error {
	if t.Len() == 0 {
		return ErrEmptyTraining
	}
	labelCol, err := t.Schema().Index(label)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoLabel, err)
	}
	cols := make([]int, len(features))
	for i, f := range features {
		c, err := t.Schema().Index(f)
		if err != nil {
			return err
		}
		cols[i] = c
	}

	labelFreq := make(map[string]int)
	counts := make([]map[string]map[string]int, len(features))
	domains := make([]map[string]struct{}, len(features))
	for i := range features {
		counts[i] = make(map[string]map[string]int)
		domains[i] = make(map[string]struct{})
	}
	for r := 0; r < t.Len(); r++ {
		row, err := t.Row(r)
		if err != nil {
			return err
		}
		y := row[labelCol]
		labelFreq[y]++
		for i, c := range cols {
			v := row[c]
			domains[i][v] = struct{}{}
			if counts[i][y] == nil {
				counts[i][y] = make(map[string]int)
			}
			counts[i][y][v]++
		}
	}

	nb.features = append([]string(nil), features...)
	nb.labels = nb.labels[:0]
	for y := range labelFreq {
		nb.labels = append(nb.labels, y)
	}
	sort.Strings(nb.labels)
	nb.prior = make(map[string]float64, len(nb.labels))
	nb.labelCount = make(map[string]int, len(nb.labels))
	for _, y := range nb.labels {
		nb.prior[y] = float64(labelFreq[y]) / float64(t.Len())
		nb.labelCount[y] = labelFreq[y]
	}
	nb.cond = make([]map[string]map[string]float64, len(features))
	nb.domain = make([]int, len(features))
	for i := range features {
		nb.domain[i] = len(domains[i])
		nb.cond[i] = make(map[string]map[string]float64)
		for _, y := range nb.labels {
			nb.cond[i][y] = make(map[string]float64)
			denom := float64(labelFreq[y] + nb.domain[i])
			for v := range domains[i] {
				nb.cond[i][y][v] = (float64(counts[i][y][v]) + 1) / denom
			}
		}
	}
	return nil
}

// Predict implements Classifier.
func (nb *NaiveBayes) Predict(features []string) (string, error) {
	if len(nb.labels) == 0 {
		return "", ErrNotTrained
	}
	if len(features) != len(nb.features) {
		return "", fmt.Errorf("classify: feature vector has %d values, model expects %d", len(features), len(nb.features))
	}
	best := ""
	bestScore := math.Inf(-1)
	for _, y := range nb.labels {
		score := math.Log(nb.prior[y])
		for i, v := range features {
			p, ok := nb.cond[i][y][v]
			if !ok {
				// Unseen value: Laplace mass.
				p = 1 / float64(nb.labelCount[y]+nb.domain[i]+1)
			}
			score += math.Log(p)
		}
		if score > bestScore {
			best, bestScore = y, score
		}
	}
	return best, nil
}

// ---------------------------------------------------------------------------
// k-nearest neighbours
// ---------------------------------------------------------------------------

// KNN is a k-nearest-neighbours classifier with a mixed distance: numeric
// features contribute normalized absolute difference, categorical features
// contribute 0/1 mismatch. Values that fail to parse as numbers (generalized
// intervals) fall back to the categorical distance, so the classifier remains
// usable on anonymized data.
type KNN struct {
	// K is the number of neighbours (default 5).
	K int

	features []string
	numeric  []bool
	scale    []float64
	rows     [][]string
	labels   []string
}

// Name implements Classifier.
func (k *KNN) Name() string { return fmt.Sprintf("%d-nn", k.neighbours()) }

func (k *KNN) neighbours() int {
	if k.K <= 0 {
		return 5
	}
	return k.K
}

// Train implements Classifier.
func (k *KNN) Train(t *dataset.Table, features []string, label string) error {
	if t.Len() == 0 {
		return ErrEmptyTraining
	}
	labelCol, err := t.Schema().Index(label)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoLabel, err)
	}
	cols := make([]int, len(features))
	k.numeric = make([]bool, len(features))
	k.scale = make([]float64, len(features))
	for i, f := range features {
		c, err := t.Schema().Index(f)
		if err != nil {
			return err
		}
		cols[i] = c
		attr, _ := t.Schema().ByName(f)
		k.numeric[i] = attr.Type == dataset.Numeric
		k.scale[i] = 1
		if k.numeric[i] {
			lo, hi, err := t.NumericRange(f)
			if err == nil && hi > lo {
				k.scale[i] = hi - lo
			}
		}
	}
	k.features = append([]string(nil), features...)
	k.rows = make([][]string, 0, t.Len())
	k.labels = make([]string, 0, t.Len())
	for r := 0; r < t.Len(); r++ {
		row, err := t.Row(r)
		if err != nil {
			return err
		}
		vec := make([]string, len(cols))
		for i, c := range cols {
			vec[i] = row[c]
		}
		k.rows = append(k.rows, vec)
		k.labels = append(k.labels, row[labelCol])
	}
	return nil
}

// Predict implements Classifier.
func (k *KNN) Predict(features []string) (string, error) {
	if len(k.rows) == 0 {
		return "", ErrNotTrained
	}
	if len(features) != len(k.features) {
		return "", fmt.Errorf("classify: feature vector has %d values, model expects %d", len(features), len(k.features))
	}
	type nd struct {
		dist  float64
		label string
	}
	neighbours := make([]nd, 0, len(k.rows))
	for i, row := range k.rows {
		neighbours = append(neighbours, nd{dist: k.distance(row, features), label: k.labels[i]})
	}
	sort.Slice(neighbours, func(a, b int) bool { return neighbours[a].dist < neighbours[b].dist })
	n := k.neighbours()
	if n > len(neighbours) {
		n = len(neighbours)
	}
	votes := make(map[string]int)
	for i := 0; i < n; i++ {
		votes[neighbours[i].label]++
	}
	best, bestN := "", -1
	keys := make([]string, 0, len(votes))
	for v := range votes {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	for _, v := range keys {
		if votes[v] > bestN {
			best, bestN = v, votes[v]
		}
	}
	return best, nil
}

func (k *KNN) distance(a, b []string) float64 {
	d := 0.0
	for i := range a {
		if k.numeric[i] {
			fa, errA := strconv.ParseFloat(strings.TrimSpace(a[i]), 64)
			fb, errB := strconv.ParseFloat(strings.TrimSpace(b[i]), 64)
			if errA == nil && errB == nil {
				d += math.Abs(fa-fb) / k.scale[i]
				continue
			}
		}
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

// Evaluation summarizes a train/test run.
type Evaluation struct {
	// Accuracy is the fraction of test records classified correctly.
	Accuracy float64
	// BaselineAccuracy is the majority-class accuracy on the same test set.
	BaselineAccuracy float64
	// TestSize is the number of evaluated records.
	TestSize int
}

// Evaluate trains the classifier on the training table and measures accuracy
// on the test table. Both tables must contain the feature and label columns;
// they need not share a schema object (a generalized training release and a
// raw test set is the standard setup).
func Evaluate(c Classifier, train, test *dataset.Table, features []string, label string) (*Evaluation, error) {
	if err := c.Train(train, features, label); err != nil {
		return nil, err
	}
	labelCol, err := test.Schema().Index(label)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoLabel, err)
	}
	cols := make([]int, len(features))
	for i, f := range features {
		ci, err := test.Schema().Index(f)
		if err != nil {
			return nil, err
		}
		cols[i] = ci
	}
	baseline := &Majority{}
	if err := baseline.Train(train, features, label); err != nil {
		return nil, err
	}
	correct, baseCorrect := 0, 0
	for r := 0; r < test.Len(); r++ {
		row, err := test.Row(r)
		if err != nil {
			return nil, err
		}
		vec := make([]string, len(cols))
		for i, ci := range cols {
			vec[i] = row[ci]
		}
		pred, err := c.Predict(vec)
		if err != nil {
			return nil, err
		}
		if pred == row[labelCol] {
			correct++
		}
		bp, _ := baseline.Predict(vec)
		if bp == row[labelCol] {
			baseCorrect++
		}
	}
	if test.Len() == 0 {
		return &Evaluation{}, nil
	}
	return &Evaluation{
		Accuracy:         float64(correct) / float64(test.Len()),
		BaselineAccuracy: float64(baseCorrect) / float64(test.Len()),
		TestSize:         test.Len(),
	}, nil
}

// SplitEvaluate splits the table into train/test with the given fraction and
// evaluates the classifier; it is a convenience for experiments on
// non-anonymized data.
func SplitEvaluate(c Classifier, t *dataset.Table, features []string, label string, trainFrac float64, seed int64) (*Evaluation, error) {
	rng := rand.New(rand.NewSource(seed))
	train, test := t.Split(trainFrac, rng)
	return Evaluate(c, train, test, features, label)
}
