package classify

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/synth"
)

func toyTable(t *testing.T) *dataset.Table {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "color", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "size", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
		dataset.Attribute{Name: "class", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
	rows := []dataset.Row{
		{"red", "1", "apple"},
		{"red", "2", "apple"},
		{"red", "1", "apple"},
		{"yellow", "8", "banana"},
		{"yellow", "9", "banana"},
		{"yellow", "7", "banana"},
	}
	tbl, err := dataset.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestMajority(t *testing.T) {
	tbl := toyTable(t)
	m := &Majority{}
	if _, err := m.Predict(nil); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained predict error = %v", err)
	}
	if err := m.Train(tbl, nil, "class"); err != nil {
		t.Fatal(err)
	}
	p, err := m.Predict(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p != "apple" && p != "banana" {
		t.Errorf("majority = %q", p)
	}
	if m.Name() != "majority" {
		t.Errorf("Name = %q", m.Name())
	}
	if err := m.Train(tbl, nil, "missing"); !errors.Is(err, ErrNoLabel) {
		t.Errorf("missing label error = %v", err)
	}
	empty := dataset.NewTable(tbl.Schema())
	if err := m.Train(empty, nil, "class"); !errors.Is(err, ErrEmptyTraining) {
		t.Errorf("empty training error = %v", err)
	}
}

func TestNaiveBayesLearnsToy(t *testing.T) {
	tbl := toyTable(t)
	nb := &NaiveBayes{}
	if _, err := nb.Predict([]string{"red", "1"}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained predict error = %v", err)
	}
	if err := nb.Train(tbl, []string{"color", "size"}, "class"); err != nil {
		t.Fatal(err)
	}
	p, err := nb.Predict([]string{"red", "1"})
	if err != nil || p != "apple" {
		t.Errorf("Predict(red) = %q, %v", p, err)
	}
	p, err = nb.Predict([]string{"yellow", "8"})
	if err != nil || p != "banana" {
		t.Errorf("Predict(yellow) = %q, %v", p, err)
	}
	// Unseen values still produce a prediction.
	p, err = nb.Predict([]string{"green", "99"})
	if err != nil || p == "" {
		t.Errorf("Predict(unseen) = %q, %v", p, err)
	}
	if _, err := nb.Predict([]string{"red"}); err == nil {
		t.Error("wrong arity accepted")
	}
	if nb.Name() != "naive-bayes" {
		t.Errorf("Name = %q", nb.Name())
	}
	if err := nb.Train(tbl, []string{"missing"}, "class"); err == nil {
		t.Error("unknown feature accepted")
	}
	if err := nb.Train(tbl, []string{"color"}, "missing"); !errors.Is(err, ErrNoLabel) {
		t.Errorf("missing label error = %v", err)
	}
}

func TestKNNLearnsToy(t *testing.T) {
	tbl := toyTable(t)
	knn := &KNN{K: 3}
	if _, err := knn.Predict([]string{"red", "1"}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained predict error = %v", err)
	}
	if err := knn.Train(tbl, []string{"color", "size"}, "class"); err != nil {
		t.Fatal(err)
	}
	p, err := knn.Predict([]string{"red", "2"})
	if err != nil || p != "apple" {
		t.Errorf("Predict(red,2) = %q, %v", p, err)
	}
	p, err = knn.Predict([]string{"yellow", "9"})
	if err != nil || p != "banana" {
		t.Errorf("Predict(yellow,9) = %q, %v", p, err)
	}
	if _, err := knn.Predict([]string{"red"}); err == nil {
		t.Error("wrong arity accepted")
	}
	if (&KNN{}).Name() != "5-nn" || knn.Name() != "3-nn" {
		t.Errorf("Name = %q / %q", (&KNN{}).Name(), knn.Name())
	}
	if err := knn.Train(tbl, []string{"color"}, "missing"); !errors.Is(err, ErrNoLabel) {
		t.Errorf("missing label error = %v", err)
	}
	empty := dataset.NewTable(tbl.Schema())
	if err := knn.Train(empty, []string{"color"}, "class"); !errors.Is(err, ErrEmptyTraining) {
		t.Errorf("empty training error = %v", err)
	}
}

func TestEvaluateOnCensus(t *testing.T) {
	tbl := synth.Census(2500, 1)
	features := []string{"age", "education", "marital-status", "hours-per-week", "sex"}
	for _, c := range []Classifier{&NaiveBayes{}, &KNN{K: 7}} {
		ev, err := SplitEvaluate(c, tbl, features, "salary", 0.7, 11)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if ev.TestSize == 0 {
			t.Fatalf("%s: empty test set", c.Name())
		}
		if ev.Accuracy <= ev.BaselineAccuracy-0.02 {
			t.Errorf("%s accuracy %.3f does not beat baseline %.3f", c.Name(), ev.Accuracy, ev.BaselineAccuracy)
		}
		if ev.Accuracy < 0.5 || ev.Accuracy > 1 {
			t.Errorf("%s accuracy %.3f out of plausible range", c.Name(), ev.Accuracy)
		}
	}
}

func TestEvaluateOnAnonymizedRelease(t *testing.T) {
	// The classic classification-utility experiment (Iyengar / LeFevre):
	// anonymize the whole table, then train and test on the release. The
	// release must retain enough signal to beat the majority baseline, and
	// must not beat the raw-data accuracy.
	tbl := synth.Census(2500, 2)
	features := []string{"age", "education", "marital-status", "sex"}
	res, err := mondrian.Anonymize(tbl, mondrian.Config{K: 10, QuasiIdentifiers: features})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	trainAnon, testAnon := res.Table.Split(0.7, rng)
	nb := &NaiveBayes{}
	evAnon, err := Evaluate(nb, trainAnon, testAnon, features, "salary")
	if err != nil {
		t.Fatal(err)
	}
	evRaw, err := SplitEvaluate(&NaiveBayes{}, tbl, features, "salary", 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Generalization costs some accuracy relative to the raw data but the
	// release must retain real signal: clearly above the minority-class rate
	// and within a modest gap of both the baseline and the raw accuracy.
	if evAnon.Accuracy < evAnon.BaselineAccuracy-0.10 {
		t.Errorf("anonymized accuracy %.3f fell more than 10 points below the majority baseline %.3f",
			evAnon.Accuracy, evAnon.BaselineAccuracy)
	}
	if evAnon.Accuracy < 0.6 {
		t.Errorf("anonymized accuracy %.3f retains too little signal", evAnon.Accuracy)
	}
	if evAnon.Accuracy > evRaw.Accuracy+0.05 {
		t.Errorf("anonymized accuracy %.3f implausibly above raw accuracy %.3f", evAnon.Accuracy, evRaw.Accuracy)
	}
}

func TestEvaluateErrors(t *testing.T) {
	tbl := toyTable(t)
	nb := &NaiveBayes{}
	if _, err := Evaluate(nb, tbl, tbl, []string{"color"}, "missing"); err == nil {
		t.Error("missing label accepted")
	}
	if _, err := Evaluate(nb, tbl, tbl, []string{"missing"}, "class"); err == nil {
		t.Error("missing feature accepted")
	}
	empty := dataset.NewTable(tbl.Schema())
	ev, err := Evaluate(nb, tbl, empty, []string{"color"}, "class")
	if err != nil {
		t.Fatal(err)
	}
	if ev.TestSize != 0 || ev.Accuracy != 0 {
		t.Errorf("empty test evaluation = %+v", ev)
	}
}
