package mondrian

import (
	"context"
	"errors"
	"fmt"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/policy"
)

// adapter plugs Mondrian into the engine registry (see package engine). It
// owns the algorithm's capability metadata and its table-independent
// validation, so no other layer needs to know Mondrian exists.
type adapter struct{}

func init() { engine.Register(adapter{}) }

func (adapter) Name() string { return "mondrian" }

func (adapter) Describe() engine.Info {
	return engine.Info{
		Name:         "mondrian",
		Description:  "multidimensional greedy partitioning (default)",
		Kind:         engine.Microdata,
		Parallel:     true,
		CostExponent: 1,
		Default:      true,
		Criteria: []string{
			policy.KAnonymity, policy.AlphaKAnonymity, policy.DistinctLDiversity,
			policy.EntropyLDiversity, policy.RecursiveCLDiversity, policy.TCloseness,
		},
		Parameters: []engine.Param{
			{Name: "k", Type: "int", Required: true, Default: 10, Description: "minimum partition size"},
			{Name: "quasi_identifiers", Type: "[]string", Description: "attributes to partition on (schema QI columns when empty)"},
			{Name: "l", Type: "int", Description: "l-diversity parameter (0 disables)"},
			{Name: "diversity_mode", Flag: "diversity", Type: "string", Description: "l-diversity variant: distinct|entropy|recursive"},
			{Name: "c", Type: "float", Description: "recursive (c,l)-diversity constant"},
			{Name: "t", Type: "float", Description: "t-closeness parameter (0 disables)"},
			{Name: "sensitive", Type: "string", Description: "sensitive attribute for l/t criteria"},
			{Name: "strict_mondrian", Flag: "strict", Type: "bool", Description: "strict partitioning (never separate equal values)"},
			{Name: "workers", Type: "int", Description: "partition worker pool bound (0 = GOMAXPROCS)"},
		},
	}
}

func (adapter) Validate(spec engine.Spec) error {
	if err := engine.ValidateCriteria(adapter{}.Describe(), spec); err != nil {
		return err
	}
	if spec.K < 1 {
		return fmt.Errorf("mondrian: K must be at least 1 (got %d)", spec.K)
	}
	return nil
}

func (adapter) Run(ctx context.Context, t *dataset.Table, spec engine.Spec) (*engine.Result, error) {
	res, err := AnonymizeContext(ctx, t, Config{
		K:                spec.K,
		QuasiIdentifiers: spec.QuasiIdentifiers,
		Hierarchies:      spec.Hierarchies,
		Strict:           spec.Strict,
		Extra:            spec.Extra,
		Workers:          spec.Workers,
		Progress:         engine.Monotone(spec.Progress),
	})
	if err != nil {
		return nil, classify(err)
	}
	return &engine.Result{Table: res.Table, Extra: res}, nil
}

// classify wraps the package's sentinel errors with the engine's error
// classes so the service layer can map them without importing this package.
func classify(err error) error {
	switch {
	case errors.Is(err, ErrConfig):
		return engine.ConfigError(err)
	case errors.Is(err, ErrUnsatisfiable):
		return engine.UnsatisfiableError(err)
	}
	return err
}
