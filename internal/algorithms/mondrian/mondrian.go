// Package mondrian implements LeFevre et al.'s Mondrian multidimensional
// k-anonymity algorithm: a greedy top-down partitioning of the record space
// that recursively splits the partition along the quasi-identifier dimension
// with the widest normalized range, at the median, as long as every resulting
// partition still satisfies the privacy criteria. Partitions are then recoded
// per group (multidimensional recoding), which loses far less information
// than full-domain recoding at the same k.
//
// The package supports both strict partitioning (records with equal values on
// the split dimension stay together) and relaxed partitioning (ties may be
// divided between the halves), and accepts additional privacy criteria such
// as l-diversity or t-closeness that gate every split.
package mondrian

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/generalize"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/privacy"
)

// Common errors.
var (
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("mondrian: invalid configuration")
	// ErrUnsatisfiable is returned when even the unsplit table violates the
	// privacy criteria (for example k larger than the table).
	ErrUnsatisfiable = errors.New("mondrian: privacy criteria cannot be satisfied even without splitting")
)

// Config controls a Mondrian run.
type Config struct {
	// K is the required minimum partition size.
	K int
	// QuasiIdentifiers lists the attributes to partition on; when empty the
	// schema's quasi-identifier columns are used.
	QuasiIdentifiers []string
	// Hierarchies is optional; when present, categorical partitions are
	// recoded to the lowest common generalization instead of a value set.
	Hierarchies *hierarchy.Set
	// Strict selects strict partitioning: records sharing a value on the
	// split dimension are never separated. Relaxed partitioning (the
	// default) may split ties and generally yields smaller partitions.
	Strict bool
	// Extra lists additional privacy criteria every partition must satisfy.
	Extra []privacy.Criterion
}

// Result describes the outcome of a Mondrian run.
type Result struct {
	// Table is the released, multidimensionally recoded table.
	Table *dataset.Table
	// Groups are the final partitions as row-index sets into the input table.
	Groups [][]int
	// Summaries are the per-group released quasi-identifier values.
	Summaries []generalize.GroupSummary
	// Splits is the number of successful splits performed.
	Splits int
}

// Anonymize runs Mondrian over t.
func Anonymize(t *dataset.Table, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrConfig, cfg.K)
	}
	qi := cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = t.Schema().QuasiIdentifierNames()
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("%w: no quasi-identifier attributes", ErrConfig)
	}
	cols := make([]int, len(qi))
	numeric := make([]bool, len(qi))
	for i, a := range qi {
		c, err := t.Schema().Index(a)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		cols[i] = c
		attr, _ := t.Schema().ByName(a)
		numeric[i] = attr.Type == dataset.Numeric
	}

	all := make([]int, t.Len())
	for i := range all {
		all[i] = i
	}
	// Global domain extents normalize per-partition widths so that numeric
	// and categorical dimensions compete on equal footing, as in the
	// original algorithm.
	domainSpan := make([]float64, len(qi))
	for i, a := range qi {
		if numeric[i] {
			lo, hi, err := t.NumericRange(a)
			if err == nil && hi > lo {
				domainSpan[i] = hi - lo
			} else {
				domainSpan[i] = 1
			}
		} else {
			dom, err := t.Domain(a)
			if err == nil && len(dom) > 0 {
				domainSpan[i] = float64(len(dom))
			} else {
				domainSpan[i] = 1
			}
		}
	}
	run := &runner{t: t, cfg: cfg, qi: qi, cols: cols, numeric: numeric, domainSpan: domainSpan}
	if ok, err := run.allowable(all); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("%w (k=%d, %d rows)", ErrUnsatisfiable, cfg.K, t.Len())
	}
	run.partition(all)

	released, summaries, err := generalize.RecodeGroups(t, qi, cfg.Hierarchies, run.groups)
	if err != nil {
		return nil, err
	}
	return &Result{
		Table:     released,
		Groups:    run.groups,
		Summaries: summaries,
		Splits:    run.splits,
	}, nil
}

// runner carries the recursion state.
type runner struct {
	t          *dataset.Table
	cfg        Config
	qi         []string
	cols       []int
	numeric    []bool
	domainSpan []float64
	groups     [][]int
	splits     int
}

// allowable reports whether a candidate partition satisfies k-anonymity and
// every extra criterion.
func (r *runner) allowable(rows []int) (bool, error) {
	if len(rows) < r.cfg.K {
		return false, nil
	}
	if len(r.cfg.Extra) == 0 {
		return true, nil
	}
	class := []dataset.EquivalenceClass{{Rows: rows}}
	ok, _, err := privacy.CheckAll(r.t, class, r.cfg.Extra...)
	return ok, err
}

// partition recursively splits rows and appends final partitions to groups.
func (r *runner) partition(rows []int) {
	// Try dimensions in order of decreasing normalized width.
	order := r.dimensionOrder(rows)
	for _, dim := range order {
		lhs, rhs, ok := r.split(rows, dim)
		if !ok {
			continue
		}
		okL, errL := r.allowable(lhs)
		okR, errR := r.allowable(rhs)
		if errL != nil || errR != nil {
			// Criterion errors indicate misconfiguration (unknown sensitive
			// attribute); treat the partition as unsplittable rather than
			// silently dropping rows.
			continue
		}
		if okL && okR {
			r.splits++
			r.partition(lhs)
			r.partition(rhs)
			return
		}
	}
	r.groups = append(r.groups, rows)
}

// dimensionOrder returns quasi-identifier dimension indices sorted by
// decreasing normalized width over the given rows.
func (r *runner) dimensionOrder(rows []int) []int {
	type dw struct {
		dim   int
		width float64
	}
	widths := make([]dw, len(r.cols))
	for i := range r.cols {
		widths[i] = dw{dim: i, width: r.width(rows, i)}
	}
	sort.Slice(widths, func(a, b int) bool {
		if widths[a].width != widths[b].width {
			return widths[a].width > widths[b].width
		}
		return widths[a].dim < widths[b].dim
	})
	out := make([]int, len(widths))
	for i, w := range widths {
		out[i] = w.dim
	}
	return out
}

// width computes the normalized range of dimension dim over rows: the
// numeric span divided by the attribute's global span, or the distinct-value
// count divided by the global domain size.
func (r *runner) width(rows []int, dim int) float64 {
	col := r.cols[dim]
	span := r.domainSpan[dim]
	if span <= 0 {
		span = 1
	}
	if r.numeric[dim] {
		lo, hi := 0.0, 0.0
		first := true
		for _, row := range rows {
			v, err := r.t.Float(row, col)
			if err != nil {
				continue
			}
			if first || v < lo {
				lo = v
			}
			if first || v > hi {
				hi = v
			}
			first = false
		}
		return (hi - lo) / span
	}
	distinct := make(map[string]struct{})
	for _, row := range rows {
		v, err := r.t.Value(row, col)
		if err != nil {
			continue
		}
		distinct[v] = struct{}{}
	}
	if len(distinct) <= 1 {
		return 0
	}
	return float64(len(distinct)) / span
}

// split divides rows along dimension dim. It returns ok=false when the
// dimension cannot be split (all values equal, or a strict split would leave
// one side empty).
func (r *runner) split(rows []int, dim int) (lhs, rhs []int, ok bool) {
	col := r.cols[dim]
	if r.numeric[dim] {
		return r.splitNumeric(rows, col)
	}
	return r.splitCategorical(rows, col)
}

func (r *runner) splitNumeric(rows []int, col int) (lhs, rhs []int, ok bool) {
	type rv struct {
		row int
		val float64
	}
	vals := make([]rv, 0, len(rows))
	for _, row := range rows {
		v, err := r.t.Float(row, col)
		if err != nil {
			// Non-numeric cell (already generalized or suppressed input):
			// the dimension cannot be ordered, fall back to unsplittable.
			return nil, nil, false
		}
		vals = append(vals, rv{row, v})
	}
	sort.Slice(vals, func(i, j int) bool {
		if vals[i].val != vals[j].val {
			return vals[i].val < vals[j].val
		}
		return vals[i].row < vals[j].row
	})
	if vals[0].val == vals[len(vals)-1].val {
		return nil, nil, false
	}
	if r.cfg.Strict {
		median := vals[len(vals)/2].val
		for _, v := range vals {
			if v.val < median {
				lhs = append(lhs, v.row)
			} else {
				rhs = append(rhs, v.row)
			}
		}
		if len(lhs) == 0 || len(rhs) == 0 {
			// All mass at or above the median value; put the median group on
			// the left instead.
			lhs, rhs = nil, nil
			for _, v := range vals {
				if v.val <= median {
					lhs = append(lhs, v.row)
				} else {
					rhs = append(rhs, v.row)
				}
			}
		}
	} else {
		mid := len(vals) / 2
		for i, v := range vals {
			if i < mid {
				lhs = append(lhs, v.row)
			} else {
				rhs = append(rhs, v.row)
			}
		}
	}
	if len(lhs) == 0 || len(rhs) == 0 {
		return nil, nil, false
	}
	return lhs, rhs, true
}

func (r *runner) splitCategorical(rows []int, col int) (lhs, rhs []int, ok bool) {
	byValue := make(map[string][]int)
	for _, row := range rows {
		v, err := r.t.Value(row, col)
		if err != nil {
			return nil, nil, false
		}
		byValue[v] = append(byValue[v], row)
	}
	if len(byValue) < 2 {
		return nil, nil, false
	}
	values := make([]string, 0, len(byValue))
	for v := range byValue {
		values = append(values, v)
	}
	sortCategorical(values)
	// Greedy balance: walk values in order, filling the left half until it
	// holds at least half the rows.
	target := len(rows) / 2
	count := 0
	for _, v := range values {
		if count < target {
			lhs = append(lhs, byValue[v]...)
			count += len(byValue[v])
		} else {
			rhs = append(rhs, byValue[v]...)
		}
	}
	if len(lhs) == 0 || len(rhs) == 0 {
		return nil, nil, false
	}
	return lhs, rhs, true
}

// sortCategorical orders values numerically when they all parse as numbers
// and lexicographically otherwise, so ordered categorical codes split
// sensibly.
func sortCategorical(values []string) {
	numeric := true
	for _, v := range values {
		if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err != nil {
			numeric = false
			break
		}
	}
	if numeric {
		sort.Slice(values, func(i, j int) bool {
			a, _ := strconv.ParseFloat(values[i], 64)
			b, _ := strconv.ParseFloat(values[j], 64)
			return a < b
		})
		return
	}
	sort.Strings(values)
}
