// Package mondrian implements LeFevre et al.'s Mondrian multidimensional
// k-anonymity algorithm: a greedy top-down partitioning of the record space
// that recursively splits the partition along the quasi-identifier dimension
// with the widest normalized range, at the median, as long as every resulting
// partition still satisfies the privacy criteria. Partitions are then recoded
// per group (multidimensional recoding), which loses far less information
// than full-domain recoding at the same k.
//
// The package supports both strict partitioning (records with equal values on
// the split dimension stay together) and relaxed partitioning (ties may be
// divided between the halves), and accepts additional privacy criteria such
// as l-diversity or t-closeness that gate every split.
//
// The implementation operates on the dataset package's cached columnar views:
// numeric dimensions read parse-once FloatColumns and categorical dimensions
// read dictionary-encoded CodedColumns, so the recursion never re-parses or
// re-hashes cell strings. Independent subtrees of the recursion run on a
// bounded worker pool (see Config.Workers); the result is deterministic
// regardless of worker count because every partition is split identically and
// final groups are ordered by their smallest member row index.
//
// Runs are cancelable: AnonymizeContext threads a context.Context through the
// recursion, every worker polls it at subtree entry, and a canceled run
// drains the pool and returns ctx.Err() without publishing a partial table.
// Request-scoped callers (the ppdp HTTP service) rely on this to shed
// abandoned work.
package mondrian

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/generalize"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/privacy"
)

// Common errors.
var (
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("mondrian: invalid configuration")
	// ErrUnsatisfiable is returned when even the unsplit table violates the
	// privacy criteria (for example k larger than the table).
	ErrUnsatisfiable = errors.New("mondrian: privacy criteria cannot be satisfied even without splitting")
)

// parallelThreshold is the minimum partition size worth dispatching to
// another worker; smaller subtrees recurse inline because the goroutine
// handoff would cost more than the work itself.
const parallelThreshold = 512

// Config controls a Mondrian run.
type Config struct {
	// K is the required minimum partition size.
	K int
	// QuasiIdentifiers lists the attributes to partition on; when empty the
	// schema's quasi-identifier columns are used.
	QuasiIdentifiers []string
	// Hierarchies is optional; when present, categorical partitions are
	// recoded to the lowest common generalization instead of a value set.
	Hierarchies *hierarchy.Set
	// Strict selects strict partitioning: records sharing a value on the
	// split dimension are never separated. Relaxed partitioning (the
	// default) may split ties and generally yields smaller partitions.
	Strict bool
	// Extra lists additional privacy criteria every partition must satisfy.
	Extra []privacy.Criterion
	// Workers bounds the number of concurrent partition workers. Zero uses
	// runtime.GOMAXPROCS(0); 1 forces a fully sequential run. The released
	// table, groups and summaries are identical for every worker count.
	Workers int
	// Progress, when non-nil, receives (done, total) every time a partition
	// subtree is finalized — the same unit of work the context is polled at.
	// Done counts the rows whose final partition is settled and total is the
	// table size; a successful run ends with a (total, total) event. Calls
	// are made under the runner's group mutex, so the stream is serialized
	// and monotone for every worker count.
	Progress func(done, total int)
}

// Result describes the outcome of a Mondrian run.
type Result struct {
	// Table is the released, multidimensionally recoded table.
	Table *dataset.Table
	// Groups are the final partitions as row-index sets into the input
	// table, ordered by their smallest member row index.
	Groups [][]int
	// Summaries are the per-group released quasi-identifier values.
	Summaries []generalize.GroupSummary
	// Splits is the number of successful splits performed.
	Splits int
}

// Anonymize runs Mondrian over t with no cancellation; it is shorthand for
// AnonymizeContext with a background context.
func Anonymize(t *dataset.Table, cfg Config) (*Result, error) {
	return AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext runs Mondrian over t. The context is observed by every
// partition worker: when it is canceled (or its deadline passes) the
// recursion stops splitting, in-flight workers drain, and the run returns
// ctx.Err() instead of a release. Cancellation never publishes a partial
// table.
func AnonymizeContext(ctx context.Context, t *dataset.Table, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrConfig, cfg.K)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: workers = %d", ErrConfig, cfg.Workers)
	}
	qi := cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = t.Schema().QuasiIdentifierNames()
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("%w: no quasi-identifier attributes", ErrConfig)
	}
	report := cfg.Progress
	if report == nil {
		report = func(int, int) {}
	}
	run := &runner{
		ctx:        ctx,
		t:          t,
		cfg:        cfg,
		report:     report,
		qi:         qi,
		cols:       make([]int, len(qi)),
		numeric:    make([]bool, len(qi)),
		domainSpan: make([]float64, len(qi)),
		floats:     make([]*dataset.FloatColumn, len(qi)),
		codes:      make([]*dataset.CodedColumn, len(qi)),
		catFloat:   make([][]float64, len(qi)),
		catIsNum:   make([][]bool, len(qi)),
	}
	for i, a := range qi {
		c, err := t.Schema().Index(a)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		run.cols[i] = c
		attr, _ := t.Schema().ByName(a)
		run.numeric[i] = attr.Type == dataset.Numeric
	}
	if err := run.buildColumns(); err != nil {
		return nil, err
	}

	all := make([]int, t.Len())
	for i := range all {
		all[i] = i
	}
	if ok, err := run.allowable(all); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("%w (k=%d, %d rows)", ErrUnsatisfiable, cfg.K, t.Len())
	}

	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The calling goroutine is itself a worker; the semaphore only meters the
	// extra ones.
	run.sem = make(chan struct{}, workers-1)
	run.partition(all)
	run.wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mondrian: %w", err)
	}

	// Deterministic final ordering independent of worker scheduling: groups
	// are disjoint, so their smallest member row index is a total order.
	mins := make([]int, len(run.groups))
	for i, g := range run.groups {
		mins[i] = minRow(g)
	}
	sort.Sort(&groupsByMin{mins: mins, groups: run.groups})

	released, summaries, err := generalize.RecodeGroups(t, qi, cfg.Hierarchies, run.groups)
	if err != nil {
		return nil, err
	}
	report(t.Len(), t.Len())
	return &Result{
		Table:     released,
		Groups:    run.groups,
		Summaries: summaries,
		Splits:    int(run.splits.Load()),
	}, nil
}

// minRow returns the smallest row index of a non-empty group.
func minRow(rows []int) int {
	lo := rows[0]
	for _, r := range rows[1:] {
		lo = min(lo, r)
	}
	return lo
}

// groupsByMin sorts groups by their precomputed smallest member row index.
type groupsByMin struct {
	mins   []int
	groups [][]int
}

func (s *groupsByMin) Len() int           { return len(s.groups) }
func (s *groupsByMin) Less(i, j int) bool { return s.mins[i] < s.mins[j] }
func (s *groupsByMin) Swap(i, j int) {
	s.mins[i], s.mins[j] = s.mins[j], s.mins[i]
	s.groups[i], s.groups[j] = s.groups[j], s.groups[i]
}

// runner carries the recursion state shared by all partition workers.
type runner struct {
	ctx        context.Context
	t          *dataset.Table
	cfg        Config
	qi         []string
	cols       []int
	numeric    []bool
	domainSpan []float64

	// Columnar views of the quasi-identifier dimensions, built once before
	// the recursion: floats[i] for numeric dimensions, codes[i] (plus the
	// per-code parse results catFloat/catIsNum used for split ordering) for
	// categorical ones.
	floats   []*dataset.FloatColumn
	codes    []*dataset.CodedColumn
	catFloat [][]float64
	catIsNum [][]bool

	sem    chan struct{}
	wg     sync.WaitGroup
	splits atomic.Int64

	report func(done, total int)

	mu       sync.Mutex
	groups   [][]int
	rowsDone int
}

// buildColumns materializes the columnar views and global domain spans. The
// spans normalize per-partition widths so that numeric and categorical
// dimensions compete on equal footing, as in the original algorithm.
func (r *runner) buildColumns() error {
	for i := range r.qi {
		if r.numeric[i] {
			fc, err := r.t.FloatColumn(r.cols[i])
			if err != nil {
				return err
			}
			r.floats[i] = fc
			if fc.ValidCount > 0 && fc.Max > fc.Min {
				r.domainSpan[i] = fc.Max - fc.Min
			} else {
				r.domainSpan[i] = 1
			}
			continue
		}
		cc, err := r.t.CodedColumn(r.cols[i])
		if err != nil {
			return err
		}
		r.codes[i] = cc
		if cc.Cardinality() > 0 {
			r.domainSpan[i] = float64(cc.Cardinality())
		} else {
			r.domainSpan[i] = 1
		}
		// Parse each dictionary entry once so splitCategorical can order
		// values numerically (when the whole partition parses) without
		// calling ParseFloat per split. The parse results mirror
		// sortCategorical exactly: numeric eligibility trims whitespace, but
		// the comparison value does not (an untrimmed parse failure compares
		// as zero, as the reference comparator's ignored error did).
		r.catFloat[i] = make([]float64, cc.Cardinality())
		r.catIsNum[i] = make([]bool, cc.Cardinality())
		for code, v := range cc.Dict {
			if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				r.catIsNum[i][code] = true
				r.catFloat[i][code], _ = strconv.ParseFloat(v, 64)
			}
		}
	}
	return nil
}

// allowable reports whether a candidate partition satisfies k-anonymity and
// every extra criterion.
func (r *runner) allowable(rows []int) (bool, error) {
	if len(rows) < r.cfg.K {
		return false, nil
	}
	if len(r.cfg.Extra) == 0 {
		return true, nil
	}
	class := []dataset.EquivalenceClass{{Rows: rows}}
	ok, _, err := privacy.CheckAll(r.t, class, r.cfg.Extra...)
	return ok, err
}

// partition recursively splits rows and appends final partitions to groups.
// After a successful split the left subtree is handed to another worker when
// one is free (and the subtree is large enough to amortize the handoff); the
// right subtree always continues on the current goroutine.
func (r *runner) partition(rows []int) {
	// Cancellation gate: every subtree entry polls the context, so a canceled
	// request stops the whole pool within one split's worth of work. The
	// partial groups are discarded by AnonymizeContext, so bailing out without
	// appending is safe.
	select {
	case <-r.ctx.Done():
		return
	default:
	}
	// Try dimensions in order of decreasing normalized width.
	order := r.dimensionOrder(rows)
	for _, dim := range order {
		lhs, rhs, ok := r.split(rows, dim)
		if !ok {
			continue
		}
		okL, errL := r.allowable(lhs)
		okR, errR := r.allowable(rhs)
		if errL != nil || errR != nil {
			// Criterion errors indicate misconfiguration (unknown sensitive
			// attribute); treat the partition as unsplittable rather than
			// silently dropping rows.
			continue
		}
		if okL && okR {
			r.splits.Add(1)
			if len(lhs) >= parallelThreshold {
				select {
				case r.sem <- struct{}{}:
					r.wg.Add(1)
					go func() {
						defer r.wg.Done()
						defer func() { <-r.sem }()
						r.partition(lhs)
					}()
					r.partition(rhs)
					return
				default:
				}
			}
			r.partition(lhs)
			r.partition(rhs)
			return
		}
	}
	r.mu.Lock()
	r.groups = append(r.groups, rows)
	r.rowsDone += len(rows)
	r.report(r.rowsDone, r.t.Len())
	r.mu.Unlock()
}

// dimensionOrder returns quasi-identifier dimension indices sorted by
// decreasing normalized width over the given rows.
func (r *runner) dimensionOrder(rows []int) []int {
	type dw struct {
		dim   int
		width float64
	}
	widths := make([]dw, len(r.cols))
	for i := range r.cols {
		widths[i] = dw{dim: i, width: r.width(rows, i)}
	}
	slices.SortFunc(widths, func(a, b dw) int {
		if a.width != b.width {
			if a.width > b.width {
				return -1
			}
			return 1
		}
		return a.dim - b.dim
	})
	out := make([]int, len(widths))
	for i, w := range widths {
		out[i] = w.dim
	}
	return out
}

// width computes the normalized range of dimension dim over rows: the
// numeric span divided by the attribute's global span, or the distinct-value
// count divided by the global domain size. Both cases read the cached
// columns; no cell is parsed.
func (r *runner) width(rows []int, dim int) float64 {
	span := r.domainSpan[dim]
	if span <= 0 {
		span = 1
	}
	if r.numeric[dim] {
		fc := r.floats[dim]
		lo, hi := 0.0, 0.0
		first := true
		for _, row := range rows {
			if !fc.Valid[row] {
				continue
			}
			v := fc.Values[row]
			if first || v < lo {
				lo = v
			}
			if first || v > hi {
				hi = v
			}
			first = false
		}
		return (hi - lo) / span
	}
	cc := r.codes[dim]
	distinct := countDistinct(cc, rows)
	if distinct <= 1 {
		return 0
	}
	return float64(distinct) / span
}

// countDistinct counts the distinct codes of cc among rows using a small
// bitmap over the column's dictionary.
func countDistinct(cc *dataset.CodedColumn, rows []int) int {
	seen := make([]uint64, (cc.Cardinality()+63)/64)
	distinct := 0
	for _, row := range rows {
		code := cc.Codes[row]
		w, b := code>>6, uint64(1)<<(code&63)
		if seen[w]&b == 0 {
			seen[w] |= b
			distinct++
		}
	}
	return distinct
}

// split divides rows along dimension dim. It returns ok=false when the
// dimension cannot be split (all values equal, or a strict split would leave
// one side empty).
func (r *runner) split(rows []int, dim int) (lhs, rhs []int, ok bool) {
	if r.numeric[dim] {
		return r.splitNumeric(rows, dim)
	}
	return r.splitCategorical(rows, dim)
}

// rv pairs a row with its numeric value during a split.
type rv struct {
	row int
	val float64
}

func (r *runner) splitNumeric(rows []int, dim int) (lhs, rhs []int, ok bool) {
	fc := r.floats[dim]
	vals := make([]rv, 0, len(rows))
	for _, row := range rows {
		if !fc.Valid[row] {
			// Non-numeric cell (already generalized or suppressed input):
			// the dimension cannot be ordered, fall back to unsplittable.
			return nil, nil, false
		}
		vals = append(vals, rv{row, fc.Values[row]})
	}
	slices.SortFunc(vals, func(a, b rv) int {
		if a.val != b.val {
			if a.val < b.val {
				return -1
			}
			return 1
		}
		return a.row - b.row
	})
	if vals[0].val == vals[len(vals)-1].val {
		return nil, nil, false
	}
	// The sorted rows land in one arena; lhs and rhs are its two halves, so
	// a split costs two allocations regardless of partition size.
	arena := make([]int, len(vals))
	for i, v := range vals {
		arena[i] = v.row
	}
	cut := 0
	if r.cfg.Strict {
		median := vals[len(vals)/2].val
		for cut < len(vals) && vals[cut].val < median {
			cut++
		}
		if cut == 0 {
			// All mass at or above the median value; put the median group on
			// the left instead.
			for cut < len(vals) && vals[cut].val <= median {
				cut++
			}
		}
	} else {
		cut = len(vals) / 2
	}
	if cut == 0 || cut == len(vals) {
		return nil, nil, false
	}
	return arena[:cut:cut], arena[cut:], true
}

func (r *runner) splitCategorical(rows []int, dim int) (lhs, rhs []int, ok bool) {
	cc := r.codes[dim]
	// Count occurrences per code, then scatter rows into a value-major arena
	// (values in split order, rows in partition order within a value). The
	// two sides are subslices of the arena, so a split costs a handful of
	// allocations instead of one slice per distinct value.
	counts := make([]int32, cc.Cardinality())
	distinct := 0
	for _, row := range rows {
		code := cc.Codes[row]
		if counts[code] == 0 {
			distinct++
		}
		counts[code]++
	}
	if distinct < 2 {
		return nil, nil, false
	}
	codes := make([]uint32, 0, distinct)
	for code, n := range counts {
		if n > 0 {
			codes = append(codes, uint32(code))
		}
	}
	r.sortCodes(dim, codes)
	// Greedy balance: walk values in order, filling the left half until it
	// holds at least half the rows.
	target := len(rows) / 2
	count := 0
	cut := 0
	cursor := counts // reuse the counts storage as scatter cursors
	off := int32(0)
	for _, code := range codes {
		n := counts[code]
		if count < target {
			count += int(n)
			cut = int(off) + int(n)
		}
		cursor[code] = off
		off += n
	}
	arena := make([]int, len(rows))
	for _, row := range rows {
		code := cc.Codes[row]
		arena[cursor[code]] = row
		cursor[code]++
	}
	if cut == 0 || cut == len(rows) {
		return nil, nil, false
	}
	return arena[:cut:cut], arena[cut:], true
}

// sortCodes orders the partition's distinct codes the way sortCategorical
// orders values — numerically when every present value parses as a number,
// lexicographically otherwise — using the per-code parse results cached at
// startup instead of re-parsing. Ties (distinct spellings of the same number)
// break on the code so the order is deterministic.
func (r *runner) sortCodes(dim int, codes []uint32) {
	isNum := r.catIsNum[dim]
	numeric := true
	for _, c := range codes {
		if !isNum[c] {
			numeric = false
			break
		}
	}
	if numeric {
		vals := r.catFloat[dim]
		slices.SortFunc(codes, func(a, b uint32) int {
			if vals[a] != vals[b] {
				if vals[a] < vals[b] {
					return -1
				}
				return 1
			}
			return int(a) - int(b)
		})
		return
	}
	dict := r.codes[dim].Dict
	slices.SortFunc(codes, func(a, b uint32) int { return strings.Compare(dict[a], dict[b]) })
}

// sortCategorical orders values numerically when they all parse as numbers
// and lexicographically otherwise, so ordered categorical codes split
// sensibly. The recursion itself orders interned codes with sortCodes; this
// string form is kept as the reference semantics (and for tests).
func sortCategorical(values []string) {
	numeric := true
	for _, v := range values {
		if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err != nil {
			numeric = false
			break
		}
	}
	if numeric {
		sort.Slice(values, func(i, j int) bool {
			a, _ := strconv.ParseFloat(values[i], 64)
			b, _ := strconv.ParseFloat(values[j], 64)
			return a < b
		})
		return
	}
	sort.Strings(values)
}
