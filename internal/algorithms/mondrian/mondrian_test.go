package mondrian

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/privacy"
	"github.com/ppdp/ppdp/internal/synth"
)

func TestAnonymizeReachesK(t *testing.T) {
	tbl := synth.Hospital(1000, 1)
	for _, k := range []int{2, 5, 10, 25} {
		res, err := Anonymize(tbl, Config{K: k, Hierarchies: synth.HospitalHierarchies()})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		classes, err := res.Table.GroupByQuasiIdentifier()
		if err != nil {
			t.Fatal(err)
		}
		if got := privacy.MeasureK(classes); got < k {
			t.Errorf("k=%d: min class %d", k, got)
		}
		// Every group is at least k and all rows are covered exactly once.
		covered := make(map[int]bool)
		for _, g := range res.Groups {
			if len(g) < k {
				t.Errorf("k=%d: group of size %d", k, len(g))
			}
			for _, r := range g {
				if covered[r] {
					t.Errorf("row %d in multiple groups", r)
				}
				covered[r] = true
			}
		}
		if len(covered) != tbl.Len() {
			t.Errorf("k=%d: %d rows covered, want %d", k, len(covered), tbl.Len())
		}
		if res.Table.Len() != tbl.Len() {
			t.Errorf("k=%d: released %d rows, want %d (Mondrian never suppresses)", k, res.Table.Len(), tbl.Len())
		}
	}
}

func TestSmallerKSplitsMore(t *testing.T) {
	tbl := synth.Hospital(800, 2)
	res2, err := Anonymize(tbl, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res50, err := Anonymize(tbl, Config{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Groups) <= len(res50.Groups) {
		t.Errorf("k=2 produced %d groups, k=50 produced %d; expected more groups for smaller k",
			len(res2.Groups), len(res50.Groups))
	}
	if res2.Splits <= res50.Splits {
		t.Errorf("k=2 splits %d <= k=50 splits %d", res2.Splits, res50.Splits)
	}
}

func TestStrictVsRelaxed(t *testing.T) {
	tbl := synth.Hospital(600, 3)
	relaxed, err := Anonymize(tbl, Config{K: 5, Strict: false})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Anonymize(tbl, Config{K: 5, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	// Relaxed partitioning can always split at least as finely as strict.
	if len(relaxed.Groups) < len(strict.Groups) {
		t.Errorf("relaxed groups %d < strict groups %d", len(relaxed.Groups), len(strict.Groups))
	}
	for _, res := range []*Result{relaxed, strict} {
		classes, _ := res.Table.GroupByQuasiIdentifier()
		if privacy.MeasureK(classes) < 5 {
			t.Error("strict/relaxed release violated 5-anonymity")
		}
	}
}

func TestWithLDiversity(t *testing.T) {
	tbl := synth.Hospital(1000, 4)
	res, err := Anonymize(tbl, Config{
		K:     5,
		Extra: []privacy.Criterion{privacy.DistinctLDiversity{L: 3, Sensitive: "diagnosis"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	classes, err := res.Table.GroupByQuasiIdentifier()
	if err != nil {
		t.Fatal(err)
	}
	l, err := privacy.MeasureDistinctL(res.Table, classes, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if l < 3 {
		t.Errorf("release not 3-diverse: min distinct %d", l)
	}
}

func TestWithTCloseness(t *testing.T) {
	tbl := synth.Hospital(1000, 5)
	res, err := Anonymize(tbl, Config{
		K:     5,
		Extra: []privacy.Criterion{privacy.TCloseness{T: 0.35, Sensitive: "diagnosis"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	classes, err := res.Table.GroupByQuasiIdentifier()
	if err != nil {
		t.Fatal(err)
	}
	// The per-partition check uses the original table's global distribution;
	// the released table has the same rows, so the measured EMD must respect
	// the threshold.
	emd, err := privacy.MeasureMaxEMD(res.Table, classes, "diagnosis", false)
	if err != nil {
		t.Fatal(err)
	}
	if emd > 0.35+1e-9 {
		t.Errorf("max EMD %v exceeds 0.35", emd)
	}
}

func TestConfigErrors(t *testing.T) {
	tbl := synth.Hospital(50, 6)
	if _, err := Anonymize(tbl, Config{K: 0}); !errors.Is(err, ErrConfig) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{K: 2, QuasiIdentifiers: []string{"missing"}}); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown QI error = %v", err)
	}
}

func TestUnsatisfiable(t *testing.T) {
	tbl := synth.Hospital(10, 7)
	if _, err := Anonymize(tbl, Config{K: 100}); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("expected ErrUnsatisfiable, got %v", err)
	}
	// An impossible extra criterion is also unsatisfiable.
	_, err := Anonymize(tbl, Config{
		K:     2,
		Extra: []privacy.Criterion{privacy.DistinctLDiversity{L: 50, Sensitive: "diagnosis"}},
	})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("expected ErrUnsatisfiable for impossible l, got %v", err)
	}
}

func TestNumericRecodingContainsOriginals(t *testing.T) {
	tbl := synth.Hospital(400, 8)
	res, err := Anonymize(tbl, Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	ageCol := res.Table.Schema().MustIndex("age")
	for _, s := range res.Summaries {
		for _, r := range s.Rows {
			orig, err := tbl.Float(r, ageCol)
			if err != nil {
				t.Fatal(err)
			}
			released, _ := res.Table.Value(r, ageCol)
			lo, hi, ok := hierarchy.ParseInterval(released)
			if !ok {
				t.Fatalf("unparseable released age %q", released)
			}
			inside := orig == lo || (orig >= lo && orig < hi)
			if !inside {
				t.Errorf("original age %v outside released range %q", orig, released)
			}
		}
	}
}

func TestExplicitQISubsetLeavesOtherColumns(t *testing.T) {
	tbl := synth.Hospital(300, 9)
	res, err := Anonymize(tbl, Config{K: 5, QuasiIdentifiers: []string{"age", "sex"}})
	if err != nil {
		t.Fatal(err)
	}
	origZip, _ := tbl.Column("zip")
	gotZip, _ := res.Table.Column("zip")
	for i := range origZip {
		if origZip[i] != gotZip[i] {
			t.Fatalf("zip changed at row %d", i)
		}
	}
	classes, _ := res.Table.GroupBy("age", "sex")
	if privacy.MeasureK(classes) < 5 {
		t.Error("subset QI release violated 5-anonymity")
	}
}

func TestSortCategorical(t *testing.T) {
	vals := []string{"10", "2", "1"}
	sortCategorical(vals)
	if vals[0] != "1" || vals[1] != "2" || vals[2] != "10" {
		t.Errorf("numeric sort wrong: %v", vals)
	}
	words := []string{"b", "a", "c"}
	sortCategorical(words)
	if words[0] != "a" {
		t.Errorf("lexicographic sort wrong: %v", words)
	}
}

func TestSyntheticTinyTable(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
		dataset.Attribute{Name: "diag", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
	rows := []dataset.Row{
		{"20", "a"}, {"21", "b"}, {"22", "a"}, {"23", "b"},
		{"60", "a"}, {"61", "b"}, {"62", "a"}, {"63", "b"},
	}
	tbl, _ := dataset.FromRows(schema, rows)
	res, err := Anonymize(tbl, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) < 2 {
		t.Errorf("expected at least 2 groups, got %d", len(res.Groups))
	}
	classes, _ := res.Table.GroupBy("age")
	if privacy.MeasureK(classes) < 2 {
		t.Error("tiny table release violated 2-anonymity")
	}
}

// TestParallelMatchesSequential is the golden-equivalence test for the
// parallel recursion: for several datasets and configurations, a run with a
// full worker pool must produce a byte-identical released table and identical
// groups, summaries and split counts to a forced-sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		tbl  func() *dataset.Table
		cfg  Config
	}{
		{"census-k5", func() *dataset.Table { return synth.Census(4000, 7) },
			Config{K: 5, Hierarchies: synth.CensusHierarchies()}},
		{"census-k2-strict", func() *dataset.Table { return synth.Census(3000, 8) },
			Config{K: 2, Strict: true}},
		{"hospital-k10", func() *dataset.Table { return synth.Hospital(2500, 9) },
			Config{K: 10, Hierarchies: synth.HospitalHierarchies()}},
		{"hospital-ldiv", func() *dataset.Table { return synth.Hospital(2000, 10) },
			Config{K: 5, Extra: []privacy.Criterion{privacy.DistinctLDiversity{L: 2, Sensitive: "diagnosis"}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := tc.tbl()
			seq := tc.cfg
			seq.Workers = 1
			par := tc.cfg
			par.Workers = 8
			a, err := Anonymize(tbl, seq)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Anonymize(tbl, par)
			if err != nil {
				t.Fatal(err)
			}
			if a.Splits != b.Splits {
				t.Errorf("splits differ: sequential %d, parallel %d", a.Splits, b.Splits)
			}
			if !reflect.DeepEqual(a.Groups, b.Groups) {
				t.Fatal("groups differ between sequential and parallel runs")
			}
			if !reflect.DeepEqual(a.Summaries, b.Summaries) {
				t.Fatal("summaries differ between sequential and parallel runs")
			}
			if a.Table.Len() != b.Table.Len() {
				t.Fatalf("released sizes differ: %d vs %d", a.Table.Len(), b.Table.Len())
			}
			for r := 0; r < a.Table.Len(); r++ {
				ra, _ := a.Table.Row(r)
				rb, _ := b.Table.Row(r)
				if !reflect.DeepEqual(ra, rb) {
					t.Fatalf("released row %d differs: %v vs %v", r, ra, rb)
				}
			}
		})
	}
}

// TestParallelRace drives the parallel recursion hard enough to surface data
// races under `go test -race`: K=2 on several thousand rows forces a deep
// recursion with many concurrent subtree workers.
func TestParallelRace(t *testing.T) {
	tbl := synth.Census(6000, 11)
	res, err := Anonymize(tbl, Config{K: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[int]bool)
	for _, g := range res.Groups {
		if len(g) < 2 {
			t.Fatalf("group of size %d violates k=2", len(g))
		}
		for _, r := range g {
			if covered[r] {
				t.Fatalf("row %d appears in multiple groups", r)
			}
			covered[r] = true
		}
	}
	if len(covered) != tbl.Len() {
		t.Fatalf("%d rows covered, want %d", len(covered), tbl.Len())
	}
}

// TestWorkersConfig checks the Workers knob validation and defaulting.
func TestWorkersConfig(t *testing.T) {
	tbl := synth.Hospital(200, 12)
	if _, err := Anonymize(tbl, Config{K: 2, Workers: -1}); !errors.Is(err, ErrConfig) {
		t.Errorf("negative workers error = %v, want ErrConfig", err)
	}
	// Workers: 0 defaults to GOMAXPROCS and must still succeed.
	if _, err := Anonymize(tbl, Config{K: 2, Workers: 0}); err != nil {
		t.Errorf("default workers failed: %v", err)
	}
}

// TestContextCancellation checks that a canceled context aborts the run with
// ctx.Err() instead of publishing a partial release.
func TestContextCancellation(t *testing.T) {
	tbl := synth.Census(2000, 7)

	// Already-canceled context: the run must fail fast.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AnonymizeContext(ctx, tbl, Config{K: 5, Hierarchies: synth.CensusHierarchies()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled error = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("pre-canceled run returned a result")
	}

	// Expired deadline: same contract, different cause.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	<-ctx2.Done()
	if _, err := AnonymizeContext(ctx2, tbl, Config{K: 5}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error = %v, want context.DeadlineExceeded", err)
	}

	// A live context must not disturb the run.
	if _, err := AnonymizeContext(context.Background(), tbl, Config{K: 5}); err != nil {
		t.Fatalf("background context run failed: %v", err)
	}
}

// TestContextCancellationMidRunParallel cancels while the worker pool is
// busy; raced under -race this guards the drain path.
func TestContextCancellationMidRunParallel(t *testing.T) {
	tbl := synth.Census(4000, 8)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		// Let some splits happen, then pull the plug.
		time.Sleep(500 * time.Microsecond)
		cancel()
		close(done)
	}()
	res, err := AnonymizeContext(ctx, tbl, Config{K: 2, Workers: 4})
	<-done
	if err == nil {
		// The run may legitimately finish before the cancel lands; then the
		// result must be complete and valid.
		if res == nil || res.Table == nil || res.Table.Len() != tbl.Len() {
			t.Fatal("completed run returned an incomplete table")
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
}
