// Package datafly implements Sweeney's Datafly algorithm: a greedy
// full-domain generalization heuristic that repeatedly generalizes the
// quasi-identifier attribute with the most distinct values until the table is
// k-anonymous up to a bounded amount of record suppression.
// Each round's generalization candidates — the distinct-value counts of the
// quasi-identifier attributes — are independent of each other, so they are
// scored by a bounded worker pool (Config.Workers); the picked attribute is
// identical for every worker count because the tie-breaking fold happens
// sequentially, in attribute order, after the pool joins.
package datafly

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/generalize"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/lattice"
	"github.com/ppdp/ppdp/internal/parallel"
)

// Common errors.
var (
	// ErrUnsatisfiable is returned when even full generalization with the
	// allowed suppression budget cannot reach k-anonymity.
	ErrUnsatisfiable = errors.New("datafly: k-anonymity not reachable within the suppression budget")
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("datafly: invalid configuration")
)

// Config controls a Datafly run.
type Config struct {
	// K is the required minimum equivalence-class size.
	K int
	// QuasiIdentifiers lists the attributes to generalize; when empty the
	// schema's quasi-identifier columns are used.
	QuasiIdentifiers []string
	// Hierarchies supplies a hierarchy for every quasi-identifier.
	Hierarchies *hierarchy.Set
	// MaxSuppression is the maximum fraction of records (0..1) that may be
	// removed instead of generalized further. Sweeney's original heuristic
	// allows suppressing up to k records; expressing the budget as a
	// fraction matches how the experiments sweep it.
	MaxSuppression float64
	// Workers bounds the pool that scores one round's generalization
	// candidates concurrently. Zero uses runtime.GOMAXPROCS(0); 1 forces a
	// sequential run. The released table is identical for every count.
	Workers int
	// Progress, when non-nil, receives (done, total) after every
	// generalization round — the same unit of work the context is polled at.
	// Total is the worst-case round count (one per hierarchy level across the
	// quasi-identifier, plus the final check); a successful run ends with a
	// (total, total) event.
	Progress func(done, total int)
}

// Result describes the outcome of a Datafly run.
type Result struct {
	// Table is the released, generalized (and possibly row-suppressed) table.
	Table *dataset.Table
	// Node is the full-domain generalization level per quasi-identifier, in
	// QuasiIdentifiers order.
	Node lattice.Node
	// QuasiIdentifiers is the attribute order Node refers to.
	QuasiIdentifiers []string
	// SuppressedRows is the number of records removed.
	SuppressedRows int
	// Iterations is the number of generalization steps performed.
	Iterations int
}

// Anonymize runs Datafly over t with no cancellation; it is shorthand for
// AnonymizeContext with a background context.
func Anonymize(t *dataset.Table, cfg Config) (*Result, error) {
	return AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext runs Datafly over t. The context is polled once per
// generalization round — the algorithm's natural unit of work — so a
// canceled or timed-out run returns ctx.Err() after at most one round
// instead of a release.
func AnonymizeContext(ctx context.Context, t *dataset.Table, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrConfig, cfg.K)
	}
	if cfg.Hierarchies == nil {
		return nil, fmt.Errorf("%w: nil hierarchy set", ErrConfig)
	}
	if cfg.MaxSuppression < 0 || cfg.MaxSuppression > 1 {
		return nil, fmt.Errorf("%w: max suppression %v", ErrConfig, cfg.MaxSuppression)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: workers = %d", ErrConfig, cfg.Workers)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	qi := cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = t.Schema().QuasiIdentifierNames()
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("%w: no quasi-identifier attributes", ErrConfig)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(qi)
	if err != nil {
		return nil, err
	}
	budget := int(cfg.MaxSuppression * float64(t.Len()))
	report := cfg.Progress
	if report == nil {
		report = func(int, int) {}
	}
	// Worst case the heuristic generalizes one attribute level per round
	// until every attribute tops out, then runs one final check round.
	totalRounds := 1
	for _, m := range maxLevels {
		totalRounds += m
	}

	node := make(lattice.Node, len(qi))
	current := t.Clone()
	iterations := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("datafly: %w", err)
		}
		report(iterations, totalRounds)
		classes, err := current.GroupBy(qi...)
		if err != nil {
			return nil, err
		}
		violating := violatingRows(classes, cfg.K)
		if len(violating) <= budget {
			released, err := generalize.SuppressRows(current, violating)
			if err != nil {
				return nil, err
			}
			report(totalRounds, totalRounds)
			return &Result{
				Table:            released,
				Node:             node,
				QuasiIdentifiers: append([]string(nil), qi...),
				SuppressedRows:   len(violating),
				Iterations:       iterations,
			}, nil
		}
		// Generalize the attribute with the most distinct values, among
		// attributes that still have headroom. Candidates are scored by the
		// worker pool (each candidate's count is independent of the others);
		// the tie-breaking fold runs sequentially in attribute order, so the
		// pick is identical for every worker count.
		counts, err := parallel.Map(len(qi), workers, func(i int) (int, error) {
			if node[i] >= maxLevels[i] {
				return -1, nil
			}
			dom, err := current.Domain(qi[i])
			if err != nil {
				return 0, err
			}
			return len(dom), nil
		})
		if err != nil {
			return nil, err
		}
		pick := -1
		maxDistinct := -1
		for i, n := range counts {
			if n < 0 {
				continue
			}
			if n > maxDistinct {
				maxDistinct = n
				pick = i
			}
		}
		if pick == -1 {
			return nil, fmt.Errorf("%w: %d records still violate %d-anonymity at full generalization (budget %d)",
				ErrUnsatisfiable, len(violating), cfg.K, budget)
		}
		node[pick]++
		iterations++
		// Re-apply the full-domain recoding from the original table so that
		// hierarchy levels stay aligned with original values.
		current, err = generalize.FullDomain(t, qi, cfg.Hierarchies, node)
		if err != nil {
			return nil, err
		}
	}
}

// violatingRows returns the row indices of all classes smaller than k.
func violatingRows(classes []dataset.EquivalenceClass, k int) []int {
	var out []int
	for _, c := range classes {
		if c.Size() < k {
			out = append(out, c.Rows...)
		}
	}
	return out
}
