package datafly

import (
	"context"
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/privacy"
	"github.com/ppdp/ppdp/internal/synth"
	"github.com/ppdp/ppdp/internal/testctx"
)

func TestAnonymizeReachesK(t *testing.T) {
	tbl := synth.Hospital(600, 1)
	cfg := Config{
		K:              5,
		Hierarchies:    synth.HospitalHierarchies(),
		MaxSuppression: 0.05,
	}
	res, err := Anonymize(tbl, cfg)
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	classes, err := res.Table.GroupByQuasiIdentifier()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := privacy.KAnonymity{K: 5}.Check(res.Table, classes)
	if err != nil || !ok {
		t.Errorf("release not 5-anonymous: %v %v (min class %d)", ok, err, privacy.MeasureK(classes))
	}
	if res.Table.Len()+res.SuppressedRows != tbl.Len() {
		t.Errorf("row accounting wrong: %d released + %d suppressed != %d",
			res.Table.Len(), res.SuppressedRows, tbl.Len())
	}
	if float64(res.SuppressedRows) > cfg.MaxSuppression*float64(tbl.Len()) {
		t.Errorf("suppressed %d rows, budget %v", res.SuppressedRows, cfg.MaxSuppression*float64(tbl.Len()))
	}
	if len(res.Node) != len(res.QuasiIdentifiers) {
		t.Errorf("node arity %d != qi arity %d", len(res.Node), len(res.QuasiIdentifiers))
	}
	// The original table must be untouched.
	origClasses, _ := tbl.GroupByQuasiIdentifier()
	if privacy.MeasureK(origClasses) >= 5 {
		t.Skip("original already 5-anonymous; correlation check not meaningful")
	}
}

func TestAnonymizeHigherKGeneralizesMore(t *testing.T) {
	tbl := synth.Hospital(500, 2)
	hs := synth.HospitalHierarchies()
	res2, err := Anonymize(tbl, Config{K: 2, Hierarchies: hs, MaxSuppression: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	res25, err := Anonymize(tbl, Config{K: 25, Hierarchies: hs, MaxSuppression: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res25.Node.Height() < res2.Node.Height() {
		t.Errorf("k=25 generalized less (%v) than k=2 (%v)", res25.Node, res2.Node)
	}
}

func TestAnonymizeConfigErrors(t *testing.T) {
	tbl := synth.Hospital(50, 3)
	hs := synth.HospitalHierarchies()
	cases := []Config{
		{K: 0, Hierarchies: hs},
		{K: 2, Hierarchies: nil},
		{K: 2, Hierarchies: hs, MaxSuppression: 1.5},
		{K: 2, Hierarchies: hs, QuasiIdentifiers: []string{"nonexistent"}},
	}
	for i, cfg := range cases {
		if _, err := Anonymize(tbl, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Config errors specifically wrap ErrConfig.
	if _, err := Anonymize(tbl, Config{K: 0, Hierarchies: hs}); !errors.Is(err, ErrConfig) {
		t.Errorf("k=0 error = %v", err)
	}
}

func TestAnonymizeUnsatisfiable(t *testing.T) {
	// k greater than the table size can never be satisfied, and with a zero
	// suppression budget the algorithm must report failure.
	tbl := synth.Hospital(10, 4)
	_, err := Anonymize(tbl, Config{K: 50, Hierarchies: synth.HospitalHierarchies(), MaxSuppression: 0})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("expected ErrUnsatisfiable, got %v", err)
	}
}

func TestAnonymizeExplicitQISubset(t *testing.T) {
	tbl := synth.Hospital(400, 5)
	res, err := Anonymize(tbl, Config{
		K:                4,
		QuasiIdentifiers: []string{"age", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
		MaxSuppression:   0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	classes, err := res.Table.GroupBy("age", "sex")
	if err != nil {
		t.Fatal(err)
	}
	if privacy.MeasureK(classes) < 4 {
		t.Errorf("subset QI release not 4-anonymous: min class %d", privacy.MeasureK(classes))
	}
	// Columns outside the chosen QI must be untouched.
	origZips, _ := tbl.Domain("zip")
	gotZips, _ := res.Table.Domain("zip")
	if len(gotZips) > len(origZips) {
		t.Errorf("zip column changed: %v vs %v", gotZips, origZips)
	}
}

func TestViolatingRows(t *testing.T) {
	classes := []dataset.EquivalenceClass{
		{Rows: []int{0, 1, 2}},
		{Rows: []int{3}},
		{Rows: []int{4, 5}},
	}
	got := violatingRows(classes, 3)
	if len(got) != 3 {
		t.Errorf("violatingRows = %v", got)
	}
	if got := violatingRows(classes, 1); got != nil {
		t.Errorf("violatingRows k=1 = %v", got)
	}
}

// TestAnonymizeContextCancellation checks the context gate at the
// algorithm's natural unit of work (one generalization round): a canceled
// run returns ctx.Err() and no partial result, deterministically via a
// poll-counting context.
func TestAnonymizeContextCancellation(t *testing.T) {
	tbl := synth.Hospital(600, 1)
	cfg := Config{K: 5, Hierarchies: synth.HospitalHierarchies(), MaxSuppression: 0.05}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AnonymizeContext(pre, tbl, cfg)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("pre-canceled: res=%v err=%v, want nil + context.Canceled", res, err)
	}
	// Mid-run: trip the context after n rounds; the run has started real
	// work but must still abandon it without publishing anything.
	for _, n := range []int{1, 2} {
		res, err := AnonymizeContext(testctx.CancelAfter(n), tbl, cfg)
		if !errors.Is(err, context.Canceled) || res != nil {
			t.Fatalf("cancel after %d polls: res=%v err=%v, want nil + context.Canceled", n, res, err)
		}
	}
	// A live context is unaffected.
	if _, err := AnonymizeContext(context.Background(), tbl, cfg); err != nil {
		t.Fatalf("live context: %v", err)
	}
}
