package datafly

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/synth"
)

// TestWorkersEquivalence locks in that parallel candidate scoring is
// deterministic: every worker count picks the same attribute each round and
// releases the identical table.
func TestWorkersEquivalence(t *testing.T) {
	tbl := synth.Hospital(800, 2)
	hs := synth.HospitalHierarchies()
	base, err := Anonymize(tbl, Config{K: 4, Hierarchies: hs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := Anonymize(tbl, Config{K: 4, Hierarchies: hs, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Node.Key() != base.Node.Key() {
			t.Errorf("workers=%d node %v != sequential %v", workers, res.Node, base.Node)
		}
		if res.SuppressedRows != base.SuppressedRows {
			t.Errorf("workers=%d suppressed %d != sequential %d", workers, res.SuppressedRows, base.SuppressedRows)
		}
		if res.Iterations != base.Iterations {
			t.Errorf("workers=%d iterations %d != sequential %d", workers, res.Iterations, base.Iterations)
		}
		var seq, par bytes.Buffer
		if err := base.Table.WriteCSV(&seq); err != nil {
			t.Fatal(err)
		}
		if err := res.Table.WriteCSV(&par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Errorf("workers=%d released table differs from sequential run", workers)
		}
	}
}

func TestWorkersNegativeRejected(t *testing.T) {
	tbl := synth.Hospital(50, 1)
	_, err := Anonymize(tbl, Config{K: 2, Hierarchies: synth.HospitalHierarchies(), Workers: -1})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("Workers=-1: got %v, want ErrConfig", err)
	}
}

// benchmarkWorkers measures full Datafly runs at a fixed worker count; the
// 1-vs-max pair quantifies the speedup of parallel candidate scoring.
func benchmarkWorkers(b *testing.B, workers int) {
	tbl := synth.Census(2000, 1)
	hs := synth.CensusHierarchies()
	qi := []string{"age", "sex", "education", "marital-status", "race"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(tbl, Config{K: 10, QuasiIdentifiers: qi, Hierarchies: hs, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataflyWorkers1(b *testing.B)   { benchmarkWorkers(b, 1) }
func BenchmarkDataflyWorkersMax(b *testing.B) { benchmarkWorkers(b, 0) }
