// Package kmember implements the greedy k-member clustering anonymizer of
// Byun et al.: records are grouped into clusters of at least k members by
// greedily adding, at each step, the record whose inclusion increases the
// cluster's information loss (normalized certainty penalty) the least.
// Clusters are then recoded multidimensionally. Clustering-based
// anonymization trades O(n²) running time for lower information loss than
// full-domain recoding.
package kmember

import (
	"context"
	"errors"
	"fmt"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/generalize"
	"github.com/ppdp/ppdp/internal/hierarchy"
)

// Common errors.
var (
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("kmember: invalid configuration")
	// ErrTooFewRecords is returned when the table has fewer than k records.
	ErrTooFewRecords = errors.New("kmember: table has fewer than k records")
)

// Config controls a k-member clustering run.
type Config struct {
	// K is the minimum cluster size.
	K int
	// QuasiIdentifiers lists the attributes considered for distance and
	// recoding; when empty the schema's quasi-identifier columns are used.
	QuasiIdentifiers []string
	// Hierarchies is optional: when present it is used for the categorical
	// recoding of the final clusters; the clustering loss itself uses
	// distinct-value ratios.
	Hierarchies *hierarchy.Set
	// Progress, when non-nil, receives (done, total) after every grown
	// cluster — the same unit of work the context is polled at. Done counts
	// the records placed into clusters so far and total is the table size; a
	// successful run ends with a (total, total) event once the residual
	// records are assigned.
	Progress func(done, total int)
}

// Result describes the outcome of a run.
type Result struct {
	// Table is the released, multidimensionally recoded table.
	Table *dataset.Table
	// Groups are the clusters as row-index sets into the input table.
	Groups [][]int
	// Summaries are the per-cluster released quasi-identifier values.
	Summaries []generalize.GroupSummary
}

// clusterState tracks a cluster's quasi-identifier extent incrementally so
// that candidate evaluation is O(|QI|) rather than O(cluster size).
type clusterState struct {
	rows []int
	// numeric extents
	lo, hi []float64
	// categorical distinct values
	values []map[string]struct{}
}

// Anonymize runs greedy k-member clustering over t with no cancellation; it
// is shorthand for AnonymizeContext with a background context.
func Anonymize(t *dataset.Table, cfg Config) (*Result, error) {
	return AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext runs greedy k-member clustering over t. The context is
// polled once per grown cluster — the algorithm's natural unit of work — so
// a canceled or timed-out run returns ctx.Err() after at most one cluster
// instead of a result.
func AnonymizeContext(ctx context.Context, t *dataset.Table, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrConfig, cfg.K)
	}
	if t.Len() < cfg.K {
		return nil, fmt.Errorf("%w: %d records, k=%d", ErrTooFewRecords, t.Len(), cfg.K)
	}
	qi := cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = t.Schema().QuasiIdentifierNames()
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("%w: no quasi-identifier attributes", ErrConfig)
	}
	cols := make([]int, len(qi))
	numeric := make([]bool, len(qi))
	ranges := make([]float64, len(qi))
	domains := make([]int, len(qi))
	for i, a := range qi {
		c, err := t.Schema().Index(a)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		cols[i] = c
		attr, _ := t.Schema().ByName(a)
		numeric[i] = attr.Type == dataset.Numeric
		if numeric[i] {
			lo, hi, err := t.NumericRange(a)
			if err != nil {
				return nil, err
			}
			ranges[i] = hi - lo
			if ranges[i] <= 0 {
				ranges[i] = 1
			}
		} else {
			dom, err := t.Domain(a)
			if err != nil {
				return nil, err
			}
			domains[i] = len(dom)
			if domains[i] == 0 {
				domains[i] = 1
			}
		}
	}

	unassigned := make(map[int]bool, t.Len())
	for i := 0; i < t.Len(); i++ {
		unassigned[i] = true
	}

	newCluster := func(seedRow int) (*clusterState, error) {
		cs := &clusterState{
			lo:     make([]float64, len(qi)),
			hi:     make([]float64, len(qi)),
			values: make([]map[string]struct{}, len(qi)),
		}
		for i := range qi {
			cs.values[i] = make(map[string]struct{})
		}
		if err := addToCluster(t, cs, seedRow, cols, numeric); err != nil {
			return nil, err
		}
		return cs, nil
	}

	// loss computes the cluster's NCP after hypothetically adding row r.
	loss := func(cs *clusterState, r int) (float64, error) {
		total := 0.0
		for i := range qi {
			if numeric[i] {
				v, err := t.Float(r, cols[i])
				if err != nil {
					// Treat unparseable numerics as maximal spread.
					total += 1
					continue
				}
				lo, hi := cs.lo[i], cs.hi[i]
				if len(cs.rows) == 0 {
					lo, hi = v, v
				} else {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				total += (hi - lo) / ranges[i]
			} else {
				v, err := t.Value(r, cols[i])
				if err != nil {
					return 0, err
				}
				n := len(cs.values[i])
				if _, ok := cs.values[i][v]; !ok {
					n++
				}
				if n > 1 {
					total += float64(n) / float64(domains[i])
				}
			}
		}
		return total, nil
	}

	report := cfg.Progress
	if report == nil {
		report = func(int, int) {}
	}
	placed := 0

	var clusters []*clusterState
	for len(unassigned) >= cfg.K {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("kmember: %w", err)
		}
		// Seed selection follows Byun et al.: the record farthest (largest
		// loss) from the previous cluster starts the next one; the first
		// cluster starts from the lowest unassigned index.
		seedRow, err := pickSeed(t, unassigned, clusters, loss)
		if err != nil {
			return nil, err
		}
		delete(unassigned, seedRow)
		cs, err := newCluster(seedRow)
		if err != nil {
			return nil, err
		}
		for len(cs.rows) < cfg.K {
			bestRow, bestLoss := -1, 0.0
			for r := range unassigned {
				l, err := loss(cs, r)
				if err != nil {
					return nil, err
				}
				if bestRow == -1 || l < bestLoss || (l == bestLoss && r < bestRow) {
					bestRow, bestLoss = r, l
				}
			}
			if bestRow == -1 {
				break
			}
			delete(unassigned, bestRow)
			if err := addToCluster(t, cs, bestRow, cols, numeric); err != nil {
				return nil, err
			}
		}
		clusters = append(clusters, cs)
		placed += len(cs.rows)
		report(placed, t.Len())
	}
	// Residual records join the cluster whose loss increases least.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("kmember: %w", err)
	}
	for r := range unassigned {
		bestIdx, bestLoss := -1, 0.0
		for i, cs := range clusters {
			l, err := loss(cs, r)
			if err != nil {
				return nil, err
			}
			if bestIdx == -1 || l < bestLoss {
				bestIdx, bestLoss = i, l
			}
		}
		if bestIdx == -1 {
			return nil, fmt.Errorf("%w: could not place residual record %d", ErrTooFewRecords, r)
		}
		if err := addToCluster(t, clusters[bestIdx], r, cols, numeric); err != nil {
			return nil, err
		}
	}

	report(t.Len(), t.Len())

	groups := make([][]int, len(clusters))
	for i, cs := range clusters {
		groups[i] = cs.rows
	}
	released, summaries, err := generalize.RecodeGroups(t, qi, cfg.Hierarchies, groups)
	if err != nil {
		return nil, err
	}
	return &Result{Table: released, Groups: groups, Summaries: summaries}, nil
}

// pickSeed chooses the next cluster's starting record: the unassigned record
// with the largest loss relative to the most recent cluster (ties and the
// first cluster resolve to the smallest row index, keeping runs
// deterministic).
func pickSeed(_ *dataset.Table, unassigned map[int]bool, clusters []*clusterState, loss func(*clusterState, int) (float64, error)) (int, error) {
	best := -1
	bestLoss := -1.0
	var last *clusterState
	if len(clusters) > 0 {
		last = clusters[len(clusters)-1]
	}
	for r := range unassigned {
		l := 0.0
		if last != nil {
			var err error
			l, err = loss(last, r)
			if err != nil {
				return 0, err
			}
		}
		switch {
		case best == -1, l > bestLoss, l == bestLoss && r < best:
			best, bestLoss = r, l
		}
	}
	return best, nil
}

// addToCluster updates the cluster's extent with row r.
func addToCluster(t *dataset.Table, cs *clusterState, r int, cols []int, numeric []bool) error {
	for i, c := range cols {
		if numeric[i] {
			v, err := t.Float(r, c)
			if err == nil {
				if len(cs.rows) == 0 || v < cs.lo[i] {
					cs.lo[i] = v
				}
				if len(cs.rows) == 0 || v > cs.hi[i] {
					cs.hi[i] = v
				}
			}
		} else {
			v, err := t.Value(r, c)
			if err != nil {
				return err
			}
			cs.values[i][v] = struct{}{}
		}
	}
	cs.rows = append(cs.rows, r)
	return nil
}
