// Package kmember implements the greedy k-member clustering anonymizer of
// Byun et al.: records are grouped into clusters of at least k members by
// greedily adding, at each step, the record whose inclusion increases the
// cluster's information loss (normalized certainty penalty) the least.
// Clusters are then recoded multidimensionally. Clustering-based
// anonymization trades O(n²) running time for lower information loss than
// full-domain recoding.
// The candidate losses of one growth step are independent of each other, so
// each nearest-record scan is split across a bounded worker pool
// (Config.Workers): every worker folds a contiguous chunk of the unassigned
// records (kept in ascending row order) and the chunk results fold
// sequentially under the same (loss, row) total order, so the chosen record —
// and therefore the released table — is identical for every worker count.
package kmember

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/generalize"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/parallel"
)

// Common errors.
var (
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("kmember: invalid configuration")
	// ErrTooFewRecords is returned when the table has fewer than k records.
	ErrTooFewRecords = errors.New("kmember: table has fewer than k records")
)

// Config controls a k-member clustering run.
type Config struct {
	// K is the minimum cluster size.
	K int
	// QuasiIdentifiers lists the attributes considered for distance and
	// recoding; when empty the schema's quasi-identifier columns are used.
	QuasiIdentifiers []string
	// Hierarchies is optional: when present it is used for the categorical
	// recoding of the final clusters; the clustering loss itself uses
	// distinct-value ratios.
	Hierarchies *hierarchy.Set
	// Workers bounds the pool that scans unassigned records during seed
	// selection and cluster growth. Zero uses runtime.GOMAXPROCS(0); 1
	// forces a sequential run. The released table is identical for every
	// count.
	Workers int
	// Progress, when non-nil, receives (done, total) after every grown
	// cluster — the same unit of work the context is polled at. Done counts
	// the records placed into clusters so far and total is the table size; a
	// successful run ends with a (total, total) event once the residual
	// records are assigned.
	Progress func(done, total int)
}

// Result describes the outcome of a run.
type Result struct {
	// Table is the released, multidimensionally recoded table.
	Table *dataset.Table
	// Groups are the clusters as row-index sets into the input table.
	Groups [][]int
	// Summaries are the per-cluster released quasi-identifier values.
	Summaries []generalize.GroupSummary
}

// clusterState tracks a cluster's quasi-identifier extent incrementally so
// that candidate evaluation is O(|QI|) rather than O(cluster size).
type clusterState struct {
	rows []int
	// numeric extents
	lo, hi []float64
	// categorical distinct values
	values []map[string]struct{}
}

// Anonymize runs greedy k-member clustering over t with no cancellation; it
// is shorthand for AnonymizeContext with a background context.
func Anonymize(t *dataset.Table, cfg Config) (*Result, error) {
	return AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext runs greedy k-member clustering over t. The context is
// polled once per grown cluster — the algorithm's natural unit of work — so
// a canceled or timed-out run returns ctx.Err() after at most one cluster
// instead of a result.
func AnonymizeContext(ctx context.Context, t *dataset.Table, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrConfig, cfg.K)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: workers = %d", ErrConfig, cfg.Workers)
	}
	if t.Len() < cfg.K {
		return nil, fmt.Errorf("%w: %d records, k=%d", ErrTooFewRecords, t.Len(), cfg.K)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	qi := cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = t.Schema().QuasiIdentifierNames()
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("%w: no quasi-identifier attributes", ErrConfig)
	}
	cols := make([]int, len(qi))
	numeric := make([]bool, len(qi))
	ranges := make([]float64, len(qi))
	domains := make([]int, len(qi))
	for i, a := range qi {
		c, err := t.Schema().Index(a)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		cols[i] = c
		attr, _ := t.Schema().ByName(a)
		numeric[i] = attr.Type == dataset.Numeric
		if numeric[i] {
			lo, hi, err := t.NumericRange(a)
			if err != nil {
				return nil, err
			}
			ranges[i] = hi - lo
			if ranges[i] <= 0 {
				ranges[i] = 1
			}
		} else {
			dom, err := t.Domain(a)
			if err != nil {
				return nil, err
			}
			domains[i] = len(dom)
			if domains[i] == 0 {
				domains[i] = 1
			}
		}
	}

	// Unassigned records, kept in ascending row order: the scans fold under
	// a (loss, row) total order, so a sorted slice makes every outcome —
	// including the residual phase — deterministic.
	unassigned := make([]int, t.Len())
	for i := range unassigned {
		unassigned[i] = i
	}

	newCluster := func(seedRow int) (*clusterState, error) {
		cs := &clusterState{
			lo:     make([]float64, len(qi)),
			hi:     make([]float64, len(qi)),
			values: make([]map[string]struct{}, len(qi)),
		}
		for i := range qi {
			cs.values[i] = make(map[string]struct{})
		}
		if err := addToCluster(t, cs, seedRow, cols, numeric); err != nil {
			return nil, err
		}
		return cs, nil
	}

	// loss computes the cluster's NCP after hypothetically adding row r. It
	// only reads the cluster state and the table, so concurrent calls from
	// the scan pool are safe between mutations.
	loss := func(cs *clusterState, r int) (float64, error) {
		total := 0.0
		for i := range qi {
			if numeric[i] {
				v, err := t.Float(r, cols[i])
				if err != nil {
					// Treat unparseable numerics as maximal spread.
					total += 1
					continue
				}
				lo, hi := cs.lo[i], cs.hi[i]
				if len(cs.rows) == 0 {
					lo, hi = v, v
				} else {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				total += (hi - lo) / ranges[i]
			} else {
				v, err := t.Value(r, cols[i])
				if err != nil {
					return 0, err
				}
				n := len(cs.values[i])
				if _, ok := cs.values[i][v]; !ok {
					n++
				}
				if n > 1 {
					total += float64(n) / float64(domains[i])
				}
			}
		}
		return total, nil
	}

	report := cfg.Progress
	if report == nil {
		report = func(int, int) {}
	}
	placed := 0

	var clusters []*clusterState
	for len(unassigned) >= cfg.K {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("kmember: %w", err)
		}
		// Seed selection follows Byun et al.: the record farthest (largest
		// loss) from the previous cluster starts the next one; the first
		// cluster starts from the lowest unassigned index.
		seedRow, err := pickSeed(unassigned, clusters, workers, loss)
		if err != nil {
			return nil, err
		}
		unassigned = removeSorted(unassigned, seedRow)
		cs, err := newCluster(seedRow)
		if err != nil {
			return nil, err
		}
		for len(cs.rows) < cfg.K {
			bestRow, _, err := scanBest(unassigned, workers,
				func(r int) (float64, error) { return loss(cs, r) }, lowerLoss)
			if err != nil {
				return nil, err
			}
			if bestRow == -1 {
				break
			}
			unassigned = removeSorted(unassigned, bestRow)
			if err := addToCluster(t, cs, bestRow, cols, numeric); err != nil {
				return nil, err
			}
		}
		clusters = append(clusters, cs)
		placed += len(cs.rows)
		report(placed, t.Len())
	}
	// Residual records join the cluster whose loss increases least, in
	// ascending row order so repeated runs agree on the released row sets.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("kmember: %w", err)
	}
	for _, r := range unassigned {
		bestIdx, bestLoss := -1, 0.0
		for i, cs := range clusters {
			l, err := loss(cs, r)
			if err != nil {
				return nil, err
			}
			if bestIdx == -1 || l < bestLoss {
				bestIdx, bestLoss = i, l
			}
		}
		if bestIdx == -1 {
			return nil, fmt.Errorf("%w: could not place residual record %d", ErrTooFewRecords, r)
		}
		if err := addToCluster(t, clusters[bestIdx], r, cols, numeric); err != nil {
			return nil, err
		}
	}

	report(t.Len(), t.Len())

	groups := make([][]int, len(clusters))
	for i, cs := range clusters {
		groups[i] = cs.rows
	}
	released, summaries, err := generalize.RecodeGroups(t, qi, cfg.Hierarchies, groups)
	if err != nil {
		return nil, err
	}
	return &Result{Table: released, Groups: groups, Summaries: summaries}, nil
}

// pickSeed chooses the next cluster's starting record: the unassigned record
// with the largest loss relative to the most recent cluster (ties and the
// first cluster resolve to the smallest row index, keeping runs
// deterministic).
func pickSeed(unassigned []int, clusters []*clusterState, workers int, loss func(*clusterState, int) (float64, error)) (int, error) {
	if len(unassigned) == 0 {
		return -1, nil
	}
	if len(clusters) == 0 {
		// Every loss is zero relative to no cluster; the smallest index wins.
		return unassigned[0], nil
	}
	last := clusters[len(clusters)-1]
	best, _, err := scanBest(unassigned, workers,
		func(r int) (float64, error) { return loss(last, r) }, higherLoss)
	return best, err
}

// lowerLoss is the growth-step order: least loss first, smallest row on ties.
func lowerLoss(l float64, r int, bestL float64, bestR int) bool {
	return l < bestL || (l == bestL && r < bestR)
}

// higherLoss is the seed-selection order: largest loss first, smallest row on
// ties.
func higherLoss(l float64, r int, bestL float64, bestR int) bool {
	return l > bestL || (l == bestL && r < bestR)
}

// parallelScanMin is the smallest scan worth fanning out to the worker pool;
// below it the fork-join overhead exceeds the scan itself. The threshold
// cannot change results — both paths fold the same total order.
const parallelScanMin = 512

// scanBest returns the record of rows (ascending row order) that is best
// under the better comparator, together with its loss. The slice is split
// into one contiguous chunk per worker, each chunk folds its local best
// concurrently, and the chunk results fold sequentially in slice order —
// for a total order over (loss, row) the outcome is therefore identical for
// every worker count.
func scanBest(rows []int, workers int, score func(r int) (float64, error), better func(l float64, r int, bestL float64, bestR int) bool) (int, float64, error) {
	type best struct {
		row  int
		loss float64
	}
	fold := func(part []int) (best, error) {
		b := best{row: -1}
		for _, r := range part {
			l, err := score(r)
			if err != nil {
				return best{}, err
			}
			if b.row == -1 || better(l, r, b.loss, b.row) {
				b = best{row: r, loss: l}
			}
		}
		return b, nil
	}
	chunks := workers
	if len(rows) < parallelScanMin {
		chunks = 1
	}
	if chunks > len(rows) {
		chunks = len(rows)
	}
	if chunks <= 1 {
		b, err := fold(rows)
		return b.row, b.loss, err
	}
	// Cap the pool at workers explicitly: chunks currently equals workers,
	// but the pool size must not silently grow if the chunking policy ever
	// decouples from it.
	outs, err := parallel.Map(chunks, workers, func(ci int) (best, error) {
		return fold(rows[ci*len(rows)/chunks : (ci+1)*len(rows)/chunks])
	})
	if err != nil {
		return -1, 0, err
	}
	b := best{row: -1}
	for _, o := range outs {
		if o.row == -1 {
			continue
		}
		if b.row == -1 || better(o.loss, o.row, b.loss, b.row) {
			b = o
		}
	}
	return b.row, b.loss, nil
}

// removeSorted deletes value v from the ascending slice s in place,
// preserving order.
func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i >= len(s) || s[i] != v {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

// addToCluster updates the cluster's extent with row r.
func addToCluster(t *dataset.Table, cs *clusterState, r int, cols []int, numeric []bool) error {
	for i, c := range cols {
		if numeric[i] {
			v, err := t.Float(r, c)
			if err == nil {
				if len(cs.rows) == 0 || v < cs.lo[i] {
					cs.lo[i] = v
				}
				if len(cs.rows) == 0 || v > cs.hi[i] {
					cs.hi[i] = v
				}
			}
		} else {
			v, err := t.Value(r, c)
			if err != nil {
				return err
			}
			cs.values[i][v] = struct{}{}
		}
	}
	cs.rows = append(cs.rows, r)
	return nil
}
