package kmember

import (
	"context"
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/privacy"
	"github.com/ppdp/ppdp/internal/synth"
	"github.com/ppdp/ppdp/internal/testctx"
)

func TestAnonymizeReachesK(t *testing.T) {
	tbl := synth.Hospital(300, 1)
	res, err := Anonymize(tbl, Config{K: 5, Hierarchies: synth.HospitalHierarchies()})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	classes, err := res.Table.GroupByQuasiIdentifier()
	if err != nil {
		t.Fatal(err)
	}
	if got := privacy.MeasureK(classes); got < 5 {
		t.Errorf("min class %d < 5", got)
	}
	// Every cluster has at least k members and rows are covered once.
	covered := make(map[int]bool)
	for _, g := range res.Groups {
		if len(g) < 5 {
			t.Errorf("cluster of size %d", len(g))
		}
		for _, r := range g {
			if covered[r] {
				t.Errorf("row %d in two clusters", r)
			}
			covered[r] = true
		}
	}
	if len(covered) != tbl.Len() {
		t.Errorf("covered %d rows, want %d", len(covered), tbl.Len())
	}
	if res.Table.Len() != tbl.Len() {
		t.Errorf("released %d rows, want %d", res.Table.Len(), tbl.Len())
	}
}

func TestDeterministic(t *testing.T) {
	tbl := synth.Hospital(150, 2)
	a, err := Anonymize(tbl, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anonymize(tbl, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(a.Groups), len(b.Groups))
	}
	for i := range a.Groups {
		if len(a.Groups[i]) != len(b.Groups[i]) {
			t.Fatalf("group %d sizes differ", i)
		}
		for j := range a.Groups[i] {
			if a.Groups[i][j] != b.Groups[i][j] {
				t.Fatalf("group %d member %d differs", i, j)
			}
		}
	}
}

func TestClusterCountScalesWithK(t *testing.T) {
	tbl := synth.Hospital(200, 3)
	res4, err := Anonymize(tbl, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	res20, err := Anonymize(tbl, Config{K: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res4.Groups) <= len(res20.Groups) {
		t.Errorf("k=4 clusters %d <= k=20 clusters %d", len(res4.Groups), len(res20.Groups))
	}
	if len(res20.Groups) > 200/20 {
		t.Errorf("k=20 produced %d clusters for 200 rows; at most %d possible", len(res20.Groups), 200/20)
	}
}

func TestConfigErrors(t *testing.T) {
	tbl := synth.Hospital(30, 4)
	if _, err := Anonymize(tbl, Config{K: 0}); !errors.Is(err, ErrConfig) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{K: 100}); !errors.Is(err, ErrTooFewRecords) {
		t.Errorf("too-few-records error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{K: 2, QuasiIdentifiers: []string{"missing"}}); err == nil {
		t.Error("unknown QI accepted")
	}
}

func TestExplicitQISubset(t *testing.T) {
	tbl := synth.Hospital(120, 5)
	res, err := Anonymize(tbl, Config{K: 6, QuasiIdentifiers: []string{"age", "sex"}})
	if err != nil {
		t.Fatal(err)
	}
	classes, err := res.Table.GroupBy("age", "sex")
	if err != nil {
		t.Fatal(err)
	}
	if privacy.MeasureK(classes) < 6 {
		t.Errorf("subset QI release not 6-anonymous")
	}
	origZip, _ := tbl.Column("zip")
	gotZip, _ := res.Table.Column("zip")
	for i := range origZip {
		if origZip[i] != gotZip[i] {
			t.Fatalf("zip changed at row %d", i)
		}
	}
}

// TestAnonymizeContextCancellation checks the context gate at the
// algorithm's natural unit of work (one grown cluster): a canceled run
// returns ctx.Err() and no partial result, deterministically via a
// poll-counting context.
func TestAnonymizeContextCancellation(t *testing.T) {
	tbl := synth.Hospital(300, 1)
	cfg := Config{K: 5}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AnonymizeContext(pre, tbl, cfg)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("pre-canceled: res=%v err=%v, want nil + context.Canceled", res, err)
	}
	for _, n := range []int{1, 4} {
		res, err := AnonymizeContext(testctx.CancelAfter(n), tbl, cfg)
		if !errors.Is(err, context.Canceled) || res != nil {
			t.Fatalf("cancel after %d polls: res=%v err=%v, want nil + context.Canceled", n, res, err)
		}
	}
	if _, err := AnonymizeContext(context.Background(), tbl, cfg); err != nil {
		t.Fatalf("live context: %v", err)
	}
}
