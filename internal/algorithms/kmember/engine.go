package kmember

import (
	"context"
	"errors"
	"fmt"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/policy"
)

// adapter plugs k-member clustering into the engine registry (see package
// engine).
type adapter struct{}

func init() { engine.Register(adapter{}) }

func (adapter) Name() string { return "kmember" }

func (adapter) Describe() engine.Info {
	return engine.Info{
		Name:         "kmember",
		Description:  "greedy clustering anonymization",
		Kind:         engine.Microdata,
		Parallel:     true,
		CostExponent: 2,
		Criteria:     []string{policy.KAnonymity},
		Parameters: []engine.Param{
			{Name: "k", Type: "int", Required: true, Default: 10, Description: "minimum cluster size"},
			{Name: "quasi_identifiers", Type: "[]string", Description: "attributes for distance and recoding (schema QI columns when empty)"},
			{Name: "workers", Type: "int", Description: "record-scan worker pool bound (0 = GOMAXPROCS)"},
		},
	}
}

func (adapter) Validate(spec engine.Spec) error {
	if err := engine.ValidateCriteria(adapter{}.Describe(), spec); err != nil {
		return err
	}
	if spec.K < 1 {
		return fmt.Errorf("kmember: K must be at least 1 (got %d)", spec.K)
	}
	return nil
}

func (adapter) Run(ctx context.Context, t *dataset.Table, spec engine.Spec) (*engine.Result, error) {
	res, err := AnonymizeContext(ctx, t, Config{
		K:                spec.K,
		QuasiIdentifiers: spec.QuasiIdentifiers,
		Hierarchies:      spec.Hierarchies,
		Workers:          spec.Workers,
		Progress:         engine.Monotone(spec.Progress),
	})
	if err != nil {
		return nil, classify(err)
	}
	return &engine.Result{Table: res.Table, Extra: res}, nil
}

// classify wraps the package's sentinel errors with the engine's error
// classes so the service layer can map them without importing this package.
func classify(err error) error {
	switch {
	case errors.Is(err, ErrConfig):
		return engine.ConfigError(err)
	case errors.Is(err, ErrTooFewRecords):
		return engine.UnsatisfiableError(err)
	}
	return err
}
