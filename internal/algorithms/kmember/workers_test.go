package kmember

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/synth"
)

// TestWorkersEquivalence locks in that chunked parallel record scans are
// deterministic: every worker count builds the same clusters and releases
// the identical table. The 800-row fixture crosses the parallelScanMin
// threshold, so the parallel path actually runs.
func TestWorkersEquivalence(t *testing.T) {
	tbl := synth.Hospital(800, 1)
	base, err := Anonymize(tbl, Config{K: 5, Hierarchies: synth.HospitalHierarchies(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := Anonymize(tbl, Config{K: 5, Hierarchies: synth.HospitalHierarchies(), Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Groups) != len(base.Groups) {
			t.Fatalf("workers=%d cluster count %d != sequential %d", workers, len(res.Groups), len(base.Groups))
		}
		for g := range res.Groups {
			if len(res.Groups[g]) != len(base.Groups[g]) {
				t.Fatalf("workers=%d cluster %d size %d != %d", workers, g, len(res.Groups[g]), len(base.Groups[g]))
			}
			for i := range res.Groups[g] {
				if res.Groups[g][i] != base.Groups[g][i] {
					t.Errorf("workers=%d cluster %d row %d: %d != %d",
						workers, g, i, res.Groups[g][i], base.Groups[g][i])
				}
			}
		}
		var seq, par bytes.Buffer
		if err := base.Table.WriteCSV(&seq); err != nil {
			t.Fatal(err)
		}
		if err := res.Table.WriteCSV(&par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Errorf("workers=%d released table differs from sequential run", workers)
		}
	}
}

func TestWorkersNegativeRejected(t *testing.T) {
	tbl := synth.Hospital(50, 1)
	_, err := Anonymize(tbl, Config{K: 2, Workers: -1})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("Workers=-1: got %v, want ErrConfig", err)
	}
}

// benchmarkWorkers measures full k-member runs at a fixed worker count; the
// 1-vs-max pair quantifies the speedup of the parallel nearest-record scans
// dominating the quadratic growth phase.
func benchmarkWorkers(b *testing.B, workers int) {
	tbl := synth.Census(1000, 1)
	hs := synth.CensusHierarchies()
	qi := []string{"age", "sex", "education", "marital-status", "race"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(tbl, Config{K: 10, QuasiIdentifiers: qi, Hierarchies: hs, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMemberWorkers1(b *testing.B)   { benchmarkWorkers(b, 1) }
func BenchmarkKMemberWorkersMax(b *testing.B) { benchmarkWorkers(b, 0) }
