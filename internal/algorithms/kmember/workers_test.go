package kmember

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ppdp/ppdp/internal/synth"
)

// TestWorkersEquivalence locks in that chunked parallel record scans are
// deterministic: every worker count builds the same clusters and releases
// the identical table. The 800-row fixture crosses the parallelScanMin
// threshold, so the parallel path actually runs.
func TestWorkersEquivalence(t *testing.T) {
	tbl := synth.Hospital(800, 1)
	base, err := Anonymize(tbl, Config{K: 5, Hierarchies: synth.HospitalHierarchies(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := Anonymize(tbl, Config{K: 5, Hierarchies: synth.HospitalHierarchies(), Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Groups) != len(base.Groups) {
			t.Fatalf("workers=%d cluster count %d != sequential %d", workers, len(res.Groups), len(base.Groups))
		}
		for g := range res.Groups {
			if len(res.Groups[g]) != len(base.Groups[g]) {
				t.Fatalf("workers=%d cluster %d size %d != %d", workers, g, len(res.Groups[g]), len(base.Groups[g]))
			}
			for i := range res.Groups[g] {
				if res.Groups[g][i] != base.Groups[g][i] {
					t.Errorf("workers=%d cluster %d row %d: %d != %d",
						workers, g, i, res.Groups[g][i], base.Groups[g][i])
				}
			}
		}
		var seq, par bytes.Buffer
		if err := base.Table.WriteCSV(&seq); err != nil {
			t.Fatal(err)
		}
		if err := res.Table.WriteCSV(&par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Errorf("workers=%d released table differs from sequential run", workers)
		}
	}
}

// TestScanBestBoundsConcurrency pins the worker semantics of the chunked
// record scan: however the row set is chunked, scanBest must never run more
// than the configured workers score calls at once (the pool is capped at
// workers, not at the chunk count). The row count crosses parallelScanMin so
// the parallel path actually runs.
func TestScanBestBoundsConcurrency(t *testing.T) {
	rows := make([]int, 2*parallelScanMin)
	for i := range rows {
		rows[i] = i
	}
	for _, workers := range []int{1, 2, 3} {
		var active, peak atomic.Int64
		score := func(r int) (float64, error) {
			cur := active.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(50 * time.Microsecond) // widen the overlap window
			active.Add(-1)
			return float64(r), nil
		}
		better := func(l float64, r int, bestL float64, bestR int) bool { return l < bestL }
		row, loss, err := scanBest(rows, workers, score, better)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if row != 0 || loss != 0 {
			t.Fatalf("workers=%d: best = (%d, %v), want (0, 0)", workers, row, loss)
		}
		if p := peak.Load(); p > int64(workers) {
			t.Errorf("workers=%d: observed %d concurrent score calls", workers, p)
		}
	}
}

func TestWorkersNegativeRejected(t *testing.T) {
	tbl := synth.Hospital(50, 1)
	_, err := Anonymize(tbl, Config{K: 2, Workers: -1})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("Workers=-1: got %v, want ErrConfig", err)
	}
}

// benchmarkWorkers measures full k-member runs at a fixed worker count; the
// 1-vs-max pair quantifies the speedup of the parallel nearest-record scans
// dominating the quadratic growth phase.
func benchmarkWorkers(b *testing.B, workers int) {
	tbl := synth.Census(1000, 1)
	hs := synth.CensusHierarchies()
	qi := []string{"age", "sex", "education", "marital-status", "race"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(tbl, Config{K: 10, QuasiIdentifiers: qi, Hierarchies: hs, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMemberWorkers1(b *testing.B)   { benchmarkWorkers(b, 1) }
func BenchmarkKMemberWorkersMax(b *testing.B) { benchmarkWorkers(b, 0) }
