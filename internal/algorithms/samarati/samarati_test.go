package samarati

import (
	"context"
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/privacy"
	"github.com/ppdp/ppdp/internal/synth"
	"github.com/ppdp/ppdp/internal/testctx"
)

func TestAnonymizeReachesK(t *testing.T) {
	tbl := synth.Hospital(500, 1)
	res, err := Anonymize(tbl, Config{
		K:                5,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
		MaxSuppression:   0.05,
	})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	classes, err := res.Table.GroupBy("age", "zip", "sex")
	if err != nil {
		t.Fatal(err)
	}
	if privacy.MeasureK(classes) < 5 {
		t.Errorf("release not 5-anonymous: min class %d", privacy.MeasureK(classes))
	}
	if res.Height != res.Node.Height() {
		t.Errorf("Height %d != Node height %d", res.Height, res.Node.Height())
	}
	if res.NodesEvaluated <= 0 {
		t.Error("NodesEvaluated not recorded")
	}
	if res.SuppressedRows+res.Table.Len() != tbl.Len() {
		t.Errorf("row accounting wrong: %d + %d != %d", res.SuppressedRows, res.Table.Len(), tbl.Len())
	}
}

func TestMinimalHeight(t *testing.T) {
	// With a generous suppression budget Samarati should find a low height;
	// with no budget the height can only rise.
	tbl := synth.Hospital(400, 2)
	hs := synth.HospitalHierarchies()
	qi := []string{"age", "zip", "sex"}
	loose, err := Anonymize(tbl, Config{K: 10, QuasiIdentifiers: qi, Hierarchies: hs, MaxSuppression: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Anonymize(tbl, Config{K: 10, QuasiIdentifiers: qi, Hierarchies: hs, MaxSuppression: 0})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Height < loose.Height {
		t.Errorf("zero-suppression height %d below %d with suppression budget", strict.Height, loose.Height)
	}
}

func TestConfigErrors(t *testing.T) {
	tbl := synth.Hospital(50, 3)
	hs := synth.HospitalHierarchies()
	cases := []Config{
		{K: 0, Hierarchies: hs},
		{K: 2, Hierarchies: nil},
		{K: 2, Hierarchies: hs, MaxSuppression: -0.1},
		{K: 2, Hierarchies: hs, QuasiIdentifiers: []string{"nonexistent"}},
	}
	for i, cfg := range cases {
		if _, err := Anonymize(tbl, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Anonymize(tbl, Config{K: 2, Hierarchies: nil}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil hierarchies error = %v", err)
	}
}

func TestUnsatisfiable(t *testing.T) {
	tbl := synth.Hospital(10, 4)
	_, err := Anonymize(tbl, Config{
		K:                50,
		QuasiIdentifiers: []string{"age", "zip"},
		Hierarchies:      synth.HospitalHierarchies(),
		MaxSuppression:   0,
	})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("expected ErrUnsatisfiable, got %v", err)
	}
}

func TestHigherKNeverLowersHeight(t *testing.T) {
	tbl := synth.Hospital(400, 6)
	hs := synth.HospitalHierarchies()
	qi := []string{"age", "zip", "sex"}
	prevHeight := -1
	for _, k := range []int{2, 10, 50} {
		res, err := Anonymize(tbl, Config{K: k, QuasiIdentifiers: qi, Hierarchies: hs, MaxSuppression: 0.01})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Height < prevHeight {
			t.Errorf("height decreased from %d to %d as k grew to %d", prevHeight, res.Height, k)
		}
		prevHeight = res.Height
	}
}

// TestAnonymizeContextCancellation checks the context gate at the
// algorithm's natural unit of work (one lattice node): a canceled run
// returns ctx.Err() and no partial result, deterministically via a
// poll-counting context.
func TestAnonymizeContextCancellation(t *testing.T) {
	tbl := synth.Hospital(600, 1)
	cfg := Config{K: 5, Hierarchies: synth.HospitalHierarchies(), MaxSuppression: 0.05}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AnonymizeContext(pre, tbl, cfg)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("pre-canceled: res=%v err=%v, want nil + context.Canceled", res, err)
	}
	for _, n := range []int{1, 3} {
		res, err := AnonymizeContext(testctx.CancelAfter(n), tbl, cfg)
		if !errors.Is(err, context.Canceled) || res != nil {
			t.Fatalf("cancel after %d polls: res=%v err=%v, want nil + context.Canceled", n, res, err)
		}
	}
	if _, err := AnonymizeContext(context.Background(), tbl, cfg); err != nil {
		t.Fatalf("live context: %v", err)
	}
}
