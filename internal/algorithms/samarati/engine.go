package samarati

import (
	"context"
	"errors"
	"fmt"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/policy"
)

// adapter plugs Samarati into the engine registry (see package engine).
type adapter struct{}

func init() { engine.Register(adapter{}) }

func (adapter) Name() string { return "samarati" }

func (adapter) Describe() engine.Info {
	return engine.Info{
		Name:                "samarati",
		Description:         "binary lattice-height search with suppression",
		Kind:                engine.Microdata,
		FullDomain:          true,
		RequiresHierarchies: true,
		Parallel:            true,
		CostExponent:        1,
		Criteria:            []string{policy.KAnonymity},
		Parameters: []engine.Param{
			{Name: "k", Type: "int", Required: true, Default: 10, Description: "minimum equivalence-class size"},
			{Name: "quasi_identifiers", Type: "[]string", Description: "attributes to generalize (schema QI columns when empty)"},
			{Name: "max_suppression", Type: "float", Default: 0.02, Description: "maximum fraction of suppressed records"},
			{Name: "workers", Type: "int", Description: "lattice-level worker pool bound (0 = GOMAXPROCS)"},
		},
	}
}

func (adapter) Validate(spec engine.Spec) error {
	if err := engine.ValidateCriteria(adapter{}.Describe(), spec); err != nil {
		return err
	}
	if spec.K < 1 {
		return fmt.Errorf("samarati: K must be at least 1 (got %d)", spec.K)
	}
	if spec.Hierarchies == nil {
		return fmt.Errorf("samarati: algorithm requires generalization hierarchies")
	}
	return nil
}

func (adapter) Run(ctx context.Context, t *dataset.Table, spec engine.Spec) (*engine.Result, error) {
	res, err := AnonymizeContext(ctx, t, Config{
		K:                spec.K,
		QuasiIdentifiers: spec.QuasiIdentifiers,
		Hierarchies:      spec.Hierarchies,
		MaxSuppression:   spec.MaxSuppression,
		Workers:          spec.Workers,
		Progress:         engine.Monotone(spec.Progress),
	})
	if err != nil {
		return nil, classify(err)
	}
	return &engine.Result{Table: res.Table, Node: res.Node, SuppressedRows: res.SuppressedRows, Extra: res}, nil
}

// classify wraps the package's sentinel errors with the engine's error
// classes so the service layer can map them without importing this package.
func classify(err error) error {
	switch {
	case errors.Is(err, ErrConfig):
		return engine.ConfigError(err)
	case errors.Is(err, ErrUnsatisfiable):
		return engine.UnsatisfiableError(err)
	}
	return err
}
