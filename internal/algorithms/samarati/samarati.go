// Package samarati implements Samarati's full-domain anonymization algorithm:
// a binary search on the height of the generalization lattice for the lowest
// height at which some node achieves k-anonymity with at most MaxSuppression
// records suppressed. Among the satisfying nodes of that height, the node
// suppressing the fewest records is released.
// The nodes of one height level are independent of each other, so each
// level is evaluated by a bounded worker pool (Config.Workers); the released
// node is identical for every worker count because the fewest-suppressions
// fold happens sequentially, in level order, after the pool joins.
package samarati

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/generalize"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/lattice"
	"github.com/ppdp/ppdp/internal/parallel"
)

// Common errors.
var (
	// ErrUnsatisfiable is returned when no lattice node achieves k-anonymity
	// within the suppression budget.
	ErrUnsatisfiable = errors.New("samarati: no generalization satisfies k-anonymity within the suppression budget")
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("samarati: invalid configuration")
)

// Config controls a Samarati run.
type Config struct {
	// K is the required minimum equivalence-class size.
	K int
	// QuasiIdentifiers lists the attributes to generalize; when empty the
	// schema's quasi-identifier columns are used.
	QuasiIdentifiers []string
	// Hierarchies supplies a hierarchy for every quasi-identifier.
	Hierarchies *hierarchy.Set
	// MaxSuppression is the maximum fraction of records (0..1) that may be
	// suppressed.
	MaxSuppression float64
	// Workers bounds the pool that evaluates one height level's lattice
	// nodes concurrently. Zero uses runtime.GOMAXPROCS(0); 1 forces a
	// sequential run. The released node is identical for every count.
	Workers int
	// Progress, when non-nil, receives (done, total) after every evaluated
	// lattice node — the same unit of work the context is polled at. Total is
	// the lattice size (an upper bound: the binary search visits a subset);
	// a successful run ends with a (total, total) event. Pool workers report
	// concurrently and may interleave out of order; callers that need a
	// monotone stream wrap the sink (see engine.Monotone, which the engine
	// adapter applies).
	Progress func(done, total int)
}

// Result describes the outcome of a Samarati run.
type Result struct {
	// Table is the released table.
	Table *dataset.Table
	// Node is the chosen lattice node.
	Node lattice.Node
	// QuasiIdentifiers is the attribute order Node refers to.
	QuasiIdentifiers []string
	// SuppressedRows is the number of removed records.
	SuppressedRows int
	// Height is the chosen node's lattice height.
	Height int
	// NodesEvaluated counts how many lattice nodes were checked.
	NodesEvaluated int
}

// Anonymize runs Samarati's binary lattice search over t with no
// cancellation; it is shorthand for AnonymizeContext with a background
// context.
func Anonymize(t *dataset.Table, cfg Config) (*Result, error) {
	return AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext runs Samarati's binary lattice search over t. The context
// is polled once per evaluated lattice node — the search's natural unit of
// work — so a canceled or timed-out run returns ctx.Err() after at most one
// node's recoding instead of a release.
func AnonymizeContext(ctx context.Context, t *dataset.Table, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrConfig, cfg.K)
	}
	if cfg.Hierarchies == nil {
		return nil, fmt.Errorf("%w: nil hierarchy set", ErrConfig)
	}
	if cfg.MaxSuppression < 0 || cfg.MaxSuppression > 1 {
		return nil, fmt.Errorf("%w: max suppression %v", ErrConfig, cfg.MaxSuppression)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: workers = %d", ErrConfig, cfg.Workers)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	qi := cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = t.Schema().QuasiIdentifierNames()
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("%w: no quasi-identifier attributes", ErrConfig)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(qi)
	if err != nil {
		return nil, err
	}
	lat, err := lattice.New(qi, maxLevels)
	if err != nil {
		return nil, err
	}
	budget := int(cfg.MaxSuppression * float64(t.Len()))
	report := cfg.Progress
	if report == nil {
		report = func(int, int) {}
	}
	totalNodes := lat.Size()

	var evaluated atomic.Int64
	// bestAtHeight returns the best satisfying node at height h, or nil. The
	// level's nodes are independent, so they are recoded and checked by the
	// worker pool; the fewest-suppressions fold runs sequentially afterwards,
	// in level order, so the choice is identical for every worker count.
	bestAtHeight := func(h int) (lattice.Node, int, error) {
		level := lat.NodesAtHeight(h)
		costs, err := parallel.Map(len(level), workers, func(i int) (int, error) {
			if err := ctx.Err(); err != nil {
				return 0, fmt.Errorf("samarati: %w", err)
			}
			// The verification walk below the binary search can revisit a
			// height, so cap the reported count at the lattice size.
			report(min(int(evaluated.Add(1)), totalNodes), totalNodes)
			return violations(t, qi, cfg.Hierarchies, level[i], cfg.K)
		})
		if err != nil {
			return nil, 0, err
		}
		var best lattice.Node
		bestSuppress := -1
		for i, suppress := range costs {
			if suppress <= budget && (bestSuppress == -1 || suppress < bestSuppress) {
				best = level[i].Clone()
				bestSuppress = suppress
			}
		}
		return best, bestSuppress, nil
	}

	// Binary search the minimal height with a satisfying node. Satisfiability
	// is monotone in height only in the weak sense used by Samarati: the top
	// node maximally generalizes, so if it fails nothing succeeds; the search
	// still verifies the found layer exactly.
	lo, hi := 0, lat.MaxHeight()
	var found lattice.Node
	foundSuppress := 0
	foundHeight := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		node, suppress, err := bestAtHeight(mid)
		if err != nil {
			return nil, err
		}
		if node != nil {
			found, foundSuppress, foundHeight = node, suppress, mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if found == nil {
		return nil, fmt.Errorf("%w (k=%d, budget=%d rows)", ErrUnsatisfiable, cfg.K, budget)
	}
	// The binary search can overshoot when satisfiability is not perfectly
	// monotone across heights; walk down from the found height to the first
	// height where no node satisfies, keeping the lowest satisfying layer.
	for h := foundHeight - 1; h >= 0; h-- {
		node, suppress, err := bestAtHeight(h)
		if err != nil {
			return nil, err
		}
		if node == nil {
			break
		}
		found, foundSuppress, foundHeight = node, suppress, h
	}

	released, err := apply(t, qi, cfg.Hierarchies, found, cfg.K)
	if err != nil {
		return nil, err
	}
	report(totalNodes, totalNodes)
	return &Result{
		Table:            released,
		Node:             found,
		QuasiIdentifiers: append([]string(nil), qi...),
		SuppressedRows:   foundSuppress,
		Height:           foundHeight,
		NodesEvaluated:   int(evaluated.Load()),
	}, nil
}

// violations counts the records that would need suppression for node to be
// k-anonymous.
func violations(t *dataset.Table, qi []string, hs *hierarchy.Set, node lattice.Node, k int) (int, error) {
	recoded, err := generalize.FullDomain(t, qi, hs, node)
	if err != nil {
		return 0, err
	}
	classes, err := recoded.GroupBy(qi...)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range classes {
		if c.Size() < k {
			total += c.Size()
		}
	}
	return total, nil
}

// apply produces the released table for node, suppressing undersized classes.
func apply(t *dataset.Table, qi []string, hs *hierarchy.Set, node lattice.Node, k int) (*dataset.Table, error) {
	recoded, err := generalize.FullDomain(t, qi, hs, node)
	if err != nil {
		return nil, err
	}
	classes, err := recoded.GroupBy(qi...)
	if err != nil {
		return nil, err
	}
	var drop []int
	for _, c := range classes {
		if c.Size() < k {
			drop = append(drop, c.Rows...)
		}
	}
	return generalize.SuppressRows(recoded, drop)
}
