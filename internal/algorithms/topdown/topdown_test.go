package topdown

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/privacy"
	"github.com/ppdp/ppdp/internal/synth"
	"github.com/ppdp/ppdp/internal/testctx"
)

func TestAnonymizeReachesK(t *testing.T) {
	tbl := synth.Hospital(600, 1)
	res, err := Anonymize(tbl, Config{
		K:                5,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
	})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	classes, err := res.Table.GroupBy("age", "zip", "sex")
	if err != nil {
		t.Fatal(err)
	}
	if privacy.MeasureK(classes) < 5 {
		t.Errorf("release not 5-anonymous: min class %d", privacy.MeasureK(classes))
	}
	if res.Table.Len() != tbl.Len() {
		t.Errorf("row count changed: %d -> %d", tbl.Len(), res.Table.Len())
	}
}

func TestSpecializationIsMinimal(t *testing.T) {
	// Every further one-step specialization of the returned node must
	// violate the criteria — otherwise the walk stopped early.
	tbl := synth.Hospital(500, 2)
	hs := synth.HospitalHierarchies()
	qi := []string{"age", "zip", "sex"}
	res, err := Anonymize(tbl, Config{K: 10, QuasiIdentifiers: qi, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Specializations == 0 && res.Node.Height() > 0 {
		// Having performed no specialization is only acceptable if the top
		// itself is the answer; in a 500-row table with k=10 at least one
		// specialization should be possible.
		t.Errorf("no specializations performed from %v", res.Node)
	}
}

func TestHigherKGeneralizesMore(t *testing.T) {
	tbl := synth.Hospital(500, 3)
	hs := synth.HospitalHierarchies()
	qi := []string{"age", "zip", "sex"}
	res5, err := Anonymize(tbl, Config{K: 5, QuasiIdentifiers: qi, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	res50, err := Anonymize(tbl, Config{K: 50, QuasiIdentifiers: qi, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	if res50.Node.Height() < res5.Node.Height() {
		t.Errorf("k=50 node %v lower than k=5 node %v", res50.Node, res5.Node)
	}
}

func TestWithLDiversity(t *testing.T) {
	tbl := synth.Hospital(800, 4)
	res, err := Anonymize(tbl, Config{
		K:                5,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
		Extra:            []privacy.Criterion{privacy.DistinctLDiversity{L: 2, Sensitive: "diagnosis"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	classes, _ := res.Table.GroupBy("age", "zip", "sex")
	l, err := privacy.MeasureDistinctL(res.Table, classes, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if l < 2 {
		t.Errorf("release not 2-diverse: %d", l)
	}
}

func TestCustomScore(t *testing.T) {
	tbl := synth.Hospital(300, 5)
	qi := []string{"age", "sex"}
	called := false
	_, err := Anonymize(tbl, Config{
		K:                5,
		QuasiIdentifiers: qi,
		Hierarchies:      synth.HospitalHierarchies(),
		Score: func(_ *dataset.Table, classes []dataset.EquivalenceClass) float64 {
			called = true
			return dataset.AverageClassSize(classes)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("custom score never invoked")
	}
}

func TestConfigErrors(t *testing.T) {
	tbl := synth.Hospital(50, 6)
	hs := synth.HospitalHierarchies()
	if _, err := Anonymize(tbl, Config{K: 0, Hierarchies: hs}); !errors.Is(err, ErrConfig) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{K: 2}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil hierarchies error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{K: 2, Hierarchies: hs, QuasiIdentifiers: []string{"missing"}}); err == nil {
		t.Error("unknown QI accepted")
	}
}

func TestUnsatisfiable(t *testing.T) {
	tbl := synth.Hospital(10, 7)
	_, err := Anonymize(tbl, Config{
		K:                100,
		QuasiIdentifiers: []string{"age", "zip"},
		Hierarchies:      synth.HospitalHierarchies(),
	})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("expected ErrUnsatisfiable, got %v", err)
	}
}

// TestAnonymizeContextCancellation checks the context gate at the
// algorithm's natural unit of work (one candidate specialization),
// sequentially and on the parallel candidate pool: a canceled run returns
// ctx.Err() and no partial result, deterministically via a poll-counting
// context.
func TestAnonymizeContextCancellation(t *testing.T) {
	tbl := synth.Hospital(600, 1)
	for _, workers := range []int{1, 4} {
		cfg := Config{K: 5, Hierarchies: synth.HospitalHierarchies(), Workers: workers}

		pre, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := AnonymizeContext(pre, tbl, cfg)
		if !errors.Is(err, context.Canceled) || res != nil {
			t.Fatalf("workers=%d pre-canceled: res=%v err=%v, want nil + context.Canceled", workers, res, err)
		}
		for _, n := range []int{1, 4} {
			res, err := AnonymizeContext(testctx.CancelAfter(n), tbl, cfg)
			if !errors.Is(err, context.Canceled) || res != nil {
				t.Fatalf("workers=%d cancel after %d polls: res=%v err=%v, want nil + context.Canceled", workers, n, res, err)
			}
		}
		if _, err := AnonymizeContext(context.Background(), tbl, cfg); err != nil {
			t.Fatalf("workers=%d live context: %v", workers, err)
		}
	}
}

// TestWorkersEquivalence locks in that the parallel candidate evaluation is
// deterministic: every worker count walks to the identical node and table.
func TestWorkersEquivalence(t *testing.T) {
	tbl := synth.Hospital(800, 2)
	base, err := Anonymize(tbl, Config{K: 4, Hierarchies: synth.HospitalHierarchies(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := Anonymize(tbl, Config{K: 4, Hierarchies: synth.HospitalHierarchies(), Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Node.Key() != base.Node.Key() {
			t.Errorf("workers=%d node %v != sequential %v", workers, res.Node, base.Node)
		}
		if res.Specializations != base.Specializations {
			t.Errorf("workers=%d steps %d != sequential %d", workers, res.Specializations, base.Specializations)
		}
		var seq, par bytes.Buffer
		if err := base.Table.WriteCSV(&seq); err != nil {
			t.Fatal(err)
		}
		if err := res.Table.WriteCSV(&par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Errorf("workers=%d released table differs from sequential run", workers)
		}
	}
}

// benchmarkWorkers measures the specialization walk at a fixed worker
// count; the 1-vs-max pair quantifies the parallel speedup of the candidate
// pool.
func benchmarkWorkers(b *testing.B, workers int) {
	tbl := synth.Census(2000, 1)
	hs := synth.CensusHierarchies()
	qi := []string{"age", "sex", "education", "marital-status", "race"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(tbl, Config{K: 10, QuasiIdentifiers: qi, Hierarchies: hs, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopDownWorkers1(b *testing.B)   { benchmarkWorkers(b, 1) }
func BenchmarkTopDownWorkersMax(b *testing.B) { benchmarkWorkers(b, 0) }
