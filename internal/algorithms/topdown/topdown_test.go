package topdown

import (
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/privacy"
	"github.com/ppdp/ppdp/internal/synth"
)

func TestAnonymizeReachesK(t *testing.T) {
	tbl := synth.Hospital(600, 1)
	res, err := Anonymize(tbl, Config{
		K:                5,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
	})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	classes, err := res.Table.GroupBy("age", "zip", "sex")
	if err != nil {
		t.Fatal(err)
	}
	if privacy.MeasureK(classes) < 5 {
		t.Errorf("release not 5-anonymous: min class %d", privacy.MeasureK(classes))
	}
	if res.Table.Len() != tbl.Len() {
		t.Errorf("row count changed: %d -> %d", tbl.Len(), res.Table.Len())
	}
}

func TestSpecializationIsMinimal(t *testing.T) {
	// Every further one-step specialization of the returned node must
	// violate the criteria — otherwise the walk stopped early.
	tbl := synth.Hospital(500, 2)
	hs := synth.HospitalHierarchies()
	qi := []string{"age", "zip", "sex"}
	res, err := Anonymize(tbl, Config{K: 10, QuasiIdentifiers: qi, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Specializations == 0 && res.Node.Height() > 0 {
		// Having performed no specialization is only acceptable if the top
		// itself is the answer; in a 500-row table with k=10 at least one
		// specialization should be possible.
		t.Errorf("no specializations performed from %v", res.Node)
	}
}

func TestHigherKGeneralizesMore(t *testing.T) {
	tbl := synth.Hospital(500, 3)
	hs := synth.HospitalHierarchies()
	qi := []string{"age", "zip", "sex"}
	res5, err := Anonymize(tbl, Config{K: 5, QuasiIdentifiers: qi, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	res50, err := Anonymize(tbl, Config{K: 50, QuasiIdentifiers: qi, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	if res50.Node.Height() < res5.Node.Height() {
		t.Errorf("k=50 node %v lower than k=5 node %v", res50.Node, res5.Node)
	}
}

func TestWithLDiversity(t *testing.T) {
	tbl := synth.Hospital(800, 4)
	res, err := Anonymize(tbl, Config{
		K:                5,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
		Extra:            []privacy.Criterion{privacy.DistinctLDiversity{L: 2, Sensitive: "diagnosis"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	classes, _ := res.Table.GroupBy("age", "zip", "sex")
	l, err := privacy.MeasureDistinctL(res.Table, classes, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if l < 2 {
		t.Errorf("release not 2-diverse: %d", l)
	}
}

func TestCustomScore(t *testing.T) {
	tbl := synth.Hospital(300, 5)
	qi := []string{"age", "sex"}
	called := false
	_, err := Anonymize(tbl, Config{
		K:                5,
		QuasiIdentifiers: qi,
		Hierarchies:      synth.HospitalHierarchies(),
		Score: func(_ *dataset.Table, classes []dataset.EquivalenceClass) float64 {
			called = true
			return dataset.AverageClassSize(classes)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("custom score never invoked")
	}
}

func TestConfigErrors(t *testing.T) {
	tbl := synth.Hospital(50, 6)
	hs := synth.HospitalHierarchies()
	if _, err := Anonymize(tbl, Config{K: 0, Hierarchies: hs}); !errors.Is(err, ErrConfig) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{K: 2}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil hierarchies error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{K: 2, Hierarchies: hs, QuasiIdentifiers: []string{"missing"}}); err == nil {
		t.Error("unknown QI accepted")
	}
}

func TestUnsatisfiable(t *testing.T) {
	tbl := synth.Hospital(10, 7)
	_, err := Anonymize(tbl, Config{
		K:                100,
		QuasiIdentifiers: []string{"age", "zip"},
		Hierarchies:      synth.HospitalHierarchies(),
	})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("expected ErrUnsatisfiable, got %v", err)
	}
}
