// Package topdown implements a top-down specialization (TDS) anonymizer in
// the style of Fung, Wang and Yu: the release starts from the fully
// generalized table (every quasi-identifier at its hierarchy root) and is
// repeatedly specialized one attribute level at a time, always choosing the
// specialization with the best score, for as long as the privacy criteria
// remain satisfied. Because specialization only ever refines equivalence
// classes, the walk can stop at the first level where every further
// specialization violates the criteria, yielding a minimally generalized
// full-domain release.
// Candidate specializations of one step are independent of each other, so
// they are evaluated by a bounded worker pool (Config.Workers); the chosen
// specialization is identical for every worker count because scoring and the
// tie-breaking fold happen sequentially after the pool joins. Runs are
// cancelable: AnonymizeContext polls the context once per evaluated
// candidate and returns ctx.Err() without publishing a partial result.
package topdown

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/generalize"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/lattice"
	"github.com/ppdp/ppdp/internal/parallel"
	"github.com/ppdp/ppdp/internal/privacy"
)

// Common errors.
var (
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("topdown: invalid configuration")
	// ErrUnsatisfiable is returned when even the fully generalized table
	// violates the privacy criteria.
	ErrUnsatisfiable = errors.New("topdown: privacy criteria fail even at full generalization")
)

// Score ranks candidate releases; higher is better. It receives the recoded
// table and its equivalence classes.
type Score func(t *dataset.Table, classes []dataset.EquivalenceClass) float64

// Config controls a top-down specialization run.
type Config struct {
	// K is the required minimum equivalence-class size.
	K int
	// QuasiIdentifiers lists the attributes to generalize; when empty the
	// schema's quasi-identifier columns are used.
	QuasiIdentifiers []string
	// Hierarchies supplies a hierarchy for every quasi-identifier.
	Hierarchies *hierarchy.Set
	// Extra lists additional privacy criteria gating every specialization.
	Extra []privacy.Criterion
	// Score ranks candidate specializations; when nil the number of
	// equivalence classes is used (more classes = finer data = more
	// information for classification workloads). It is always called from a
	// single goroutine, after each step's candidate pool joins, so it may
	// close over shared state.
	Score Score
	// Workers bounds the pool that evaluates one step's candidate
	// specializations concurrently. Zero uses runtime.GOMAXPROCS(0); 1
	// forces a sequential run. The released node is identical for every
	// count.
	Workers int
	// Progress, when non-nil, receives (done, total) after every evaluated
	// candidate specialization — the same unit of work the context is polled
	// at. Total is the lattice size (an upper bound: the walk evaluates the
	// top node plus each step's predecessors); a successful run ends with a
	// (total, total) event. Pool workers report concurrently and may
	// interleave out of order; callers that need a monotone stream wrap the
	// sink (see engine.Monotone, which the engine adapter applies).
	Progress func(done, total int)
}

// Result describes the outcome of a run.
type Result struct {
	// Table is the released table.
	Table *dataset.Table
	// Node is the final full-domain generalization node.
	Node lattice.Node
	// QuasiIdentifiers is the attribute order Node refers to.
	QuasiIdentifiers []string
	// Specializations is the number of accepted specialization steps.
	Specializations int
}

// Anonymize runs top-down specialization over t with no cancellation; it is
// shorthand for AnonymizeContext with a background context.
func Anonymize(t *dataset.Table, cfg Config) (*Result, error) {
	return AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext runs top-down specialization over t. The context is
// polled once per evaluated candidate specialization, so a canceled or
// timed-out run returns ctx.Err() after at most one candidate's recoding
// instead of a result.
func AnonymizeContext(ctx context.Context, t *dataset.Table, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrConfig, cfg.K)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: workers = %d", ErrConfig, cfg.Workers)
	}
	if cfg.Hierarchies == nil {
		return nil, fmt.Errorf("%w: nil hierarchy set", ErrConfig)
	}
	qi := cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = t.Schema().QuasiIdentifierNames()
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("%w: no quasi-identifier attributes", ErrConfig)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(qi)
	if err != nil {
		return nil, err
	}
	lat, err := lattice.New(qi, maxLevels)
	if err != nil {
		return nil, err
	}
	score := cfg.Score
	if score == nil {
		score = func(_ *dataset.Table, classes []dataset.EquivalenceClass) float64 {
			return float64(len(classes))
		}
	}
	criteria := append([]privacy.Criterion{privacy.KAnonymity{K: cfg.K}}, cfg.Extra...)
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	report := cfg.Progress
	if report == nil {
		report = func(int, int) {}
	}
	totalNodes := lat.Size()

	var evaluated atomic.Int64
	evaluate := func(node lattice.Node) (bool, *dataset.Table, []dataset.EquivalenceClass, error) {
		if err := ctx.Err(); err != nil {
			return false, nil, nil, fmt.Errorf("topdown: %w", err)
		}
		report(min(int(evaluated.Add(1)), totalNodes), totalNodes)
		recoded, err := generalize.FullDomain(t, qi, cfg.Hierarchies, node)
		if err != nil {
			return false, nil, nil, err
		}
		classes, err := recoded.GroupBy(qi...)
		if err != nil {
			return false, nil, nil, err
		}
		ok, _, err := privacy.CheckAll(recoded, classes, criteria...)
		if err != nil {
			return false, nil, nil, err
		}
		return ok, recoded, classes, nil
	}

	current := lat.Top()
	ok, currentTable, _, err := evaluate(current)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w (k=%d, %d rows)", ErrUnsatisfiable, cfg.K, t.Len())
	}

	steps := 0
	for {
		preds, err := lat.Predecessors(current)
		if err != nil {
			return nil, err
		}
		outcomes, err := parallel.Map(len(preds), workers, func(i int) (outcome, error) {
			ok, table, classes, err := evaluate(preds[i])
			if err != nil {
				return outcome{}, err
			}
			return outcome{ok: ok, table: table, classes: classes}, nil
		})
		if err != nil {
			return nil, err
		}
		// Score and tie-break sequentially, in candidate order, so the walk
		// is identical for every worker count (first best wins, as in the
		// sequential reference).
		bestIdx := -1
		bestScore := 0.0
		var bestTable *dataset.Table
		for i, out := range outcomes {
			if !out.ok {
				continue
			}
			s := score(out.table, out.classes)
			if bestIdx == -1 || s > bestScore {
				bestIdx, bestScore, bestTable = i, s, out.table
			}
		}
		if bestIdx == -1 {
			break
		}
		current = preds[bestIdx]
		currentTable = bestTable
		steps++
	}
	report(totalNodes, totalNodes)
	return &Result{
		Table:            currentTable,
		Node:             current,
		QuasiIdentifiers: append([]string(nil), qi...),
		Specializations:  steps,
	}, nil
}

// outcome is the evaluation result of one candidate specialization.
type outcome struct {
	ok      bool
	table   *dataset.Table
	classes []dataset.EquivalenceClass
}
