package anatomy

import (
	"context"
	"errors"
	"strconv"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/synth"
	"github.com/ppdp/ppdp/internal/testctx"
)

func TestAnonymizeLDiverseGroups(t *testing.T) {
	tbl := synth.Hospital(1000, 1)
	res, err := Anonymize(tbl, Config{L: 3})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	if res.Sensitive != "diagnosis" {
		t.Errorf("sensitive = %q", res.Sensitive)
	}
	covered := 0
	for _, g := range res.Groups {
		if len(g.Counts) < 3 {
			t.Errorf("group %d has only %d distinct sensitive values", g.ID, len(g.Counts))
		}
		total := 0
		for _, n := range g.Counts {
			total += n
		}
		if total != len(g.Rows) {
			t.Errorf("group %d histogram sums to %d, has %d rows", g.ID, total, len(g.Rows))
		}
		covered += len(g.Rows)
	}
	if covered != tbl.Len() {
		t.Errorf("groups cover %d rows, want %d", covered, tbl.Len())
	}
	if res.QIT.Len() != tbl.Len() {
		t.Errorf("QIT has %d rows, want %d", res.QIT.Len(), tbl.Len())
	}
	// The QIT must not contain the sensitive column.
	if res.QIT.Schema().Has("diagnosis") {
		t.Error("QIT leaked the sensitive attribute")
	}
	if !res.ST.Schema().Has("diagnosis") || !res.ST.Schema().Has("group") {
		t.Error("ST missing expected columns")
	}
}

func TestSTHistogramMatchesOriginal(t *testing.T) {
	tbl := synth.Hospital(800, 2)
	res, err := Anonymize(tbl, Config{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Summing the ST counts per sensitive value must reproduce the original
	// marginal distribution exactly: Anatomy does not distort the data.
	want, _ := tbl.Frequencies("diagnosis")
	got := make(map[string]int)
	for i := 0; i < res.ST.Len(); i++ {
		row, _ := res.ST.Row(i)
		n, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad count %q", row[2])
		}
		got[row[1]] += n
	}
	for v, n := range want {
		if got[v] != n {
			t.Errorf("value %q: ST total %d, original %d", v, got[v], n)
		}
	}
}

func TestEstimateCount(t *testing.T) {
	tbl := synth.Hospital(2000, 3)
	res, err := Anonymize(tbl, Config{L: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Query: patients older than 50 with hypertension.
	ageIdx := 0
	for i, a := range res.QuasiIdentifiers {
		if a == "age" {
			ageIdx = i
		}
	}
	pred := func(qi []string) bool {
		age, err := strconv.Atoi(qi[ageIdx])
		return err == nil && age > 50
	}
	est := res.EstimateCount(pred, "hypertension")

	// Ground truth from the original table.
	truth := 0
	ageCol := tbl.Schema().MustIndex("age")
	diagCol := tbl.Schema().MustIndex("diagnosis")
	for i := 0; i < tbl.Len(); i++ {
		row, _ := tbl.Row(i)
		age, _ := strconv.Atoi(row[ageCol])
		if age > 50 && row[diagCol] == "hypertension" {
			truth++
		}
	}
	if truth == 0 {
		t.Skip("no matching records in synthetic draw")
	}
	relErr := abs(est-float64(truth)) / float64(truth)
	if relErr > 0.5 {
		t.Errorf("anatomy estimate %.1f vs truth %d (relative error %.2f too large)", est, truth, relErr)
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func TestConfigErrors(t *testing.T) {
	tbl := synth.Hospital(100, 4)
	if _, err := Anonymize(tbl, Config{L: 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("l=1 error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{L: 2, Sensitive: "missing"}); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown sensitive error = %v", err)
	}
	// A table with no sensitive column.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
	)
	plain, _ := dataset.FromRows(schema, []dataset.Row{{"1"}, {"2"}})
	if _, err := Anonymize(plain, Config{L: 2}); !errors.Is(err, ErrConfig) {
		t.Errorf("no sensitive column error = %v", err)
	}
}

func TestEligibilityViolation(t *testing.T) {
	// 90% of records share one sensitive value: 2-diverse bucketization is
	// impossible.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
		dataset.Attribute{Name: "diag", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
	tbl := dataset.NewTable(schema)
	for i := 0; i < 18; i++ {
		_ = tbl.Append(dataset.Row{"30", "flu"})
	}
	_ = tbl.Append(dataset.Row{"40", "hiv"})
	_ = tbl.Append(dataset.Row{"50", "cancer"})
	if _, err := Anonymize(tbl, Config{L: 2}); !errors.Is(err, ErrEligibility) {
		t.Errorf("expected ErrEligibility, got %v", err)
	}
}

func TestGroupIDsConsistentAcrossTables(t *testing.T) {
	tbl := synth.Hospital(300, 5)
	res, err := Anonymize(tbl, Config{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	qitGroups := make(map[string]int)
	groupCol := res.QIT.Schema().MustIndex("group")
	for i := 0; i < res.QIT.Len(); i++ {
		row, _ := res.QIT.Row(i)
		qitGroups[row[groupCol]]++
	}
	for _, g := range res.Groups {
		if qitGroups[strconv.Itoa(g.ID)] != len(g.Rows) {
			t.Errorf("group %d has %d QIT rows, want %d", g.ID, qitGroups[strconv.Itoa(g.ID)], len(g.Rows))
		}
	}
}

// TestAnonymizeContextCancellation checks the context gate at the
// algorithm's natural unit of work (one bucket round): a canceled run
// returns ctx.Err() and no partial result, deterministically via a
// poll-counting context.
func TestAnonymizeContextCancellation(t *testing.T) {
	tbl := synth.Hospital(600, 1)
	cfg := Config{L: 3}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AnonymizeContext(pre, tbl, cfg)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("pre-canceled: res=%v err=%v, want nil + context.Canceled", res, err)
	}
	for _, n := range []int{1, 5} {
		res, err := AnonymizeContext(testctx.CancelAfter(n), tbl, cfg)
		if !errors.Is(err, context.Canceled) || res != nil {
			t.Fatalf("cancel after %d polls: res=%v err=%v, want nil + context.Canceled", n, res, err)
		}
	}
	if _, err := AnonymizeContext(context.Background(), tbl, cfg); err != nil {
		t.Fatalf("live context: %v", err)
	}
}
