// Package anatomy implements Xiao and Tao's Anatomy: an anonymization scheme
// that releases the exact quasi-identifier values but severs their link to
// the sensitive attribute by bucketizing records into groups that each
// contain at least L distinct sensitive values, publishing two tables — a
// quasi-identifier table (QIT) mapping each record to its group, and a
// sensitive table (ST) giving the sensitive-value histogram of each group.
// Because quasi-identifiers are not generalized, aggregate queries over them
// are answered far more accurately than from a generalized release, while the
// attacker's posterior about any individual's sensitive value is bounded by
// 1/L.
// The bucket rounds are planned first from the sensitive-value counts alone
// (cheap and inherently sequential); given the plan, each round's record
// assignment and each group's QIT slice are independent, so both are filled
// by a bounded worker pool (Config.Workers) with output identical for every
// worker count.
package anatomy

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/parallel"
)

// Common errors.
var (
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("anatomy: invalid configuration")
	// ErrEligibility is returned when the sensitive distribution makes an
	// l-diverse bucketization impossible (some value exceeds n/l of the
	// records).
	ErrEligibility = errors.New("anatomy: sensitive distribution violates the l-eligibility condition")
)

// Config controls an Anatomy run.
type Config struct {
	// L is the required number of distinct sensitive values per group.
	L int
	// Sensitive names the sensitive attribute; when empty the first
	// sensitive column of the schema is used.
	Sensitive string
	// QuasiIdentifiers lists the columns published in the QIT; when empty
	// the schema's quasi-identifier columns are used.
	QuasiIdentifiers []string
	// Workers bounds the pool that assigns records to the planned bucket
	// rounds and materializes the QIT. Zero uses runtime.GOMAXPROCS(0); 1
	// forces a sequential run. The released tables are identical for every
	// count.
	Workers int
	// Progress, when non-nil, receives (done, total) after every bucket
	// round of the group-creation phase — the same unit of work the context
	// is polled at. Done counts the records bucketized so far and total is
	// the table size; a successful run ends with a (total, total) event once
	// the residual records are placed.
	Progress func(done, total int)
}

// Group is one anatomized bucket.
type Group struct {
	// ID is the group identifier published in both tables.
	ID int
	// Rows are the member row indices in the original table.
	Rows []int
	// Counts is the sensitive-value histogram of the group.
	Counts map[string]int
}

// Result holds the two released tables plus the grouping.
type Result struct {
	// QIT is the quasi-identifier table: QI columns plus "group".
	QIT *dataset.Table
	// ST is the sensitive table: "group", sensitive value, "count".
	ST *dataset.Table
	// Groups is the bucketization.
	Groups []Group
	// Sensitive is the sensitive attribute name used.
	Sensitive string
	// QuasiIdentifiers are the QI columns published in the QIT.
	QuasiIdentifiers []string
}

// Anonymize bucketizes t into l-diverse groups with no cancellation; it is
// shorthand for AnonymizeContext with a background context.
func Anonymize(t *dataset.Table, cfg Config) (*Result, error) {
	return AnonymizeContext(context.Background(), t, cfg)
}

// pick is one planned record draw: the pos-th element of a sensitive value's
// row list. Rounds are planned over remaining counts only; the draw position
// mirrors the stack behavior of taking from the end of the list.
type pick struct {
	value string
	pos   int
}

// AnonymizeContext bucketizes t into l-diverse groups. The context is polled
// once per bucket round of the group-creation phase — the algorithm's
// natural unit of work — so a canceled or timed-out run returns ctx.Err()
// after at most one round instead of a result.
func AnonymizeContext(ctx context.Context, t *dataset.Table, cfg Config) (*Result, error) {
	if cfg.L < 2 {
		return nil, fmt.Errorf("%w: l = %d", ErrConfig, cfg.L)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: workers = %d", ErrConfig, cfg.Workers)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sensitive := cfg.Sensitive
	if sensitive == "" {
		names := t.Schema().SensitiveNames()
		if len(names) == 0 {
			return nil, fmt.Errorf("%w: no sensitive attribute", ErrConfig)
		}
		sensitive = names[0]
	}
	qi := cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = t.Schema().QuasiIdentifierNames()
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("%w: no quasi-identifier attributes", ErrConfig)
	}
	sensCol, err := t.Schema().Index(sensitive)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}

	// Eligibility: no sensitive value may exceed n/l of the records.
	freq, err := t.Frequencies(sensitive)
	if err != nil {
		return nil, err
	}
	for v, n := range freq {
		if float64(n) > float64(t.Len())/float64(cfg.L) {
			return nil, fmt.Errorf("%w: value %q appears %d times in %d records (limit %d for l=%d)",
				ErrEligibility, v, n, t.Len(), t.Len()/cfg.L, cfg.L)
		}
	}

	// Hash records by sensitive value.
	byValue := make(map[string][]int)
	for r := 0; r < t.Len(); r++ {
		row, err := t.Row(r)
		if err != nil {
			return nil, err
		}
		byValue[row[sensCol]] = append(byValue[row[sensCol]], r)
	}

	report := cfg.Progress
	if report == nil {
		report = func(int, int) {}
	}
	bucketized := 0

	// Group-creation phase, planned over counts: while at least L sensitive
	// values have records remaining, one round draws a record from each of
	// the L largest. Planning needs only the remaining counts, so it runs
	// sequentially and cheaply; the record assignment it implies is done by
	// the worker pool below.
	remaining := make(map[string]int, len(byValue))
	for v, rows := range byValue {
		remaining[v] = len(rows)
	}
	var schedule [][]pick
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("anatomy: %w", err)
		}
		report(bucketized, t.Len())
		order := valuesByRemaining(remaining)
		if len(order) < cfg.L {
			break
		}
		round := make([]pick, cfg.L)
		for i := 0; i < cfg.L; i++ {
			v := order[i]
			round[i] = pick{value: v, pos: remaining[v] - 1}
			remaining[v]--
			if remaining[v] == 0 {
				delete(remaining, v)
			}
		}
		schedule = append(schedule, round)
		bucketized += cfg.L
	}
	// Bucket-round assignment: each planned round resolves its draws against
	// the (now read-only) hash lists independently of every other round, so
	// the rounds are assigned by the worker pool. Group g of round g is the
	// same for every worker count because the plan fixes every draw.
	groups, err := parallel.Map(len(schedule), workers, func(g int) (Group, error) {
		grp := Group{ID: g, Rows: make([]int, 0, cfg.L), Counts: make(map[string]int, cfg.L)}
		for _, p := range schedule[g] {
			grp.Rows = append(grp.Rows, byValue[p.value][p.pos])
			grp.Counts[p.value]++
		}
		return grp, nil
	})
	if err != nil {
		return nil, err
	}
	// Residual-assignment phase: each leftover record joins a group that does
	// not yet contain its sensitive value. Values are visited in sorted order
	// (and their rows in table order) so the released row order is
	// deterministic.
	leftover := make([]string, 0, len(remaining))
	for v := range remaining {
		leftover = append(leftover, v)
	}
	sort.Strings(leftover)
	for _, v := range leftover {
		for _, r := range byValue[v][:remaining[v]] {
			placed := false
			for i := range groups {
				if groups[i].Counts[v] == 0 {
					groups[i].Rows = append(groups[i].Rows, r)
					groups[i].Counts[v]++
					placed = true
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("%w: could not place residual record with value %q", ErrEligibility, v)
			}
		}
	}

	qit, st, err := buildTables(t, qi, sensitive, groups, workers)
	if err != nil {
		return nil, err
	}
	report(t.Len(), t.Len())
	return &Result{
		QIT:              qit,
		ST:               st,
		Groups:           groups,
		Sensitive:        sensitive,
		QuasiIdentifiers: append([]string(nil), qi...),
	}, nil
}

// valuesByRemaining returns sensitive values ordered by decreasing remaining
// count (ties broken lexicographically for determinism).
func valuesByRemaining(remaining map[string]int) []string {
	values := make([]string, 0, len(remaining))
	for v := range remaining {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool {
		ni, nj := remaining[values[i]], remaining[values[j]]
		if ni != nj {
			return ni > nj
		}
		return values[i] < values[j]
	})
	return values
}

// buildTables materializes the QIT and ST releases. QIT rows follow group
// order with per-group offsets known up front, so each group's slice is
// filled independently by the worker pool.
func buildTables(t *dataset.Table, qi []string, sensitive string, groups []Group, workers int) (*dataset.Table, *dataset.Table, error) {
	qiAttrs := make([]dataset.Attribute, 0, len(qi)+1)
	for _, a := range qi {
		attr, err := t.Schema().ByName(a)
		if err != nil {
			return nil, nil, err
		}
		qiAttrs = append(qiAttrs, attr)
	}
	qiAttrs = append(qiAttrs, dataset.Attribute{Name: "group", Kind: dataset.Insensitive, Type: dataset.Numeric})
	qitSchema, err := dataset.NewSchema(qiAttrs...)
	if err != nil {
		return nil, nil, err
	}

	cols := make([]int, len(qi))
	for i, a := range qi {
		cols[i] = t.Schema().MustIndex(a)
	}
	offsets := make([]int, len(groups)+1)
	for i, g := range groups {
		offsets[i+1] = offsets[i] + len(g.Rows)
	}
	width := len(qi) + 1
	rows := make([]dataset.Row, offsets[len(groups)])
	arena := make([]string, offsets[len(groups)]*width)
	if _, err := parallel.Map(len(groups), workers, func(gi int) (struct{}, error) {
		g := groups[gi]
		id := strconv.Itoa(g.ID)
		for j, r := range g.Rows {
			row, err := t.Row(r)
			if err != nil {
				return struct{}{}, err
			}
			at := offsets[gi] + j
			out := arena[at*width : (at+1)*width : (at+1)*width]
			for ci, c := range cols {
				out[ci] = row[c]
			}
			out[len(qi)] = id
			rows[at] = dataset.Row(out)
		}
		return struct{}{}, nil
	}); err != nil {
		return nil, nil, err
	}
	qit, err := dataset.FromRows(qitSchema, rows)
	if err != nil {
		return nil, nil, err
	}

	stSchema, err := dataset.NewSchema(
		dataset.Attribute{Name: "group", Kind: dataset.Insensitive, Type: dataset.Numeric},
		dataset.Attribute{Name: sensitive, Kind: dataset.Sensitive, Type: dataset.Categorical},
		dataset.Attribute{Name: "count", Kind: dataset.Insensitive, Type: dataset.Numeric},
	)
	if err != nil {
		return nil, nil, err
	}
	st := dataset.NewTable(stSchema)
	for _, g := range groups {
		values := make([]string, 0, len(g.Counts))
		for v := range g.Counts {
			values = append(values, v)
		}
		sort.Strings(values)
		id := strconv.Itoa(g.ID)
		for _, v := range values {
			if err := st.Append(dataset.Row{id, v, strconv.Itoa(g.Counts[v])}); err != nil {
				return nil, nil, err
			}
		}
	}
	return qit, st, nil
}

// EstimateCount answers a count query "how many records match the
// quasi-identifier predicate AND have the given sensitive value" from the
// anatomized release: within each group, records matching the predicate are
// assumed to carry each sensitive value in proportion to the group's
// published histogram. The predicate receives the QI values of one QIT row
// in QuasiIdentifiers order.
func (r *Result) EstimateCount(pred func(qi []string) bool, sensitiveValue string) float64 {
	// Row offsets of the QIT follow group order, so walk groups and rows in
	// parallel.
	est := 0.0
	rowIdx := 0
	for _, g := range r.Groups {
		matched := 0
		for range g.Rows {
			row, err := r.QIT.Row(rowIdx)
			rowIdx++
			if err != nil {
				continue
			}
			if pred(row[:len(r.QuasiIdentifiers)]) {
				matched++
			}
		}
		if matched == 0 {
			continue
		}
		size := len(g.Rows)
		est += float64(matched) * float64(g.Counts[sensitiveValue]) / float64(size)
	}
	return est
}
