package anatomy

import (
	"context"
	"errors"
	"fmt"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/policy"
)

// adapter plugs Anatomy into the engine registry (see package engine).
type adapter struct{}

func init() { engine.Register(adapter{}) }

func (adapter) Name() string { return "anatomy" }

func (adapter) Describe() engine.Info {
	return engine.Info{
		Name:         "anatomy",
		Description:  "l-diverse bucketization into QIT/ST (no generalization)",
		Kind:         engine.Bucketized,
		Parallel:     true,
		CostExponent: 1,
		Criteria:     []string{policy.DistinctLDiversity},
		Parameters: []engine.Param{
			{Name: "l", Type: "int", Required: true, Description: "distinct sensitive values per bucket (>= 2)"},
			{Name: "sensitive", Type: "string", Description: "sensitive attribute (schema's first sensitive column when empty)"},
			{Name: "quasi_identifiers", Type: "[]string", Description: "columns published in the QIT (schema QI columns when empty)"},
			{Name: "workers", Type: "int", Description: "bucket-assignment worker pool bound (0 = GOMAXPROCS)"},
		},
	}
}

func (adapter) Validate(spec engine.Spec) error {
	if err := engine.ValidateCriteria(adapter{}.Describe(), spec); err != nil {
		return err
	}
	if spec.L < 2 {
		return fmt.Errorf("anatomy requires L >= 2 (got %d)", spec.L)
	}
	return nil
}

func (adapter) Run(ctx context.Context, t *dataset.Table, spec engine.Spec) (*engine.Result, error) {
	res, err := AnonymizeContext(ctx, t, Config{
		L:                spec.L,
		Sensitive:        spec.Sensitive,
		QuasiIdentifiers: spec.QuasiIdentifiers,
		Workers:          spec.Workers,
		Progress:         engine.Monotone(spec.Progress),
	})
	if err != nil {
		return nil, classify(err)
	}
	return &engine.Result{QIT: res.QIT, ST: res.ST, Extra: res}, nil
}

// classify wraps the package's sentinel errors with the engine's error
// classes so the service layer can map them without importing this package.
func classify(err error) error {
	switch {
	case errors.Is(err, ErrConfig):
		return engine.ConfigError(err)
	case errors.Is(err, ErrEligibility):
		return engine.UnsatisfiableError(err)
	}
	return err
}
