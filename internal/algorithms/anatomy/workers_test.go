package anatomy

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/synth"
)

// TestWorkersEquivalence locks in that parallel bucket-round assignment is
// deterministic: the schedule fixes every draw before workers run, so every
// worker count builds the same groups and releases identical QIT/ST tables.
func TestWorkersEquivalence(t *testing.T) {
	tbl := synth.Hospital(1000, 1)
	base, err := Anonymize(tbl, Config{L: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := Anonymize(tbl, Config{L: 3, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Groups) != len(base.Groups) {
			t.Fatalf("workers=%d group count %d != sequential %d", workers, len(res.Groups), len(base.Groups))
		}
		for g := range res.Groups {
			if res.Groups[g].ID != base.Groups[g].ID {
				t.Errorf("workers=%d group %d id %d != %d", workers, g, res.Groups[g].ID, base.Groups[g].ID)
			}
			if len(res.Groups[g].Rows) != len(base.Groups[g].Rows) {
				t.Fatalf("workers=%d group %d size %d != %d",
					workers, g, len(res.Groups[g].Rows), len(base.Groups[g].Rows))
			}
			for i := range res.Groups[g].Rows {
				if res.Groups[g].Rows[i] != base.Groups[g].Rows[i] {
					t.Errorf("workers=%d group %d row %d: %d != %d",
						workers, g, i, res.Groups[g].Rows[i], base.Groups[g].Rows[i])
				}
			}
		}
		var seqQIT, parQIT, seqST, parST bytes.Buffer
		if err := base.QIT.WriteCSV(&seqQIT); err != nil {
			t.Fatal(err)
		}
		if err := res.QIT.WriteCSV(&parQIT); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqQIT.Bytes(), parQIT.Bytes()) {
			t.Errorf("workers=%d QIT differs from sequential run", workers)
		}
		if err := base.ST.WriteCSV(&seqST); err != nil {
			t.Fatal(err)
		}
		if err := res.ST.WriteCSV(&parST); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqST.Bytes(), parST.Bytes()) {
			t.Errorf("workers=%d ST differs from sequential run", workers)
		}
	}
}

func TestWorkersNegativeRejected(t *testing.T) {
	tbl := synth.Hospital(100, 1)
	_, err := Anonymize(tbl, Config{L: 2, Workers: -1})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("Workers=-1: got %v, want ErrConfig", err)
	}
}

// benchmarkWorkers measures full Anatomy runs at a fixed worker count; the
// 1-vs-max pair quantifies the speedup of parallel round assignment and QIT
// materialization.
func benchmarkWorkers(b *testing.B, workers int) {
	tbl := synth.Hospital(5000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(tbl, Config{L: 3, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnatomyWorkers1(b *testing.B)   { benchmarkWorkers(b, 1) }
func BenchmarkAnatomyWorkersMax(b *testing.B) { benchmarkWorkers(b, 0) }
