package incognito

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/lattice"
	"github.com/ppdp/ppdp/internal/privacy"
	"github.com/ppdp/ppdp/internal/synth"
	"github.com/ppdp/ppdp/internal/testctx"
)

func TestAnonymizeReachesK(t *testing.T) {
	tbl := synth.Hospital(500, 1)
	res, err := Anonymize(tbl, Config{
		K:                5,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
	})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	classes, err := res.Table.GroupBy("age", "zip", "sex")
	if err != nil {
		t.Fatal(err)
	}
	if privacy.MeasureK(classes) < 5 {
		t.Errorf("release not 5-anonymous: min class %d", privacy.MeasureK(classes))
	}
	// No suppression: row count preserved.
	if res.Table.Len() != tbl.Len() {
		t.Errorf("row count changed: %d -> %d", tbl.Len(), res.Table.Len())
	}
	if len(res.MinimalNodes) == 0 {
		t.Error("no minimal nodes reported")
	}
	if res.NodesEvaluated <= 0 {
		t.Error("NodesEvaluated not recorded")
	}
}

func TestMinimalNodesAreMinimalAndSatisfying(t *testing.T) {
	tbl := synth.Hospital(300, 2)
	hs := synth.HospitalHierarchies()
	qi := []string{"age", "zip", "sex"}
	res, err := Anonymize(tbl, Config{K: 4, QuasiIdentifiers: qi, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	// No minimal node may dominate another.
	for i, a := range res.MinimalNodes {
		for j, b := range res.MinimalNodes {
			if i != j && a.Dominates(b) {
				t.Errorf("minimal node %v dominates %v", a, b)
			}
		}
	}
	// The chosen node must be among the minimal ones.
	found := false
	for _, m := range res.MinimalNodes {
		if m.Equal(res.Node) {
			found = true
		}
	}
	if !found {
		t.Errorf("chosen node %v not in minimal set %v", res.Node, res.MinimalNodes)
	}
}

func TestExtraCriteria(t *testing.T) {
	tbl := synth.Hospital(500, 3)
	res, err := Anonymize(tbl, Config{
		K:                3,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
		Extra: []privacy.Criterion{
			privacy.DistinctLDiversity{L: 2, Sensitive: "diagnosis"},
		},
	})
	if err != nil {
		t.Fatalf("Anonymize with l-diversity: %v", err)
	}
	classes, err := res.Table.GroupBy("age", "zip", "sex")
	if err != nil {
		t.Fatal(err)
	}
	l, err := privacy.MeasureDistinctL(res.Table, classes, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if l < 2 {
		t.Errorf("release not 2-diverse: min distinct %d", l)
	}
}

func TestCustomScore(t *testing.T) {
	tbl := synth.Hospital(300, 5)
	qi := []string{"age", "zip", "sex"}
	// Score that prefers the largest average class (more generalization).
	res, err := Anonymize(tbl, Config{
		K:                2,
		QuasiIdentifiers: qi,
		Hierarchies:      synth.HospitalHierarchies(),
		ScoreNode: func(_ *dataset.Table, classes []dataset.EquivalenceClass, _ lattice.Node) float64 {
			return -dataset.AverageClassSize(classes)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Anonymize(tbl, Config{K: 2, QuasiIdentifiers: qi, Hierarchies: synth.HospitalHierarchies()})
	if err != nil {
		t.Fatal(err)
	}
	// The inverted score must never pick a node of lower height than the
	// height-minimizing default when the minimal sets are the same.
	if res.Node.Height() < def.Node.Height() {
		t.Errorf("custom score picked lower node %v than default %v", res.Node, def.Node)
	}
}

func TestConfigErrors(t *testing.T) {
	tbl := synth.Hospital(50, 6)
	hs := synth.HospitalHierarchies()
	if _, err := Anonymize(tbl, Config{K: 0, Hierarchies: hs}); !errors.Is(err, ErrConfig) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{K: 2, Hierarchies: nil}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil hierarchies error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{K: 2, Hierarchies: hs, QuasiIdentifiers: []string{"missing"}}); err == nil {
		t.Error("unknown QI accepted")
	}
}

func TestUnsatisfiable(t *testing.T) {
	tbl := synth.Hospital(10, 7)
	_, err := Anonymize(tbl, Config{
		K:                100,
		QuasiIdentifiers: []string{"age", "zip"},
		Hierarchies:      synth.HospitalHierarchies(),
	})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("expected ErrUnsatisfiable, got %v", err)
	}
}

func TestChosenNodeIsLowestHeightByDefault(t *testing.T) {
	tbl := synth.Hospital(400, 8)
	res, err := Anonymize(tbl, Config{
		K:                8,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.MinimalNodes {
		if m.Height() < res.Node.Height() {
			t.Errorf("default score did not pick the lowest node: %v vs %v", res.Node, m)
		}
	}
}

// TestAnonymizeContextCancellation checks the context gate at the
// algorithm's natural unit of work (one lattice node), sequentially and on
// the parallel layer pool: a canceled run returns ctx.Err() and no partial
// result, deterministically via a poll-counting context.
func TestAnonymizeContextCancellation(t *testing.T) {
	tbl := synth.Hospital(600, 1)
	for _, workers := range []int{1, 4} {
		cfg := Config{K: 5, Hierarchies: synth.HospitalHierarchies(), Workers: workers}

		pre, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := AnonymizeContext(pre, tbl, cfg)
		if !errors.Is(err, context.Canceled) || res != nil {
			t.Fatalf("workers=%d pre-canceled: res=%v err=%v, want nil + context.Canceled", workers, res, err)
		}
		for _, n := range []int{1, 6} {
			res, err := AnonymizeContext(testctx.CancelAfter(n), tbl, cfg)
			if !errors.Is(err, context.Canceled) || res != nil {
				t.Fatalf("workers=%d cancel after %d polls: res=%v err=%v, want nil + context.Canceled", workers, n, res, err)
			}
		}
		if _, err := AnonymizeContext(context.Background(), tbl, cfg); err != nil {
			t.Fatalf("workers=%d live context: %v", workers, err)
		}
	}
}

// TestWorkersEquivalence locks in that the parallel lattice-layer search is
// deterministic: every worker count releases the identical node, minimal
// set and table.
func TestWorkersEquivalence(t *testing.T) {
	tbl := synth.Hospital(800, 2)
	base, err := Anonymize(tbl, Config{K: 4, Hierarchies: synth.HospitalHierarchies(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := Anonymize(tbl, Config{K: 4, Hierarchies: synth.HospitalHierarchies(), Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Node.Key() != base.Node.Key() {
			t.Errorf("workers=%d node %v != sequential %v", workers, res.Node, base.Node)
		}
		if len(res.MinimalNodes) != len(base.MinimalNodes) {
			t.Fatalf("workers=%d minimal set size %d != %d", workers, len(res.MinimalNodes), len(base.MinimalNodes))
		}
		for i := range res.MinimalNodes {
			if res.MinimalNodes[i].Key() != base.MinimalNodes[i].Key() {
				t.Errorf("workers=%d minimal[%d] %v != %v", workers, i, res.MinimalNodes[i], base.MinimalNodes[i])
			}
		}
		if res.NodesEvaluated != base.NodesEvaluated {
			t.Errorf("workers=%d evaluated %d nodes != sequential %d", workers, res.NodesEvaluated, base.NodesEvaluated)
		}
		var seq, par bytes.Buffer
		if err := base.Table.WriteCSV(&seq); err != nil {
			t.Fatal(err)
		}
		if err := res.Table.WriteCSV(&par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Errorf("workers=%d released table differs from sequential run", workers)
		}
	}
}

// benchmarkWorkers measures the lattice search at a fixed worker count; the
// 1-vs-max pair quantifies the parallel speedup of the layer pool.
func benchmarkWorkers(b *testing.B, workers int) {
	tbl := synth.Census(2000, 1)
	hs := synth.CensusHierarchies()
	qi := []string{"age", "sex", "education", "marital-status", "race"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(tbl, Config{K: 10, QuasiIdentifiers: qi, Hierarchies: hs, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncognitoWorkers1(b *testing.B)   { benchmarkWorkers(b, 1) }
func BenchmarkIncognitoWorkersMax(b *testing.B) { benchmarkWorkers(b, 0) }
