package incognito

import (
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/lattice"
	"github.com/ppdp/ppdp/internal/privacy"
	"github.com/ppdp/ppdp/internal/synth"
)

func TestAnonymizeReachesK(t *testing.T) {
	tbl := synth.Hospital(500, 1)
	res, err := Anonymize(tbl, Config{
		K:                5,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
	})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	classes, err := res.Table.GroupBy("age", "zip", "sex")
	if err != nil {
		t.Fatal(err)
	}
	if privacy.MeasureK(classes) < 5 {
		t.Errorf("release not 5-anonymous: min class %d", privacy.MeasureK(classes))
	}
	// No suppression: row count preserved.
	if res.Table.Len() != tbl.Len() {
		t.Errorf("row count changed: %d -> %d", tbl.Len(), res.Table.Len())
	}
	if len(res.MinimalNodes) == 0 {
		t.Error("no minimal nodes reported")
	}
	if res.NodesEvaluated <= 0 {
		t.Error("NodesEvaluated not recorded")
	}
}

func TestMinimalNodesAreMinimalAndSatisfying(t *testing.T) {
	tbl := synth.Hospital(300, 2)
	hs := synth.HospitalHierarchies()
	qi := []string{"age", "zip", "sex"}
	res, err := Anonymize(tbl, Config{K: 4, QuasiIdentifiers: qi, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	// No minimal node may dominate another.
	for i, a := range res.MinimalNodes {
		for j, b := range res.MinimalNodes {
			if i != j && a.Dominates(b) {
				t.Errorf("minimal node %v dominates %v", a, b)
			}
		}
	}
	// The chosen node must be among the minimal ones.
	found := false
	for _, m := range res.MinimalNodes {
		if m.Equal(res.Node) {
			found = true
		}
	}
	if !found {
		t.Errorf("chosen node %v not in minimal set %v", res.Node, res.MinimalNodes)
	}
}

func TestExtraCriteria(t *testing.T) {
	tbl := synth.Hospital(500, 3)
	res, err := Anonymize(tbl, Config{
		K:                3,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
		Extra: []privacy.Criterion{
			privacy.DistinctLDiversity{L: 2, Sensitive: "diagnosis"},
		},
	})
	if err != nil {
		t.Fatalf("Anonymize with l-diversity: %v", err)
	}
	classes, err := res.Table.GroupBy("age", "zip", "sex")
	if err != nil {
		t.Fatal(err)
	}
	l, err := privacy.MeasureDistinctL(res.Table, classes, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if l < 2 {
		t.Errorf("release not 2-diverse: min distinct %d", l)
	}
}

func TestCustomScore(t *testing.T) {
	tbl := synth.Hospital(300, 5)
	qi := []string{"age", "zip", "sex"}
	// Score that prefers the largest average class (more generalization).
	res, err := Anonymize(tbl, Config{
		K:                2,
		QuasiIdentifiers: qi,
		Hierarchies:      synth.HospitalHierarchies(),
		ScoreNode: func(_ *dataset.Table, classes []dataset.EquivalenceClass, _ lattice.Node) float64 {
			return -dataset.AverageClassSize(classes)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Anonymize(tbl, Config{K: 2, QuasiIdentifiers: qi, Hierarchies: synth.HospitalHierarchies()})
	if err != nil {
		t.Fatal(err)
	}
	// The inverted score must never pick a node of lower height than the
	// height-minimizing default when the minimal sets are the same.
	if res.Node.Height() < def.Node.Height() {
		t.Errorf("custom score picked lower node %v than default %v", res.Node, def.Node)
	}
}

func TestConfigErrors(t *testing.T) {
	tbl := synth.Hospital(50, 6)
	hs := synth.HospitalHierarchies()
	if _, err := Anonymize(tbl, Config{K: 0, Hierarchies: hs}); !errors.Is(err, ErrConfig) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{K: 2, Hierarchies: nil}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil hierarchies error = %v", err)
	}
	if _, err := Anonymize(tbl, Config{K: 2, Hierarchies: hs, QuasiIdentifiers: []string{"missing"}}); err == nil {
		t.Error("unknown QI accepted")
	}
}

func TestUnsatisfiable(t *testing.T) {
	tbl := synth.Hospital(10, 7)
	_, err := Anonymize(tbl, Config{
		K:                100,
		QuasiIdentifiers: []string{"age", "zip"},
		Hierarchies:      synth.HospitalHierarchies(),
	})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("expected ErrUnsatisfiable, got %v", err)
	}
}

func TestChosenNodeIsLowestHeightByDefault(t *testing.T) {
	tbl := synth.Hospital(400, 8)
	res, err := Anonymize(tbl, Config{
		K:                8,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.MinimalNodes {
		if m.Height() < res.Node.Height() {
			t.Errorf("default score did not pick the lowest node: %v vs %v", res.Node, m)
		}
	}
}
