package incognito

import (
	"context"
	"errors"
	"fmt"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/policy"
)

// adapter plugs Incognito into the engine registry (see package engine).
type adapter struct{}

func init() { engine.Register(adapter{}) }

func (adapter) Name() string { return "incognito" }

func (adapter) Describe() engine.Info {
	return engine.Info{
		Name:                "incognito",
		Description:         "optimal full-domain lattice search",
		Kind:                engine.Microdata,
		FullDomain:          true,
		RequiresHierarchies: true,
		Parallel:            true,
		CostExponent:        1,
		Criteria: []string{
			policy.KAnonymity, policy.AlphaKAnonymity, policy.DistinctLDiversity,
			policy.EntropyLDiversity, policy.RecursiveCLDiversity, policy.TCloseness,
		},
		Parameters: []engine.Param{
			{Name: "k", Type: "int", Required: true, Default: 10, Description: "minimum equivalence-class size"},
			{Name: "quasi_identifiers", Type: "[]string", Description: "attributes to generalize (schema QI columns when empty)"},
			{Name: "l", Type: "int", Description: "l-diversity parameter (0 disables)"},
			{Name: "diversity_mode", Flag: "diversity", Type: "string", Description: "l-diversity variant: distinct|entropy|recursive"},
			{Name: "c", Type: "float", Description: "recursive (c,l)-diversity constant"},
			{Name: "t", Type: "float", Description: "t-closeness parameter (0 disables)"},
			{Name: "sensitive", Type: "string", Description: "sensitive attribute for l/t criteria"},
			{Name: "workers", Type: "int", Description: "lattice-layer worker pool bound (0 = GOMAXPROCS)"},
		},
	}
}

func (adapter) Validate(spec engine.Spec) error {
	if err := engine.ValidateCriteria(adapter{}.Describe(), spec); err != nil {
		return err
	}
	if spec.K < 1 {
		return fmt.Errorf("incognito: K must be at least 1 (got %d)", spec.K)
	}
	if spec.Hierarchies == nil {
		return fmt.Errorf("incognito: algorithm requires generalization hierarchies")
	}
	return nil
}

func (adapter) Run(ctx context.Context, t *dataset.Table, spec engine.Spec) (*engine.Result, error) {
	res, err := AnonymizeContext(ctx, t, Config{
		K:                spec.K,
		QuasiIdentifiers: spec.QuasiIdentifiers,
		Hierarchies:      spec.Hierarchies,
		Extra:            spec.Extra,
		Workers:          spec.Workers,
		Progress:         engine.Monotone(spec.Progress),
	})
	if err != nil {
		return nil, classify(err)
	}
	return &engine.Result{Table: res.Table, Node: res.Node, Extra: res}, nil
}

// classify wraps the package's sentinel errors with the engine's error
// classes so the service layer can map them without importing this package.
func classify(err error) error {
	switch {
	case errors.Is(err, ErrConfig):
		return engine.ConfigError(err)
	case errors.Is(err, ErrUnsatisfiable):
		return engine.UnsatisfiableError(err)
	}
	return err
}
