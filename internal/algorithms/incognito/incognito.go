// Package incognito implements a full-domain lattice search in the spirit of
// LeFevre et al.'s Incognito: a bottom-up, breadth-first traversal of the
// generalization lattice that exploits the generalization (rollup) property —
// once a node satisfies the privacy criterion every node that dominates it
// does too, so dominated-by-none minimal satisfying nodes are the complete
// answer set. The released node is the minimal satisfying node with the best
// utility score.
//
// The original Incognito additionally prunes using single-attribute and
// attribute-subset lattices before combining them; this implementation keeps
// the subset pre-check for single attributes (cheap and effective) and then
// searches the full lattice breadth-first with rollup pruning.
//
// Lattice nodes at one height are independent of each other — no node can
// dominate a distinct node of equal height — so each breadth-first layer is
// checked by a bounded worker pool (Config.Workers). The result is identical
// for every worker count: candidates are collected per index and folded back
// in node order. Runs are cancelable: AnonymizeContext polls the context
// once per evaluated lattice node and returns ctx.Err() without publishing a
// partial result.
package incognito

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/generalize"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/lattice"
	"github.com/ppdp/ppdp/internal/parallel"
	"github.com/ppdp/ppdp/internal/privacy"
)

// Common errors.
var (
	// ErrUnsatisfiable is returned when no lattice node satisfies the
	// criteria.
	ErrUnsatisfiable = errors.New("incognito: no full-domain generalization satisfies the privacy criteria")
	// ErrConfig is returned for invalid configurations.
	ErrConfig = errors.New("incognito: invalid configuration")
)

// Config controls an Incognito run.
type Config struct {
	// K is the required minimum equivalence-class size.
	K int
	// QuasiIdentifiers lists the attributes to generalize; when empty the
	// schema's quasi-identifier columns are used.
	QuasiIdentifiers []string
	// Hierarchies supplies a hierarchy for every quasi-identifier.
	Hierarchies *hierarchy.Set
	// Extra lists additional privacy criteria (l-diversity, t-closeness, ...)
	// that the released node must satisfy on top of k-anonymity. All extra
	// criteria must be monotone under generalization for the rollup pruning
	// to remain sound; the models in the privacy package are.
	Extra []privacy.Criterion
	// ScoreNode ranks satisfying nodes; lower is better. When nil, the node
	// height (total generalization) is used. It is always called from a
	// single goroutine, after the search, so it may close over shared state.
	ScoreNode func(t *dataset.Table, classes []dataset.EquivalenceClass, node lattice.Node) float64
	// Workers bounds the pool that checks the independent nodes of one
	// lattice layer concurrently. Zero uses runtime.GOMAXPROCS(0); 1 forces
	// a sequential search. The released node is identical for every count.
	Workers int
	// Progress, when non-nil, receives (done, total) after every evaluated
	// lattice node — the same unit of work the context is polled at. Total is
	// the lattice size (an upper bound: pruning skips dominated nodes); a
	// successful run ends with a (total, total) event. Pool workers report
	// concurrently and may interleave out of order; callers that need a
	// monotone stream wrap the sink (see engine.Monotone, which the engine
	// adapter applies).
	Progress func(done, total int)
}

// Result describes the outcome of an Incognito run.
type Result struct {
	// Table is the released table (no suppression: Incognito releases whole
	// classes at the chosen recoding).
	Table *dataset.Table
	// Node is the chosen lattice node.
	Node lattice.Node
	// QuasiIdentifiers is the attribute order Node refers to.
	QuasiIdentifiers []string
	// MinimalNodes are all minimal satisfying nodes discovered.
	MinimalNodes []lattice.Node
	// NodesEvaluated counts lattice nodes whose release was materialized.
	NodesEvaluated int
}

// Anonymize runs the lattice search over t with no cancellation; it is
// shorthand for AnonymizeContext with a background context.
func Anonymize(t *dataset.Table, cfg Config) (*Result, error) {
	return AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext runs the lattice search over t. The context is polled
// once per evaluated lattice node, in the sequential pre-check and by every
// pool worker, so a canceled or timed-out run returns ctx.Err() after at
// most one node's recoding instead of a result.
func AnonymizeContext(ctx context.Context, t *dataset.Table, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrConfig, cfg.K)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: workers = %d", ErrConfig, cfg.Workers)
	}
	if cfg.Hierarchies == nil {
		return nil, fmt.Errorf("%w: nil hierarchy set", ErrConfig)
	}
	qi := cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = t.Schema().QuasiIdentifierNames()
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("%w: no quasi-identifier attributes", ErrConfig)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(qi)
	if err != nil {
		return nil, err
	}
	lat, err := lattice.New(qi, maxLevels)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	report := cfg.Progress
	if report == nil {
		report = func(int, int) {}
	}
	totalNodes := lat.Size()

	var evaluated atomic.Int64
	satisfies := func(node lattice.Node) (bool, *dataset.Table, []dataset.EquivalenceClass, error) {
		if err := ctx.Err(); err != nil {
			return false, nil, nil, fmt.Errorf("incognito: %w", err)
		}
		// The subset pre-check can revisit nodes the breadth-first phase also
		// materializes, so cap the reported count at the lattice size.
		report(min(int(evaluated.Add(1)), totalNodes), totalNodes)
		recoded, err := generalize.FullDomain(t, qi, cfg.Hierarchies, node)
		if err != nil {
			return false, nil, nil, err
		}
		classes, err := recoded.GroupBy(qi...)
		if err != nil {
			return false, nil, nil, err
		}
		criteria := append([]privacy.Criterion{privacy.KAnonymity{K: cfg.K}}, cfg.Extra...)
		ok, _, err := privacy.CheckAll(recoded, classes, criteria...)
		if err != nil {
			return false, nil, nil, err
		}
		return ok, recoded, classes, nil
	}

	// Subset pre-check: the minimum level per single attribute at which that
	// attribute alone (with all others fully generalized) can satisfy
	// k-anonymity. Levels below that floor can never appear in a satisfying
	// node, so the breadth-first search skips them.
	floors := make([]int, len(qi))
	for i := range qi {
		floors[i] = 0
		for level := 0; level <= maxLevels[i]; level++ {
			node := lat.Top()
			node[i] = level
			ok, _, _, err := satisfies(node)
			if err != nil {
				return nil, err
			}
			if ok {
				floors[i] = level
				break
			}
			if level == maxLevels[i] {
				return nil, fmt.Errorf("%w (attribute %q cannot reach %d-anonymity even fully generalized elsewhere)",
					ErrUnsatisfiable, qi[i], cfg.K)
			}
		}
	}

	// Breadth-first search by height with rollup pruning.
	var minimal []lattice.Node
	dominatedByMinimal := func(n lattice.Node) bool {
		for _, m := range minimal {
			if n.Dominates(m) {
				return true
			}
		}
		return false
	}
	belowFloor := func(n lattice.Node) bool {
		for i := range n {
			if n[i] < floors[i] {
				return true
			}
		}
		return false
	}

	type candidate struct {
		node    lattice.Node
		table   *dataset.Table
		classes []dataset.EquivalenceClass
	}
	var all []candidate
	for h := 0; h <= lat.MaxHeight(); h++ {
		// Nodes of equal height cannot dominate one another (domination with
		// equal component sums forces equality), so pruning only ever uses
		// minimal nodes from lower layers: the surviving nodes of this layer
		// are independent and safe to check concurrently.
		var layer []lattice.Node
		for _, node := range lat.NodesAtHeight(h) {
			if belowFloor(node) || dominatedByMinimal(node) {
				continue
			}
			layer = append(layer, node.Clone())
		}
		outcomes, err := parallel.Map(len(layer), workers, func(i int) (outcome, error) {
			ok, table, classes, err := satisfies(layer[i])
			if err != nil {
				return outcome{}, err
			}
			return outcome{ok: ok, table: table, classes: classes}, nil
		})
		if err != nil {
			return nil, err
		}
		// Fold back in node order so the result is identical for every
		// worker count.
		for i, out := range outcomes {
			if !out.ok {
				continue
			}
			minimal = append(minimal, layer[i])
			all = append(all, candidate{node: layer[i], table: out.table, classes: out.classes})
		}
	}
	if len(minimal) == 0 {
		return nil, fmt.Errorf("%w (k=%d)", ErrUnsatisfiable, cfg.K)
	}

	score := cfg.ScoreNode
	if score == nil {
		score = func(_ *dataset.Table, _ []dataset.EquivalenceClass, node lattice.Node) float64 {
			return float64(node.Height())
		}
	}
	best := 0
	bestScore := score(all[0].table, all[0].classes, all[0].node)
	for i := 1; i < len(all); i++ {
		s := score(all[i].table, all[i].classes, all[i].node)
		if s < bestScore {
			best, bestScore = i, s
		}
	}
	report(totalNodes, totalNodes)
	return &Result{
		Table:            all[best].table,
		Node:             all[best].node,
		QuasiIdentifiers: append([]string(nil), qi...),
		MinimalNodes:     minimal,
		NodesEvaluated:   int(evaluated.Load()),
	}, nil
}

// outcome is the per-node result of one layer check.
type outcome struct {
	ok      bool
	table   *dataset.Table
	classes []dataset.EquivalenceClass
}
