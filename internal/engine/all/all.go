// Package all registers every built-in algorithm adapter with the engine
// registry. Import it (blank) from any binary or test that needs the full
// algorithm set; internal/core does, so every caller of the release pipeline
// gets the seven built-ins for free.
//
// Adding an eighth algorithm is one new package with an engine adapter plus
// one import line here.
package all

import (
	_ "github.com/ppdp/ppdp/internal/algorithms/anatomy"
	_ "github.com/ppdp/ppdp/internal/algorithms/datafly"
	_ "github.com/ppdp/ppdp/internal/algorithms/incognito"
	_ "github.com/ppdp/ppdp/internal/algorithms/kmember"
	_ "github.com/ppdp/ppdp/internal/algorithms/mondrian"
	_ "github.com/ppdp/ppdp/internal/algorithms/samarati"
	_ "github.com/ppdp/ppdp/internal/algorithms/topdown"
	_ "github.com/ppdp/ppdp/internal/republish"
)
