// Package engine is the pluggable algorithm layer of the release pipeline:
// every anonymization algorithm is an Algorithm implementation registered in
// a process-wide registry, and every caller that needs to know "what
// algorithms exist, what parameters do they take, how do I run one" asks the
// registry instead of maintaining its own list.
//
// The registry is the single source of truth that used to be duplicated by
// hand across four layers (core's dispatch switch, core.New's per-algorithm
// validation, the server's /v1/algorithms list and the CLI usage text). An
// adapter lives next to each algorithm package (see
// internal/algorithms/*/engine.go) and self-registers in init; the blank
// imports in internal/engine/all pull every built-in adapter into a binary.
// Adding an eighth algorithm is one new package plus one import line — core,
// server, CLI and experiments pick it up from the registry metadata with no
// further edits.
//
// Execution is uniform: Run takes a context.Context that every algorithm
// polls at its natural unit of work (lattice node, generalization round,
// specialization step, cluster, bucket round, partition subtree), and a Spec
// whose Workers field bounds internal parallelism for the algorithms that
// can use it (see Info.Parallel). The same per-unit sites double as progress
// reporting points: a Spec.Progress sink receives (done, total) events as the
// run advances, and every adapter routes its algorithm's raw counter through
// Monotone so the delivered stream is strictly increasing and race-safe even
// under internal worker pools.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/policy"
	"github.com/ppdp/ppdp/internal/privacy"
)

// Progress is a sink for engine-level progress reporting. A run calls it
// with the number of completed units of work and the run's total (total is
// fixed for the whole run; it may be an upper bound for algorithms whose
// exact unit count is unknown up front, in which case a successful run emits
// a final (total, total) event). Events delivered through Monotone are
// serialized and strictly increasing in done, so sinks need no locking of
// their own.
type Progress func(done, total int)

// Monotone wraps sink so the delivered stream is race-safe and strictly
// increasing in done: concurrent reporters (worker pools) may publish counter
// values out of order, and the wrapper drops every event that does not
// advance past the last delivered one. Calls to the underlying sink are
// serialized. A nil sink wraps to nil, so algorithms can keep a cheap
// "progress disabled" fast path.
func Monotone(sink Progress) Progress {
	if sink == nil {
		return nil
	}
	var mu sync.Mutex
	last := -1
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done <= last {
			return
		}
		last = done
		sink(done, total)
	}
}

// Spec is the algorithm-agnostic run specification. Each algorithm reads the
// subset of fields its Describe metadata declares and ignores the rest; the
// caller (internal/core) resolves defaults — the sensitive attribute and the
// extra privacy criteria — before handing the Spec to Run.
type Spec struct {
	// K is the k-anonymity parameter.
	K int
	// L is the l-diversity parameter (Anatomy's bucket size).
	L int
	// Sensitive is the resolved sensitive attribute ("" when none).
	Sensitive string
	// QuasiIdentifiers restricts the quasi-identifier; empty means the
	// schema's quasi-identifier columns.
	QuasiIdentifiers []string
	// Hierarchies supplies generalization hierarchies.
	Hierarchies *hierarchy.Set
	// MaxSuppression bounds record suppression as a fraction of the table.
	MaxSuppression float64
	// Strict selects strict (never split ties) partitioning where the
	// algorithm distinguishes it.
	Strict bool
	// Workers bounds internal parallelism: 0 means GOMAXPROCS, 1 forces a
	// sequential run. Ignored by algorithms whose Info.Parallel is false.
	Workers int
	// Extra lists additional privacy criteria (l-diversity, t-closeness, ...)
	// for algorithms that gate their search on arbitrary criteria.
	Extra []privacy.Criterion
	// Policy is the declarative privacy policy the run enforces; the caller
	// (internal/core) resolves it and mirrors it into the scalar fields above
	// (K, L, MaxSuppression) and Extra, which the algorithms keep reading.
	// Adapters validate it against their Info.Criteria via ValidateCriteria,
	// so a policy naming a criterion the algorithm cannot enforce fails
	// before any data is touched. Nil when the caller bypasses the policy
	// layer (direct engine users, tests).
	Policy *policy.Policy
	// Progress receives (done, total) events as the run advances, reported at
	// the same per-unit sites where the algorithm polls its context. Nil
	// disables reporting. Adapters wrap the sink with Monotone, so callers may
	// pass plain closures without worrying about worker-pool interleaving.
	Progress Progress
}

// Result is the uniform outcome of a Run: a single microdata table, or a
// QIT/ST pair for bucketizing algorithms, plus the release metadata the
// pipeline reports.
type Result struct {
	// Table is the released microdata table (nil for bucketizing algorithms).
	Table *dataset.Table
	// QIT and ST are the bucketized releases (nil for microdata algorithms).
	QIT *dataset.Table
	ST  *dataset.Table
	// Node is the full-domain generalization node when the algorithm
	// searches a lattice, in quasi-identifier order.
	Node []int
	// SuppressedRows is the number of records the algorithm removed.
	SuppressedRows int
	// Extra carries an algorithm-specific payload (e.g. *anatomy.Result for
	// query estimation); callers type-assert what they understand.
	Extra any
}

// ReleaseKind classifies what a Run publishes.
type ReleaseKind string

// Release kinds.
const (
	// Microdata algorithms release one generalized table.
	Microdata ReleaseKind = "microdata"
	// Bucketized algorithms release a QIT/ST pair.
	Bucketized ReleaseKind = "bucketized"
)

// Param describes one parameter an algorithm reads, named as in the HTTP API
// (underscored). The CLI derives its flag name from Flag when set, otherwise
// from Name with underscores turned into dashes.
type Param struct {
	// Name is the wire name of the parameter (e.g. "max_suppression").
	Name string `json:"name"`
	// Flag overrides the derived CLI flag name (e.g. "strict" for the wire
	// name "strict_mondrian"). It is a CLI-only concern and stays out of the
	// HTTP listing, whose wire contract is the underscored Name.
	Flag string `json:"-"`
	// Type is the parameter's type: "int", "float", "bool", "string" or
	// "[]string".
	Type string `json:"type"`
	// Required marks parameters without a usable zero default.
	Required bool `json:"required"`
	// Default is the value the pipeline substitutes when the caller omits the
	// parameter (nil when the zero value simply disables the feature). It is
	// declared once, here, so the HTTP service, the CLI usage text and the
	// server-side resolution can never drift apart. Use int for "int"
	// parameters and float64 for "float" ones.
	Default any `json:"default,omitempty"`
	// Description is a one-line human summary.
	Description string `json:"description"`
}

// IntDefault returns the parameter's declared integer default, or fallback
// when none is declared.
func (p Param) IntDefault(fallback int) int {
	if v, ok := p.Default.(int); ok {
		return v
	}
	return fallback
}

// FloatDefault returns the parameter's declared float default, or fallback
// when none is declared.
func (p Param) FloatDefault(fallback float64) float64 {
	switch v := p.Default.(type) {
	case float64:
		return v
	case int:
		return float64(v)
	}
	return fallback
}

// Info is the machine-readable capability card of an algorithm. The server
// serves it verbatim from GET /v1/algorithms and the CLI renders its usage
// listing from it.
type Info struct {
	// Name is the registry key (lowercase, exact-match).
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description"`
	// Kind reports what a run releases.
	Kind ReleaseKind `json:"kind"`
	// FullDomain marks algorithms whose release carries a lattice node.
	FullDomain bool `json:"full_domain,omitempty"`
	// RequiresHierarchies marks algorithms that cannot run without a
	// generalization hierarchy per quasi-identifier.
	RequiresHierarchies bool `json:"requires_hierarchies,omitempty"`
	// Parallel marks algorithms that honor Spec.Workers internally.
	Parallel bool `json:"parallel,omitempty"`
	// CostExponent is the rough polynomial degree of the algorithm's running
	// time in the number of records (1 ≈ near-linear, 2 = quadratic);
	// schedulers and experiments use it to cap expensive algorithms.
	CostExponent float64 `json:"cost_exponent,omitempty"`
	// Default marks the algorithm Lookup("") resolves to.
	Default bool `json:"default,omitempty"`
	// Criteria lists the policy criterion types (see internal/policy) the
	// algorithm can enforce. A policy naming any other type is rejected by
	// ValidateCriteria before the run starts; the capability card served on
	// GET /v1/algorithms carries the list so clients can check up front.
	Criteria []string `json:"criteria"`
	// Parameters lists every Spec field the algorithm reads.
	Parameters []Param `json:"parameters"`
}

// SupportsCriterion reports whether the algorithm can enforce the given
// policy criterion type.
func (i Info) SupportsCriterion(typ string) bool {
	for _, t := range i.Criteria {
		if t == typ {
			return true
		}
	}
	return false
}

// Param returns the named parameter declaration, if the algorithm reads it.
func (i Info) Param(name string) (Param, bool) {
	for _, p := range i.Parameters {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Algorithm is one pluggable anonymization algorithm.
type Algorithm interface {
	// Name returns the registry key.
	Name() string
	// Describe returns the machine-readable capability/parameter metadata.
	Describe() Info
	// Validate checks the table-independent parts of a Spec. Errors are
	// reported to the caller before any data is touched.
	Validate(Spec) error
	// Run executes the algorithm. Implementations poll ctx at their natural
	// unit of work and return ctx.Err() (wrapped) on cancellation without
	// publishing partial state.
	Run(ctx context.Context, t *dataset.Table, spec Spec) (*Result, error)
}

// Error classes. Adapters wrap their package's sentinel errors with
// ConfigError/UnsatisfiableError so callers (the HTTP service) can map any
// algorithm's failure onto a status code without naming algorithm packages.
var (
	// ErrUnknownAlgorithm is returned by Lookup for unregistered names.
	ErrUnknownAlgorithm = errors.New("engine: unknown algorithm")
	// ErrConfig classifies invalid-configuration failures.
	ErrConfig = errors.New("engine: invalid algorithm configuration")
	// ErrUnsatisfiable classifies runs whose privacy criteria no release can
	// meet.
	ErrUnsatisfiable = errors.New("engine: privacy criteria unsatisfiable")
)

// classified attaches an error class to err: errors.Is matches both the
// class sentinel and everything in err's own chain.
type classified struct {
	err   error
	class error
}

func (c *classified) Error() string        { return c.err.Error() }
func (c *classified) Unwrap() error        { return c.err }
func (c *classified) Is(target error) bool { return target == c.class }

// ConfigError marks err as an invalid-configuration failure.
func ConfigError(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: ErrConfig}
}

// UnsatisfiableError marks err as an unsatisfiable-criteria failure.
func UnsatisfiableError(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: ErrUnsatisfiable}
}

// ValidateCriteria checks a spec's policy against an algorithm's declared
// criterion support: every criterion type in the policy must appear in
// info.Criteria. Adapters call it from Validate, so an unsupported
// combination fails as a ConfigError before any data is touched — the HTTP
// service maps it to a 400 the same way it maps any other configuration
// problem. A nil policy passes: direct engine users that build a Spec by
// hand keep working without one.
func ValidateCriteria(info Info, spec Spec) error {
	if spec.Policy == nil {
		return nil
	}
	for _, typ := range spec.Policy.CriterionTypes() {
		if !info.SupportsCriterion(typ) {
			return ConfigError(fmt.Errorf("%s: criterion %q is not supported (supported: %v)",
				info.Name, typ, info.Criteria))
		}
	}
	return nil
}

// registry is the process-wide algorithm registry. Registration happens in
// package init functions (see internal/engine/all); lookups are read-only
// after that, but the mutex keeps concurrent test registration safe.
var (
	regMu       sync.RWMutex
	algorithms  = make(map[string]Algorithm)
	defaultName string
)

// Register adds an algorithm to the process-wide registry. It panics on a
// nil algorithm, an empty name, or a duplicate — all programmer errors at
// init time.
func Register(a Algorithm) {
	if a == nil {
		panic("engine: Register(nil)")
	}
	name := a.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := algorithms[name]; ok {
		panic(fmt.Sprintf("engine: algorithm %q registered twice", name))
	}
	algorithms[name] = a
	if a.Describe().Default {
		if defaultName != "" && defaultName != name {
			panic(fmt.Sprintf("engine: both %q and %q claim to be the default algorithm", defaultName, name))
		}
		defaultName = name
	}
}

// Lookup resolves a name (exact match, no folding or trimming) to its
// registered algorithm. The empty name resolves to the default algorithm.
func Lookup(name string) (Algorithm, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if name == "" {
		name = defaultName
	}
	a, ok := algorithms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, name)
	}
	return a, nil
}

// Registered returns every registered algorithm in listing order: the
// default first, the rest alphabetically.
func Registered() []Algorithm {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Algorithm, 0, len(algorithms))
	for _, a := range algorithms {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		ni, nj := out[i].Name(), out[j].Name()
		if (ni == defaultName) != (nj == defaultName) {
			return ni == defaultName
		}
		return ni < nj
	})
	return out
}

// Names returns every registered algorithm name in listing order.
func Names() []string {
	regs := Registered()
	out := make([]string, len(regs))
	for i, a := range regs {
		out[i] = a.Name()
	}
	return out
}

// Infos returns every registered algorithm's capability card in listing
// order — the payload of GET /v1/algorithms and the CLI listing.
func Infos() []Info {
	regs := Registered()
	out := make([]Info, len(regs))
	for i, a := range regs {
		out[i] = a.Describe()
	}
	return out
}

// ParamDefault returns the declared default for a wire parameter name: the
// first non-nil Default among registered algorithms in listing order, or nil
// when no algorithm declares one. Algorithms that declare the same parameter
// must agree on its default (enforced by the engine tests), so callers that
// need one cross-algorithm value — the CLI's shared flag defaults — can use
// this without picking an algorithm first.
func ParamDefault(name string) any {
	for _, info := range Infos() {
		if p, ok := info.Param(name); ok && p.Default != nil {
			return p.Default
		}
	}
	return nil
}
