package engine_test

import (
	"sync"
	"testing"

	"github.com/ppdp/ppdp/internal/engine"
	_ "github.com/ppdp/ppdp/internal/engine/all"
)

func TestMonotoneNilStaysNil(t *testing.T) {
	if engine.Monotone(nil) != nil {
		t.Error("Monotone(nil) should stay nil so algorithms keep their disabled fast path")
	}
}

func TestMonotoneDropsStaleEvents(t *testing.T) {
	type ev struct{ done, total int }
	var got []ev
	sink := engine.Monotone(func(done, total int) { got = append(got, ev{done, total}) })

	// Out-of-order counter values, as a worker pool would publish them.
	for _, e := range []ev{{0, 10}, {2, 10}, {1, 10}, {2, 10}, {5, 10}, {4, 10}, {10, 10}} {
		sink(e.done, e.total)
	}
	want := []ev{{0, 10}, {2, 10}, {5, 10}, {10, 10}}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

// TestMonotoneRaceSafety hammers one wrapped sink from many goroutines; the
// race detector guards the wrapper and the test asserts the delivered stream
// is strictly increasing regardless of interleaving.
func TestMonotoneRaceSafety(t *testing.T) {
	var mu sync.Mutex
	var delivered []int
	sink := engine.Monotone(func(done, total int) {
		mu.Lock()
		delivered = append(delivered, done)
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sink(g*500+i, 4000)
			}
		}(g)
	}
	wg.Wait()
	for i := 1; i < len(delivered); i++ {
		if delivered[i] <= delivered[i-1] {
			t.Fatalf("delivered stream not strictly increasing at %d: %v <= %v", i, delivered[i], delivered[i-1])
		}
	}
}

// TestParamDefaultsAgree asserts that algorithms declaring the same wire
// parameter declare the same default, so ParamDefault (and with it the CLI's
// shared flag defaults) cannot silently disagree with any one algorithm.
func TestParamDefaultsAgree(t *testing.T) {
	defaults := make(map[string]any)
	owner := make(map[string]string)
	for _, info := range engine.Infos() {
		for _, p := range info.Parameters {
			if p.Default == nil {
				continue
			}
			if prev, ok := defaults[p.Name]; ok {
				if prev != p.Default {
					t.Errorf("parameter %q: %s declares default %v but %s declares %v",
						p.Name, owner[p.Name], prev, info.Name, p.Default)
				}
				continue
			}
			defaults[p.Name] = p.Default
			owner[p.Name] = info.Name
		}
	}
	// The pipeline-wide defaults the server and CLI rely on.
	if got := engine.ParamDefault("k"); got != 10 {
		t.Errorf("ParamDefault(k) = %v, want 10", got)
	}
	if got := engine.ParamDefault("max_suppression"); got != 0.02 {
		t.Errorf("ParamDefault(max_suppression) = %v, want 0.02", got)
	}
	if got := engine.ParamDefault("no_such_param"); got != nil {
		t.Errorf("ParamDefault(no_such_param) = %v, want nil", got)
	}
}

func TestParamDefaultHelpers(t *testing.T) {
	if got := (engine.Param{Default: 7}).IntDefault(3); got != 7 {
		t.Errorf("IntDefault with declared default = %d, want 7", got)
	}
	if got := (engine.Param{}).IntDefault(3); got != 3 {
		t.Errorf("IntDefault fallback = %d, want 3", got)
	}
	if got := (engine.Param{Default: 0.5}).FloatDefault(1); got != 0.5 {
		t.Errorf("FloatDefault with declared default = %v, want 0.5", got)
	}
	if got := (engine.Param{Default: 2}).FloatDefault(1); got != 2 {
		t.Errorf("FloatDefault with int default = %v, want 2", got)
	}
	if got := (engine.Param{}).FloatDefault(1); got != 1 {
		t.Errorf("FloatDefault fallback = %v, want 1", got)
	}
}
