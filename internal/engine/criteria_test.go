package engine_test

import (
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/engine"
	_ "github.com/ppdp/ppdp/internal/engine/all"
	"github.com/ppdp/ppdp/internal/policy"
)

// TestCriteriaMetadata checks every registered algorithm's criterion
// declarations: at least one criterion, every type known to the policy
// package, and no duplicates — the capability cards on GET /v1/algorithms
// render these verbatim.
func TestCriteriaMetadata(t *testing.T) {
	known := make(map[string]bool)
	for _, typ := range policy.Types() {
		known[typ] = true
	}
	for _, info := range engine.Infos() {
		if len(info.Criteria) == 0 {
			t.Errorf("%s: declares no supported criteria", info.Name)
		}
		seen := make(map[string]bool)
		for _, typ := range info.Criteria {
			if !known[typ] {
				t.Errorf("%s: unknown criterion type %q", info.Name, typ)
			}
			if seen[typ] {
				t.Errorf("%s: duplicate criterion type %q", info.Name, typ)
			}
			seen[typ] = true
		}
		// Every algorithm that enforces a class-size bound supports
		// k-anonymity; the ones that do not bucketize instead and support
		// the criterion their bucketization enforces (anatomy's
		// distinct-l-diversity, republish's m-invariance).
		if !info.SupportsCriterion(policy.KAnonymity) && !info.SupportsCriterion(policy.DistinctLDiversity) &&
			!info.SupportsCriterion(policy.MInvariance) {
			t.Errorf("%s: supports neither k-anonymity nor a bucketization criterion", info.Name)
		}
	}
}

// TestValidateCriteria checks the shared support validation every adapter
// runs: unsupported criterion types fail as ConfigError before any work, a
// nil policy passes (direct engine users), and Validate itself wires the
// check in.
func TestValidateCriteria(t *testing.T) {
	pol, err := (&policy.Policy{Criteria: []policy.Criterion{
		{Type: policy.KAnonymity, K: 5},
		{Type: policy.TCloseness, T: 0.2, Sensitive: "d"},
	}}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	info := engine.Info{Name: "fake", Criteria: []string{policy.KAnonymity}}
	if err := engine.ValidateCriteria(info, engine.Spec{Policy: pol}); !errors.Is(err, engine.ErrConfig) {
		t.Errorf("unsupported criterion error = %v, want ErrConfig", err)
	}
	info.Criteria = []string{policy.KAnonymity, policy.TCloseness}
	if err := engine.ValidateCriteria(info, engine.Spec{Policy: pol}); err != nil {
		t.Errorf("supported criteria rejected: %v", err)
	}
	if err := engine.ValidateCriteria(info, engine.Spec{}); err != nil {
		t.Errorf("nil policy rejected: %v", err)
	}

	// End to end through a real adapter: datafly enforces only k-anonymity,
	// so a t-closeness policy must fail its Validate as a ConfigError.
	alg, err := engine.Lookup("datafly")
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Validate(engine.Spec{K: 5, Policy: pol}); !errors.Is(err, engine.ErrConfig) {
		t.Errorf("datafly t-closeness policy error = %v, want ErrConfig", err)
	}
}
