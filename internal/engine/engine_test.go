package engine_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	_ "github.com/ppdp/ppdp/internal/engine/all"
)

// The seven built-in algorithms, for registry assertions.
var builtins = []string{"mondrian", "anatomy", "datafly", "incognito", "kmember", "samarati", "topdown"}

func TestRegistryListsBuiltinsDefaultFirst(t *testing.T) {
	names := engine.Names()
	if len(names) < len(builtins) {
		t.Fatalf("Names() = %v, want at least the %d built-ins", names, len(builtins))
	}
	if names[0] != "mondrian" {
		t.Errorf("default algorithm %q is not listed first: %v", names[0], names)
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, b := range builtins {
		if !seen[b] {
			t.Errorf("built-in %q missing from registry: %v", b, names)
		}
	}
	// The remainder is sorted.
	for i := 2; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("names not sorted after the default: %v", names)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, b := range builtins {
		alg, err := engine.Lookup(b)
		if err != nil || alg.Name() != b {
			t.Errorf("Lookup(%q) = %v, %v", b, alg, err)
		}
	}
	// Empty resolves to the default.
	alg, err := engine.Lookup("")
	if err != nil || alg.Name() != "mondrian" {
		t.Errorf("Lookup(\"\") = %v, %v", alg, err)
	}
	// Exact match only.
	for _, s := range []string{"Mondrian", " mondrian", "mondrian ", "bogus"} {
		if _, err := engine.Lookup(s); !errors.Is(err, engine.ErrUnknownAlgorithm) {
			t.Errorf("Lookup(%q) error = %v, want ErrUnknownAlgorithm", s, err)
		}
	}
}

func TestInfosAreComplete(t *testing.T) {
	for _, info := range engine.Infos() {
		if info.Name == "" || info.Description == "" {
			t.Errorf("incomplete info: %+v", info)
		}
		if info.Kind != engine.Microdata && info.Kind != engine.Bucketized {
			t.Errorf("%s: unknown release kind %q", info.Name, info.Kind)
		}
		if len(info.Parameters) == 0 {
			t.Errorf("%s: no parameters declared", info.Name)
		}
		// Every algorithm requires either k or l — except ones whose
		// headline parameter rides inside a policy document (republish's m).
		_, hasK := info.Param("k")
		_, hasL := info.Param("l")
		_, hasPolicy := info.Param("policy")
		if !hasK && !hasL && !hasPolicy {
			t.Errorf("%s: declares neither k nor l", info.Name)
		}
	}
}

func TestErrorClassification(t *testing.T) {
	sentinel := errors.New("pkg: specific failure")
	wrapped := fmt.Errorf("context: %w", sentinel)

	cfg := engine.ConfigError(wrapped)
	if !errors.Is(cfg, engine.ErrConfig) {
		t.Error("ConfigError does not match ErrConfig")
	}
	if errors.Is(cfg, engine.ErrUnsatisfiable) {
		t.Error("ConfigError matches ErrUnsatisfiable")
	}
	if !errors.Is(cfg, sentinel) {
		t.Error("ConfigError hides the original chain")
	}
	if cfg.Error() != wrapped.Error() {
		t.Errorf("ConfigError message = %q, want %q", cfg.Error(), wrapped.Error())
	}

	uns := engine.UnsatisfiableError(sentinel)
	if !errors.Is(uns, engine.ErrUnsatisfiable) || errors.Is(uns, engine.ErrConfig) {
		t.Errorf("UnsatisfiableError classification wrong: %v", uns)
	}
	if engine.ConfigError(nil) != nil || engine.UnsatisfiableError(nil) != nil {
		t.Error("classifying nil should stay nil")
	}
}

// fakeAlg is a minimal Algorithm for registration tests.
type fakeAlg struct{ name string }

func (f fakeAlg) Name() string { return f.name }
func (f fakeAlg) Describe() engine.Info {
	return engine.Info{Name: f.name, Description: "fake", Kind: engine.Microdata, Parameters: []engine.Param{{Name: "k", Type: "int"}}}
}
func (f fakeAlg) Validate(engine.Spec) error { return nil }
func (f fakeAlg) Run(context.Context, *dataset.Table, engine.Spec) (*engine.Result, error) {
	return nil, errors.New("fake: not runnable")
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	engine.Register(fakeAlg{name: "engine-test-fake"})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	engine.Register(fakeAlg{name: "engine-test-fake"})
}
