// Package risk implements the attack models the PPDP survey uses to motivate
// each privacy model: re-identification (record linkage) risk under the
// prosecutor, journalist and marketer adversaries; a record-linkage attack
// simulator against an identified external register; attribute-disclosure
// (homogeneity) attacks against k-anonymous releases; and table-linkage
// (presence) risk.
package risk

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
)

// ErrNoQuasiIdentifiers is returned when a table has no quasi-identifier
// columns to attack.
var ErrNoQuasiIdentifiers = errors.New("risk: table has no quasi-identifier attributes")

// ReidentificationRisk summarizes record-linkage risk of a release.
type ReidentificationRisk struct {
	// ProsecutorMax is the maximum per-record re-identification probability
	// assuming the attacker knows the target is in the release (1 / smallest
	// class size).
	ProsecutorMax float64
	// ProsecutorAvg is the average per-record probability, which equals the
	// marketer risk: expected fraction of records re-identified by linking
	// every record (number of classes / number of records).
	ProsecutorAvg float64
	// RecordsAtRisk is the fraction of records whose re-identification
	// probability exceeds the supplied threshold.
	RecordsAtRisk float64
	// Threshold echoes the risk threshold used for RecordsAtRisk.
	Threshold float64
	// Classes is the number of equivalence classes.
	Classes int
	// Records is the number of released records.
	Records int
}

// MeasureReidentification computes prosecutor/marketer re-identification risk
// for a release partitioned on its quasi-identifier.
func MeasureReidentification(t *dataset.Table, threshold float64) (*ReidentificationRisk, error) {
	qi := t.Schema().QuasiIdentifierNames()
	if len(qi) == 0 {
		return nil, ErrNoQuasiIdentifiers
	}
	classes, err := t.GroupBy(qi...)
	if err != nil {
		return nil, err
	}
	if len(classes) == 0 {
		return &ReidentificationRisk{Threshold: threshold}, nil
	}
	maxRisk := 0.0
	atRisk := 0
	for _, c := range classes {
		r := 1.0 / float64(c.Size())
		if r > maxRisk {
			maxRisk = r
		}
		if r > threshold {
			atRisk += c.Size()
		}
	}
	return &ReidentificationRisk{
		ProsecutorMax: maxRisk,
		ProsecutorAvg: float64(len(classes)) / float64(t.Len()),
		RecordsAtRisk: float64(atRisk) / float64(t.Len()),
		Threshold:     threshold,
		Classes:       len(classes),
		Records:       t.Len(),
	}, nil
}

// LinkageResult summarizes a simulated record-linkage attack in which an
// adversary holding an identified register (for example a voter list) joins
// it against the released table on the quasi-identifier.
type LinkageResult struct {
	// RegisterSize is the number of identified individuals attacked.
	RegisterSize int
	// Linked is the number of register individuals with at least one
	// matching released record.
	Linked int
	// UniqueLinks is the number of register individuals whose match set has
	// exactly one released record — these are unambiguous re-identifications
	// if the individual is in the release.
	UniqueLinks int
	// ExpectedReidentifications is the expected number of correct
	// re-identifications when the attacker picks uniformly from each match
	// set (journalist model: sum over matched individuals of 1/matchSize).
	ExpectedReidentifications float64
	// AverageMatchSize is the mean size of non-empty match sets.
	AverageMatchSize float64
}

// LinkageAttack simulates joining the identified register against the
// released table. The register holds raw quasi-identifier values; released
// values may be generalized, so matching is hierarchical: a released value
// matches a raw value when they are equal, when the released value is a
// "[lo-hi)" interval containing it, when it is the suppression marker, or
// when the supplied hierarchy generalizes the raw value to the released value
// at some level.
func LinkageAttack(released, register *dataset.Table, hs *hierarchy.Set) (*LinkageResult, error) {
	qi := released.Schema().QuasiIdentifierNames()
	if len(qi) == 0 {
		return nil, ErrNoQuasiIdentifiers
	}
	relCols := make([]int, len(qi))
	regCols := make([]int, len(qi))
	for i, a := range qi {
		c, err := released.Schema().Index(a)
		if err != nil {
			return nil, err
		}
		relCols[i] = c
		rc, err := register.Schema().Index(a)
		if err != nil {
			return nil, fmt.Errorf("risk: register is missing quasi-identifier %q: %w", a, err)
		}
		regCols[i] = rc
	}

	res := &LinkageResult{RegisterSize: register.Len()}
	totalMatchSize := 0
	for ri := 0; ri < register.Len(); ri++ {
		regRow, err := register.Row(ri)
		if err != nil {
			return nil, err
		}
		matches := 0
		for ti := 0; ti < released.Len(); ti++ {
			relRow, err := released.Row(ti)
			if err != nil {
				return nil, err
			}
			all := true
			for a := range qi {
				if !ValueMatches(relRow[relCols[a]], regRow[regCols[a]], lookupHierarchy(hs, qi[a])) {
					all = false
					break
				}
			}
			if all {
				matches++
			}
		}
		if matches > 0 {
			res.Linked++
			totalMatchSize += matches
			res.ExpectedReidentifications += 1.0 / float64(matches)
			if matches == 1 {
				res.UniqueLinks++
			}
		}
	}
	if res.Linked > 0 {
		res.AverageMatchSize = float64(totalMatchSize) / float64(res.Linked)
	}
	return res, nil
}

func lookupHierarchy(hs *hierarchy.Set, attr string) hierarchy.Hierarchy {
	if hs == nil || !hs.Has(attr) {
		return nil
	}
	h, err := hs.Get(attr)
	if err != nil {
		return nil
	}
	return h
}

// ValueMatches reports whether a released (possibly generalized) value is
// consistent with a raw quasi-identifier value.
func ValueMatches(released, raw string, h hierarchy.Hierarchy) bool {
	if released == raw {
		return true
	}
	if released == dataset.SuppressedValue {
		return true
	}
	// Interval match for numeric generalizations.
	if lo, hi, ok := hierarchy.ParseInterval(released); ok {
		if v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64); err == nil {
			if lo == hi {
				return v == lo
			}
			return v >= lo && v < hi
		}
	}
	// Set recoding such as "{a,b,c}".
	if strings.HasPrefix(released, "{") && strings.HasSuffix(released, "}") {
		for _, part := range strings.Split(released[1:len(released)-1], ",") {
			if strings.TrimSpace(part) == raw {
				return true
			}
		}
		return false
	}
	// Hierarchical match: some generalization level of raw equals released.
	if h != nil && h.Contains(raw) {
		for level := 1; level <= h.MaxLevel(); level++ {
			g, err := h.Generalize(raw, level)
			if err != nil {
				return false
			}
			if g == released {
				return true
			}
		}
	}
	return false
}

// HomogeneityResult summarizes an attribute-disclosure attack in which the
// adversary locates the victim's equivalence class and reads off the
// sensitive values present in it.
type HomogeneityResult struct {
	// FullyDisclosed is the fraction of records lying in classes where the
	// sensitive value is unanimous — those individuals' sensitive value is
	// learned with certainty.
	FullyDisclosed float64
	// ExpectedGuessRate is the probability that guessing the most frequent
	// sensitive value of the victim's class is correct, averaged over
	// records. It equals the adversary's expected accuracy.
	ExpectedGuessRate float64
	// WorstClassShare is the highest within-class frequency of any sensitive
	// value across classes (1.0 means at least one homogeneous class).
	WorstClassShare float64
}

// HomogeneityAttack evaluates attribute disclosure of the release for the
// named sensitive attribute.
func HomogeneityAttack(t *dataset.Table, sensitive string) (*HomogeneityResult, error) {
	qi := t.Schema().QuasiIdentifierNames()
	if len(qi) == 0 {
		return nil, ErrNoQuasiIdentifiers
	}
	classes, err := t.GroupBy(qi...)
	if err != nil {
		return nil, err
	}
	res := &HomogeneityResult{}
	if t.Len() == 0 {
		return res, nil
	}
	disclosed := 0
	guessed := 0.0
	for _, c := range classes {
		dist, err := t.SensitiveDistribution(c, sensitive)
		if err != nil {
			return nil, err
		}
		maxCount := 0
		for _, n := range dist {
			if n > maxCount {
				maxCount = n
			}
		}
		share := float64(maxCount) / float64(c.Size())
		if share > res.WorstClassShare {
			res.WorstClassShare = share
		}
		if len(dist) == 1 {
			disclosed += c.Size()
		}
		guessed += float64(maxCount)
	}
	res.FullyDisclosed = float64(disclosed) / float64(t.Len())
	res.ExpectedGuessRate = guessed / float64(t.Len())
	return res, nil
}

// BaselineGuessRate returns the accuracy of guessing the globally most
// frequent sensitive value for every record — the attacker's accuracy without
// seeing the release. Attribute-disclosure gain is the difference between
// HomogeneityResult.ExpectedGuessRate and this baseline.
func BaselineGuessRate(t *dataset.Table, sensitive string) (float64, error) {
	freq, err := t.Frequencies(sensitive)
	if err != nil {
		return 0, err
	}
	if t.Len() == 0 {
		return 0, nil
	}
	max := 0
	for _, n := range freq {
		if n > max {
			max = n
		}
	}
	return float64(max) / float64(t.Len()), nil
}
