package risk

import (
	"errors"
	"math"
	"testing"

	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/privacy"
	"github.com/ppdp/ppdp/internal/synth"
)

func releasedTable(t *testing.T) *dataset.Table {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "sex", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "diag", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
	rows := []dataset.Row{
		{"[20-30)", "male", "flu"},
		{"[20-30)", "male", "flu"},
		{"[20-30)", "male", "flu"},
		{"[30-40)", "female", "flu"},
		{"[30-40)", "female", "cancer"},
		{"[40-50)", "male", "hiv"},
	}
	tbl, err := dataset.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestMeasureReidentification(t *testing.T) {
	tbl := releasedTable(t)
	r, err := MeasureReidentification(tbl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.ProsecutorMax != 1.0 {
		t.Errorf("ProsecutorMax = %v (singleton class exists)", r.ProsecutorMax)
	}
	if math.Abs(r.ProsecutorAvg-3.0/6.0) > 1e-12 {
		t.Errorf("ProsecutorAvg = %v, want 0.5", r.ProsecutorAvg)
	}
	// Only the singleton class strictly exceeds risk 0.5 (the size-2 class
	// sits exactly at 0.5) => 1 of 6 records at risk.
	if math.Abs(r.RecordsAtRisk-1.0/6.0) > 1e-12 {
		t.Errorf("RecordsAtRisk = %v", r.RecordsAtRisk)
	}
	if r.Classes != 3 || r.Records != 6 {
		t.Errorf("Classes/Records = %d/%d", r.Classes, r.Records)
	}

	// No quasi-identifiers.
	plain := dataset.MustSchema(dataset.Attribute{Name: "x", Kind: dataset.Insensitive})
	pt, _ := dataset.FromRows(plain, []dataset.Row{{"1"}})
	if _, err := MeasureReidentification(pt, 0.5); !errors.Is(err, ErrNoQuasiIdentifiers) {
		t.Errorf("no QI error = %v", err)
	}
}

func TestRiskFallsWithK(t *testing.T) {
	tbl := synth.Hospital(1500, 1)
	prev := 1.1
	for _, k := range []int{2, 5, 25} {
		res, err := mondrian.Anonymize(tbl, mondrian.Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		r, err := MeasureReidentification(res.Table, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if r.ProsecutorMax > 1.0/float64(k)+1e-12 {
			t.Errorf("k=%d: prosecutor max %v exceeds 1/k", k, r.ProsecutorMax)
		}
		if r.ProsecutorMax > prev {
			t.Errorf("k=%d: risk %v rose above previous %v", k, r.ProsecutorMax, prev)
		}
		prev = r.ProsecutorMax
	}
}

func TestValueMatches(t *testing.T) {
	ageH := hierarchy.MustInterval("age", 0, 99, []float64{10})
	eduH := hierarchy.MustCategory("edu", map[string][]string{
		"bachelors": {"higher", "*"},
		"hs-grad":   {"secondary", "*"},
	})
	cases := []struct {
		released, raw string
		h             hierarchy.Hierarchy
		want          bool
	}{
		{"35", "35", nil, true},
		{"*", "anything", nil, true},
		{"[30-40)", "35", ageH, true},
		{"[30-40)", "40", ageH, false},
		{"[30-40)", "29", ageH, false},
		{"{a,b}", "a", nil, true},
		{"{a,b}", "c", nil, false},
		{"higher", "bachelors", eduH, true},
		{"higher", "hs-grad", eduH, false},
		{"secondary", "hs-grad", eduH, true},
		{"nonsense", "hs-grad", eduH, false},
	}
	for _, c := range cases {
		if got := ValueMatches(c.released, c.raw, c.h); got != c.want {
			t.Errorf("ValueMatches(%q, %q) = %v, want %v", c.released, c.raw, got, c.want)
		}
	}
}

func TestLinkageAttackOnRawRelease(t *testing.T) {
	// Releasing the raw hospital table makes most register members uniquely
	// linkable; anonymizing with Mondrian k=10 must slash unique links.
	private := synth.Hospital(800, 2)
	noID, err := private.DropIdentifiers()
	if err != nil {
		t.Fatal(err)
	}
	register, err := synth.IdentifiedRegister(private, 0.25, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := LinkageAttack(noID, register, synth.HospitalHierarchies())
	if err != nil {
		t.Fatal(err)
	}
	if raw.RegisterSize != register.Len() {
		t.Errorf("RegisterSize = %d", raw.RegisterSize)
	}
	if raw.Linked == 0 || raw.UniqueLinks == 0 {
		t.Fatalf("raw release produced no links (linked=%d unique=%d)", raw.Linked, raw.UniqueLinks)
	}

	res, err := mondrian.Anonymize(private, mondrian.Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	anon, err := LinkageAttack(res.Table, register, synth.HospitalHierarchies())
	if err != nil {
		t.Fatal(err)
	}
	if anon.UniqueLinks >= raw.UniqueLinks {
		t.Errorf("anonymization did not reduce unique links: %d vs %d", anon.UniqueLinks, raw.UniqueLinks)
	}
	if anon.ExpectedReidentifications >= raw.ExpectedReidentifications {
		t.Errorf("anonymization did not reduce expected re-identifications: %v vs %v",
			anon.ExpectedReidentifications, raw.ExpectedReidentifications)
	}
	if anon.Linked > 0 && anon.AverageMatchSize <= raw.AverageMatchSize {
		t.Errorf("anonymization did not grow match sets: %v vs %v", anon.AverageMatchSize, raw.AverageMatchSize)
	}
}

func TestLinkageAttackErrors(t *testing.T) {
	private := synth.Hospital(50, 4)
	// Register missing a QI column.
	reg, err := private.Project("name", "age")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LinkageAttack(private, reg, nil); err == nil {
		t.Error("register without all QI columns accepted")
	}
	plain := dataset.MustSchema(dataset.Attribute{Name: "x", Kind: dataset.Insensitive})
	pt, _ := dataset.FromRows(plain, []dataset.Row{{"1"}})
	if _, err := LinkageAttack(pt, reg, nil); !errors.Is(err, ErrNoQuasiIdentifiers) {
		t.Errorf("no QI error = %v", err)
	}
}

func TestHomogeneityAttack(t *testing.T) {
	tbl := releasedTable(t)
	res, err := HomogeneityAttack(tbl, "diag")
	if err != nil {
		t.Fatal(err)
	}
	// Class [20-30)/male is homogeneous (3 records), class [40-50)/male is a
	// singleton (1 record, also homogeneous) => 4/6 fully disclosed.
	if math.Abs(res.FullyDisclosed-4.0/6.0) > 1e-12 {
		t.Errorf("FullyDisclosed = %v", res.FullyDisclosed)
	}
	// Expected guess rate: (3 + 1 + 1)/6 ... second class majority flu 1 of 2
	// -> contributes 1; singleton contributes 1; first class contributes 3.
	if math.Abs(res.ExpectedGuessRate-5.0/6.0) > 1e-12 {
		t.Errorf("ExpectedGuessRate = %v", res.ExpectedGuessRate)
	}
	if res.WorstClassShare != 1.0 {
		t.Errorf("WorstClassShare = %v", res.WorstClassShare)
	}
	base, err := BaselineGuessRate(tbl, "diag")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base-4.0/6.0) > 1e-12 {
		t.Errorf("BaselineGuessRate = %v", base)
	}
	if res.ExpectedGuessRate <= base {
		t.Error("release should give the attacker an advantage over the baseline on this table")
	}
	if _, err := HomogeneityAttack(tbl, "missing"); err == nil {
		t.Error("unknown sensitive accepted")
	}
	if _, err := BaselineGuessRate(tbl, "missing"); err == nil {
		t.Error("unknown sensitive accepted by baseline")
	}
}

func TestHomogeneityFallsWithLDiversity(t *testing.T) {
	tbl := synth.Hospital(1200, 5)
	kOnly, err := mondrian.Anonymize(tbl, mondrian.Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	kAttack, err := HomogeneityAttack(kOnly.Table, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	diverse, err := mondrian.Anonymize(tbl, mondrian.Config{
		K:     5,
		Extra: []privacy.Criterion{privacy.DistinctLDiversity{L: 3, Sensitive: "diagnosis"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lAttack, err := HomogeneityAttack(diverse.Table, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if lAttack.FullyDisclosed > 0 {
		t.Errorf("3-diverse release still fully discloses %.3f of records", lAttack.FullyDisclosed)
	}
	if lAttack.FullyDisclosed > kAttack.FullyDisclosed {
		t.Errorf("l-diversity increased full disclosure: %v vs %v", lAttack.FullyDisclosed, kAttack.FullyDisclosed)
	}
}
