package synth

import (
	"fmt"
	"math/rand"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
)

// Hospital attribute domains. The diagnosis distribution is intentionally
// skewed (a few very common conditions and a long tail of rare, highly
// sensitive ones) because that skew is what separates l-diversity from
// t-closeness in the attribute-disclosure experiments.
var (
	hospitalZips = []string{
		"30301", "30302", "30303", "30304", "30305",
		"30310", "30311", "30312", "30318", "30319",
		"31401", "31402", "31403", "31404", "31405",
	}
	hospitalNationalities = []string{
		"american", "canadian", "mexican", "indian", "chinese", "japanese",
		"russian", "brazilian", "german", "french",
	}
	hospitalNationalityWeights = []float64{0.72, 0.03, 0.06, 0.04, 0.04, 0.02, 0.02, 0.03, 0.02, 0.02}

	hospitalDiagnoses = []string{
		"flu", "bronchitis", "gastritis", "hypertension", "diabetes",
		"asthma", "pneumonia", "heart-disease", "cancer", "hiv",
	}
	// The most common diagnosis stays well below 1/6 of the population so
	// that Anatomy's l-eligibility condition holds up to l=6, while the tail
	// (cancer, hiv) remains rare enough to exercise skewness attacks.
	hospitalDiagnosisWeights = []float64{0.13, 0.13, 0.12, 0.12, 0.11, 0.10, 0.09, 0.08, 0.07, 0.05}
)

// HospitalSchema returns the schema of the synthetic inpatient-discharge
// dataset: name is a direct identifier, diagnosis is sensitive, the rest form
// the quasi-identifier.
func HospitalSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "name", Kind: dataset.Identifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
		dataset.Attribute{Name: "zip", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "sex", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "nationality", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "diagnosis", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
}

// Hospital generates n synthetic discharge records. Diagnosis probabilities
// shift with age (chronic conditions become more likely for older patients),
// which gives attribute-linkage attacks a realistic signal to exploit.
func Hospital(n int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	t := dataset.NewTable(HospitalSchema())
	for i := 0; i < n; i++ {
		age := 1 + rng.Intn(95)
		zip := hospitalZips[zipIndexForAge(rng, age)]
		sex := censusSexes[rng.Intn(2)]
		nat := hospitalNationalities[weighted(rng, hospitalNationalityWeights)]
		diag := sampleDiagnosis(rng, age)
		row := dataset.Row{
			fmt.Sprintf("patient-%06d", i),
			fmt.Sprint(age),
			zip,
			sex,
			nat,
			diag,
		}
		if err := t.Append(row); err != nil {
			panic(err)
		}
	}
	return t
}

// zipIndexForAge correlates residence loosely with age so that zip carries
// some predictive signal about the sensitive attribute.
func zipIndexForAge(rng *rand.Rand, age int) int {
	base := rng.Intn(len(hospitalZips))
	if age > 65 && rng.Float64() < 0.4 {
		return 10 + rng.Intn(5) // retirees cluster in the 314xx area
	}
	return base
}

func sampleDiagnosis(rng *rand.Rand, age int) string {
	w := append([]float64(nil), hospitalDiagnosisWeights...)
	if age > 60 {
		w[3] *= 1.5 // hypertension
		w[4] *= 1.4 // diabetes
		w[7] *= 1.8 // heart-disease
		w[8] *= 1.6 // cancer
	}
	if age < 20 {
		w[0] *= 1.5 // flu
		w[5] *= 1.6 // asthma
	}
	return hospitalDiagnoses[weighted(rng, w)]
}

// HospitalHierarchies returns the generalization hierarchies for every
// hospital quasi-identifier.
func HospitalHierarchies() *hierarchy.Set {
	age := hierarchy.MustInterval("age", 0, 99, []float64{5, 10, 20, 50})
	zip, err := hierarchy.NewPrefixCategory("zip", hospitalZips, 4)
	if err != nil {
		panic(err)
	}
	sex, err := hierarchy.NewFlatCategory("sex", censusSexes)
	if err != nil {
		panic(err)
	}
	nat, err := hierarchy.NewGroupedCategory("nationality", map[string][]string{
		"north-american": {"american", "canadian", "mexican"},
		"asian":          {"indian", "chinese", "japanese"},
		"european":       {"russian", "german", "french"},
		"south-american": {"brazilian"},
	})
	if err != nil {
		panic(err)
	}
	return hierarchy.MustSet(age, zip, sex, nat)
}

// HospitalQuasiIdentifiers returns the quasi-identifier attribute names of
// the hospital dataset, in schema order.
func HospitalQuasiIdentifiers() []string {
	return HospitalSchema().QuasiIdentifierNames()
}

// HospitalDiagnoses returns the sensitive-value domain of the hospital
// dataset (most common first).
func HospitalDiagnoses() []string {
	return append([]string(nil), hospitalDiagnoses...)
}

// IdentifiedRegister builds an external "voter registration" style table for
// linkage-attack experiments: it contains direct identifiers together with a
// subset of the private table's quasi-identifier values. A fraction overlap
// of the register rows are true population members copied from the private
// table; the rest are decoys drawn from the same generator so the attacker
// cannot tell members apart structurally.
//
// The register schema is the private table's quasi-identifier columns plus
// its identifier columns (re-typed as insensitive so the register can be
// published); sensitive columns are excluded.
func IdentifiedRegister(private *dataset.Table, overlap float64, decoys int, seed int64) (*dataset.Table, error) {
	if overlap < 0 {
		overlap = 0
	}
	if overlap > 1 {
		overlap = 1
	}
	rng := rand.New(rand.NewSource(seed))
	schema := private.Schema()
	cols := append(schema.IdentifierIndices(), schema.QuasiIdentifierIndices()...)
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = schema.Attribute(c).Name
	}
	proj, err := private.Project(names...)
	if err != nil {
		return nil, err
	}
	members := proj.Sample(int(float64(private.Len())*overlap), rng)

	// Decoys: fresh rows from the hospital/census generator family are not
	// available generically, so decoys are resampled rows with fresh
	// identifiers and lightly perturbed quasi-identifiers.
	out := members.Clone()
	for i := 0; i < decoys; i++ {
		src := rng.Intn(proj.Len())
		row, err := proj.Row(src)
		if err != nil {
			return nil, err
		}
		r := row.Clone()
		r[0] = fmt.Sprintf("decoy-%06d", i)
		if err := out.Append(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}
