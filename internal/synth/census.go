// Package synth generates the synthetic datasets used by examples, tests and
// the experiment harness.
//
// The PPDP literature evaluates almost exclusively on the UCI "Adult" census
// extract and on hospital-discharge style microdata. Neither can be shipped
// or downloaded in this offline module, so this package generates datasets
// with the same schemas, realistic marginal distributions, and the attribute
// correlations the experiments depend on (education drives salary, age drives
// marital status, diagnosis prevalence is heavily skewed, and so on). All
// generators are deterministic given a seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
)

// weighted picks an index from weights proportionally.
func weighted(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Census attribute domains. Values mirror the UCI Adult extract so that
// hierarchies from the literature carry over directly.
var (
	censusWorkclasses = []string{
		"private", "self-emp-not-inc", "self-emp-inc", "federal-gov",
		"local-gov", "state-gov", "without-pay",
	}
	censusWorkclassWeights = []float64{0.70, 0.08, 0.04, 0.03, 0.07, 0.05, 0.03}

	censusEducations = []string{
		"preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th", "11th", "12th",
		"hs-grad", "some-college", "assoc-voc", "assoc-acdm", "bachelors", "masters",
		"prof-school", "doctorate",
	}
	censusEducationWeights = []float64{
		0.002, 0.005, 0.01, 0.02, 0.015, 0.027, 0.035, 0.013,
		0.322, 0.223, 0.042, 0.033, 0.164, 0.054, 0.017, 0.013,
	}

	censusMaritals = []string{
		"never-married", "married-civ-spouse", "divorced", "separated",
		"widowed", "married-spouse-absent", "married-af-spouse",
	}

	censusOccupations = []string{
		"tech-support", "craft-repair", "other-service", "sales", "exec-managerial",
		"prof-specialty", "handlers-cleaners", "machine-op-inspct", "adm-clerical",
		"farming-fishing", "transport-moving", "priv-house-serv", "protective-serv",
		"armed-forces",
	}
	censusOccupationWeights = []float64{
		0.03, 0.13, 0.11, 0.12, 0.13, 0.13, 0.045, 0.065, 0.12,
		0.032, 0.05, 0.005, 0.021, 0.002,
	}

	censusRaces       = []string{"white", "black", "asian-pac-islander", "amer-indian-eskimo", "other"}
	censusRaceWeights = []float64{0.854, 0.096, 0.031, 0.01, 0.009}

	censusSexes = []string{"male", "female"}

	censusCountries = []string{
		"united-states", "mexico", "philippines", "germany", "canada", "india",
		"england", "china", "cuba", "jamaica", "south-korea", "italy", "vietnam",
		"japan", "poland", "columbia", "france", "brazil",
	}
	censusCountryWeights = []float64{
		0.90, 0.020, 0.006, 0.004, 0.004, 0.003, 0.003, 0.0025, 0.003, 0.0025,
		0.002, 0.0022, 0.002, 0.002, 0.0018, 0.0018, 0.0009, 0.0008,
	}
)

// educationRank maps an education value to an ordinal level used to correlate
// education with salary and occupation.
var educationRank = func() map[string]int {
	m := make(map[string]int, len(censusEducations))
	for i, e := range censusEducations {
		m[e] = i
	}
	return m
}()

// CensusSchema returns the schema of the synthetic census (Adult-like)
// dataset. The "name" column is a direct identifier, "salary" is the
// sensitive class label, and everything else is a quasi-identifier.
func CensusSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "name", Kind: dataset.Identifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "age", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
		dataset.Attribute{Name: "workclass", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "education", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "marital-status", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "occupation", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "race", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "sex", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "hours-per-week", Kind: dataset.QuasiIdentifier, Type: dataset.Numeric},
		dataset.Attribute{Name: "native-country", Kind: dataset.QuasiIdentifier, Type: dataset.Categorical},
		dataset.Attribute{Name: "salary", Kind: dataset.Sensitive, Type: dataset.Categorical},
	)
}

// Census generates n synthetic census records with a deterministic seed.
// Correlations: higher education and more weekly hours increase the
// probability of the ">50k" salary class; marital status depends on age;
// occupation loosely tracks education.
func Census(n int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	t := dataset.NewTable(CensusSchema())
	for i := 0; i < n; i++ {
		age := sampleAge(rng)
		sex := censusSexes[weighted(rng, []float64{0.52, 0.48})]
		race := censusRaces[weighted(rng, censusRaceWeights)]
		country := censusCountries[weighted(rng, censusCountryWeights)]
		workclass := censusWorkclasses[weighted(rng, censusWorkclassWeights)]
		education := censusEducations[weighted(rng, censusEducationWeights)]
		marital := sampleMarital(rng, age)
		occupation := sampleOccupation(rng, education)
		hours := sampleHours(rng, workclass)
		salary := sampleSalary(rng, education, hours, age, marital)

		row := dataset.Row{
			fmt.Sprintf("person-%06d", i),
			fmt.Sprint(age),
			workclass,
			education,
			marital,
			occupation,
			race,
			sex,
			fmt.Sprint(hours),
			country,
			salary,
		}
		// Append only fails on arity mismatch, which is impossible here.
		if err := t.Append(row); err != nil {
			panic(err)
		}
	}
	return t
}

func sampleAge(rng *rand.Rand) int {
	// Working-age skewed distribution between 17 and 90.
	a := 17 + int(rng.ExpFloat64()*14)
	if a > 90 {
		a = 90
	}
	return a
}

func sampleMarital(rng *rand.Rand, age int) string {
	switch {
	case age < 25:
		return censusMaritals[weighted(rng, []float64{0.80, 0.12, 0.03, 0.02, 0.0, 0.02, 0.01})]
	case age < 40:
		return censusMaritals[weighted(rng, []float64{0.30, 0.48, 0.12, 0.04, 0.01, 0.04, 0.01})]
	case age < 60:
		return censusMaritals[weighted(rng, []float64{0.12, 0.55, 0.20, 0.04, 0.04, 0.04, 0.01})]
	default:
		return censusMaritals[weighted(rng, []float64{0.06, 0.45, 0.17, 0.03, 0.25, 0.03, 0.01})]
	}
}

func sampleOccupation(rng *rand.Rand, education string) string {
	rank := educationRank[education]
	if rank >= educationRank["bachelors"] {
		// White-collar tilt.
		return censusOccupations[weighted(rng, []float64{
			0.06, 0.04, 0.04, 0.12, 0.25, 0.30, 0.01, 0.02, 0.10, 0.01, 0.02, 0.0, 0.02, 0.01,
		})]
	}
	if rank >= educationRank["hs-grad"] {
		return censusOccupations[weighted(rng, censusOccupationWeights)]
	}
	// Blue-collar tilt.
	return censusOccupations[weighted(rng, []float64{
		0.01, 0.22, 0.18, 0.07, 0.02, 0.02, 0.12, 0.14, 0.06, 0.07, 0.08, 0.01, 0.0, 0.0,
	})]
}

func sampleHours(rng *rand.Rand, workclass string) int {
	base := 40.0
	if workclass == "self-emp-inc" || workclass == "self-emp-not-inc" {
		base = 46
	}
	if workclass == "without-pay" {
		base = 25
	}
	h := int(rng.NormFloat64()*10 + base)
	if h < 1 {
		h = 1
	}
	if h > 99 {
		h = 99
	}
	return h
}

func sampleSalary(rng *rand.Rand, education string, hours, age int, marital string) string {
	// Logistic-style score combining the classic Adult predictors.
	score := -2.2
	score += 0.28 * float64(educationRank[education]-educationRank["hs-grad"])
	score += 0.03 * float64(hours-40)
	score += 0.02 * float64(age-38)
	if marital == "married-civ-spouse" || marital == "married-af-spouse" {
		score += 1.1
	}
	p := 1.0 / (1.0 + math.Exp(-score))
	if rng.Float64() < p {
		return ">50k"
	}
	return "<=50k"
}

// CensusHierarchies returns the generalization hierarchies for every census
// quasi-identifier. Categorical taxonomies follow the groupings commonly used
// with the Adult dataset; numeric attributes use widening intervals.
func CensusHierarchies() *hierarchy.Set {
	age := hierarchy.MustInterval("age", 0, 99, []float64{5, 10, 20, 50})
	hours := hierarchy.MustInterval("hours-per-week", 0, 99, []float64{5, 10, 25, 50})

	workclass := hierarchy.MustCategory("workclass", map[string][]string{
		"private":          {"non-government", "employed", "*"},
		"self-emp-not-inc": {"self-employed", "employed", "*"},
		"self-emp-inc":     {"self-employed", "employed", "*"},
		"federal-gov":      {"government", "employed", "*"},
		"local-gov":        {"government", "employed", "*"},
		"state-gov":        {"government", "employed", "*"},
		"without-pay":      {"unpaid", "not-employed", "*"},
	})

	eduPaths := map[string][]string{}
	for _, e := range censusEducations {
		var group string
		switch {
		case educationRank[e] <= educationRank["12th"]:
			group = "no-diploma"
		case educationRank[e] <= educationRank["some-college"]:
			group = "high-school"
		case educationRank[e] <= educationRank["assoc-acdm"]:
			group = "associate"
		default:
			group = "higher-education"
		}
		eduPaths[e] = []string{group, "*"}
	}
	education := hierarchy.MustCategory("education", eduPaths)

	marital := hierarchy.MustCategory("marital-status", map[string][]string{
		"never-married":         {"not-married", "*"},
		"divorced":              {"not-married", "*"},
		"separated":             {"not-married", "*"},
		"widowed":               {"not-married", "*"},
		"married-civ-spouse":    {"married", "*"},
		"married-spouse-absent": {"married", "*"},
		"married-af-spouse":     {"married", "*"},
	})

	occPaths := map[string][]string{}
	blue := map[string]bool{
		"craft-repair": true, "handlers-cleaners": true, "machine-op-inspct": true,
		"farming-fishing": true, "transport-moving": true, "priv-house-serv": true,
	}
	for _, o := range censusOccupations {
		group := "white-collar"
		switch {
		case blue[o]:
			group = "blue-collar"
		case o == "other-service" || o == "protective-serv" || o == "armed-forces":
			group = "service"
		}
		occPaths[o] = []string{group, "*"}
	}
	occupation := hierarchy.MustCategory("occupation", occPaths)

	race, err := hierarchy.NewFlatCategory("race", censusRaces)
	if err != nil {
		panic(err)
	}
	sex, err := hierarchy.NewFlatCategory("sex", censusSexes)
	if err != nil {
		panic(err)
	}

	countryPaths := map[string][]string{}
	continent := map[string]string{
		"united-states": "north-america", "mexico": "north-america", "canada": "north-america",
		"cuba": "north-america", "jamaica": "north-america",
		"philippines": "asia", "india": "asia", "china": "asia", "south-korea": "asia",
		"vietnam": "asia", "japan": "asia",
		"germany": "europe", "england": "europe", "italy": "europe", "poland": "europe", "france": "europe",
		"columbia": "south-america", "brazil": "south-america",
	}
	for _, c := range censusCountries {
		countryPaths[c] = []string{continent[c], "*"}
	}
	country := hierarchy.MustCategory("native-country", countryPaths)

	return hierarchy.MustSet(age, hours, workclass, education, marital, occupation, race, sex, country)
}

// CensusQuasiIdentifiers returns the default quasi-identifier attribute names
// of the census dataset, in schema order.
func CensusQuasiIdentifiers() []string {
	return CensusSchema().QuasiIdentifierNames()
}
