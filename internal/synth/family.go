package synth

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
)

// Family bundles everything the entry points need to work with one synthetic
// benchmark dataset family: its schema, its generalization hierarchies, and
// its generator. The CLI subcommands and the HTTP service both dispatch on
// FamilyByName so a new family only has to be registered here.
type Family struct {
	// Name is the family's CLI/API name ("census", "hospital").
	Name string
	// Schema returns the family's full schema (including identifiers).
	Schema func() *dataset.Schema
	// Hierarchies returns the generalization hierarchies used to anonymize
	// and score the family.
	Hierarchies func() *hierarchy.Set
	// Generate materializes n synthetic rows deterministically per seed.
	Generate func(n int, seed int64) *dataset.Table
}

// Families returns every registered family, in stable order.
func Families() []*Family {
	return []*Family{
		{Name: "census", Schema: CensusSchema, Hierarchies: CensusHierarchies, Generate: Census},
		{Name: "hospital", Schema: HospitalSchema, Hierarchies: HospitalHierarchies, Generate: Hospital},
	}
}

// FamilyByName resolves a family name as used by the -dataset flag and the
// HTTP API's family parameter.
func FamilyByName(name string) (*Family, error) {
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("synth: unknown dataset family %q (want census or hospital)", name)
}

// ReadCSV reads a CSV stream under the family's schema. Released tables have
// their direct-identifier columns dropped, so when the full schema does not
// match, the identifier-free variant is tried as well; both errors are
// reported when neither fits.
func (f *Family) ReadCSV(r io.Reader) (*dataset.Table, error) {
	// Both attempts need the stream from the start; buffer it once.
	body, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("synth: read csv: %w", err)
	}
	schema := f.Schema()
	tbl, err := dataset.ReadCSV(schema, bytes.NewReader(body))
	if err == nil {
		return tbl, nil
	}
	var keep []dataset.Attribute
	for _, a := range schema.Attributes() {
		if a.Kind != dataset.Identifier {
			keep = append(keep, a)
		}
	}
	released, serr := dataset.NewSchema(keep...)
	if serr != nil {
		return nil, err
	}
	tbl, rerr := dataset.ReadCSV(released, bytes.NewReader(body))
	if rerr != nil {
		return nil, fmt.Errorf("%v (also tried identifier-free schema: %v)", err, rerr)
	}
	return tbl, nil
}

// ReadCSVFile is ReadCSV over the named file.
func (f *Family) ReadCSVFile(path string) (*dataset.Table, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	defer file.Close()
	return f.ReadCSV(file)
}
