package synth

import (
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/hierarchy"
)

func TestCensusShapeAndDeterminism(t *testing.T) {
	a := Census(500, 42)
	b := Census(500, 42)
	c := Census(500, 7)
	if a.Len() != 500 {
		t.Fatalf("len = %d", a.Len())
	}
	if a.Schema().Len() != 11 {
		t.Fatalf("schema len = %d", a.Schema().Len())
	}
	for i := 0; i < a.Len(); i++ {
		ra, _ := a.Row(i)
		rb, _ := b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("same seed differs at row %d col %d", i, j)
			}
		}
	}
	// A different seed should differ somewhere.
	diff := false
	for i := 0; i < a.Len() && !diff; i++ {
		ra, _ := a.Row(i)
		rc, _ := c.Row(i)
		for j := range ra {
			if ra[j] != rc[j] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical tables")
	}
}

func TestCensusDomainsAndRanges(t *testing.T) {
	tbl := Census(2000, 1)
	min, max, err := tbl.NumericRange("age")
	if err != nil {
		t.Fatal(err)
	}
	if min < 17 || max > 90 {
		t.Errorf("age range [%v, %v] outside [17, 90]", min, max)
	}
	min, max, err = tbl.NumericRange("hours-per-week")
	if err != nil {
		t.Fatal(err)
	}
	if min < 1 || max > 99 {
		t.Errorf("hours range [%v, %v] outside [1, 99]", min, max)
	}
	sal, err := tbl.Domain("salary")
	if err != nil {
		t.Fatal(err)
	}
	if len(sal) != 2 {
		t.Errorf("salary domain = %v", sal)
	}
	freq, _ := tbl.Frequencies("salary")
	high := float64(freq[">50k"]) / float64(tbl.Len())
	if high < 0.10 || high > 0.55 {
		t.Errorf(">50k share = %.2f, want a plausible minority/near-parity share", high)
	}
}

func TestCensusCorrelations(t *testing.T) {
	tbl := Census(8000, 3)
	// Doctorates should out-earn 11th-grade dropouts on average.
	rate := func(edu string) float64 {
		idx := tbl.Filter(func(r dataset.Row) bool { return r[3] == edu })
		if len(idx) == 0 {
			return 0
		}
		hi := 0
		for _, i := range idx {
			row, _ := tbl.Row(i)
			if row[10] == ">50k" {
				hi++
			}
		}
		return float64(hi) / float64(len(idx))
	}
	if rate("doctorate") <= rate("11th") {
		t.Errorf("salary correlation missing: doctorate %.2f <= 11th %.2f", rate("doctorate"), rate("11th"))
	}
}

func TestCensusHierarchiesCoverData(t *testing.T) {
	tbl := Census(3000, 5)
	hs := CensusHierarchies()
	for _, qi := range CensusQuasiIdentifiers() {
		h, err := hs.Get(qi)
		if err != nil {
			t.Fatalf("no hierarchy for %q", qi)
		}
		dom, err := tbl.Domain(qi)
		if err != nil {
			t.Fatal(err)
		}
		if missing := hierarchy.Validate(h, dom); len(missing) > 0 {
			t.Errorf("hierarchy %q does not cover values %v", qi, missing)
		}
	}
}

func TestHospitalShapeAndSkew(t *testing.T) {
	tbl := Hospital(4000, 11)
	if tbl.Len() != 4000 || tbl.Schema().Len() != 6 {
		t.Fatalf("shape %dx%d", tbl.Len(), tbl.Schema().Len())
	}
	freq, err := tbl.Frequencies("diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if freq["flu"] <= freq["hiv"] {
		t.Errorf("diagnosis distribution not skewed: flu=%d hiv=%d", freq["flu"], freq["hiv"])
	}
	if freq["hiv"] == 0 {
		t.Error("rare diagnosis never generated; experiments need a non-empty tail")
	}
	dom, _ := tbl.Domain("diagnosis")
	if len(dom) < 8 {
		t.Errorf("diagnosis domain too small: %v", dom)
	}
}

func TestHospitalHierarchiesCoverData(t *testing.T) {
	tbl := Hospital(2000, 2)
	hs := HospitalHierarchies()
	for _, qi := range HospitalQuasiIdentifiers() {
		h, err := hs.Get(qi)
		if err != nil {
			t.Fatalf("no hierarchy for %q", qi)
		}
		dom, err := tbl.Domain(qi)
		if err != nil {
			t.Fatal(err)
		}
		if missing := hierarchy.Validate(h, dom); len(missing) > 0 {
			t.Errorf("hierarchy %q does not cover values %v", qi, missing)
		}
	}
	if len(HospitalDiagnoses()) != 10 {
		t.Errorf("HospitalDiagnoses = %v", HospitalDiagnoses())
	}
}

func TestIdentifiedRegister(t *testing.T) {
	private := Hospital(1000, 9)
	reg, err := IdentifiedRegister(private, 0.3, 200, 17)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 300+200 {
		t.Fatalf("register len = %d", reg.Len())
	}
	if reg.Schema().Has("diagnosis") {
		t.Error("register leaked the sensitive column")
	}
	if !reg.Schema().Has("name") || !reg.Schema().Has("zip") {
		t.Error("register missing identifier or QI columns")
	}
	// Clamping of overlap.
	reg2, err := IdentifiedRegister(private, 1.7, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	if reg2.Len() != private.Len() {
		t.Errorf("clamped overlap register len = %d", reg2.Len())
	}
	reg3, err := IdentifiedRegister(private, -1, 10, 17)
	if err != nil {
		t.Fatal(err)
	}
	if reg3.Len() != 10 {
		t.Errorf("negative overlap register len = %d", reg3.Len())
	}
}

func TestWeightedCoversAllIndices(t *testing.T) {
	tbl := Census(3000, 21)
	dom, _ := tbl.Domain("workclass")
	if len(dom) < 5 {
		t.Errorf("workclass domain too small: %v", dom)
	}
}
