// Package testctx provides deterministic cancellation contexts for testing
// context-aware code without sleeps or wall-clock races: the context trips
// after a fixed number of Err() polls, so a "mid-run cancel" lands on an
// exact unit of work every time, under -race included.
package testctx

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// pollLimited is a context that reports context.Canceled after its Err
// method has been polled a fixed number of times. Concurrent pollers are
// fine: the countdown is atomic, and once tripped it stays tripped.
type pollLimited struct {
	remaining atomic.Int64
	done      chan struct{}
	once      sync.Once
}

// CancelAfter returns a context whose Err() returns nil for the first n
// polls and context.Canceled from poll n+1 on; Done() is closed at the same
// moment. Code that polls the context once per unit of work therefore
// observes a cancellation exactly n units into the run.
func CancelAfter(n int) context.Context {
	c := &pollLimited{done: make(chan struct{})}
	c.remaining.Store(int64(n))
	return c
}

func (c *pollLimited) Deadline() (time.Time, bool) { return time.Time{}, false }

func (c *pollLimited) Done() <-chan struct{} { return c.done }

func (c *pollLimited) Err() error {
	if c.remaining.Add(-1) < 0 {
		c.once.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

func (c *pollLimited) Value(any) any { return nil }
