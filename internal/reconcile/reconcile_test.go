package reconcile

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeEngine executes reconciliations inline and records outcomes. fail
// holds the number of Publish calls that should fail before succeeding.
type fakeEngine struct {
	mu         sync.Mutex
	fail       int
	published  int
	noops      int
	gen        uint64 // generation Publish reconciles to
	fp         string
	enqueueErr error
	blocked    chan struct{} // when non-nil, Publish waits on it
}

func (f *fakeEngine) Enqueue(spec string, run func(ctx context.Context)) error {
	f.mu.Lock()
	err := f.enqueueErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	go run(context.Background())
	return nil
}

func (f *fakeEngine) Publish(ctx context.Context, spec string) (uint64, string, error) {
	f.mu.Lock()
	blocked := f.blocked
	f.mu.Unlock()
	if blocked != nil {
		<-blocked
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail > 0 {
		f.fail--
		return 0, "", errors.New("synthetic publish failure")
	}
	f.published++
	return f.gen, f.fp, nil
}

func (f *fakeEngine) Noop(spec string, gen uint64, fp string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.noops++
	return nil
}

func (f *fakeEngine) counts() (published, noops int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.published, f.noops
}

// waitStatus polls until the spec reaches the wanted state and reconciled
// generation or the deadline passes.
func waitStatus(t *testing.T, m *Manager, spec, state string, gen uint64) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := m.Status(spec)
		if ok && st.State == state && st.ReconciledGeneration == gen {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("spec %s did not reach state=%s gen=%d (last: %+v, tracked=%v)", spec, state, gen, st, ok)
		}
		time.Sleep(time.Millisecond)
	}
}

func newTestManager(eng Engine) *Manager {
	return New(Config{Engine: eng, BackoffBase: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond})
}

func TestReconcileOnTrackLag(t *testing.T) {
	eng := &fakeEngine{gen: 3, fp: "fp3"}
	m := newTestManager(eng)
	defer m.Close()
	// A recovered spec whose dataset moved while the server was down
	// reconciles immediately.
	m.Track("s", "ds", 3, "fp3", 1, "fp1")
	st := waitStatus(t, m, "s", "idle", 3)
	if st.ReconciledFingerprint != "fp3" {
		t.Errorf("fingerprint = %q, want fp3", st.ReconciledFingerprint)
	}
	if p, _ := eng.counts(); p != 1 {
		t.Errorf("published = %d, want 1", p)
	}
	if s := m.Stats(); s.Success != 1 || s.Specs != 1 || s.Lag != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestReconcileInSyncStaysIdle(t *testing.T) {
	eng := &fakeEngine{}
	m := newTestManager(eng)
	defer m.Close()
	m.Track("s", "ds", 2, "fp2", 2, "fp2")
	time.Sleep(10 * time.Millisecond)
	if p, n := eng.counts(); p != 0 || n != 0 {
		t.Errorf("runs = %d/%d, want none", p, n)
	}
	if st, _ := m.Status("s"); st.State != "idle" {
		t.Errorf("state = %s", st.State)
	}
}

func TestFingerprintShortCircuit(t *testing.T) {
	eng := &fakeEngine{}
	m := newTestManager(eng)
	defer m.Close()
	m.Track("s", "ds", 1, "fp1", 1, "fp1")
	// The dataset is replaced with byte-identical content: new generation,
	// same fingerprint. No publish runs; the generation bump is recorded.
	m.Notify("ds", 2, "fp1")
	waitStatus(t, m, "s", "idle", 2)
	p, n := eng.counts()
	if p != 0 || n != 1 {
		t.Errorf("published/noops = %d/%d, want 0/1", p, n)
	}
	if s := m.Stats(); s.Noop != 1 || s.Success != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBackoffRetriesUntilSuccess(t *testing.T) {
	eng := &fakeEngine{fail: 2, gen: 2, fp: "fp2"}
	m := newTestManager(eng)
	defer m.Close()
	m.Track("s", "ds", 1, "fp1", 1, "fp1")
	m.Notify("ds", 2, "fp2")
	st := waitStatus(t, m, "s", "idle", 2)
	if st.Retries != 0 || st.LastError != "" {
		t.Errorf("settled status carries failure state: %+v", st)
	}
	if s := m.Stats(); s.Errors != 2 || s.Retries != 2 || s.Success != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBackoffSurfacesError(t *testing.T) {
	eng := &fakeEngine{fail: 1 << 30, gen: 2, fp: "fp2"}
	m := New(Config{Engine: eng, BackoffBase: time.Minute, BackoffMax: time.Minute})
	defer m.Close()
	m.Track("s", "ds", 2, "fp2", 1, "fp1")
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := m.Status("s")
		if st.State == "backoff" {
			if st.Retries != 1 || st.LastError == "" {
				t.Errorf("backoff status = %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spec never entered backoff: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEnqueueFailureBacksOff(t *testing.T) {
	eng := &fakeEngine{gen: 2, fp: "fp2"}
	eng.enqueueErr = errors.New("queue full")
	m := newTestManager(eng)
	defer m.Close()
	m.Track("s", "ds", 2, "fp2", 1, "fp1")
	// Wait for at least one failed attempt, then clear the queue pressure
	// and let the retry succeed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := m.Stats(); s.Errors >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("enqueue failure never counted")
		}
		time.Sleep(time.Millisecond)
	}
	eng.mu.Lock()
	eng.enqueueErr = nil
	eng.mu.Unlock()
	waitStatus(t, m, "s", "idle", 2)
}

func TestPerSpecSerialization(t *testing.T) {
	eng := &fakeEngine{gen: 2, fp: "fp2", blocked: make(chan struct{})}
	m := newTestManager(eng)
	defer m.Close()
	m.Track("s", "ds", 2, "fp2", 1, "fp1")
	// While the first run is blocked, further notifications must not start
	// a second one.
	for g := uint64(3); g <= 6; g++ {
		m.Notify("ds", g, fmt.Sprintf("fp%d", g))
	}
	time.Sleep(5 * time.Millisecond)
	if p, _ := eng.counts(); p != 0 {
		t.Fatalf("published = %d while first run still blocked", p)
	}
	eng.mu.Lock()
	eng.gen, eng.fp = 6, "fp6"
	blocked := eng.blocked
	eng.blocked = nil
	eng.mu.Unlock()
	close(blocked)
	// The blocked run finishes (reconciling to 6 — Publish reads current
	// state), and the finish re-check sees no remaining lag: exactly one
	// more run at most.
	waitStatus(t, m, "s", "idle", 6)
	if p, _ := eng.counts(); p > 2 {
		t.Errorf("published = %d, want at most 2 (per-spec serialization)", p)
	}
}

func TestForgetDropsSpec(t *testing.T) {
	eng := &fakeEngine{gen: 2, fp: "fp2"}
	m := newTestManager(eng)
	defer m.Close()
	m.Track("s", "ds", 1, "fp1", 1, "fp1")
	m.Forget("s")
	if _, ok := m.Status("s"); ok {
		t.Fatal("forgotten spec still tracked")
	}
	m.Notify("ds", 2, "fp2")
	time.Sleep(10 * time.Millisecond)
	if p, n := eng.counts(); p != 0 || n != 0 {
		t.Errorf("forgotten spec still reconciles: %d/%d", p, n)
	}
	if s := m.Stats(); s.Specs != 0 {
		t.Errorf("specs = %d", s.Specs)
	}
}

func TestCloseStopsLoop(t *testing.T) {
	eng := &fakeEngine{gen: 2, fp: "fp2"}
	m := newTestManager(eng)
	m.Track("s", "ds", 1, "fp1", 1, "fp1")
	m.Close()
	m.Notify("ds", 2, "fp2")
	time.Sleep(10 * time.Millisecond)
	if p, n := eng.counts(); p != 0 || n != 0 {
		t.Errorf("closed manager still reconciles: %d/%d", p, n)
	}
}

// BenchmarkReconcileNoop measures the fingerprint short-circuit: a
// generation bump whose content is byte-identical settles without an
// executor run.
func BenchmarkReconcileNoop(b *testing.B) {
	eng := &fakeEngine{}
	m := newTestManager(eng)
	defer m.Close()
	m.Track("s", "ds", 1, "fp", 1, "fp")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := uint64(i + 2)
		m.Notify("ds", gen, "fp")
		for {
			if st, _ := m.Status("s"); st.ReconciledGeneration == gen {
				break
			}
		}
	}
}

// BenchmarkReconcileSwap measures a full reconciliation cycle: notify,
// enqueue, publish, swap bookkeeping.
func BenchmarkReconcileSwap(b *testing.B) {
	eng := &fakeEngine{}
	m := newTestManager(eng)
	defer m.Close()
	m.Track("s", "ds", 1, "fp1", 1, "fp1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := uint64(i + 2)
		fp := fmt.Sprintf("fp%d", gen)
		eng.mu.Lock()
		eng.gen, eng.fp = gen, fp
		eng.mu.Unlock()
		m.Notify("ds", gen, fp)
		for {
			if st, _ := m.Status("s"); st.ReconciledGeneration == gen {
				break
			}
		}
	}
}
