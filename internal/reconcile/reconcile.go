// Package reconcile keeps stored release specs continuously in sync with
// their datasets: a spec (dataset, policy, algorithm) is desired state, and
// the manager re-publishes the spec's release whenever the dataset moves to
// a new generation, in the style of a Kubernetes controller.
//
// The manager owns only the runtime half of the control loop — per-spec
// serialization (one reconciliation in flight per spec, with a dirty mark
// for notifications that arrive mid-run), exponential backoff after
// failures, the byte-identical fingerprint short-circuit, and the outcome
// counters exported as ppdp_reconcile_* metrics. Everything durable (the
// spec record, the release swap, the m-invariance history) lives behind the
// Engine interface the HTTP server implements on its registry, so the
// control loop is testable against a fake in microseconds.
package reconcile

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Engine is the reconciler's view of the system it drives. All methods are
// called without manager locks held and may block.
type Engine interface {
	// Enqueue schedules run on the execution backend (the server's job
	// executor). The callback receives the job's context; Enqueue returning
	// an error (queue saturated) counts as a failed reconciliation and
	// backs off.
	Enqueue(spec string, run func(ctx context.Context)) error
	// Publish runs one reconciliation of the spec against the dataset's
	// current state and atomically swaps the spec's release. It returns the
	// dataset generation and content fingerprint the new release reflects.
	Publish(ctx context.Context, spec string) (gen uint64, fp string, err error)
	// Noop records that the spec is reconciled with the given dataset
	// generation without a new release: the dataset's bytes are identical
	// to what the current release was built from. Implementations persist
	// the generation bump so the short-circuit survives a restart.
	Noop(spec string, gen uint64, fp string) error
}

// Config tunes a Manager.
type Config struct {
	// Engine executes reconciliations. Required.
	Engine Engine
	// BackoffBase is the first retry delay after a failure (default 500ms);
	// subsequent failures double it up to BackoffMax (default 1m).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Logf, when non-nil, receives one line per reconciliation outcome.
	Logf func(format string, args ...any)
}

// Status is the runtime state of one tracked spec, surfaced on
// GET /v1/specs/{name}.
type Status struct {
	// State is "idle", "running" (enqueued or executing) or "backoff"
	// (failed, waiting to retry).
	State string
	// Retries is the number of consecutive failed reconciliations.
	Retries int
	// LastError is the most recent failure ("" after a success).
	LastError string
	// DatasetGeneration is the latest dataset generation the manager has
	// been notified of; ReconciledGeneration is the one the spec's release
	// reflects. Their difference is the spec's lag.
	DatasetGeneration     uint64
	ReconciledGeneration  uint64
	ReconciledFingerprint string
}

// Stats is an aggregate snapshot of the control loop, exported as
// ppdp_reconcile_* metrics and the /healthz reconcile block.
type Stats struct {
	// Specs is the number of tracked specs.
	Specs int
	// Success, Noop and Errors count finished reconciliation runs by
	// outcome (a noop is the fingerprint short-circuit).
	Success int64
	Noop    int64
	Errors  int64
	// Retries counts backoff retries scheduled after failures.
	Retries int64
	// Lag is the summed generation lag over all tracked specs.
	Lag uint64
}

// state is the runtime record of one tracked spec.
type state struct {
	name    string
	dataset string

	latestGen  uint64 // dataset generation per the last notification
	latestFP   string
	reconGen   uint64 // generation the spec's release reflects
	reconFP    string
	inflight   bool
	retries    int
	lastError  string
	retryTimer *time.Timer
}

// Manager runs the reconciliation control loop.
type Manager struct {
	engine  Engine
	base    time.Duration
	max     time.Duration
	logf    func(format string, args ...any)
	mu      sync.Mutex
	specs   map[string]*state
	success int64
	noop    int64
	errors  int64
	retried int64
	closed  bool
	wg      sync.WaitGroup
}

// New builds a Manager. It panics on a nil engine — a programmer error.
func New(cfg Config) *Manager {
	if cfg.Engine == nil {
		panic("reconcile: New with nil Engine")
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 500 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Manager{
		engine: cfg.Engine,
		base:   cfg.BackoffBase,
		max:    cfg.BackoffMax,
		logf:   cfg.Logf,
		specs:  make(map[string]*state),
	}
}

// Track registers a spec with the manager: dataset names the watched
// dataset, datasetGen/datasetFP its current generation and fingerprint, and
// reconGen/reconFP the generation and fingerprint the spec's stored release
// reflects (zero values for a brand-new spec). When the dataset is already
// ahead — a spec recovered from storage after appends it never saw —
// reconciliation starts immediately.
func (m *Manager) Track(name, dataset string, datasetGen uint64, datasetFP string, reconGen uint64, reconFP string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	st := &state{
		name:      name,
		dataset:   dataset,
		latestGen: datasetGen,
		latestFP:  datasetFP,
		reconGen:  reconGen,
		reconFP:   reconFP,
	}
	m.specs[name] = st
	m.kickLocked(st)
}

// Forget stops tracking a spec (deleted). An in-flight run finishes but its
// outcome is dropped.
func (m *Manager) Forget(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.specs[name]
	if !ok {
		return
	}
	if st.retryTimer != nil {
		st.retryTimer.Stop()
	}
	delete(m.specs, name)
}

// Notify reports that a dataset moved to a new generation with the given
// content fingerprint. Every spec watching it is re-checked. Callers must
// not hold locks the Engine implementation takes (the server notifies after
// releasing its registry lock).
func (m *Manager) Notify(dataset string, gen uint64, fp string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	for _, st := range m.specs {
		if st.dataset != dataset {
			continue
		}
		if gen > st.latestGen {
			st.latestGen, st.latestFP = gen, fp
		}
		m.kickLocked(st)
	}
}

// Status returns the runtime state of one tracked spec.
func (m *Manager) Status(name string) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.specs[name]
	if !ok {
		return Status{}, false
	}
	out := Status{
		State:                 "idle",
		Retries:               st.retries,
		LastError:             st.lastError,
		DatasetGeneration:     st.latestGen,
		ReconciledGeneration:  st.reconGen,
		ReconciledFingerprint: st.reconFP,
	}
	switch {
	case st.inflight:
		out.State = "running"
	case st.retryTimer != nil:
		out.State = "backoff"
	}
	return out, true
}

// Stats returns the aggregate control-loop snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Specs:   len(m.specs),
		Success: m.success,
		Noop:    m.noop,
		Errors:  m.errors,
		Retries: m.retried,
	}
	for _, st := range m.specs {
		if st.latestGen > st.reconGen {
			s.Lag += st.latestGen - st.reconGen
		}
	}
	return s
}

// Close stops the control loop: pending retries are canceled and in-flight
// runs are waited for. Tracked state is retained for Status readers.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	for _, st := range m.specs {
		if st.retryTimer != nil {
			st.retryTimer.Stop()
			st.retryTimer = nil
		}
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// kickLocked starts a reconciliation for st if one is needed and none is in
// flight. Called with m.mu held.
func (m *Manager) kickLocked(st *state) {
	if m.closed || st.inflight || st.retryTimer != nil {
		return // finish() re-kicks, so a mid-run notification is never lost
	}
	if st.latestGen <= st.reconGen {
		return // in sync
	}
	// Fingerprint short-circuit: the dataset moved to a new generation but
	// its bytes are identical (a PUT replace with the same content), so the
	// current release already reflects it. Record the bump durably without
	// burning an executor run.
	if st.latestFP == st.reconFP && st.latestFP != "" {
		gen, fp, name := st.latestGen, st.latestFP, st.name
		st.inflight = true
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			err := m.engine.Noop(name, gen, fp)
			m.finish(name, gen, fp, true, err)
		}()
		return
	}
	st.inflight = true
	name := st.name
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		err := m.engine.Enqueue(name, func(ctx context.Context) {
			gen, fp, err := m.engine.Publish(ctx, name)
			m.finish(name, gen, fp, false, err)
		})
		if err != nil {
			// The executor refused the job (saturated queue): count it as a
			// failed run and retry on the backoff schedule.
			m.finish(name, 0, "", false, fmt.Errorf("enqueue: %w", err))
		}
	}()
}

// finish settles one reconciliation outcome and re-kicks if the spec went
// dirty mid-run or is still lagging.
func (m *Manager) finish(name string, gen uint64, fp string, noop bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.specs[name]
	if !ok {
		return // forgotten mid-run
	}
	st.inflight = false
	if err != nil {
		m.errors++
		st.retries++
		st.lastError = err.Error()
		delay := m.backoff(st.retries)
		m.logf("reconcile %s: attempt %d failed (retry in %s): %v", name, st.retries, delay, err)
		if m.closed {
			return
		}
		m.retried++
		st.retryTimer = time.AfterFunc(delay, func() { m.retry(name) })
		return
	}
	st.retries = 0
	st.lastError = ""
	if gen > st.reconGen {
		st.reconGen, st.reconFP = gen, fp
	}
	if noop {
		m.noop++
		m.logf("reconcile %s: noop (dataset generation %d byte-identical)", name, gen)
	} else {
		m.success++
		m.logf("reconcile %s: reconciled to dataset generation %d", name, gen)
	}
	m.kickLocked(st)
}

// retry fires when a backoff timer expires.
func (m *Manager) retry(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.specs[name]
	if !ok {
		return
	}
	st.retryTimer = nil
	m.kickLocked(st)
}

// backoff returns the delay before retry attempt n (1-based): base doubling
// per failure, capped at max.
func (m *Manager) backoff(n int) time.Duration {
	d := m.base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= m.max {
			return m.max
		}
	}
	if d > m.max {
		return m.max
	}
	return d
}
