// Package obsmetrics is the service's dependency-free metrics layer: typed
// counters, gauges and histograms registered in a Registry that renders the
// Prometheus text exposition format 0.0.4 by hand, so the repository stays
// stdlib-only while `GET /metrics` is scrapeable by any Prometheus-compatible
// collector.
//
// Every instrument is safe for concurrent use: counters and gauges are single
// atomics, histograms keep one atomic per bucket plus a CAS-folded float sum,
// and observation paths never take the registry lock. Rendering walks the
// registry under its mutex but reads the instrument values atomically, so a
// scrape racing a burst of observations sees a consistent-enough snapshot
// (each sample individually exact; cross-metric skew is inherent to
// Prometheus scraping).
//
// The Value accessors (Counter.Value, Gauge.Value, FuncMetric.Value,
// Histogram.Count) exist so other read paths — the service's /healthz — can
// report the same numbers the exposition renders, from the same registry, and
// therefore can never drift from it.
package obsmetrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bucket upper bounds, in seconds —
// Prometheus's canonical latency spread.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// metricType is the TYPE line value of one family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Registry holds metric families and renders them. Create one with
// NewRegistry; registration typically happens once at service construction,
// observation on every request.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order; rendering sorts by name
}

// family is one named metric with HELP/TYPE and its label schema. Scalar
// metrics are the single series under the empty label key; vec metrics hold
// one series per label-value combination.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string

	mu     sync.Mutex
	series map[string]renderable // key = joined escaped label values
}

// renderable is the rendering contract of one series.
type renderable interface {
	renderInto(w io.Writer, name, labelPart string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate or invalid name —
// registration happens at construction time, where a bad metric is a
// programming error, not a runtime condition.
func (r *Registry) register(name, help string, typ metricType, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obsmetrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obsmetrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obsmetrics: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, series: make(map[string]renderable)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ---- counters ----

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative increments are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) renderInto(w io.Writer, name, labelPart string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labelPart, c.Value())
}

// Counter registers a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil)
	c := &Counter{}
	f.series[""] = c
	return c
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	f *family
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obsmetrics: CounterVec needs at least one label")
	}
	return &CounterVec{f: r.register(name, help, typeCounter, labels)}
}

// With returns the counter for one label-value combination, creating it on
// first use. The number of values must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	s := v.f.child(values, func() renderable { return &Counter{} })
	return s.(*Counter)
}

// ---- gauges ----

// Gauge is a value that can go up and down. It stores float64 bits so both
// integer occupancy gauges and fractional values render exactly.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Inc adds one. Add adds d (CAS loop; gauges are low-frequency).
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) renderInto(w io.Writer, name, labelPart string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labelPart, formatValue(g.Value()))
}

// Gauge registers a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil)
	g := &Gauge{}
	f.series[""] = g
	return g
}

// ---- function-backed metrics ----

// FuncMetric reads its value from a callback at render time — the natural
// shape for occupancy numbers that already live behind their own lock
// (registry counts, queue depth, cache stats). Value calls the same callback,
// so exposition and any other reader (the service's /healthz) see one source.
type FuncMetric struct {
	fn func() float64
}

// Value invokes the callback.
func (m *FuncMetric) Value() float64 { return m.fn() }

func (m *FuncMetric) renderInto(w io.Writer, name, labelPart string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labelPart, formatValue(m.Value()))
}

// GaugeFunc registers a gauge whose value is collected from fn at render
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *FuncMetric {
	f := r.register(name, help, typeGauge, nil)
	m := &FuncMetric{fn: fn}
	f.series[""] = m
	return m
}

// CounterFunc registers a counter whose value is collected from fn at render
// time; fn must be monotone (the callers wrap counters maintained elsewhere,
// e.g. the result cache's hit/miss totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64) *FuncMetric {
	f := r.register(name, help, typeCounter, nil)
	m := &FuncMetric{fn: fn}
	f.series[""] = m
	return m
}

// ---- histograms ----

// Histogram counts observations into cumulative buckets and tracks their sum,
// the Prometheus histogram contract: every bucket le="x" counts observations
// <= x, the +Inf bucket equals _count, and _sum is the total of all observed
// values.
type Histogram struct {
	upper  []float64 // sorted upper bounds, excluding +Inf
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-folded
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) renderInto(w io.Writer, name, labelPart string) {
	// Cumulative bucket counts; each le label extends the series' labels.
	cum := int64(0)
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labelPart, formatValue(ub)), cum)
	}
	// The +Inf bucket is the total count by definition; reading count after
	// the buckets keeps it >= the cumulative sum under concurrent observers.
	total := h.count.Load()
	if total < cum {
		total = cum
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labelPart, "+Inf"), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelPart, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelPart, total)
}

// bucketLabels merges a series' label part with the le bucket label.
func bucketLabels(labelPart, le string) string {
	if labelPart == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labelPart, "}") + `,le="` + le + `"}`
}

// Histogram registers a scalar histogram over the given bucket upper bounds
// (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, typeHistogram, nil)
	h := newHistogram(buckets)
	f.series[""] = h
	return h
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers a labeled histogram family over the given bucket
// upper bounds (DefBuckets when nil).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obsmetrics: HistogramVec needs at least one label")
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, typeHistogram, labels), buckets: append([]float64(nil), buckets...)}
}

// With returns the histogram for one label-value combination, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	s := v.f.child(values, func() renderable { return newHistogram(v.buckets) })
	return s.(*Histogram)
}

// child returns the series under the given label values, creating it with
// mk on first use.
func (f *family) child(values []string, mk func() renderable) renderable {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obsmetrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
	}
	return s
}

// seriesKey renders the {label="value",...} part of a sample line; it doubles
// as the series map key, so equal label sets share one series.
func seriesKey(labels, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline per the text
// format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a float sample value: integral values print without an
// exponent or trailing zeros, everything else in Go's shortest round-trip
// form, which the Prometheus parser accepts.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every registered family in the text exposition format
// 0.0.4: families sorted by name, each with its HELP and TYPE line followed
// by its series sorted by label key.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		series := make([]renderable, len(keys))
		sort.Strings(keys)
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			series[i].renderInto(w, f.name, k)
		}
	}
}

// Handler returns an http.Handler serving the exposition — the body of the
// service's GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
