package obsmetrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

func TestCounterAndGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events seen.")
	g := r.Gauge("test_depth", "Current depth.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(0.5)
	out := render(r)
	for _, want := range []string{
		"# HELP test_events_total Events seen.\n",
		"# TYPE test_events_total counter\n",
		"test_events_total 3\n",
		"# TYPE test_depth gauge\n",
		"test_depth 3.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 {
		t.Errorf("counter value = %d, want 3", c.Value())
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "Requests by route and status.", "route", "status")
	v.With("GET /healthz", "200").Add(2)
	v.With("POST /v1/anonymize", "200").Inc()
	v.With("GET /healthz", "200").Inc() // same series
	out := render(r)
	if !strings.Contains(out, `test_requests_total{route="GET /healthz",status="200"} 3`+"\n") {
		t.Errorf("vec series missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, `test_requests_total{route="POST /v1/anonymize",status="200"} 1`+"\n") {
		t.Errorf("second series missing:\n%s", out)
	}
	// One HELP/TYPE pair for the whole family.
	if got := strings.Count(out, "# TYPE test_requests_total counter"); got != 1 {
		t.Errorf("TYPE lines = %d, want 1", got)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_esc_total", "Escaping.", "name")
	v.With("a\"b\\c\nd").Inc()
	out := render(r)
	want := `test_esc_total{name="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Errorf("escaped series %q missing:\n%s", want, out)
	}
}

func TestHistogramContract(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(r)
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1` + "\n",
		`test_seconds_bucket{le="1"} 3` + "\n",
		`test_seconds_bucket{le="10"} 4` + "\n",
		`test_seconds_bucket{le="+Inf"} 5` + "\n",
		"test_seconds_sum 56.05\n",
		"test_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("Sum = %v, want 56.05", h.Sum())
	}
}

func TestHistogramVecBucketLabelsMerge(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_run_seconds", "Run latency by algorithm.", []float64{1}, "algorithm")
	v.With("mondrian").Observe(0.5)
	out := render(r)
	for _, want := range []string{
		`test_run_seconds_bucket{algorithm="mondrian",le="1"} 1` + "\n",
		`test_run_seconds_bucket{algorithm="mondrian",le="+Inf"} 1` + "\n",
		`test_run_seconds_sum{algorithm="mondrian"} 0.5` + "\n",
		`test_run_seconds_count{algorithm="mondrian"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vec histogram missing %q:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	depth := 7.0
	gf := r.GaugeFunc("test_queue_depth", "Queue depth.", func() float64 { return depth })
	cf := r.CounterFunc("test_hits_total", "Hits.", func() float64 { return 41 })
	if gf.Value() != 7 || cf.Value() != 41 {
		t.Fatalf("func values = %v/%v", gf.Value(), cf.Value())
	}
	depth = 9
	out := render(r)
	if !strings.Contains(out, "test_queue_depth 9\n") {
		t.Errorf("gauge func not collected at render:\n%s", out)
	}
	if !strings.Contains(out, "test_hits_total 41\n") {
		t.Errorf("counter func missing:\n%s", out)
	}
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "Last.")
	r.Counter("aa_total", "First.")
	out := render(r)
	if strings.Index(out, "aa_total") > strings.Index(out, "zz_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "One.")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "Two.")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "bad")
		}()
	}
}

// TestConcurrentObservationsAndRender hammers every instrument kind from many
// goroutines while rendering in a loop; run under -race this is the package's
// concurrency guard, and the final render must account for every event.
func TestConcurrentObservationsAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_events_total", "Events.")
	g := r.Gauge("hammer_depth", "Depth.")
	h := r.Histogram("hammer_seconds", "Latency.", []float64{0.5})
	v := r.CounterVec("hammer_by_label_total", "By label.", "l")
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				render(r)
			}
		}
	}()
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(k%2) * 0.9)
				v.With(string(rune('a' + i%3))).Inc()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	if c.Value() != goroutines*perG {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
	if g.Value() != goroutines*perG {
		t.Errorf("gauge = %v, want %d", g.Value(), goroutines*perG)
	}
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "Handler.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text format 0.0.4", ct)
	}
	if !strings.Contains(rec.Body.String(), "handler_total 1\n") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}
