package resultcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutBasics(t *testing.T) {
	c := New(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if v, ok := c.Get("b"); !ok || v.(int) != 2 {
		t.Fatalf("Get(b) = %v, %v", v, ok)
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Fatalf("Put over existing key did not replace: %v", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	s := c.Stats()
	if s.Hits != 3 || s.Misses != 1 || s.Evictions != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	// Touch a so b becomes the eviction victim.
	c.Get("a")
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("new entry missing")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCapacityClamp(t *testing.T) {
	c := New(0)
	if c.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", c.Cap())
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestConcurrentHammer drives get/put/eviction from many goroutines at once;
// under -race it locks in that the cache is safe for the server's concurrent
// request handlers. Invalidation in the real system is "keys stop matching",
// so the workload includes disjoint per-goroutine keys (forced misses and
// evictions) alongside shared hot keys.
func TestConcurrentHammer(t *testing.T) {
	c := New(16)
	const goroutines = 8
	const ops = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				hot := fmt.Sprintf("hot-%d", i%4)
				cold := fmt.Sprintf("cold-%d-%d", g, i)
				switch i % 4 {
				case 0:
					c.Put(hot, i)
				case 1:
					if v, ok := c.Get(hot); ok {
						if _, isInt := v.(int); !isInt {
							t.Errorf("unexpected value type %T", v)
							return
						}
					}
				case 2:
					c.Put(cold, i)
				case 3:
					c.Get(cold)
					c.Stats()
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries > 16 {
		t.Fatalf("cache grew past capacity: %+v", s)
	}
	if s.Hits+s.Misses == 0 || s.Evictions == 0 {
		t.Fatalf("hammer did not exercise the counters: %+v", s)
	}
}
