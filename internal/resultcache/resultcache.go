// Package resultcache provides the bounded LRU that memoizes finished
// anonymization runs across requests. Anonymization is deterministic — the
// same dataset content under the same canonical policy, algorithm and
// resolved parameters always yields the same release — so a release computed
// once can be served to every later request with the same key, skipping the
// job queue and the algorithm entirely.
//
// The cache itself is key/value agnostic: callers build the key from the
// dataset content fingerprint (dataset.Table.Fingerprint), the canonical
// policy encoding and the resolved run parameters, and store whatever value
// reproduces the response. Because the dataset fingerprint changes whenever
// the content does, no explicit invalidation hook is needed — a replaced or
// mutated dataset simply stops matching its old entries, which age out of
// the LRU.
//
// All operations are safe for concurrent use. Hit, miss and eviction
// counters are kept for operational visibility (the server surfaces them on
// /healthz).
package resultcache

import (
	"container/list"
	"sync"
)

// Cache is a bounded, concurrency-safe LRU memoizing computed results by
// key. The zero value is not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

// entry is one key/value pair threaded through the recency list.
type entry struct {
	key   string
	value any
}

// New returns an empty cache bounded to capacity entries. Capacities below
// one are clamped to one (callers that want caching off should not construct
// a cache at all).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// Get returns the value stored under key and whether it was present, marking
// the entry most recently used. Every call counts as a hit or a miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put stores value under key, marking it most recently used. Storing over an
// existing key replaces its value. When the cache is full the least recently
// used entry is evicted.
func (c *Cache) Put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).value = value
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.evictions++
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, value: value})
}

// Len returns the number of entries currently cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cap returns the configured capacity.
func (c *Cache) Cap() int { return c.cap }

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes since construction.
	Hits, Misses int64
	// Evictions counts entries displaced by capacity pressure (replacing an
	// existing key is not an eviction).
	Evictions int64
	// Entries and Capacity describe current occupancy.
	Entries, Capacity int
}

// Stats returns a snapshot of the counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.order.Len(),
		Capacity:  c.cap,
	}
}
