//go:build linux || darwin || freebsd || netbsd || openbsd

package dataset

import (
	"os"
	"syscall"
)

// mmapAvailable reports whether snapshot files are served by true memory
// mapping on this platform (pages shared with the OS cache, loaded on fault)
// rather than by the read-into-heap fallback.
const mmapAvailable = true

// mmapFile maps size bytes of f read-only and returns the mapping together
// with its unmap function. The mapping is shared with the page cache, so a
// snapshot open costs page-table setup instead of a copy, and scanning a
// table larger than RAM pages segments in and out on demand.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
