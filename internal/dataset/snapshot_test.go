package dataset

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func snapshotFixture(t *testing.T) *Table {
	t.Helper()
	schema, err := NewSchema(
		Attribute{Name: "age", Kind: QuasiIdentifier, Type: Numeric},
		Attribute{Name: "zip", Kind: QuasiIdentifier, Type: Categorical},
		Attribute{Name: "disease", Kind: Sensitive, Type: Categorical},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := FromRows(schema, []Row{
		{"34", "13053", "flu"},
		{"41", "13068", "cancer"},
		{"34", "13053", "cancer"},
		{"27", "14850", "flu"},
		{"[20-30)", "148**", "hepatitis"},
		{"41", "13068", "flu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func writeSnapshotFile(t *testing.T, tbl *Table) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "table.col")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSnapshotRoundTrip(t *testing.T) {
	tbl := snapshotFixture(t)
	path := writeSnapshotFile(t, tbl)

	mt, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	got := mt.Table()

	if got.Len() != tbl.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tbl.Len())
	}
	if got.Fingerprint() != tbl.Fingerprint() {
		t.Fatalf("fingerprint mismatch: %s vs %s", got.Fingerprint(), tbl.Fingerprint())
	}
	if !got.Schema().Equal(tbl.Schema()) {
		t.Fatalf("schema mismatch")
	}
	for i := 0; i < tbl.Len(); i++ {
		want, _ := tbl.Row(i)
		have, err := got.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if have[j] != want[j] {
				t.Fatalf("row %d col %d = %q, want %q", i, j, have[j], want[j])
			}
		}
	}

	// The typed views must match the source table's.
	for col := 0; col < tbl.Schema().Len(); col++ {
		wantCC, _ := tbl.CodedColumn(col)
		gotCC, err := got.CodedColumn(col)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotCC.Dict) != len(wantCC.Dict) {
			t.Fatalf("col %d: dict size %d, want %d", col, len(gotCC.Dict), len(wantCC.Dict))
		}
		for i, v := range wantCC.Dict {
			if gotCC.Dict[i] != v {
				t.Fatalf("col %d dict[%d] = %q, want %q", col, i, gotCC.Dict[i], v)
			}
		}
		for i, c := range wantCC.Codes {
			if gotCC.Codes[i] != c {
				t.Fatalf("col %d codes[%d] = %d, want %d", col, i, gotCC.Codes[i], c)
			}
			if gotCC.ranks[c] != wantCC.ranks[c] {
				t.Fatalf("col %d ranks[%d] = %d, want %d", col, c, gotCC.ranks[c], wantCC.ranks[c])
			}
		}
		if gotCC.clean != wantCC.clean {
			t.Fatalf("col %d clean = %v, want %v", col, gotCC.clean, wantCC.clean)
		}
		// Reverse lookup works via the lazily-built index.
		code, ok := gotCC.Code(wantCC.Dict[0])
		if !ok || code != 0 {
			t.Fatalf("Code(%q) = %d,%v, want 0,true", wantCC.Dict[0], code, ok)
		}
	}
	wantFC, _ := tbl.FloatColumn(0)
	gotFC, err := got.FloatColumn(0)
	if err != nil {
		t.Fatal(err)
	}
	if gotFC.ValidCount != wantFC.ValidCount || gotFC.Min != wantFC.Min || gotFC.Max != wantFC.Max {
		t.Fatalf("float column stats mismatch: %+v vs %+v", gotFC, wantFC)
	}
	for i := range wantFC.Values {
		if gotFC.Valid[i] != wantFC.Valid[i] || gotFC.Values[i] != wantFC.Values[i] {
			t.Fatalf("float cell %d mismatch", i)
		}
	}

	// GroupBy over the mapped table must match the heap table.
	wantGroups, err := tbl.GroupBy("age", "zip")
	if err != nil {
		t.Fatal(err)
	}
	gotGroups, err := got.GroupBy("age", "zip")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotGroups) != len(wantGroups) {
		t.Fatalf("groups = %d, want %d", len(gotGroups), len(wantGroups))
	}
	for i := range wantGroups {
		if gotGroups[i].Signature != wantGroups[i].Signature {
			t.Fatalf("group %d signature mismatch", i)
		}
	}
}

func TestSnapshotEmptyTable(t *testing.T) {
	schema, err := NewSchema(
		Attribute{Name: "a", Kind: QuasiIdentifier, Type: Categorical},
		Attribute{Name: "n", Kind: QuasiIdentifier, Type: Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(schema)
	path := writeSnapshotFile(t, tbl)
	mt, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	if mt.Table().Len() != 0 {
		t.Fatalf("Len = %d, want 0", mt.Table().Len())
	}
	if mt.Table().Fingerprint() != tbl.Fingerprint() {
		t.Fatal("fingerprint mismatch on empty table")
	}
}

// TestSnapshotLazyRows asserts that scanning a mapped table through the
// columnar views never materializes row storage — the whole point of the
// zero-copy open path.
func TestSnapshotLazyRows(t *testing.T) {
	tbl := snapshotFixture(t)
	mt, err := OpenSnapshot(writeSnapshotFile(t, tbl))
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	got := mt.Table()
	if got.rows != nil {
		t.Fatal("rows materialized at open")
	}
	if _, err := got.GroupBy("age", "zip"); err != nil {
		t.Fatal(err)
	}
	if _, err := got.FloatColumn(0); err != nil {
		t.Fatal(err)
	}
	_ = got.Fingerprint()
	if got.Len() != tbl.Len() {
		t.Fatal("Len mismatch")
	}
	if got.rows != nil {
		t.Fatal("columnar scans materialized row storage")
	}
	// Row access materializes on demand.
	if r, err := got.Row(0); err != nil || r[0] != "34" {
		t.Fatalf("Row(0) = %v, %v", r, err)
	}
	if got.rows == nil {
		t.Fatal("Row access did not materialize")
	}
}

// TestSnapshotPromoteOnWrite asserts copy-on-write promotion: mutating a
// mapped table detaches it from the snapshot (new fingerprint, visible write)
// without altering the file.
func TestSnapshotPromoteOnWrite(t *testing.T) {
	tbl := snapshotFixture(t)
	path := writeSnapshotFile(t, tbl)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	got := mt.Table()
	if err := got.SetValue(0, 2, "measles"); err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Value(0, 2); v != "measles" {
		t.Fatalf("Value = %q after SetValue", v)
	}
	if got.Fingerprint() == tbl.Fingerprint() {
		t.Fatal("fingerprint unchanged after mutation")
	}
	if err := got.Append(Row{"50", "99999", "flu"}); err != nil {
		t.Fatal(err)
	}
	if got.Len() != tbl.Len()+1 {
		t.Fatalf("Len = %d after append", got.Len())
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("mutating a mapped table changed the snapshot file")
	}
	// A fresh open still sees the original content.
	mt2, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mt2.Close()
	if mt2.Table().Fingerprint() != tbl.Fingerprint() {
		t.Fatal("snapshot content drifted")
	}
}

// TestSnapshotRejectsCorruption flips every region of the file and asserts
// OpenSnapshot refuses to serve the table.
func TestSnapshotRejectsCorruption(t *testing.T) {
	tbl := snapshotFixture(t)
	path := writeSnapshotFile(t, tbl)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		off  int
	}{
		{"magic", 0},
		{"header-length", 8},
		{"header-crc", 12},
		{"header-json", 20},
		{"data-region", len(orig) - 8},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := append([]byte(nil), orig...)
			mutated[tc.off] ^= 0x40
			p := filepath.Join(dir, tc.name+".col")
			if err := os.WriteFile(p, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			if mt, err := OpenSnapshot(p); err == nil {
				mt.Close()
				t.Fatal("corrupted snapshot opened cleanly")
			}
		})
	}
	t.Run("truncated", func(t *testing.T) {
		p := filepath.Join(dir, "truncated.col")
		if err := os.WriteFile(p, orig[:len(orig)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if mt, err := OpenSnapshot(p); err == nil {
			mt.Close()
			t.Fatal("truncated snapshot opened cleanly")
		}
	})
	t.Run("empty", func(t *testing.T) {
		p := filepath.Join(dir, "empty.col")
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if mt, err := OpenSnapshot(p); err == nil {
			mt.Close()
			t.Fatal("empty file opened cleanly")
		}
	})
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	tbl := snapshotFixture(t)
	var a, b bytes.Buffer
	if err := tbl.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Clone().WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot encoding is not deterministic")
	}
}

// TestSnapshotOfMappedTable re-snapshots a mapped table, exercising the
// encode path over zero-copy views.
func TestSnapshotOfMappedTable(t *testing.T) {
	tbl := snapshotFixture(t)
	mt, err := OpenSnapshot(writeSnapshotFile(t, tbl))
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	var buf bytes.Buffer
	if err := mt.Table().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	if err := tbl.WriteSnapshot(&ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), ref.Bytes()) {
		t.Fatal("re-snapshot of a mapped table is not byte-identical")
	}
}

// TestMmapScanLargerThanHeapBudget scans a snapshot much larger than the
// allowed heap growth: GroupBy and the float view must run over the mapping
// without pulling the dictionary blob or code arrays onto the heap.
func TestMmapScanLargerThanHeapBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("large fixture")
	}
	if !mmapAvailable {
		t.Skip("platform has no mmap; the fallback reads snapshots onto the heap")
	}
	const rows = 200_000
	schema, err := NewSchema(
		Attribute{Name: "id", Kind: QuasiIdentifier, Type: Categorical},
		Attribute{Name: "grp", Kind: QuasiIdentifier, Type: Categorical},
		Attribute{Name: "score", Kind: Sensitive, Type: Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 100)
	src := make([]Row, rows)
	for i := range src {
		src[i] = Row{
			fmt.Sprintf("user-%07d-%s", i, pad),
			fmt.Sprintf("g%02d", i%17),
			fmt.Sprintf("%d.5", i%1000),
		}
	}
	tbl, err := FromRows(schema, src)
	if err != nil {
		t.Fatal(err)
	}
	path := writeSnapshotFile(t, tbl)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	size := st.Size()
	tbl, src = nil, nil

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	mt, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	classes, err := mt.Table().GroupBy("grp")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 17 {
		t.Fatalf("classes = %d, want 17", len(classes))
	}
	fc, err := mt.Table().FloatColumnByName("score")
	if err != nil {
		t.Fatal(err)
	}
	if fc.ValidCount != rows {
		t.Fatalf("ValidCount = %d, want %d", fc.ValidCount, rows)
	}
	classes, fc = nil, nil
	_ = classes
	_ = fc

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	growth := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	if budget := size / 3; growth > budget {
		t.Fatalf("heap grew %d bytes scanning a %d-byte snapshot (budget %d): scan is not zero-copy", growth, size, budget)
	}
	if mt.Table().rows != nil {
		t.Fatal("scan materialized row storage")
	}
}

// TestSnapshotVerifyContent exercises the audit-grade verification pass: it
// accepts a clean snapshot, and catches a forged header whose fingerprints
// belong to a different table even when every CRC is internally consistent —
// the one corruption class the open-path CRC checks cannot see.
func TestSnapshotVerifyContent(t *testing.T) {
	tbl := snapshotFixture(t)
	path := writeSnapshotFile(t, tbl)
	mt, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.VerifyContent(); err != nil {
		t.Fatalf("VerifyContent on clean snapshot: %v", err)
	}
	mt.Close()

	// A second table with the same schema but different cells, whose
	// fingerprints we transplant into the first snapshot's header.
	other, err := FromRows(tbl.Schema(), []Row{
		{"99", "00000", "none"},
		{"98", "00001", "none"},
		{"97", "00002", "none"},
		{"96", "00003", "none"},
		{"95", "00004", "none"},
		{"94", "00005", "none"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rowsFPOf := func(t2 *Table) string {
		t2.Fingerprint() // fills the rows-hash cache
		return t2.colcache().fp
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hlen := int(binary.LittleEndian.Uint32(data[8:12]))
	hdr := data[16 : 16+hlen]
	forged := bytes.ReplaceAll(hdr, []byte(rowsFPOf(tbl)), []byte(rowsFPOf(other)))
	forged = bytes.ReplaceAll(forged, []byte(tbl.Fingerprint()), []byte(other.Fingerprint()))
	if bytes.Equal(forged, hdr) {
		t.Fatal("forgery did not change the header")
	}
	if len(forged) != len(hdr) {
		t.Fatalf("forged header length changed: %d != %d", len(forged), len(hdr))
	}
	copy(data[16:16+hlen], forged)
	binary.LittleEndian.PutUint32(data[12:16], crc32.ChecksumIEEE(forged))
	fp := filepath.Join(t.TempDir(), "forged.col")
	if err := os.WriteFile(fp, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Every CRC is consistent, so the snapshot opens — but the content no
	// longer hashes to what the header claims.
	fm, err := OpenSnapshot(fp)
	if err != nil {
		t.Fatalf("forged snapshot failed structural open: %v", err)
	}
	defer fm.Close()
	if err := fm.VerifyContent(); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("VerifyContent on forged snapshot = %v, want ErrSnapshotCorrupt", err)
	}
}
