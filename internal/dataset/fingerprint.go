package dataset

import (
	"encoding/binary"
	"encoding/hex"
	"strconv"

	"github.com/ppdp/ppdp/internal/parallel"
)

// This file implements the table content fingerprint: a cheap, deterministic
// hash over a table's schema and cell values that changes whenever the data
// changes. It is the dataset half of the cross-request result-cache key (see
// internal/resultcache): two tables with the same fingerprint hold the same
// released bytes, so a memoized release computed from one is valid for the
// other. The row-content part is cached in the shared colCache and is
// invalidated exactly where the columnar caches are — Append/AppendTable drop
// it with invalidateAll, SetValue with invalidateCol — so a mutated table can
// never keep a stale fingerprint. CSV ingest computes the hash while
// streaming rows in (see csv.go), making the fingerprint free for the upload
// path that feeds the result cache.
//
// The hash is two 64-bit accumulators folded over per-cell FNV-1a hashes:
// each cell's bytes (plus a terminator, so boundaries stay unambiguous) are
// reduced to one 64-bit value, and the cell stream is then mixed into the
// accumulator pair with position-sensitive multiply-xor steps. Reducing cells
// first is what makes ingest-time hashing cheap: the dictionary-encoding loop
// hashes each distinct value once and folds a ready 64-bit word per cell,
// instead of re-hashing repeated cell bytes for every row.

// FNV-1a 64-bit parameters (hash/fnv's, inlined so the per-cell loop has no
// interface-call or buffer-copy overhead).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Second-accumulator constants: an independent offset (the splitmix64/golden
// ratio increment) and a distinct odd multiplier, so the pair does not
// collapse to one 64-bit state under the shared fold input.
const (
	fpOffsetB uint64 = 0x9e3779b97f4a7c15
	fpPrimeB  uint64 = 0x00000100000001b3 ^ 0xff51afd7ed558ccb
)

// cell and row terminators for fingerprint hashing. The cell terminator is
// hashed after every cell's bytes, so adjacent-cell content cannot collide
// with shifted boundaries; the row terminator is a fold sentinel
// distinguishing {"a","b"},{"c"} from {"a"},{"b","c"}.
const (
	fpCellSep        = 0x1f
	fpRowSep  uint64 = 0x1e
)

// hashCell reduces one cell to a 64-bit FNV-1a hash of its bytes followed by
// the cell terminator.
func hashCell(v string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= fnvPrime64
	}
	h ^= fpCellSep
	h *= fnvPrime64
	return h
}

// contentHasher folds a stream of per-cell hashes into a 128-bit accumulator
// pair. The multiply after every xor makes the fold position-sensitive:
// swapping two cells changes the result.
type contentHasher struct {
	a, b uint64
}

func newContentHasher() contentHasher {
	return contentHasher{a: fnvOffset64, b: fpOffsetB}
}

// fold mixes one pre-hashed cell into the accumulators.
func (c *contentHasher) fold(cellHash uint64) {
	c.a = (c.a ^ cellHash) * fnvPrime64
	c.b = (c.b ^ cellHash) * fpPrimeB
}

// cell hashes one cell value and folds it.
func (c *contentHasher) cell(v string) {
	c.fold(hashCell(v))
}

// endRow folds the row terminator.
func (c *contentHasher) endRow() {
	c.fold(fpRowSep)
}

// sum returns the accumulated hash in lowercase hex.
func (c *contentHasher) sum() string {
	var out [16]byte
	binary.BigEndian.PutUint64(out[:8], c.a)
	binary.BigEndian.PutUint64(out[8:], c.b)
	return hex.EncodeToString(out[:])
}

// rowsFingerprint hashes a row set from scratch. It is the rebuild path for
// tables whose fingerprint was invalidated by mutation (ingest computes the
// same hash incrementally while reading, via the dictionary memo).
func rowsFingerprint(rows []Row) string {
	ch := newContentHasher()
	for _, r := range rows {
		for _, v := range r {
			ch.cell(v)
		}
		ch.endRow()
	}
	return ch.sum()
}

// Parallel-rebuild tuning. Variables so equivalence tests can force the
// chunked path onto small fixtures.
var (
	// fpWindowRows bounds the word buffer: rows are hashed window-at-a-time
	// so the scratch stays cache-sized instead of O(rows).
	fpWindowRows = 4096
	// fpHashMinRows is the smallest per-worker chunk of the cell-hashing
	// pass; tables under twice this size take the plain sequential rebuild.
	fpHashMinRows = 512
)

// rowsFingerprintParallel rebuilds the row-content hash with the per-cell
// byte hashing — the dominant cost, roughly an order of magnitude more work
// per word than the fold — spread across workers, while the position-
// sensitive accumulator fold stays strictly sequential and in row order, so
// the result is bit-identical to rowsFingerprint for every worker count.
//
// The fold cannot itself be chunked: committed fingerprints (result-cache
// keys, content-addressed tables/<fp>.tbl filenames) pin the existing
// multiply-xor recurrence, and multiplication mod 2^64 does not distribute
// over xor, so per-chunk accumulators cannot be recombined with multiplier
// powers the way a true polynomial (multiply-add) hash would allow. Hashing
// cell bytes into a windowed word buffer in parallel and streaming the
// buffer through one hasher keeps the committed values while parallelizing
// the expensive part.
func rowsFingerprintParallel(rows []Row, workers int) string {
	n := len(rows)
	if n == 0 {
		return rowsFingerprint(rows)
	}
	k := len(rows[0])
	for _, r := range rows {
		if len(r) != k { // constructors enforce arity; stay safe if it ever breaks
			return rowsFingerprint(rows)
		}
	}
	stride := k + 1 // per-row cell hashes plus the row terminator
	window := fpWindowRows
	if window > n {
		window = n
	}
	words := make([]uint64, window*stride)
	ch := newContentHasher()
	for base := 0; base < n; base += window {
		m := n - base
		if m > window {
			m = window
		}
		parallel.Chunks(m, workers, fpHashMinRows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				o := i * stride
				for j, v := range rows[base+i] {
					words[o+j] = hashCell(v)
				}
				words[o+k] = fpRowSep
			}
		})
		for _, w := range words[:m*stride] {
			ch.fold(w)
		}
	}
	return ch.sum()
}

// Fingerprint returns a deterministic content hash of the table: its schema
// (attribute names, kinds and types, in order) combined with every cell
// value. Tables with equal schemas and equal cell contents have equal
// fingerprints; any mutation — appending rows or overwriting a cell — yields
// a different one. The row-content hash is cached alongside the columnar
// caches and shares their invalidation, so repeated calls on an unchanged
// table are O(schema); the schema part is mixed in per call because
// WithSchema views share row storage (and therefore the cache) while
// differing in schema.
func (t *Table) Fingerprint() string {
	c := t.colcache()
	c.mu.Lock()
	if c.fp == "" {
		rows := t.data()
		if w := t.scanParallelism(); w > 1 && len(rows) >= 2*fpHashMinRows {
			c.fp = rowsFingerprintParallel(rows, w)
		} else {
			c.fp = rowsFingerprint(rows)
		}
	}
	rowsFP := c.fp
	c.mu.Unlock()

	ch := newContentHasher()
	for _, a := range t.schema.attrs {
		ch.cell(a.Name)
		ch.cell(strconv.Itoa(int(a.Kind)))
		ch.cell(strconv.Itoa(int(a.Type)))
		ch.endRow()
	}
	ch.cell(strconv.Itoa(t.Len()))
	ch.cell(rowsFP)
	return ch.sum()
}
