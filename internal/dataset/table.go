package dataset

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Common table errors.
var (
	// ErrRowArity is returned when a row does not have one value per schema
	// attribute.
	ErrRowArity = errors.New("dataset: row arity does not match schema")
	// ErrRowIndex is returned when a row index is out of range.
	ErrRowIndex = errors.New("dataset: row index out of range")
	// ErrNotNumeric is returned when numeric parsing is requested for a
	// value that is not a number (for example a generalized interval).
	ErrNotNumeric = errors.New("dataset: value is not numeric")
	// ErrEmptyTable is returned by operations that require at least one row.
	ErrEmptyTable = errors.New("dataset: table has no rows")
	// ErrSchemaMismatch is returned when two tables that must share an equal
	// schema (same names, kinds and types, in order) do not.
	ErrSchemaMismatch = errors.New("dataset: schemas are not equal")
)

// SuppressedValue is the conventional marker used for fully suppressed cells.
const SuppressedValue = "*"

// Row is a single record: one string value per schema attribute, in schema
// order.
type Row []string

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an ordered collection of rows sharing a schema. The zero value is
// not usable; construct tables with NewTable or FromRows.
type Table struct {
	schema *Schema
	rows   []Row
	// src, when non-nil, defers row materialization for snapshot-backed
	// tables (see snapshot.go): the typed column views are served straight
	// from the mapping, and string row storage is only built if a caller
	// actually asks for rows. rowsOnce guards the one-time materialization.
	src      *rowSource
	rowsOnce sync.Once
	// cache holds the lazily-built columnar views (see column.go). Tables
	// that share row storage (WithSchema views) share the cache. All
	// constructors set it; cacheOnce guards the fallback initialization for
	// tables built by in-package struct literals so that concurrent column
	// accessors never race on the pointer.
	cache     *colCache
	cacheOnce sync.Once
	// scanWorkers bounds the worker pool used by the chunked scan kernels
	// (GroupBy, Fingerprint, snapshot encode, metric scans) on this table.
	// Zero — the default — keeps every scan sequential, so library callers
	// that never opt in observe the historical single-threaded behavior;
	// core and server resolve their configured Workers (0 → GOMAXPROCS) and
	// set it explicitly. Atomic because handles are read by concurrent
	// requests while the server may still be wiring tables up.
	scanWorkers atomic.Int32
}

// SetScanWorkers bounds the worker pool the chunked scan kernels may use on
// this table. n > 1 enables parallel scans with at most n workers; n <= 1
// (and the default zero) keeps scans sequential. Every scan kernel is
// byte-identical for all worker counts, so this is purely a performance
// knob. Derived tables (Clone, Project, Select, WithSchema) inherit the
// setting.
func (t *Table) SetScanWorkers(n int) {
	if n < 0 {
		n = 0
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	t.scanWorkers.Store(int32(n))
}

// ScanWorkers reports the scan-kernel worker bound set with SetScanWorkers.
func (t *Table) ScanWorkers() int { return int(t.scanWorkers.Load()) }

// scanParallelism resolves the effective scan worker count: at least 1.
func (t *Table) scanParallelism() int {
	if w := int(t.scanWorkers.Load()); w > 1 {
		return w
	}
	return 1
}

// inheritScanWorkers copies the scan-worker bound from src onto t; used by
// every derived-table constructor so the knob follows the data.
func (t *Table) inheritScanWorkers(src *Table) *Table {
	t.scanWorkers.Store(src.scanWorkers.Load())
	return t
}

// data returns the table's row storage, materializing it on first access for
// snapshot-backed tables. Every reader of t.rows outside this method must go
// through it.
func (t *Table) data() []Row {
	if t.src != nil {
		t.rowsOnce.Do(func() { t.rows = t.src.materialize() })
	}
	return t.rows
}

// promote detaches a snapshot-backed table from its column source before a
// mutation: rows are materialized (copy-on-write — written cells become heap
// strings, untouched cells keep aliasing the mapped dictionary) and the
// source is dropped so the mutated rows are the single source of truth.
func (t *Table) promote() {
	if t.src == nil {
		return
	}
	t.data()
	t.src = nil
}

// NewTable returns an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{schema: schema, cache: newColCache()}
}

// FromRows builds a table from the given rows, validating arity. Rows are
// copied into one shared backing arena (a single allocation instead of one
// per row, as in Clone).
func FromRows(schema *Schema, rows []Row) (*Table, error) {
	t := NewTable(schema)
	k := schema.Len()
	t.rows = make([]Row, len(rows))
	arena := make([]string, len(rows)*k)
	for i, r := range rows {
		if len(r) != k {
			return nil, fmt.Errorf("row %d: %w: got %d values, want %d", i, ErrRowArity, len(r), k)
		}
		nr := arena[i*k : (i+1)*k : (i+1)*k]
		copy(nr, r)
		t.rows[i] = nr
	}
	return t, nil
}

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows. Snapshot-backed tables answer from the
// column source without materializing row storage.
func (t *Table) Len() int {
	if s := t.src; s != nil {
		return s.n
	}
	return len(t.rows)
}

// Append adds a row to the table. The row is copied.
func (t *Table) Append(r Row) error {
	if len(r) != t.schema.Len() {
		return fmt.Errorf("%w: got %d values, want %d", ErrRowArity, len(r), t.schema.Len())
	}
	t.promote()
	t.rows = append(t.rows, r.Clone())
	t.cache.invalidateAll()
	return nil
}

// Row returns the i-th row. The returned slice is the table's backing storage
// and must not be modified by callers; use SetValue to mutate.
func (t *Table) Row(i int) (Row, error) {
	rows := t.data()
	if i < 0 || i >= len(rows) {
		return nil, fmt.Errorf("%w: %d (table has %d rows)", ErrRowIndex, i, len(rows))
	}
	return rows[i], nil
}

// Value returns the value of column col in row i.
func (t *Table) Value(i, col int) (string, error) {
	r, err := t.Row(i)
	if err != nil {
		return "", err
	}
	if col < 0 || col >= len(r) {
		return "", fmt.Errorf("dataset: column index %d out of range", col)
	}
	return r[col], nil
}

// SetValue overwrites the value of column col in row i.
func (t *Table) SetValue(i, col int, v string) error {
	t.promote()
	r, err := t.Row(i)
	if err != nil {
		return err
	}
	if col < 0 || col >= len(r) {
		return fmt.Errorf("dataset: column index %d out of range", col)
	}
	r[col] = v
	t.cache.invalidateCol(col)
	return nil
}

// Float returns the value of column col in row i parsed as a float64.
func (t *Table) Float(i, col int) (float64, error) {
	v, err := t.Value(i, col)
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrNotNumeric, v)
	}
	return f, nil
}

// Clone returns a deep copy of the table (same schema pointer, copied rows).
// All cloned rows share one backing arena, which makes cloning a single
// allocation per table instead of one per row; rows remain independent
// fixed-capacity subslices.
func (t *Table) Clone() *Table {
	rows := t.data()
	out := &Table{schema: t.schema, rows: make([]Row, len(rows)), cache: newColCache()}
	k := t.schema.Len()
	arena := make([]string, len(rows)*k)
	for i, r := range rows {
		nr := arena[i*k : (i+1)*k : (i+1)*k]
		copy(nr, r)
		out.rows[i] = nr
	}
	return out.inheritScanWorkers(t)
}

// Column returns a copy of all values of the named column.
func (t *Table) Column(name string) ([]string, error) {
	col, err := t.schema.Index(name)
	if err != nil {
		return nil, err
	}
	rows := t.data()
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[col]
	}
	return out, nil
}

// Domain returns the distinct values of the named column in sorted order.
func (t *Table) Domain(name string) ([]string, error) {
	vals, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	set := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, nil
}

// Frequencies returns the absolute value counts of the named column.
func (t *Table) Frequencies(name string) (map[string]int, error) {
	vals, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for _, v := range vals {
		out[v]++
	}
	return out, nil
}

// NumericRange returns the minimum and maximum of a numeric column. Values
// that do not parse as numbers (for example suppressed cells) are skipped; if
// no value parses, ErrNotNumeric is returned. The scan is served from the
// parse-once FloatColumn cache.
func (t *Table) NumericRange(name string) (min, max float64, err error) {
	fc, err := t.FloatColumnByName(name)
	if err != nil {
		return 0, 0, err
	}
	if fc.ValidCount == 0 {
		return 0, 0, fmt.Errorf("%w: column %q has no numeric values", ErrNotNumeric, name)
	}
	return fc.Min, fc.Max, nil
}

// Project returns a new table containing only the named columns, in order.
func (t *Table) Project(names ...string) (*Table, error) {
	schema, err := t.schema.Project(names...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = t.schema.MustIndex(n)
	}
	rows := t.data()
	out := NewTable(schema)
	out.rows = make([]Row, len(rows))
	for i, r := range rows {
		nr := make(Row, len(idx))
		for j, c := range idx {
			nr[j] = r[c]
		}
		out.rows[i] = nr
	}
	return out.inheritScanWorkers(t), nil
}

// DropIdentifiers returns a copy of the table with all direct-identifier
// columns removed. This is always the first step of a release pipeline.
func (t *Table) DropIdentifiers() (*Table, error) {
	var keep []string
	for _, a := range t.schema.Attributes() {
		if a.Kind != Identifier {
			keep = append(keep, a.Name)
		}
	}
	if len(keep) == 0 {
		return nil, ErrEmptySchema
	}
	return t.Project(keep...)
}

// Select returns a new table containing the rows at the given indices (in the
// given order). Indices may repeat.
func (t *Table) Select(indices []int) (*Table, error) {
	out := NewTable(t.schema)
	out.rows = make([]Row, 0, len(indices))
	for _, i := range indices {
		r, err := t.Row(i)
		if err != nil {
			return nil, err
		}
		out.rows = append(out.rows, r.Clone())
	}
	return out.inheritScanWorkers(t), nil
}

// Filter returns the indices of all rows for which keep returns true.
func (t *Table) Filter(keep func(Row) bool) []int {
	var out []int
	for i, r := range t.data() {
		if keep(r) {
			out = append(out, i)
		}
	}
	return out
}

// Sample returns a new table with n rows drawn without replacement using rng.
// If n >= Len() a clone of the whole table is returned.
func (t *Table) Sample(n int, rng *rand.Rand) *Table {
	if n >= t.Len() {
		return t.Clone()
	}
	perm := rng.Perm(t.Len())[:n]
	sort.Ints(perm)
	out, _ := t.Select(perm)
	return out
}

// Split partitions the table's rows into two tables: the first containing a
// fraction frac of rows (rounded down), the second the remainder. The split
// is randomized with rng; it is used for train/test evaluation of
// classification utility.
func (t *Table) Split(frac float64, rng *rand.Rand) (*Table, *Table) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(float64(t.Len()) * frac)
	perm := rng.Perm(t.Len())
	first, _ := t.Select(perm[:n])
	second, _ := t.Select(perm[n:])
	return first, second
}

// WithSchema returns a shallow re-typed view of the table under a different
// schema with the same arity. It is used when attribute kinds are
// reconfigured (for example changing which columns are quasi-identifiers).
func (t *Table) WithSchema(s *Schema) (*Table, error) {
	if s.Len() != t.schema.Len() {
		return nil, fmt.Errorf("dataset: schema arity %d does not match table arity %d", s.Len(), t.schema.Len())
	}
	// The view shares row storage, so it also shares the columnar cache:
	// a mutation through either table invalidates both. Snapshot-backed
	// tables materialize first so both views mutate the same rows.
	out := &Table{schema: s, rows: t.data(), cache: t.colcache()}
	return out.inheritScanWorkers(t), nil
}

// AppendTable appends all rows of other to the table. The schemas must be
// fully equal — same attribute names, kinds and types in the same order — not
// merely the same arity; appending rows under a re-typed or renamed schema
// would silently change their meaning. Callers that intend such a re-typing
// must make it explicit with WithSchema first.
func (t *Table) AppendTable(other *Table) error {
	if !t.schema.Equal(other.schema) {
		return fmt.Errorf("%w: cannot append table with schema %v to table with schema %v",
			ErrSchemaMismatch, other.schema.Names(), t.schema.Names())
	}
	t.promote()
	for _, r := range other.data() {
		t.rows = append(t.rows, r.Clone())
	}
	t.cache.invalidateAll()
	return nil
}

// Rows returns a copy of all rows. It is intended for tests and small tables;
// algorithm code should iterate with Row to avoid the copy.
func (t *Table) Rows() []Row {
	rows := t.data()
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	return out
}

// String renders a compact, human-readable preview of the table (header plus
// up to 10 rows). It is meant for debugging and example output, not for
// serialization; use WriteCSV for that.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.schema.Names(), " | "))
	b.WriteString("\n")
	rows := t.data()
	limit := len(rows)
	if limit > 10 {
		limit = 10
	}
	for i := 0; i < limit; i++ {
		b.WriteString(strings.Join(rows[i], " | "))
		b.WriteString("\n")
	}
	if len(rows) > limit {
		fmt.Fprintf(&b, "... (%d more rows)\n", len(rows)-limit)
	}
	return b.String()
}
