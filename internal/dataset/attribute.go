package dataset

import (
	"fmt"
	"strings"
)

// Kind describes the disclosure role an attribute plays during publishing.
type Kind int

const (
	// Insensitive attributes carry no re-identification or disclosure risk
	// and are released unchanged.
	Insensitive Kind = iota
	// Identifier attributes (name, SSN, phone) uniquely identify a person
	// and must be removed before release.
	Identifier
	// QuasiIdentifier attributes (age, zip, sex, ...) do not identify a
	// person on their own but can be linked with external data.
	QuasiIdentifier
	// Sensitive attributes (diagnosis, salary, ...) are the values an
	// adversary must not be able to associate with an individual.
	Sensitive
)

// String returns the conventional lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Insensitive:
		return "insensitive"
	case Identifier:
		return "identifier"
	case QuasiIdentifier:
		return "quasi-identifier"
	case Sensitive:
		return "sensitive"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a textual kind (as used in CLI flags and config files)
// into a Kind. Recognized spellings are case-insensitive and include the
// common abbreviations "id", "qi" and "sa".
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "insensitive", "none", "":
		return Insensitive, nil
	case "identifier", "id":
		return Identifier, nil
	case "quasi-identifier", "quasi", "qi":
		return QuasiIdentifier, nil
	case "sensitive", "sa":
		return Sensitive, nil
	default:
		return Insensitive, fmt.Errorf("dataset: unknown attribute kind %q", s)
	}
}

// Type describes how attribute values are interpreted.
type Type int

const (
	// Categorical values are opaque labels compared for equality and
	// generalized through a value generalization hierarchy.
	Categorical Type = iota
	// Numeric values parse as floating point numbers and may additionally
	// be generalized into intervals.
	Numeric
)

// String returns the conventional lowercase name of the type.
func (t Type) String() string {
	switch t {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType converts a textual type into a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "categorical", "cat", "string", "":
		return Categorical, nil
	case "numeric", "num", "number", "continuous":
		return Numeric, nil
	default:
		return Categorical, fmt.Errorf("dataset: unknown attribute type %q", s)
	}
}

// Attribute describes a single column of a table.
type Attribute struct {
	// Name is the column name; it must be unique within a schema.
	Name string
	// Kind is the disclosure role of the column.
	Kind Kind
	// Type is the value interpretation of the column.
	Type Type
}

// IsQuasiIdentifier reports whether the attribute is part of the
// quasi-identifier.
func (a Attribute) IsQuasiIdentifier() bool { return a.Kind == QuasiIdentifier }

// IsSensitive reports whether the attribute is a sensitive attribute.
func (a Attribute) IsSensitive() bool { return a.Kind == Sensitive }

// String implements fmt.Stringer.
func (a Attribute) String() string {
	return fmt.Sprintf("%s(%s,%s)", a.Name, a.Type, a.Kind)
}
