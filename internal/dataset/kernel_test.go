package dataset

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// This file locks down the chunked scan kernels (see internal/parallel):
// parallel GroupBy, Fingerprint and snapshot encode/decode must be
// byte-identical to their sequential paths for every worker count. The
// fixtures are generated with a private LCG so the tests need no imports
// from packages that depend on dataset.

// kernelRows generates n deterministic pseudo-random rows over small value
// alphabets, so groups recur across chunk boundaries and the parallel merge
// path is genuinely exercised.
func kernelRows(n int, seed uint64) []Row {
	state := seed*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			fmt.Sprintf("%d", 18+next(60)),
			fmt.Sprintf("1%02d", next(8)),
			[]string{"flu", "cancer", "asthma", "diabetes"}[next(4)],
		}
	}
	return rows
}

func kernelTable(t *testing.T, n int, seed uint64) *Table {
	t.Helper()
	tbl, err := FromRows(fpSchema(), kernelRows(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// forceSmallChunks shrinks the kernel chunking thresholds so multi-chunk
// parallel paths run on test-sized fixtures, restoring them on cleanup.
func forceSmallChunks(t *testing.T) {
	t.Helper()
	savedGB, savedWin, savedHash := groupByMinChunk, fpWindowRows, fpHashMinRows
	groupByMinChunk, fpWindowRows, fpHashMinRows = 16, 64, 16
	t.Cleanup(func() { groupByMinChunk, fpWindowRows, fpHashMinRows = savedGB, savedWin, savedHash })
}

// TestGroupByWorkersEquivalence: the chunked grouping pass must reproduce
// the sequential output exactly — class order, signatures, values and member
// row order — for every worker count, and both must agree with the
// string-join reference implementation.
func TestGroupByWorkersEquivalence(t *testing.T) {
	forceSmallChunks(t)
	for _, n := range []int{1, 15, 16, 100, 1000} {
		tbl := kernelTable(t, n, uint64(n))
		want, err := tbl.GroupBy("age", "zip")
		if err != nil {
			t.Fatal(err)
		}
		ref, err := tbl.groupBySignature([]int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, ref) {
			t.Fatalf("n=%d: sequential coded grouping disagrees with signature reference", n)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			par := kernelTable(t, n, uint64(n))
			par.SetScanWorkers(workers)
			got, err := par.GroupBy("age", "zip")
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("n=%d workers=%d: parallel GroupBy differs from sequential", n, workers)
			}
		}
	}
}

// TestGroupByWorkersOnSameTable re-runs grouping on one shared handle across
// worker counts (the server pattern: one stored table, many requests) and
// checks the classes stay identical call over call.
func TestGroupByWorkersOnSameTable(t *testing.T) {
	forceSmallChunks(t)
	tbl := kernelTable(t, 800, 7)
	want, err := tbl.GroupByQuasiIdentifier()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{8, 2, 4, 1} {
		tbl.SetScanWorkers(workers)
		got, err := tbl.GroupByQuasiIdentifier()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: grouping changed under worker count", workers)
		}
	}
}

// TestFingerprintGolden pins the committed fingerprint values. These
// constants are load-bearing: they key the cross-request result cache and
// name content-addressed store files (tables/<fp>.tbl), so any change to the
// hash — including a parallel restructure — is a breaking format change and
// must fail here.
func TestFingerprintGolden(t *testing.T) {
	const (
		fixtureFP = "545356f800130287b4fb89ed8b2eb980"
		emptyFP   = "df2bcf43b1a7ef7b645b67027bdd0638"
	)
	tbl, err := FromRows(fpSchema(), fpRows())
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Fingerprint(); got != fixtureFP {
		t.Errorf("fixture fingerprint = %s, want %s (committed cache keys and store filenames depend on it)", got, fixtureFP)
	}
	if got := NewTable(fpSchema()).Fingerprint(); got != emptyFP {
		t.Errorf("empty-table fingerprint = %s, want %s", got, emptyFP)
	}
	// The parallel rebuild must reproduce the same committed value.
	forceSmallChunks(t)
	par, err := FromRows(fpSchema(), fpRows())
	if err != nil {
		t.Fatal(err)
	}
	par.SetScanWorkers(8)
	if got := par.Fingerprint(); got != fixtureFP {
		t.Errorf("parallel fixture fingerprint = %s, want %s", got, fixtureFP)
	}
}

// TestFingerprintWorkersEquivalence: the windowed parallel rebuild must be
// bit-identical to the sequential fold for every worker count and table
// size, including sizes that straddle window and chunk boundaries.
func TestFingerprintWorkersEquivalence(t *testing.T) {
	forceSmallChunks(t)
	for _, n := range []int{1, 31, 32, 63, 64, 65, 200, 1000} {
		want := rowsFingerprint(kernelRows(n, uint64(n)))
		for _, workers := range []int{1, 2, 4, 8} {
			if got := rowsFingerprintParallel(kernelRows(n, uint64(n)), workers); got != want {
				t.Errorf("n=%d workers=%d: parallel fingerprint %s != sequential %s", n, workers, got, want)
			}
			tbl := kernelTable(t, n, uint64(n))
			tbl.SetScanWorkers(workers)
			ref := kernelTable(t, n, uint64(n))
			if got, wantFP := tbl.Fingerprint(), ref.Fingerprint(); got != wantFP {
				t.Errorf("n=%d workers=%d: table fingerprint %s != sequential %s", n, workers, got, wantFP)
			}
		}
	}
}

// TestSnapshotWorkersByteIdentical: WriteSnapshot must emit the same bytes
// whatever the scan-worker bound (the parallel pass only computes segment
// CRCs concurrently), and a parallel decode must reconstruct the same table.
func TestSnapshotWorkersByteIdentical(t *testing.T) {
	tbl := kernelTable(t, 500, 11)
	var seq bytes.Buffer
	if err := tbl.WriteSnapshot(&seq); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par := kernelTable(t, 500, 11)
		par.SetScanWorkers(workers)
		var buf bytes.Buffer
		if err := par.WriteSnapshot(&buf); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(seq.Bytes(), buf.Bytes()) {
			t.Errorf("workers=%d: snapshot bytes differ from sequential encode", workers)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		mt, err := snapshotFromMapping("kernel_test", seq.Bytes(), workers)
		if err != nil {
			t.Fatalf("decode workers=%d: %v", workers, err)
		}
		if err := mt.VerifyContent(); err != nil {
			t.Errorf("decode workers=%d: %v", workers, err)
		}
		if got, want := mt.Table().Fingerprint(), tbl.Fingerprint(); got != want {
			t.Errorf("decode workers=%d: fingerprint %s != %s", workers, got, want)
		}
	}
}

// TestScanWorkersInheritance: derived tables carry the scan-worker bound so
// one setting at ingest covers the whole pipeline.
func TestScanWorkersInheritance(t *testing.T) {
	tbl := kernelTable(t, 10, 3)
	tbl.SetScanWorkers(6)
	clone := tbl.Clone()
	if got := clone.ScanWorkers(); got != 6 {
		t.Errorf("Clone scan workers = %d, want 6", got)
	}
	proj, err := tbl.Project("age", "zip")
	if err != nil {
		t.Fatal(err)
	}
	if got := proj.ScanWorkers(); got != 6 {
		t.Errorf("Project scan workers = %d, want 6", got)
	}
	sel, err := tbl.Select([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.ScanWorkers(); got != 6 {
		t.Errorf("Select scan workers = %d, want 6", got)
	}
	view, err := tbl.WithSchema(fpSchema())
	if err != nil {
		t.Fatal(err)
	}
	if got := view.ScanWorkers(); got != 6 {
		t.Errorf("WithSchema scan workers = %d, want 6", got)
	}
	tbl.SetScanWorkers(-5)
	if got := tbl.ScanWorkers(); got != 0 {
		t.Errorf("negative scan workers stored as %d, want 0", got)
	}
}
