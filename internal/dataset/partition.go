package dataset

import (
	"math"
	"slices"
	"sort"
	"strings"

	"github.com/ppdp/ppdp/internal/parallel"
)

// EquivalenceClass is a group of row indices that share identical values on a
// set of grouping columns (normally the quasi-identifier). The Signature is
// the joined grouping-value key that defines the class.
type EquivalenceClass struct {
	// Signature is the unit-separator-joined grouping values of the class.
	Signature string
	// Values are the shared grouping values, in grouping-column order.
	Values []string
	// Rows are the indices (into the grouped table) of the class members.
	Rows []int
}

// Size returns the number of records in the class.
func (ec EquivalenceClass) Size() int { return len(ec.Rows) }

// signatureSep separates values inside an equivalence-class signature. The
// ASCII unit separator cannot appear in realistic attribute values.
const signatureSep = "\x1f"

// Signature joins grouping values into an equivalence-class key.
func Signature(values []string) string { return strings.Join(values, signatureSep) }

// SplitSignature splits an equivalence-class key back into its values.
func SplitSignature(sig string) []string { return strings.Split(sig, signatureSep) }

// GroupBy partitions the table into equivalence classes over the named
// columns. Classes are returned in deterministic order (sorted by signature)
// and each class lists its member row indices in table order.
//
// Grouping runs over the dictionary-encoded columnar view: each row's key is
// the mixed-radix combination of its interned value codes — a single uint64
// that identifies the value tuple exactly — so the hot loop does one integer
// map operation per row and allocates nothing per row. Member-row sets and
// per-class value slices are carved out of shared arenas, and the string
// signature is materialized once per class, byte-identical to the historical
// string-join implementation (which remains as groupBySignature, both as the
// fallback when the cardinality product overflows and as the reference
// implementation for equivalence tests).
func (t *Table) GroupBy(columns ...string) ([]EquivalenceClass, error) {
	cols := make([]int, len(columns))
	for i, c := range columns {
		ci, err := t.schema.Index(c)
		if err != nil {
			return nil, err
		}
		cols[i] = ci
	}
	n := t.Len()
	if n == 0 {
		return []EquivalenceClass{}, nil
	}
	k := len(cols)
	coded := make([]*CodedColumn, k)
	radix := make([]uint64, k)
	prod := uint64(1)
	for i, ci := range cols {
		cc, err := t.CodedColumn(ci)
		if err != nil {
			return nil, err
		}
		if !cc.clean {
			// A value contains a control byte: it could embed the 0x1f
			// signature separator, in which case distinct value tuples can
			// join to one signature and must be merged exactly as the
			// historical implementation merged them (and rank order is no
			// longer signature byte order). Delegate wholesale.
			return t.groupBySignature(cols)
		}
		coded[i] = cc
		card := uint64(cc.Cardinality())
		radix[i] = card
		if prod > math.MaxUint64/card {
			// The exact combined key does not fit 64 bits (astronomically
			// wide groupings only); fall back to string signatures.
			return t.groupBySignature(cols)
		}
		prod *= card
	}

	// Pass 1: assign every row to a group via its exact combined key. With a
	// scan-worker bound set (SetScanWorkers), contiguous row chunks build
	// partial group maps concurrently and merge left to right; the result is
	// byte-identical to the sequential scan for every worker count (see
	// groupAssign).
	groups, rowGroup := groupAssign(coded, radix, n, t.scanParallelism())

	// Order classes before materializing. The dictionaries are free of
	// control bytes (checked above), so the mixed-radix combination of
	// per-value lexicographic ranks orders classes exactly like a byte
	// comparison of their joined signatures would (values cannot contain the
	// 0x1f separator or anything below it): the sort compares integers
	// instead of strings.
	type ranked struct {
		rk uint64
		gi int32
	}
	perm := make([]ranked, len(groups))
	for gi, g := range groups {
		key := g.key
		rk := uint64(0)
		weight := uint64(1)
		for i := k - 1; i >= 0; i-- {
			rk += uint64(coded[i].ranks[key%radix[i]]) * weight
			weight *= radix[i]
			key /= radix[i]
		}
		perm[gi] = ranked{rk: rk, gi: int32(gi)}
	}
	slices.SortFunc(perm, func(a, b ranked) int {
		if a.rk < b.rk {
			return -1
		}
		if a.rk > b.rk {
			return 1
		}
		return 0
	})

	// Pass 2: scatter rows into one shared arena, preserving table order
	// within each class.
	rowsArena := make([]int, n)
	cursor := make([]int32, len(groups))
	off := int32(0)
	for gi := range groups {
		groups[gi].off = off
		cursor[gi] = off
		off += groups[gi].count
	}
	for r := 0; r < n; r++ {
		gi := rowGroup[r]
		rowsArena[cursor[gi]] = r
		cursor[gi]++
	}

	// Materialize classes in output order: decode each group key back into
	// value strings carved from a shared arena.
	out := make([]EquivalenceClass, len(groups))
	valuesArena := make([]string, len(groups)*k)
	for oi, p := range perm {
		g := groups[p.gi]
		values := valuesArena[oi*k : (oi+1)*k : (oi+1)*k]
		key := g.key
		for i := k - 1; i >= 0; i-- {
			values[i] = coded[i].Dict[key%radix[i]]
			key /= radix[i]
		}
		sig := Signature(values)
		if k == 0 {
			// Preserve the historical string-split behavior: grouping by no
			// columns yields Values == [""], not an empty slice.
			values = SplitSignature(sig)
		}
		out[oi] = EquivalenceClass{
			Signature: sig,
			Values:    values,
			Rows:      rowsArena[g.off : g.off+g.count : g.off+g.count],
		}
	}
	return out, nil
}

// grp is pass-1 grouping state: one entry per distinct combined key, indexed
// in first-appearance order over the table's rows.
type grp struct {
	key        uint64
	count, off int32
}

// gbPartial is one row chunk's partial grouping state. Group ids are local
// to the chunk until merge renumbers them through the accumulated
// first-appearance map.
type gbPartial struct {
	lo, hi int
	first  map[uint64]int32
	groups []grp
}

// groupByMinChunk is the smallest chunk the parallel grouping pass will
// split off; a variable so equivalence tests can force multi-chunk runs on
// small fixtures.
var groupByMinChunk = parallel.MinChunk

// groupAssign computes, for every row, the id of its group (rowGroup) and
// the per-group key/count table, with groups numbered in first-appearance
// order. workers > 1 scans contiguous row chunks concurrently into partial
// states and merges them strictly left to right.
//
// Determinism: chunk 0's local first-appearance order is by construction a
// prefix of the global one, and merging chunk i+1 renumbers its local ids
// through the accumulated map — appending genuinely new keys in their local
// (= global remaining) first-appearance order. Inductively the merged group
// numbering, counts, and row assignments equal the sequential scan's exactly
// for every worker count; byte-identity of GroupBy's output follows. Each
// chunk writes only its own rowGroup[lo:hi] segment, so the shared slice
// needs no synchronization beyond the fold's completion barrier.
func groupAssign(coded []*CodedColumn, radix []uint64, n, workers int) ([]grp, []int32) {
	rowGroup := make([]int32, n)
	scan := func(lo, hi int) (*gbPartial, error) {
		p := &gbPartial{
			lo:     lo,
			hi:     hi,
			first:  make(map[uint64]int32, (hi-lo)/4+8),
			groups: make([]grp, 0, 64),
		}
		for r := lo; r < hi; r++ {
			key := uint64(0)
			for i, cc := range coded {
				key = key*radix[i] + uint64(cc.Codes[r])
			}
			gi, ok := p.first[key]
			if !ok {
				gi = int32(len(p.groups))
				p.groups = append(p.groups, grp{key: key})
				p.first[key] = gi
			}
			p.groups[gi].count++
			rowGroup[r] = gi
		}
		return p, nil
	}
	merge := func(acc, next *gbPartial) (*gbPartial, error) {
		remap := make([]int32, len(next.groups))
		for li, g := range next.groups {
			gi, ok := acc.first[g.key]
			if !ok {
				gi = int32(len(acc.groups))
				acc.groups = append(acc.groups, grp{key: g.key})
				acc.first[g.key] = gi
			}
			acc.groups[gi].count += g.count
			remap[li] = gi
		}
		for r := next.lo; r < next.hi; r++ {
			rowGroup[r] = remap[rowGroup[r]]
		}
		acc.hi = next.hi
		return acc, nil
	}
	p, _ := parallel.Fold(n, workers, groupByMinChunk, scan, merge)
	return p.groups, rowGroup
}

// groupBySignature is the historical string-join grouping used when the
// coded-key space overflows uint64, and the reference implementation that
// coded grouping is tested against.
func (t *Table) groupBySignature(cols []int) ([]EquivalenceClass, error) {
	groups := make(map[string][]int)
	for r, row := range t.data() {
		key := make([]string, len(cols))
		for i, c := range cols {
			key[i] = row[c]
		}
		sig := Signature(key)
		groups[sig] = append(groups[sig], r)
	}
	out := make([]EquivalenceClass, 0, len(groups))
	for sig, rows := range groups {
		out = append(out, EquivalenceClass{
			Signature: sig,
			Values:    SplitSignature(sig),
			Rows:      rows,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signature < out[j].Signature })
	return out, nil
}

// GroupByQuasiIdentifier partitions the table into equivalence classes over
// all quasi-identifier columns of its schema.
func (t *Table) GroupByQuasiIdentifier() ([]EquivalenceClass, error) {
	return t.GroupBy(t.schema.QuasiIdentifierNames()...)
}

// ClassSizes returns the multiset of equivalence-class sizes, sorted
// ascending. It is a convenient summary for k-anonymity checks and risk
// metrics.
func ClassSizes(classes []EquivalenceClass) []int {
	out := make([]int, len(classes))
	for i, c := range classes {
		out[i] = c.Size()
	}
	sort.Ints(out)
	return out
}

// MinClassSize returns the smallest equivalence-class size, or 0 if there are
// no classes.
func MinClassSize(classes []EquivalenceClass) int {
	min := 0
	for i, c := range classes {
		if i == 0 || c.Size() < min {
			min = c.Size()
		}
	}
	return min
}

// AverageClassSize returns the mean equivalence-class size, or 0 if there are
// no classes.
func AverageClassSize(classes []EquivalenceClass) float64 {
	if len(classes) == 0 {
		return 0
	}
	total := 0
	for _, c := range classes {
		total += c.Size()
	}
	return float64(total) / float64(len(classes))
}

// SensitiveDistribution returns, for one equivalence class, the absolute
// frequency of each value of the named sensitive column among the class
// members.
func (t *Table) SensitiveDistribution(class EquivalenceClass, sensitive string) (map[string]int, error) {
	col, err := t.schema.Index(sensitive)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for _, r := range class.Rows {
		row, err := t.Row(r)
		if err != nil {
			return nil, err
		}
		out[row[col]]++
	}
	return out, nil
}
