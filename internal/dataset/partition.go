package dataset

import (
	"sort"
	"strings"
)

// EquivalenceClass is a group of row indices that share identical values on a
// set of grouping columns (normally the quasi-identifier). The Signature is
// the joined grouping-value key that defines the class.
type EquivalenceClass struct {
	// Signature is the unit-separator-joined grouping values of the class.
	Signature string
	// Values are the shared grouping values, in grouping-column order.
	Values []string
	// Rows are the indices (into the grouped table) of the class members.
	Rows []int
}

// Size returns the number of records in the class.
func (ec EquivalenceClass) Size() int { return len(ec.Rows) }

// signatureSep separates values inside an equivalence-class signature. The
// ASCII unit separator cannot appear in realistic attribute values.
const signatureSep = "\x1f"

// Signature joins grouping values into an equivalence-class key.
func Signature(values []string) string { return strings.Join(values, signatureSep) }

// SplitSignature splits an equivalence-class key back into its values.
func SplitSignature(sig string) []string { return strings.Split(sig, signatureSep) }

// GroupBy partitions the table into equivalence classes over the named
// columns. Classes are returned in deterministic order (sorted by signature)
// and each class lists its member row indices in table order.
func (t *Table) GroupBy(columns ...string) ([]EquivalenceClass, error) {
	idx := make([]int, len(columns))
	for i, c := range columns {
		ci, err := t.schema.Index(c)
		if err != nil {
			return nil, err
		}
		idx[i] = ci
	}
	groups := make(map[string][]int)
	for r, row := range t.rows {
		key := make([]string, len(idx))
		for i, c := range idx {
			key[i] = row[c]
		}
		sig := Signature(key)
		groups[sig] = append(groups[sig], r)
	}
	out := make([]EquivalenceClass, 0, len(groups))
	for sig, rows := range groups {
		out = append(out, EquivalenceClass{
			Signature: sig,
			Values:    SplitSignature(sig),
			Rows:      rows,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signature < out[j].Signature })
	return out, nil
}

// GroupByQuasiIdentifier partitions the table into equivalence classes over
// all quasi-identifier columns of its schema.
func (t *Table) GroupByQuasiIdentifier() ([]EquivalenceClass, error) {
	return t.GroupBy(t.schema.QuasiIdentifierNames()...)
}

// ClassSizes returns the multiset of equivalence-class sizes, sorted
// ascending. It is a convenient summary for k-anonymity checks and risk
// metrics.
func ClassSizes(classes []EquivalenceClass) []int {
	out := make([]int, len(classes))
	for i, c := range classes {
		out[i] = c.Size()
	}
	sort.Ints(out)
	return out
}

// MinClassSize returns the smallest equivalence-class size, or 0 if there are
// no classes.
func MinClassSize(classes []EquivalenceClass) int {
	min := 0
	for i, c := range classes {
		if i == 0 || c.Size() < min {
			min = c.Size()
		}
	}
	return min
}

// AverageClassSize returns the mean equivalence-class size, or 0 if there are
// no classes.
func AverageClassSize(classes []EquivalenceClass) float64 {
	if len(classes) == 0 {
		return 0
	}
	total := 0
	for _, c := range classes {
		total += c.Size()
	}
	return float64(total) / float64(len(classes))
}

// SensitiveDistribution returns, for one equivalence class, the absolute
// frequency of each value of the named sensitive column among the class
// members.
func (t *Table) SensitiveDistribution(class EquivalenceClass, sensitive string) (map[string]int, error) {
	col, err := t.schema.Index(sensitive)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for _, r := range class.Rows {
		row, err := t.Row(r)
		if err != nil {
			return nil, err
		}
		out[row[col]]++
	}
	return out, nil
}
