package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// WriteCSV writes the table to w as RFC 4180 CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	for i, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the named file, creating or truncating it.
func (t *Table) WriteCSVFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: close %s: %w", path, cerr)
		}
	}()
	return t.WriteCSV(f)
}

// ReadCSV reads a table from r. The first record must be a header naming
// columns in schema order; the header is validated against the schema.
func ReadCSV(schema *Schema, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.Len()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	names := schema.Names()
	for i, h := range header {
		if h != names[i] {
			return nil, fmt.Errorf("dataset: header column %d is %q, want %q", i, h, names[i])
		}
	}
	t := NewTable(schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read row: %w", err)
		}
		if err := t.Append(Row(rec)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadCSVFile reads a table from the named CSV file.
func ReadCSVFile(schema *Schema, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(schema, f)
}

// ReadCSVInferred reads a table from r without a pre-declared schema: the
// header names become categorical, insensitive attributes. Callers normally
// re-type the result with Schema.WithKinds and Table.WithSchema afterwards.
func ReadCSVInferred(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	attrs := make([]Attribute, len(header))
	for i, h := range header {
		attrs[i] = Attribute{Name: h, Kind: Insensitive, Type: Categorical}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	t := NewTable(schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read row: %w", err)
		}
		if err := t.Append(Row(rec)); err != nil {
			return nil, err
		}
	}
	return t, nil
}
