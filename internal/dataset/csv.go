package dataset

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteCSV writes the table to w as RFC 4180 CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	for i, r := range t.data() {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the named file, creating or truncating it.
func (t *Table) WriteCSVFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: close %s: %w", path, cerr)
		}
	}()
	return t.WriteCSV(f)
}

// ReadCSV reads a table from r. The first record must be a header naming
// columns in schema order; the header is validated against the schema.
func ReadCSV(schema *Schema, r io.Reader) (*Table, error) {
	size := sizeHint(r)
	sc := newRecordScanner(r, schema.Len())
	header, err := sc.Read()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	names := schema.Names()
	for i, h := range header {
		if h != names[i] {
			return nil, fmt.Errorf("dataset: header column %d is %q, want %q", i, h, names[i])
		}
	}
	return readRows(sc, schema, size)
}

// sizeHint reports the total bytes r will yield when it exposes them (for
// example bytes.Reader, bytes.Buffer and strings.Reader), or 0 when the size
// is unknown (network bodies). readRows uses it to pre-size the row and code
// storage after sampling the average record length.
func sizeHint(r io.Reader) int64 {
	if l, ok := r.(interface{ Len() int }); ok {
		return int64(l.Len())
	}
	return 0
}

// ReadCSVFile reads a table from the named CSV file.
func ReadCSVFile(schema *Schema, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(schema, f)
}

// ReadCSVInferred reads a table from r without a pre-declared schema: the
// header names become categorical, insensitive attributes. Callers normally
// re-type the result with Schema.WithKinds and Table.WithSchema afterwards.
func ReadCSVInferred(r io.Reader) (*Table, error) {
	size := sizeHint(r)
	sc := newRecordScanner(r, 0)
	header, err := sc.Read()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	attrs := make([]Attribute, len(header))
	for i, h := range header {
		attrs[i] = Attribute{Name: h, Kind: Insensitive, Type: Categorical}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	return readRows(sc, schema, size)
}

// recordScanner splits CSV records with a plain byte scan as long as the
// input stays quote-free — the overwhelmingly common case for machine-written
// data — and hands the remaining stream to encoding/csv the moment a quote
// byte appears, so quoted fields (embedded separators, escaped quotes,
// multi-line cells) keep full RFC 4180 semantics. The fast path allocates one
// backing string per record and reuses the field slice, exactly like
// encoding/csv with ReuseRecord: returned fields are substrings of a fresh
// per-record string and safe to retain.
type recordScanner struct {
	br     *bufio.Reader
	fields []string
	// want is the expected field count; 0 means "set from the first record".
	want int
	// off counts bytes consumed by the fast path; inputOffset adds the
	// fallback reader's own offset once one exists.
	off     int64
	line    int64
	scratch []byte
	// cr is non-nil once a quote forced the switch to encoding/csv; the
	// scanner never switches back.
	cr *csv.Reader
}

func newRecordScanner(r io.Reader, want int) *recordScanner {
	return &recordScanner{br: bufio.NewReaderSize(r, 64<<10), want: want}
}

// inputOffset returns the number of input bytes consumed so far.
func (s *recordScanner) inputOffset() int64 {
	if s.cr != nil {
		return s.off + s.cr.InputOffset()
	}
	return s.off
}

// readLine returns the next raw line including its terminator, accumulating
// through scratch when the line outgrows the buffer. A final unterminated
// line is returned as-is; io.EOF only when no bytes remain.
func (s *recordScanner) readLine() ([]byte, error) {
	raw, err := s.br.ReadSlice('\n')
	if err == nil || (err == io.EOF && len(raw) > 0) {
		return raw, nil
	}
	if err == bufio.ErrBufferFull {
		s.scratch = append(s.scratch[:0], raw...)
		for err == bufio.ErrBufferFull {
			raw, err = s.br.ReadSlice('\n')
			s.scratch = append(s.scratch, raw...)
		}
		if err == nil || (err == io.EOF && len(s.scratch) > 0) {
			return s.scratch, nil
		}
	}
	return nil, err
}

// Read returns the fields of the next record. The returned slice is reused by
// the next call; the field strings are not.
func (s *recordScanner) Read() ([]string, error) {
	if s.cr != nil {
		return s.cr.Read()
	}
	for {
		raw, err := s.readLine()
		if err != nil {
			return nil, err
		}
		s.off += int64(len(raw))
		s.line++
		rec := raw
		if n := len(rec); n > 0 && rec[n-1] == '\n' {
			rec = rec[:n-1]
		}
		if n := len(rec); n > 0 && rec[n-1] == '\r' {
			rec = rec[:n-1]
		}
		if len(rec) == 0 {
			continue // encoding/csv skips blank lines too
		}
		if bytes.IndexByte(rec, '"') >= 0 {
			// Quoted data: replay this line (with its terminator) ahead of
			// the untouched remainder through encoding/csv, permanently.
			s.off -= int64(len(raw))
			replay := append([]byte(nil), raw...)
			s.cr = csv.NewReader(io.MultiReader(bytes.NewReader(replay), s.br))
			s.cr.FieldsPerRecord = s.want
			s.cr.ReuseRecord = true
			return s.cr.Read()
		}
		str := string(rec)
		fields := s.fields[:0]
		for {
			i := strings.IndexByte(str, ',')
			if i < 0 {
				fields = append(fields, str)
				break
			}
			fields = append(fields, str[:i])
			str = str[i+1:]
		}
		s.fields = fields
		if s.want == 0 {
			s.want = len(fields)
		} else if len(fields) != s.want {
			return nil, &csv.ParseError{StartLine: int(s.line), Line: int(s.line), Err: csv.ErrFieldCount}
		}
		return fields, nil
	}
}

// arenaBlockCells bounds the string-header arena blocks rows are packed into:
// blocks grow geometrically from a few rows up to this many row slots, so
// small files stay small and large files amortize to one allocation per
// thousands of rows.
const arenaBlockCells = 64 * 1024

// Adaptive interning bounds: once a column has been sampled for
// internSampleRows rows, interning stops for it if more than half its cells
// were distinct — dictionary-encoding a near-unique column (record ids,
// names, continuous measurements) costs map inserts, clones and a
// rank sort for a view nothing will group by. The rule only looks at the
// column's own prefix, so the decision is deterministic for a given content.
const internSampleRows = 256

// readRows streams every remaining record of sc into a new table over
// schema. It is the single ingest loop behind ReadCSV and ReadCSVInferred
// and replaces the old per-row Append path with a columnar fast path:
//
//   - records are split by the quote-free byte scanner above (encoding/csv
//     takes over on the first quote), rows are packed into shared arena
//     blocks instead of one slice allocation per row, and the record slice
//     is reused;
//   - every cell of a groupable (low-cardinality) column is interned through
//     a per-column dictionary, so repeated values share one string
//     allocation across the whole column, and the dictionaries become the
//     table's CodedColumn caches (numeric attributes later derive their
//     parse-once FloatColumn from the dictionary, each distinct value parsed
//     exactly once); near-unique columns opt out after a sampled prefix and
//     keep the csv reader's per-record field strings as-is;
//   - the content fingerprint is folded in the same pass — each distinct
//     value is byte-hashed once when it enters the dictionary, and every
//     repeat folds the memoized 64-bit word;
//   - when the reader exposes its size (buffers, files read into memory),
//     the row and code storage is pre-sized from the average record length
//     of the first rows, eliminating append-doubling churn —
//
// so the coded views and the result-cache key are ready the moment the
// table exists, with no invalidate/rebuild churn and nothing hashed twice.
func readRows(sc *recordScanner, schema *Schema, size int64) (*Table, error) {
	k := schema.Len()
	sc.want = k

	cols := make([]*CodedColumn, k)
	dictHash := make([][]uint64, k)
	for i := range cols {
		cols[i] = &CodedColumn{index: make(map[string]uint32)}
	}
	hasher := newContentHasher()
	var rows []Row
	var arena []string
	blockCells := 64 * k
	startOff := sc.inputOffset()
	for {
		rec, err := sc.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read row: %w", err)
		}
		if len(arena) < k {
			arena = make([]string, blockCells)
			if blockCells < arenaBlockCells {
				blockCells *= 2
			}
		}
		row := Row(arena[:k:k])
		arena = arena[k:]
		for i, v := range rec {
			cc := cols[i]
			if cc == nil {
				// Interning disabled for this column: both scanner paths
				// allocate a fresh backing string per record (only the field
				// slice is reused), so retaining v is safe.
				row[i] = v
				hasher.fold(hashCell(v))
				continue
			}
			code, ok := cc.index[v]
			if !ok {
				if len(cc.Codes) >= internSampleRows && 2*len(cc.Dict) > len(cc.Codes) {
					cols[i] = nil
					row[i] = v
					hasher.fold(hashCell(v))
					continue
				}
				code = uint32(len(cc.Dict))
				cc.Dict = append(cc.Dict, strings.Clone(v))
				cc.index[cc.Dict[code]] = code
				dictHash[i] = append(dictHash[i], hashCell(cc.Dict[code]))
			}
			row[i] = cc.Dict[code]
			cc.Codes = append(cc.Codes, code)
			hasher.fold(dictHash[i][code])
		}
		hasher.endRow()
		rows = append(rows, row)
		if len(rows) == internSampleRows && size > 0 {
			// Pre-size the remaining storage from the sampled record length.
			consumed := sc.inputOffset() - startOff
			est := len(rows) + int(int64(len(rows))*(size-startOff-consumed)/consumed)
			est += est / 8 // slack for shorter records ahead
			if est > cap(rows) {
				grown := make([]Row, len(rows), est)
				copy(grown, rows)
				rows = grown
				need := (est - len(rows)) * k
				if len(arena) < need {
					arena = make([]string, need)
				}
				for _, cc := range cols {
					if cc == nil || cap(cc.Codes) >= est {
						continue
					}
					codes := make([]uint32, len(cc.Codes), est)
					copy(codes, cc.Codes)
					cc.Codes = codes
				}
			}
		}
	}

	t := NewTable(schema)
	t.rows = rows
	c := t.cache
	c.codes = make(map[int]*CodedColumn, k)
	for i, cc := range cols {
		if cc == nil {
			continue
		}
		cc.buildRanks()
		c.codes[i] = cc
	}
	c.fp = hasher.sum()
	return t, nil
}
