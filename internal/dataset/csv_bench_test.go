// CSV ingest benchmarks live in an external test package so they can reuse
// the synthetic census family (internal/synth imports internal/dataset).
package dataset_test

import (
	"bytes"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/synth"
)

// BenchmarkReadCSV measures schema-directed ingest of the 5k census fixture:
// the streaming columnar path interns cell values, builds the coded and
// float columns and the content fingerprint in the same pass.
func BenchmarkReadCSV(b *testing.B) {
	var buf bytes.Buffer
	if err := synth.Census(5000, 1).WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	schema := synth.CensusSchema()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.ReadCSV(schema, bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadCSVInferred measures the header-inferred variant on the same
// fixture.
func BenchmarkReadCSVInferred(b *testing.B) {
	var buf bytes.Buffer
	if err := synth.Census(5000, 1).WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.ReadCSVInferred(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
