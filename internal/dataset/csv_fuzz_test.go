package dataset

import (
	"bytes"
	"encoding/csv"
	"io"
	"testing"
)

// These fuzz targets pin the dual-path CSV reader (quote-free byte scanner
// with an encoding/csv fallback, csv.go) to pure encoding/csv as the oracle:
// for every input, both sides must agree on error presence, on every cell,
// and — through the from-scratch rowsFingerprint rebuild — on the content
// fingerprint the streaming ingest folds incrementally. Error presence, not
// text: the fallback reader starts mid-stream, so its ParseError line numbers
// legitimately differ from the oracle's.

// oracleRecords reads data with encoding/csv under the reader's contract:
// want pins the field count from the first record on (0 = set by the first
// record), and a header hitting EOF is an error like ReadCSV's
// ErrUnexpectedEOF mapping.
func oracleRecords(data []byte, want int) (header []string, rows [][]string, err error) {
	cr := csv.NewReader(bytes.NewReader(data))
	cr.FieldsPerRecord = want
	header, err = cr.Read()
	if err != nil {
		return nil, nil, err
	}
	header = append([]string(nil), header...)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return header, rows, nil
		}
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, append([]string(nil), rec...))
	}
}

// compareTable checks the parsed table's cells and fingerprint against the
// oracle's rows. The fingerprint is rebuilt from scratch over a second table,
// so the incremental dictionary-memoized fold of readRows is checked against
// rowsFingerprint's plain pass.
func compareTable(t *testing.T, tbl *Table, schema *Schema, rows [][]string) {
	t.Helper()
	if len(tbl.rows) != len(rows) {
		t.Fatalf("rows = %d, oracle has %d", len(tbl.rows), len(rows))
	}
	for i, want := range rows {
		got := tbl.rows[i]
		if len(got) != len(want) {
			t.Fatalf("row %d has %d cells, oracle has %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("cell [%d][%d] = %q, oracle %q", i, j, got[j], want[j])
			}
		}
	}
	oracle := NewTable(schema)
	oracle.rows = make([]Row, len(rows))
	for i, r := range rows {
		oracle.rows[i] = Row(r)
	}
	if got, want := tbl.Fingerprint(), oracle.Fingerprint(); got != want {
		t.Fatalf("fingerprint = %s, from-scratch rebuild = %s", got, want)
	}
}

var fuzzCSVSeeds = [][]byte{
	[]byte("a,b,c\n1,2,3\n4,5,6\n"),
	[]byte("a,b,c\r\n1,2,3\r\n"),
	[]byte("a,b,c\n\"x,y\",2,3\n"),         // quote switch on a data row
	[]byte("\"a\",b,c\n1,2,3\n"),           // quote switch on the header
	[]byte("a,b,c\n1,\"quo\"\"te\",3\r\n"), // escaped quotes
	[]byte("a,b,c\n\"multi\nline\",2,3\n"), // record spanning lines
	[]byte("a,b,c\n\n1,2,3\n"),             // blank line skipped
	[]byte("a,b,c\n1,2\n"),                 // field count error
	[]byte("a,b,c\n1,\"unterminated,3\n"),  // quote error
	[]byte("a,b,c\n1,2,3\r"),               // trailing \r at EOF
	[]byte("x,y\n1,2\n"),                   // header mismatch / two columns
	[]byte(""),                             // empty input
	[]byte("a,b,c\n1,2,3,4\n"),             // too many fields
	[]byte("a,a,a\n1,2,3\n"),               // duplicate header names
	[]byte("a,b,c\n1,2,3\n1,2,3\n1,2,3\n"), // repeats exercise interning
	[]byte("a,b,c\nx\rx,2,3\n"),            // interior \r kept
}

func FuzzReadCSV(f *testing.F) {
	schema, err := NewSchema(
		Attribute{Name: "a", Kind: Insensitive, Type: Categorical},
		Attribute{Name: "b", Kind: Insensitive, Type: Categorical},
		Attribute{Name: "c", Kind: Insensitive, Type: Categorical},
	)
	if err != nil {
		f.Fatal(err)
	}
	names := schema.Names()
	for _, seed := range fuzzCSVSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := ReadCSV(schema, bytes.NewReader(data))
		header, rows, oerr := oracleRecords(data, schema.Len())
		headerOK := oerr == nil
		if headerOK {
			for i, h := range header {
				if h != names[i] {
					headerOK = false
				}
			}
		}
		if wantErr := !headerOK; (err != nil) != wantErr {
			t.Fatalf("ReadCSV error = %v, oracle error = %v (header %v)", err, oerr, header)
		}
		if err != nil {
			return
		}
		compareTable(t, tbl, schema, rows)
	})
}

func FuzzReadCSVInferred(f *testing.F) {
	for _, seed := range fuzzCSVSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := ReadCSVInferred(bytes.NewReader(data))
		header, rows, oerr := oracleRecords(data, 0)
		var schema *Schema
		serr := oerr
		if oerr == nil {
			// Mirror ReadCSVInferred's header-to-schema step; schema
			// validation (duplicate or empty names) fails both sides alike.
			attrs := make([]Attribute, len(header))
			for i, h := range header {
				attrs[i] = Attribute{Name: h, Kind: Insensitive, Type: Categorical}
			}
			schema, serr = NewSchema(attrs...)
		}
		if (err != nil) != (serr != nil) {
			t.Fatalf("ReadCSVInferred error = %v, oracle error = %v", err, serr)
		}
		if err != nil {
			return
		}
		compareTable(t, tbl, schema, rows)
	})
}
