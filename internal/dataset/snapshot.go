package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"

	"github.com/ppdp/ppdp/internal/parallel"
)

// This file implements the on-disk columnar snapshot format: a binary,
// mmap-friendly serialization of the typed column views (CodedColumn /
// FloatColumn) that lets a table be reopened in O(page-fault) instead of
// O(re-parse) and scanned without copying cell bytes onto the heap.
//
// Layout (all integers little-endian):
//
//	magic  [8]byte  "PPDPCOL1"
//	hlen   uint32   length of the JSON header
//	hcrc   uint32   CRC-32 (IEEE) of the JSON header bytes
//	header hlen bytes of JSON (snapHeader): schema, row count, the table
//	       fingerprint, and the offset/length/CRC of every column segment
//	       (segment offsets are relative to the page-aligned data start,
//	       so the header never depends on its own encoded length)
//	...    zero padding to the next page boundary
//	data   one segment per column, each starting page-aligned
//
// A column segment packs, 8-byte aligned back to back:
//
//	dictIdx  (dictLen+1) × uint32   value boundaries into the dict blob
//	ranks    dictLen × uint32       byte-lexicographic rank per code
//	codes    rows × uint32          one dictionary code per row
//	[floats  rows × float64]        parsed values (numeric attributes only)
//	[valid   rows × byte]           0/1 parse-validity (numeric only)
//	dict     blob of concatenated value bytes
//
// Every segment carries a CRC-32 in the header, and the header embeds the
// table's content fingerprint; OpenSnapshot verifies both, so a torn or
// corrupted snapshot is refused instead of served. Loaded columns alias the
// mapping (see cast.go): codes, ranks and float arrays are reinterpreted in
// place, and dictionary strings point into the mapped blob, so a cold table
// shares pages with the OS cache instead of the Go heap until first write
// (see Table.promote).

// snapshotMagic identifies a columnar snapshot file.
var snapshotMagic = [8]byte{'P', 'P', 'D', 'P', 'C', 'O', 'L', '1'}

// snapshotPage is the alignment of the data region and of every column
// segment. It matches the common OS page size; larger pages (e.g. 16K on
// Apple Silicon) keep the mmap base page-aligned anyway, and 8-byte section
// alignment is all the typed views require.
const snapshotPage = 4096

// ErrSnapshotCorrupt is returned by OpenSnapshot when a snapshot fails
// structural validation, a segment CRC, or the content-fingerprint check.
var ErrSnapshotCorrupt = errors.New("dataset: snapshot corrupt")

// snapHeader is the JSON header of a snapshot file.
type snapHeader struct {
	Version     int        `json:"version"`
	Rows        int        `json:"rows"`
	Fingerprint string     `json:"fingerprint"`
	RowsFP      string     `json:"rows_fp"`
	Attrs       []snapAttr `json:"attrs"`
	Cols        []snapCol  `json:"cols"`
}

type snapAttr struct {
	Name string `json:"name"`
	Kind int    `json:"kind"`
	Type int    `json:"type"`
}

// snapCol locates one column segment. Offsets named off* are relative to the
// segment start; SegOff is relative to the page-aligned data start.
type snapCol struct {
	SegOff    int64      `json:"seg_off"`
	SegLen    int64      `json:"seg_len"`
	CRC       uint32     `json:"crc"`
	DictLen   int        `json:"dict_len"`
	DictBytes int64      `json:"dict_bytes"`
	Clean     bool       `json:"clean"`
	OffRanks  int64      `json:"off_ranks"`
	OffCodes  int64      `json:"off_codes"`
	OffDict   int64      `json:"off_dict"`
	Float     *snapFloat `json:"float,omitempty"`
}

type snapFloat struct {
	Off        int64   `json:"off"`
	OffValid   int64   `json:"off_valid"`
	ValidCount int     `json:"valid_count"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

func alignPage(n int64) int64 { return (n + snapshotPage - 1) &^ (snapshotPage - 1) }

// snapColumns builds the typed views the snapshot serializes: the coded view
// of every column, plus the parse-once float view for numeric attributes.
func (t *Table) snapColumns() ([]*CodedColumn, []*FloatColumn, error) {
	k := t.schema.Len()
	codes := make([]*CodedColumn, k)
	floats := make([]*FloatColumn, k)
	for i := 0; i < k; i++ {
		cc, err := t.CodedColumn(i)
		if err != nil {
			return nil, nil, err
		}
		codes[i] = cc
		if t.schema.Attribute(i).Type == Numeric {
			fc, err := t.FloatColumn(i)
			if err != nil {
				return nil, nil, err
			}
			floats[i] = fc
		}
	}
	return codes, floats, nil
}

// layoutCol computes one column's segment layout and returns the segment
// length. Subsections are 8-byte aligned; the variable-length dict blob sits
// last.
func layoutCol(rows int, cc *CodedColumn, fc *FloatColumn, col *snapCol) int64 {
	d := int64(len(cc.Dict))
	var dictBytes int64
	for _, v := range cc.Dict {
		dictBytes += int64(len(v))
	}
	cur := (d + 1) * 4 // dictIdx at offset 0
	cur = align8(cur)
	col.OffRanks = cur
	cur += d * 4
	cur = align8(cur)
	col.OffCodes = cur
	cur += int64(rows) * 4
	if fc != nil {
		cur = align8(cur)
		col.Float = &snapFloat{Off: cur, ValidCount: fc.ValidCount}
		if fc.ValidCount > 0 {
			// The no-valid-cells sentinels are ±Inf, which JSON cannot carry;
			// they are implied by ValidCount == 0 and restored at load.
			col.Float.Min, col.Float.Max = fc.Min, fc.Max
		}
		cur += int64(rows) * 8
		col.Float.OffValid = cur
		cur += int64(rows)
	}
	cur = align8(cur)
	col.OffDict = cur
	cur += dictBytes
	col.DictLen = int(d)
	col.DictBytes = dictBytes
	col.Clean = cc.clean
	return cur
}

// segmentWriter writes one column segment, tracking offset and CRC so the
// encoder can run the same code in the layout/CRC pass (w == io.Discard) and
// the output pass.
type segmentWriter struct {
	w   io.Writer
	off int64
	crc uint32
	err error
}

func (s *segmentWriter) write(b []byte) {
	if s.err != nil {
		return
	}
	s.crc = crc32.Update(s.crc, crc32.IEEETable, b)
	n, err := s.w.Write(b)
	s.off += int64(n)
	s.err = err
}

var zeroPad [snapshotPage]byte

// pad writes zero bytes until off reaches target (target >= off).
func (s *segmentWriter) pad(target int64) {
	for s.err == nil && s.off < target {
		n := target - s.off
		if n > int64(len(zeroPad)) {
			n = int64(len(zeroPad))
		}
		s.write(zeroPad[:n])
	}
}

// writeSegment serializes one column segment per the layout in col.
func writeSegment(w io.Writer, rows int, cc *CodedColumn, fc *FloatColumn, col *snapCol) (uint32, error) {
	s := &segmentWriter{w: w}
	// dictIdx: cumulative value boundaries.
	idx := make([]uint32, len(cc.Dict)+1)
	var cum uint32
	for i, v := range cc.Dict {
		idx[i] = cum
		cum += uint32(len(v))
	}
	idx[len(cc.Dict)] = cum
	s.write(u32Bytes(idx))
	s.pad(col.OffRanks)
	s.write(u32Bytes(cc.ranks))
	s.pad(col.OffCodes)
	s.write(u32Bytes(cc.Codes))
	if fc != nil {
		s.pad(col.Float.Off)
		s.write(f64Bytes(fc.Values))
		s.write(boolBytes(fc.Valid))
	}
	s.pad(col.OffDict)
	for _, v := range cc.Dict {
		s.write([]byte(v))
	}
	return s.crc, s.err
}

// WriteSnapshot serializes the table in the binary columnar snapshot format.
// The stream embeds the table's Fingerprint, so OpenSnapshot (and any caller
// holding an expected fingerprint) can verify the loaded content.
func (t *Table) WriteSnapshot(w io.Writer) error {
	codes, floats, err := t.snapColumns()
	if err != nil {
		return err
	}
	// Fingerprint() caches the row-content hash; snapshots persist both so a
	// load can seed the cache without touching row storage.
	full := t.Fingerprint()
	c := t.colcache()
	c.mu.Lock()
	rowsFP := c.fp
	c.mu.Unlock()

	h := snapHeader{Version: 1, Rows: t.Len(), Fingerprint: full, RowsFP: rowsFP}
	for _, a := range t.schema.Attributes() {
		h.Attrs = append(h.Attrs, snapAttr{Name: a.Name, Kind: int(a.Kind), Type: int(a.Type)})
	}
	h.Cols = make([]snapCol, len(codes))

	// Pass 1: layout + CRC (the header precedes the segments it describes, so
	// segment checksums are computed before anything is written). The layout
	// walk is a cheap cursor pass; the CRC encode — the expensive part — runs
	// one worker per column when the table has a scan-worker bound, which
	// cannot change the bytes: each column's checksum depends only on its own
	// already-fixed layout.
	var cur int64
	for i, cc := range codes {
		cur = alignPage(cur)
		h.Cols[i].SegOff = cur
		h.Cols[i].SegLen = layoutCol(h.Rows, cc, floats[i], &h.Cols[i])
		cur = h.Cols[i].SegOff + h.Cols[i].SegLen
	}
	crcs, err := parallel.Map(len(codes), t.scanParallelism(), func(i int) (uint32, error) {
		return writeSegment(io.Discard, h.Rows, codes[i], floats[i], &h.Cols[i])
	})
	if err != nil {
		return err
	}
	for i, crc := range crcs {
		h.Cols[i].CRC = crc
	}

	hdr, err := json.Marshal(h)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	out := &segmentWriter{w: bw}
	var fixed [16]byte
	copy(fixed[:8], snapshotMagic[:])
	binary.LittleEndian.PutUint32(fixed[8:12], uint32(len(hdr)))
	binary.LittleEndian.PutUint32(fixed[12:16], crc32.ChecksumIEEE(hdr))
	out.write(fixed[:])
	out.write(hdr)
	dataStart := alignPage(out.off)
	out.pad(dataStart)

	// Pass 2: the segments themselves.
	for i, cc := range codes {
		out.pad(dataStart + h.Cols[i].SegOff)
		crc, err := writeSegment(bw, h.Rows, cc, floats[i], &h.Cols[i])
		if err != nil {
			return err
		}
		out.off += h.Cols[i].SegLen
		if crc != h.Cols[i].CRC {
			return fmt.Errorf("dataset: snapshot encode pass mismatch on column %d", i)
		}
	}
	if out.err != nil {
		return out.err
	}
	return bw.Flush()
}

// MappedTable is a table loaded from a columnar snapshot. The table's column
// views and dictionary strings alias the underlying mapping: they stay valid
// until Close, and Close must not be called while the table (or any table
// derived from it without a deep copy) is still in use. Mutating the table
// promotes it to heap row storage first (see Table.promote), but promoted
// cells still share dictionary bytes with the mapping, so the lifetime rule
// stands. Long-running services keep mappings open for the process lifetime;
// the OS reclaims cold pages under memory pressure either way.
type MappedTable struct {
	tbl    *Table
	unmap  func() error
	size   int64
	closed bool
	// path and the header fingerprints are kept for VerifyContent.
	path        string
	rowsFP      string
	fingerprint string
}

// Table returns the loaded table.
func (m *MappedTable) Table() *Table { return m.tbl }

// Size returns the snapshot file size in bytes.
func (m *MappedTable) Size() int64 { return m.size }

// VerifyContent recomputes the row-content fingerprint from the decoded
// columns (hashing each distinct dictionary value once) and the full table
// fingerprint, and compares both against the header. OpenSnapshot already
// proves the bytes on disk are the bytes that were written (header and
// per-segment CRCs); this pass additionally proves the decoder reproduces
// the exact cell values the writer hashed, guarding against codec bugs and
// hand-forged headers. It scans every cell, so it is for integrity audits
// and tests, not the boot path.
func (m *MappedTable) VerifyContent() error {
	cols := make([]*CodedColumn, m.tbl.schema.Len())
	for i := range cols {
		cc, err := m.tbl.CodedColumn(i)
		if err != nil {
			return err
		}
		cols[i] = cc
	}
	if got := codedRowsFingerprint(m.tbl.Len(), cols); got != m.rowsFP {
		return corrupt("%s: row-content fingerprint mismatch (got %s, want %s)", m.path, got, m.rowsFP)
	}
	if got := m.tbl.Fingerprint(); got != m.fingerprint {
		return corrupt("%s: table fingerprint mismatch (got %s, want %s)", m.path, got, m.fingerprint)
	}
	return nil
}

// Close unmaps the snapshot. The loaded table must no longer be used.
func (m *MappedTable) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	return m.unmap()
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
}

// OpenSnapshot maps the snapshot at path and reconstructs its table with
// zero-copy column views. Structural bounds, the header CRC and every
// segment CRC are verified before the table is returned — a snapshot that
// fails any check yields ErrSnapshotCorrupt instead of a table, so corrupted
// data can never be served. The embedded content fingerprint is trusted from
// the CRC-protected header rather than recomputed cell by cell, keeping open
// cost at "hash the file once", which is what makes boot-time recovery of
// many tables instant; VerifyContent runs the full recompute on demand.
func OpenSnapshot(path string) (*MappedTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < 16 {
		return nil, corrupt("%s: file too small (%d bytes)", path, size)
	}
	data, unmap, err := mmapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("dataset: map snapshot %s: %w", path, err)
	}
	mt, err := snapshotFromMapping(path, data, runtime.GOMAXPROCS(0))
	if err != nil {
		_ = unmap()
		return nil, err
	}
	mt.unmap = unmap
	mt.size = size
	return mt, nil
}

// snapshotFromMapping validates and decodes a mapped snapshot. Column
// segments decode (CRC + bounds checks + dictionary views) on up to workers
// goroutines — columns are independent, and parallel.Map reports the
// lowest-indexed failing column, so corrupt snapshots yield the same error
// the sequential walk did.
func snapshotFromMapping(path string, data []byte, workers int) (*MappedTable, error) {
	if string(data[:8]) != string(snapshotMagic[:]) {
		return nil, corrupt("%s: bad magic", path)
	}
	hlen := int64(binary.LittleEndian.Uint32(data[8:12]))
	hcrc := binary.LittleEndian.Uint32(data[12:16])
	if 16+hlen > int64(len(data)) {
		return nil, corrupt("%s: header length %d exceeds file", path, hlen)
	}
	hdr := data[16 : 16+hlen]
	if crc32.ChecksumIEEE(hdr) != hcrc {
		return nil, corrupt("%s: header checksum mismatch", path)
	}
	var h snapHeader
	if err := json.Unmarshal(hdr, &h); err != nil {
		return nil, corrupt("%s: header: %v", path, err)
	}
	if h.Version != 1 {
		return nil, corrupt("%s: unsupported snapshot version %d", path, h.Version)
	}
	if h.Rows < 0 || len(h.Attrs) == 0 || len(h.Cols) != len(h.Attrs) {
		return nil, corrupt("%s: inconsistent header (%d rows, %d attrs, %d cols)",
			path, h.Rows, len(h.Attrs), len(h.Cols))
	}
	attrs := make([]Attribute, len(h.Attrs))
	for i, a := range h.Attrs {
		attrs[i] = Attribute{Name: a.Name, Kind: Kind(a.Kind), Type: Type(a.Type)}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, corrupt("%s: schema: %v", path, err)
	}

	dataStart := alignPage(16 + hlen)
	type seg struct {
		cc *CodedColumn
		fc *FloatColumn
	}
	segs, err := parallel.Map(len(h.Cols), workers, func(i int) (seg, error) {
		cc, fc, err := decodeSegment(path, data, dataStart, h.Rows, &h.Cols[i])
		return seg{cc: cc, fc: fc}, err
	})
	if err != nil {
		return nil, err
	}
	cols := make([]*CodedColumn, len(h.Cols))
	floats := make(map[int]*FloatColumn)
	for i, s := range segs {
		cols[i] = s.cc
		if s.fc != nil {
			floats[i] = s.fc
		}
	}

	t := &Table{schema: schema, cache: newColCache()}
	t.cache.codes = make(map[int]*CodedColumn, len(cols))
	for i, cc := range cols {
		t.cache.codes[i] = cc
	}
	if len(floats) > 0 {
		t.cache.floats = make(map[int]*FloatColumn, len(floats))
		for i, fc := range floats {
			t.cache.floats[i] = fc
		}
	}
	t.cache.fp = h.RowsFP
	t.src = &rowSource{n: h.Rows, cols: cols}
	// Cheap cross-check of the header's two fingerprints (the cached rows
	// hash makes Fingerprint a schema-hash fold, not a row scan). The full
	// cell-by-cell recompute is VerifyContent's job.
	if got := t.Fingerprint(); got != h.Fingerprint {
		return nil, corrupt("%s: table fingerprint mismatch (got %s, want %s)", path, got, h.Fingerprint)
	}
	return &MappedTable{tbl: t, path: path, rowsFP: h.RowsFP, fingerprint: h.Fingerprint}, nil
}

// slice bounds-checks one subsection of a segment and returns it.
func slice(path string, data []byte, start, length int64, what string) ([]byte, error) {
	if start < 0 || length < 0 || start+length > int64(len(data)) {
		return nil, corrupt("%s: %s [%d,+%d) out of bounds (file %d bytes)",
			path, what, start, length, len(data))
	}
	return data[start : start+length], nil
}

// decodeSegment verifies one column segment's CRC and builds its zero-copy
// views.
func decodeSegment(path string, data []byte, dataStart int64, rows int, col *snapCol) (*CodedColumn, *FloatColumn, error) {
	segStart := dataStart + col.SegOff
	seg, err := slice(path, data, segStart, col.SegLen, "column segment")
	if err != nil {
		return nil, nil, err
	}
	if crc32.ChecksumIEEE(seg) != col.CRC {
		return nil, nil, corrupt("%s: column segment at %d: checksum mismatch", path, segStart)
	}
	d := int64(col.DictLen)
	idxB, err := slice(path, seg, 0, (d+1)*4, "dict index")
	if err != nil {
		return nil, nil, err
	}
	ranksB, err := slice(path, seg, col.OffRanks, d*4, "ranks")
	if err != nil {
		return nil, nil, err
	}
	codesB, err := slice(path, seg, col.OffCodes, int64(rows)*4, "codes")
	if err != nil {
		return nil, nil, err
	}
	dictB, err := slice(path, seg, col.OffDict, col.DictBytes, "dict blob")
	if err != nil {
		return nil, nil, err
	}
	idx := u32View(idxB)
	dict := make([]string, col.DictLen)
	for i := range dict {
		lo, hi := int64(idx[i]), int64(idx[i+1])
		if lo > hi || hi > col.DictBytes {
			return nil, nil, corrupt("%s: dict entry %d bounds [%d,%d) invalid", path, i, lo, hi)
		}
		dict[i] = viewString(dictB[lo:hi])
	}
	cc := &CodedColumn{
		Codes: u32View(codesB),
		Dict:  dict,
		ranks: u32View(ranksB),
		clean: col.Clean,
		// index stays nil: Code() builds it lazily on first use, so opening a
		// snapshot never pays O(dict) map construction per column.
	}
	for _, code := range cc.Codes {
		if int(code) >= col.DictLen {
			return nil, nil, corrupt("%s: code %d exceeds dictionary size %d", path, code, col.DictLen)
		}
	}
	var fc *FloatColumn
	if col.Float != nil {
		valB, err := slice(path, seg, col.Float.Off, int64(rows)*8, "float values")
		if err != nil {
			return nil, nil, err
		}
		validB, err := slice(path, seg, col.Float.OffValid, int64(rows), "float validity")
		if err != nil {
			return nil, nil, err
		}
		fc = &FloatColumn{
			Values:     f64View(valB),
			Valid:      boolView(validB),
			ValidCount: col.Float.ValidCount,
			Min:        col.Float.Min,
			Max:        col.Float.Max,
		}
		if fc.ValidCount == 0 {
			fc.Min, fc.Max = math.Inf(1), math.Inf(-1)
		}
	}
	return cc, fc, nil
}

// codedRowsFingerprint recomputes the row-content fingerprint from coded
// columns, hashing each distinct dictionary value once and folding the
// per-cell words in row order — the exact stream rowsFingerprint produces
// from row storage.
func codedRowsFingerprint(rows int, cols []*CodedColumn) string {
	memo := make([][]uint64, len(cols))
	for j, cc := range cols {
		m := make([]uint64, len(cc.Dict))
		for code, v := range cc.Dict {
			m[code] = hashCell(v)
		}
		memo[j] = m
	}
	ch := newContentHasher()
	for i := 0; i < rows; i++ {
		for j, cc := range cols {
			ch.fold(memo[j][cc.Codes[i]])
		}
		ch.endRow()
	}
	return ch.sum()
}

// rowSource materializes row storage on demand for snapshot-backed tables:
// cells are reconstructed as dictionary strings (aliasing the mapped blob),
// packed into one arena of row blocks, so materialization allocates string
// headers but never copies cell bytes.
type rowSource struct {
	n    int
	cols []*CodedColumn
}

func (s *rowSource) materialize() []Row {
	k := len(s.cols)
	rows := make([]Row, s.n)
	arena := make([]string, s.n*k)
	for j, cc := range s.cols {
		dict, codes := cc.Dict, cc.Codes
		for i, code := range codes {
			arena[i*k+j] = dict[code]
		}
	}
	for i := range rows {
		rows[i] = arena[i*k : (i+1)*k : (i+1)*k]
	}
	return rows
}
