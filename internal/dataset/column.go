package dataset

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file implements the lazily-built columnar view of a Table. Tables stay
// row-oriented strings at the storage layer (so generalized values like
// "[20-30)" remain first-class), but hot paths — equivalence-class grouping,
// Mondrian partitioning, query evaluation, information-loss metrics — operate
// on cached typed columns:
//
//   - FloatColumn parses every cell of a column exactly once and records which
//     cells are numeric, so algorithms never re-run strconv.ParseFloat on the
//     same cell at every recursion level.
//   - CodedColumn interns every distinct value of a column as a dense uint32
//     code, so grouping and equality predicates compare integers instead of
//     building per-row strings.
//
// Caches are invalidated on mutation (SetValue invalidates only the touched
// column; Append and AppendTable invalidate everything) and rebuilt on the
// next access. Returned columns are immutable snapshots: a mutation never
// changes a column a caller already holds, it only causes the next accessor
// call to rebuild. Tables sharing row storage through WithSchema also share
// the cache, so mutations through one view invalidate the other.

// FloatColumn is a parse-once numeric view of one column. Values[i] holds the
// parsed number of row i and is meaningful only where Valid[i] is true (cells
// that are suppressed or generalized to intervals do not parse).
type FloatColumn struct {
	// Values holds one parsed value per row; entries where Valid is false
	// are zero and must be ignored.
	Values []float64
	// Valid reports, per row, whether the cell parsed as a number.
	Valid []bool
	// ValidCount is the number of rows whose cell parsed.
	ValidCount int
	// Min and Max are the extrema over valid cells; when ValidCount is zero
	// Min is +Inf and Max is -Inf.
	Min, Max float64
}

// Len returns the number of rows in the column.
func (c *FloatColumn) Len() int { return len(c.Values) }

// CodedColumn is a dictionary-encoded view of one column: every distinct
// string value is interned as a dense uint32 code in first-appearance (row)
// order, which makes the encoding deterministic for a given table content.
type CodedColumn struct {
	// Codes holds one dictionary code per row.
	Codes []uint32
	// Dict maps codes back to values; Dict[Codes[i]] is the cell of row i.
	Dict []string
	// index maps values back to codes. Row-scanning builders fill it as a
	// side effect of interning; snapshot-loaded columns leave it nil and
	// Code() builds it on first use (indexOnce), so opening a snapshot never
	// pays O(dict) map construction for columns nobody reverse-looks-up.
	index     map[string]uint32
	indexOnce sync.Once
	// ranks[code] is the position of Dict[code] in byte-lexicographic order
	// of the dictionary; grouping uses it to order classes without comparing
	// strings.
	ranks []uint32
	// clean reports that no dictionary value contains a byte below 0x20.
	// Only then is per-value rank order guaranteed to match the byte order
	// of joined signatures (the separator is 0x1f).
	clean bool
}

// Len returns the number of rows in the column.
func (c *CodedColumn) Len() int { return len(c.Codes) }

// Cardinality returns the number of distinct values in the column.
func (c *CodedColumn) Cardinality() int { return len(c.Dict) }

// Value returns the string value for a code.
func (c *CodedColumn) Value(code uint32) string { return c.Dict[code] }

// Code returns the dictionary code of a value and whether the value occurs in
// the column.
func (c *CodedColumn) Code(value string) (uint32, bool) {
	c.indexOnce.Do(c.ensureIndex)
	code, ok := c.index[value]
	return code, ok
}

// ensureIndex builds the value→code map for columns loaded without one.
func (c *CodedColumn) ensureIndex() {
	if c.index != nil {
		return
	}
	idx := make(map[string]uint32, len(c.Dict))
	for code, v := range c.Dict {
		idx[v] = uint32(code)
	}
	c.index = idx
}

// colCache holds the per-table columnar caches. It is shared between tables
// that share row storage (WithSchema views) and guarded by a mutex so that
// concurrent readers — for example parallel Mondrian workers — can build and
// reuse columns safely.
type colCache struct {
	mu     sync.Mutex
	floats map[int]*FloatColumn
	codes  map[int]*CodedColumn
	// fp is the cached row-content fingerprint (see fingerprint.go); empty
	// means "not computed". It shares the columnar caches' invalidation: any
	// mutation that could change cell bytes clears it.
	fp string
}

func newColCache() *colCache { return &colCache{} }

// invalidateAll drops every cached column (row set changed).
func (c *colCache) invalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.floats = nil
	c.codes = nil
	c.fp = ""
	c.mu.Unlock()
}

// invalidateCol drops the cached views of a single column (cell mutated).
func (c *colCache) invalidateCol(col int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	delete(c.floats, col)
	delete(c.codes, col)
	c.fp = ""
	c.mu.Unlock()
}

// colcache returns the table's cache, allocating it race-free for tables
// constructed without a constructor (for example by struct literals inside
// the package).
func (t *Table) colcache() *colCache {
	t.cacheOnce.Do(func() {
		if t.cache == nil {
			t.cache = newColCache()
		}
	})
	return t.cache
}

// FloatColumn returns the parse-once numeric view of column col, building and
// caching it on first access. The returned column is a read-only snapshot;
// callers must not modify it.
func (t *Table) FloatColumn(col int) (*FloatColumn, error) {
	if col < 0 || col >= t.schema.Len() {
		return nil, fmt.Errorf("dataset: column index %d out of range", col)
	}
	c := t.colcache()
	c.mu.Lock()
	defer c.mu.Unlock()
	if fc, ok := c.floats[col]; ok {
		return fc, nil
	}
	var fc *FloatColumn
	if cc, ok := c.codes[col]; ok {
		// A coded view already exists (for example built during CSV ingest):
		// parse each distinct dictionary value once and fan the results out
		// over the code sequence instead of re-parsing every cell.
		fc = floatColumnFromCodes(cc)
	} else {
		rows := t.data()
		fc = &FloatColumn{
			Values: make([]float64, len(rows)),
			Valid:  make([]bool, len(rows)),
			Min:    math.Inf(1),
			Max:    math.Inf(-1),
		}
		for i, r := range rows {
			f, err := strconv.ParseFloat(strings.TrimSpace(r[col]), 64)
			if err != nil {
				continue
			}
			fc.Values[i] = f
			fc.Valid[i] = true
			fc.ValidCount++
			if f < fc.Min {
				fc.Min = f
			}
			if f > fc.Max {
				fc.Max = f
			}
		}
	}
	if c.floats == nil {
		c.floats = make(map[int]*FloatColumn)
	}
	c.floats[col] = fc
	return fc, nil
}

// FloatColumnByName is FloatColumn keyed by attribute name.
func (t *Table) FloatColumnByName(name string) (*FloatColumn, error) {
	col, err := t.schema.Index(name)
	if err != nil {
		return nil, err
	}
	return t.FloatColumn(col)
}

// CodedColumn returns the dictionary-encoded view of column col, building and
// caching it on first access. Codes are assigned in first-appearance order,
// so the encoding is deterministic for a given table content. The returned
// column is a read-only snapshot; callers must not modify it.
func (t *Table) CodedColumn(col int) (*CodedColumn, error) {
	if col < 0 || col >= t.schema.Len() {
		return nil, fmt.Errorf("dataset: column index %d out of range", col)
	}
	c := t.colcache()
	c.mu.Lock()
	defer c.mu.Unlock()
	if cc, ok := c.codes[col]; ok {
		return cc, nil
	}
	rows := t.data()
	cc := &CodedColumn{
		Codes: make([]uint32, len(rows)),
		index: make(map[string]uint32),
	}
	for i, r := range rows {
		v := r[col]
		code, ok := cc.index[v]
		if !ok {
			code = uint32(len(cc.Dict))
			cc.Dict = append(cc.Dict, v)
			cc.index[v] = code
		}
		cc.Codes[i] = code
	}
	cc.buildRanks()
	if c.codes == nil {
		c.codes = make(map[int]*CodedColumn)
	}
	c.codes[col] = cc
	return cc, nil
}

// buildRanks computes the byte-lexicographic rank of every code and whether
// the dictionary is free of control bytes (see the field docs).
func (c *CodedColumn) buildRanks() {
	order := make([]uint32, len(c.Dict))
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool { return c.Dict[order[i]] < c.Dict[order[j]] })
	c.ranks = make([]uint32, len(c.Dict))
	for pos, code := range order {
		c.ranks[code] = uint32(pos)
	}
	c.clean = true
	for _, v := range c.Dict {
		for i := 0; i < len(v); i++ {
			if v[i] < 0x20 {
				c.clean = false
				return
			}
		}
	}
}

// floatColumnFromCodes builds the parse-once numeric view of a column from
// its dictionary encoding: each distinct value is parsed once and the result
// fanned out over the code sequence, matching exactly what the row-scanning
// builder would produce.
func floatColumnFromCodes(cc *CodedColumn) *FloatColumn {
	parsed := make([]float64, len(cc.Dict))
	valid := make([]bool, len(cc.Dict))
	for code, v := range cc.Dict {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			continue
		}
		parsed[code] = f
		valid[code] = true
	}
	fc := &FloatColumn{
		Values: make([]float64, len(cc.Codes)),
		Valid:  make([]bool, len(cc.Codes)),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
	for i, code := range cc.Codes {
		if !valid[code] {
			continue
		}
		f := parsed[code]
		fc.Values[i] = f
		fc.Valid[i] = true
		fc.ValidCount++
		if f < fc.Min {
			fc.Min = f
		}
		if f > fc.Max {
			fc.Max = f
		}
	}
	return fc
}

// CodedColumnByName is CodedColumn keyed by attribute name.
func (t *Table) CodedColumnByName(name string) (*CodedColumn, error) {
	col, err := t.schema.Index(name)
	if err != nil {
		return nil, err
	}
	return t.CodedColumn(col)
}
