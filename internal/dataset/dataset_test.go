package dataset

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "name", Kind: Identifier, Type: Categorical},
		Attribute{Name: "age", Kind: QuasiIdentifier, Type: Numeric},
		Attribute{Name: "zip", Kind: QuasiIdentifier, Type: Categorical},
		Attribute{Name: "diagnosis", Kind: Sensitive, Type: Categorical},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func testTable(t *testing.T) *Table {
	t.Helper()
	s := testSchema(t)
	rows := []Row{
		{"alice", "30", "30301", "flu"},
		{"bob", "31", "30301", "flu"},
		{"carol", "30", "30301", "cancer"},
		{"dave", "45", "30302", "hiv"},
		{"erin", "47", "30302", "flu"},
	}
	tbl, err := FromRows(s, rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return tbl
}

func TestKindAndTypeStrings(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Insensitive, "insensitive"},
		{Identifier, "identifier"},
		{QuasiIdentifier, "quasi-identifier"},
		{Sensitive, "sensitive"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
	if Categorical.String() != "categorical" || Numeric.String() != "numeric" {
		t.Errorf("unexpected Type strings: %q %q", Categorical, Numeric)
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"id": Identifier, "QI": QuasiIdentifier, "sensitive": Sensitive,
		"sa": Sensitive, "": Insensitive, "none": Insensitive,
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseKind(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded, want error")
	}
}

func TestParseType(t *testing.T) {
	if got, _ := ParseType("numeric"); got != Numeric {
		t.Errorf("ParseType(numeric) = %v", got)
	}
	if got, _ := ParseType("cat"); got != Categorical {
		t.Errorf("ParseType(cat) = %v", got)
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Error("ParseType(bogus) succeeded, want error")
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); !errors.Is(err, ErrEmptySchema) {
		t.Errorf("empty schema error = %v, want ErrEmptySchema", err)
	}
	_, err := NewSchema(
		Attribute{Name: "a"}, Attribute{Name: "a"},
	)
	if !errors.Is(err, ErrDuplicateAttribute) {
		t.Errorf("duplicate schema error = %v, want ErrDuplicateAttribute", err)
	}
	if _, err := NewSchema(Attribute{Name: ""}); err == nil {
		t.Error("empty attribute name accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if got := s.QuasiIdentifierNames(); !reflect.DeepEqual(got, []string{"age", "zip"}) {
		t.Errorf("QuasiIdentifierNames = %v", got)
	}
	if got := s.SensitiveNames(); !reflect.DeepEqual(got, []string{"diagnosis"}) {
		t.Errorf("SensitiveNames = %v", got)
	}
	if got := s.IdentifierIndices(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("IdentifierIndices = %v", got)
	}
	if _, err := s.Index("missing"); !errors.Is(err, ErrNoSuchAttribute) {
		t.Errorf("Index(missing) err = %v", err)
	}
	if !s.Has("age") || s.Has("missing") {
		t.Error("Has gave wrong answers")
	}
	a, err := s.ByName("age")
	if err != nil || a.Type != Numeric {
		t.Errorf("ByName(age) = %v, %v", a, err)
	}
	if !s.Equal(s) {
		t.Error("schema not equal to itself")
	}
	p, err := s.Project("zip", "age")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if !reflect.DeepEqual(p.Names(), []string{"zip", "age"}) {
		t.Errorf("Project names = %v", p.Names())
	}
	if s.Equal(p) {
		t.Error("projected schema equal to original")
	}
}

func TestSchemaWithKinds(t *testing.T) {
	s := testSchema(t)
	s2, err := s.WithKinds(map[string]Kind{"zip": Insensitive})
	if err != nil {
		t.Fatalf("WithKinds: %v", err)
	}
	if got := s2.QuasiIdentifierNames(); !reflect.DeepEqual(got, []string{"age"}) {
		t.Errorf("after WithKinds QI = %v", got)
	}
	// Original unchanged.
	if got := s.QuasiIdentifierNames(); !reflect.DeepEqual(got, []string{"age", "zip"}) {
		t.Errorf("original mutated: %v", got)
	}
	if _, err := s.WithKinds(map[string]Kind{"nope": Sensitive}); err == nil {
		t.Error("WithKinds with unknown attribute succeeded")
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	tbl := testTable(t)
	if tbl.Len() != 5 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if err := tbl.Append(Row{"short"}); !errors.Is(err, ErrRowArity) {
		t.Errorf("short row error = %v", err)
	}
	if _, err := tbl.Row(99); !errors.Is(err, ErrRowIndex) {
		t.Errorf("Row(99) error = %v", err)
	}
	v, err := tbl.Value(0, 3)
	if err != nil || v != "flu" {
		t.Errorf("Value(0,3) = %q, %v", v, err)
	}
	if _, err := tbl.Value(0, 9); err == nil {
		t.Error("Value with bad column succeeded")
	}
	f, err := tbl.Float(3, 1)
	if err != nil || f != 45 {
		t.Errorf("Float(3,1) = %v, %v", f, err)
	}
	if _, err := tbl.Float(0, 3); !errors.Is(err, ErrNotNumeric) {
		t.Errorf("Float on categorical error = %v", err)
	}
	if err := tbl.SetValue(0, 3, "hiv"); err != nil {
		t.Fatalf("SetValue: %v", err)
	}
	v, _ = tbl.Value(0, 3)
	if v != "hiv" {
		t.Errorf("after SetValue value = %q", v)
	}
}

func TestTableCloneIsDeep(t *testing.T) {
	tbl := testTable(t)
	c := tbl.Clone()
	if err := c.SetValue(0, 1, "99"); err != nil {
		t.Fatal(err)
	}
	v, _ := tbl.Value(0, 1)
	if v != "30" {
		t.Errorf("clone mutation leaked into original: %q", v)
	}
}

func TestColumnDomainFrequencies(t *testing.T) {
	tbl := testTable(t)
	col, err := tbl.Column("diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if len(col) != 5 || col[3] != "hiv" {
		t.Errorf("Column = %v", col)
	}
	dom, err := tbl.Domain("diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dom, []string{"cancer", "flu", "hiv"}) {
		t.Errorf("Domain = %v", dom)
	}
	freq, err := tbl.Frequencies("diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if freq["flu"] != 3 || freq["cancer"] != 1 {
		t.Errorf("Frequencies = %v", freq)
	}
	if _, err := tbl.Column("missing"); err == nil {
		t.Error("Column(missing) succeeded")
	}
}

func TestNumericRange(t *testing.T) {
	tbl := testTable(t)
	min, max, err := tbl.NumericRange("age")
	if err != nil {
		t.Fatal(err)
	}
	if min != 30 || max != 47 {
		t.Errorf("NumericRange = %v..%v", min, max)
	}
	if _, _, err := tbl.NumericRange("diagnosis"); !errors.Is(err, ErrNotNumeric) {
		t.Errorf("NumericRange on categorical = %v", err)
	}
}

func TestProjectAndDropIdentifiers(t *testing.T) {
	tbl := testTable(t)
	p, err := tbl.Project("diagnosis", "age")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := p.Row(0)
	if !reflect.DeepEqual([]string(r), []string{"flu", "30"}) {
		t.Errorf("projected row = %v", r)
	}
	d, err := tbl.DropIdentifiers()
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema().Has("name") {
		t.Error("DropIdentifiers kept identifier column")
	}
	if d.Len() != tbl.Len() {
		t.Errorf("DropIdentifiers changed row count: %d", d.Len())
	}
}

func TestSelectFilterSampleSplit(t *testing.T) {
	tbl := testTable(t)
	sel, err := tbl.Select([]int{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 2 {
		t.Fatalf("Select len = %d", sel.Len())
	}
	r, _ := sel.Row(0)
	if r[0] != "erin" {
		t.Errorf("Select order wrong: %v", r)
	}
	if _, err := tbl.Select([]int{99}); err == nil {
		t.Error("Select with bad index succeeded")
	}

	idx := tbl.Filter(func(r Row) bool { return r[3] == "flu" })
	if len(idx) != 3 {
		t.Errorf("Filter returned %v", idx)
	}

	rng := rand.New(rand.NewSource(1))
	s := tbl.Sample(3, rng)
	if s.Len() != 3 {
		t.Errorf("Sample len = %d", s.Len())
	}
	all := tbl.Sample(100, rng)
	if all.Len() != tbl.Len() {
		t.Errorf("Sample over-size len = %d", all.Len())
	}

	train, test := tbl.Split(0.6, rng)
	if train.Len()+test.Len() != tbl.Len() {
		t.Errorf("Split sizes %d + %d != %d", train.Len(), test.Len(), tbl.Len())
	}
	if train.Len() != 3 {
		t.Errorf("Split train len = %d, want 3", train.Len())
	}
}

func TestWithSchemaAndAppendTable(t *testing.T) {
	tbl := testTable(t)
	s2, err := tbl.Schema().WithKinds(map[string]Kind{"zip": Sensitive})
	if err != nil {
		t.Fatal(err)
	}
	v, err := tbl.WithSchema(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Schema().SensitiveNames(), []string{"zip", "diagnosis"}) {
		t.Errorf("re-typed sensitive names = %v", v.Schema().SensitiveNames())
	}
	short, _ := NewSchema(Attribute{Name: "x"})
	if _, err := tbl.WithSchema(short); err == nil {
		t.Error("WithSchema with wrong arity succeeded")
	}

	other := testTable(t)
	if err := tbl.AppendTable(other); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 10 {
		t.Errorf("AppendTable len = %d", tbl.Len())
	}
}

func TestGroupBy(t *testing.T) {
	tbl := testTable(t)
	classes, err := tbl.GroupBy("age", "zip")
	if err != nil {
		t.Fatal(err)
	}
	// ages 30/30301 x2, 31/30301, 45/30302, 47/30302
	if len(classes) != 4 {
		t.Fatalf("classes = %d, want 4", len(classes))
	}
	sizes := ClassSizes(classes)
	if !reflect.DeepEqual(sizes, []int{1, 1, 1, 2}) {
		t.Errorf("ClassSizes = %v", sizes)
	}
	if MinClassSize(classes) != 1 {
		t.Errorf("MinClassSize = %d", MinClassSize(classes))
	}
	if got := AverageClassSize(classes); got != 1.25 {
		t.Errorf("AverageClassSize = %v", got)
	}
	qi, err := tbl.GroupByQuasiIdentifier()
	if err != nil {
		t.Fatal(err)
	}
	if len(qi) != len(classes) {
		t.Errorf("GroupByQuasiIdentifier classes = %d", len(qi))
	}
	if _, err := tbl.GroupBy("missing"); err == nil {
		t.Error("GroupBy(missing) succeeded")
	}
	if MinClassSize(nil) != 0 || AverageClassSize(nil) != 0 {
		t.Error("empty class summaries should be zero")
	}
}

func TestSensitiveDistribution(t *testing.T) {
	tbl := testTable(t)
	classes, err := tbl.GroupBy("zip")
	if err != nil {
		t.Fatal(err)
	}
	var zip1 EquivalenceClass
	for _, c := range classes {
		if c.Values[0] == "30301" {
			zip1 = c
		}
	}
	dist, err := tbl.SensitiveDistribution(zip1, "diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if dist["flu"] != 2 || dist["cancer"] != 1 {
		t.Errorf("SensitiveDistribution = %v", dist)
	}
	if _, err := tbl.SensitiveDistribution(zip1, "missing"); err == nil {
		t.Error("SensitiveDistribution(missing) succeeded")
	}
}

func TestSignatureRoundTrip(t *testing.T) {
	f := func(a, b, c string) bool {
		// The separator byte cannot appear in values.
		a = strings.ReplaceAll(a, signatureSep, "")
		b = strings.ReplaceAll(b, signatureSep, "")
		c = strings.ReplaceAll(c, signatureSep, "")
		in := []string{a, b, c}
		return reflect.DeepEqual(SplitSignature(Signature(in)), in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := testTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(tbl.Schema(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("round trip len = %d", back.Len())
	}
	for i := 0; i < tbl.Len(); i++ {
		a, _ := tbl.Row(i)
		b, _ := back.Row(i)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("row %d mismatch: %v vs %v", i, a, b)
		}
	}
}

func TestCSVHeaderValidation(t *testing.T) {
	tbl := testTable(t)
	bad := "wrong,age,zip,diagnosis\nx,1,2,3\n"
	if _, err := ReadCSV(tbl.Schema(), strings.NewReader(bad)); err == nil {
		t.Error("ReadCSV accepted wrong header")
	}
	if _, err := ReadCSV(tbl.Schema(), strings.NewReader("")); err == nil {
		t.Error("ReadCSV accepted empty input")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	tbl := testTable(t)
	path := t.TempDir() + "/t.csv"
	if err := tbl.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(tbl.Schema(), path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() {
		t.Errorf("file round trip len = %d", back.Len())
	}
	if _, err := ReadCSVFile(tbl.Schema(), path+"missing"); err == nil {
		t.Error("ReadCSVFile on missing file succeeded")
	}
}

func TestReadCSVInferred(t *testing.T) {
	in := "a,b\n1,x\n2,y\n"
	tbl, err := ReadCSVInferred(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 || tbl.Schema().Len() != 2 {
		t.Fatalf("inferred table %dx%d", tbl.Len(), tbl.Schema().Len())
	}
	if tbl.Schema().Attribute(0).Kind != Insensitive {
		t.Error("inferred kind should be insensitive")
	}
	if _, err := ReadCSVInferred(strings.NewReader("")); err == nil {
		t.Error("ReadCSVInferred accepted empty input")
	}
}

func TestTableString(t *testing.T) {
	tbl := testTable(t)
	s := tbl.String()
	if !strings.Contains(s, "diagnosis") || !strings.Contains(s, "alice") {
		t.Errorf("String output missing content: %q", s)
	}
	// Force the "more rows" suffix.
	for i := 0; i < 10; i++ {
		if err := tbl.Append(Row{"x", "1", "2", "flu"}); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(tbl.String(), "more rows") {
		t.Error("String should truncate long tables")
	}
}

func TestGroupByDeterministicOrder(t *testing.T) {
	tbl := testTable(t)
	a, err := tbl.GroupBy("zip")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := tbl.GroupBy("zip")
	sigsA := make([]string, len(a))
	sigsB := make([]string, len(b))
	for i := range a {
		sigsA[i] = a[i].Signature
		sigsB[i] = b[i].Signature
	}
	if !sort.StringsAreSorted(sigsA) {
		t.Error("GroupBy output not sorted")
	}
	if !reflect.DeepEqual(sigsA, sigsB) {
		t.Error("GroupBy not deterministic")
	}
}

func TestRowsCopy(t *testing.T) {
	tbl := testTable(t)
	rows := tbl.Rows()
	rows[0][0] = "mutated"
	v, _ := tbl.Value(0, 0)
	if v != "alice" {
		t.Error("Rows() returned aliased storage")
	}
}
