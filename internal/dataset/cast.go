package dataset

import (
	"encoding/binary"
	"unsafe"
)

// Zero-copy reinterpretation of snapshot segments. The on-disk format is
// little-endian; on little-endian hosts (every supported Go server platform
// in practice) the typed views below alias the mapped bytes directly, so a
// loaded column costs a slice header instead of a decoded copy. Big-endian
// hosts fall back to an explicit decode so the format stays portable.

// hostLittleEndian reports the byte order of this machine, computed once.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// u32View reinterprets b as a []uint32 of little-endian values. b must be
// 4-byte aligned and len(b) a multiple of 4 (the snapshot layout guarantees
// 8-byte alignment for every fixed-width section).
func u32View(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// f64View reinterprets b as a []float64 of little-endian values. b must be
// 8-byte aligned and len(b) a multiple of 8.
func f64View(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func float64frombits(u uint64) float64 { return *(*float64)(unsafe.Pointer(&u)) }

// boolView reinterprets b (bytes holding 0 or 1) as a []bool. Endianness
// does not apply to single bytes, so this view is always zero-copy.
func boolView(b []byte) []bool {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*bool)(unsafe.Pointer(&b[0])), len(b))
}

// viewString returns a string aliasing b without copying. The string is valid
// only while the backing mapping stays mapped; see MappedTable.Close.
func viewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// u32Bytes returns the little-endian byte serialization of s, aliasing s on
// little-endian hosts.
func u32Bytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// f64Bytes returns the little-endian byte serialization of s, aliasing s on
// little-endian hosts.
func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[8*i:], *(*uint64)(unsafe.Pointer(&v)))
	}
	return out
}

// boolBytes returns the 0/1 byte serialization of s (always aliasing: a Go
// bool is one byte holding 0 or 1).
func boolBytes(s []bool) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s))
}
