// Package dataset provides the in-memory tabular data model used throughout
// the PPDP library: schemas, typed attributes, row-oriented tables,
// equivalence-class partitioning, projections, sampling and CSV interchange.
//
// # Model
//
// The model follows the conventions of the privacy-preserving data publishing
// literature. Every attribute carries a Kind that describes its disclosure
// role (identifier, quasi-identifier, sensitive, insensitive) and a Type that
// describes how its values are interpreted (categorical or numeric). Values
// are stored as strings; numeric attributes are parsed on demand, which keeps
// the table representation uniform across original, generalized and perturbed
// releases (a generalized numeric value such as "[20-29]" is no longer a
// number).
//
// # Columnar views
//
// Row storage is the source of truth, but hot paths never re-parse or
// re-join row strings: Table.FloatColumn returns a parse-once numeric view
// (values, validity, extrema) and Table.CodedColumn a dictionary-encoded
// view (dense uint32 codes in first-appearance order, with lexicographic
// ranks). Table.GroupBy builds equivalence classes from mixed-radix coded
// keys — one uint64 per row — and falls back to the historical string path
// only when a dictionary contains control bytes or the key space overflows;
// both paths produce byte-identical output.
//
// # Mutation and concurrency
//
// Columnar views are cached per table and invalidated on mutation (SetValue
// invalidates one column, Append and AppendTable invalidate all) and rebuilt
// lazily. Returned views are immutable snapshots: a mutation never changes a
// column a caller already holds. The cache is mutex-guarded, so concurrent
// readers — parallel Mondrian workers, concurrent HTTP requests against one
// stored dataset — can build and share columns safely. Tables produced by
// WithSchema share row storage and therefore share the cache.
package dataset
