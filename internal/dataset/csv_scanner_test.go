package dataset

import (
	"encoding/csv"
	"errors"
	"strings"
	"testing"
)

func cellAt(t *testing.T, tbl *Table, i, j int) string {
	t.Helper()
	v, err := tbl.Value(i, j)
	if err != nil {
		t.Fatalf("Value(%d,%d): %v", i, j, err)
	}
	return v
}

func scannerSchema() *Schema {
	return MustSchema(
		Attribute{Name: "a", Kind: QuasiIdentifier, Type: Categorical},
		Attribute{Name: "b", Kind: QuasiIdentifier, Type: Categorical},
		Attribute{Name: "c", Kind: Sensitive, Type: Categorical},
	)
}

// TestReadCSVQuotedFallback exercises the encoding/csv fallback: quoted
// fields with embedded separators, escaped quotes and embedded newlines must
// parse with full RFC 4180 semantics even though earlier records took the
// quote-free fast path.
func TestReadCSVQuotedFallback(t *testing.T) {
	in := "a,b,c\n" +
		"plain,row,first\n" + // fast path
		"\"with,comma\",\"esc\"\"quote\",\"multi\nline\"\n" + // fallback from here
		"after,fallback,row\n"
	tbl, err := ReadCSV(scannerSchema(), strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{
		{"plain", "row", "first"},
		{"with,comma", `esc"quote`, "multi\nline"},
		{"after", "fallback", "row"},
	}
	if tbl.Len() != len(want) {
		t.Fatalf("rows = %d, want %d", tbl.Len(), len(want))
	}
	for i, w := range want {
		for j, cell := range w {
			if got := cellAt(t, tbl, i, j); got != cell {
				t.Errorf("cell (%d,%d) = %q, want %q", i, j, got, cell)
			}
		}
	}
	// The fingerprint must agree with the same logical content built
	// directly, regardless of which parsing path produced the cells.
	built, err := FromRows(scannerSchema(), want)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Fingerprint() != built.Fingerprint() {
		t.Error("quoted-fallback fingerprint differs from built table")
	}
}

// TestReadCSVLineEndings covers CRLF terminators, blank-line skipping and a
// final record without a trailing newline.
func TestReadCSVLineEndings(t *testing.T) {
	in := "a,b,c\r\n" +
		"x,y,z\r\n" +
		"\r\n" + // blank line: skipped, like encoding/csv
		"\n" +
		"p,q,r" // no trailing newline
	tbl, err := ReadCSV(scannerSchema(), strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d, want 2", tbl.Len())
	}
	if got := cellAt(t, tbl, 1, 2); got != "r" {
		t.Errorf("last cell = %q, want %q", got, "r")
	}
}

// TestReadCSVFieldCountError checks that both scanner paths reject records
// with the wrong number of fields, reporting encoding/csv's sentinel.
func TestReadCSVFieldCountError(t *testing.T) {
	cases := map[string]string{
		"fast":     "a,b,c\nx,y\n",
		"fallback": "a,b,c\n\"x\",y\n",
	}
	for name, in := range cases {
		_, err := ReadCSV(scannerSchema(), strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: short record accepted", name)
			continue
		}
		if !errors.Is(err, csv.ErrFieldCount) {
			t.Errorf("%s: error = %v, want csv.ErrFieldCount", name, err)
		}
	}
}

// TestReadCSVLongLine pushes a record past the scanner's buffer size so the
// scratch accumulation path runs.
func TestReadCSVLongLine(t *testing.T) {
	long := strings.Repeat("v", 100<<10)
	in := "a,b,c\nshort,cells,here\n" + long + ",y,z\n"
	tbl, err := ReadCSV(scannerSchema(), strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d, want 2", tbl.Len())
	}
	if got := cellAt(t, tbl, 1, 0); got != long {
		t.Errorf("long cell length = %d, want %d", len(got), len(long))
	}
}

// TestReadCSVHighCardinalityColumn checks that a near-unique column still
// round-trips correctly after interning opts out, and that a coded view can
// be built lazily afterwards.
func TestReadCSVHighCardinalityColumn(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("a,b,c\n")
	rows := make([]Row, 0, 2*internSampleRows)
	for i := 0; i < 2*internSampleRows; i++ {
		id := "id" + strings.Repeat("x", i%7) + "-" + string(rune('a'+i%26)) + "-" + itoa(i)
		r := Row{id, "grp" + string(rune('a'+i%3)), "s"}
		rows = append(rows, r)
		sb.WriteString(r[0] + "," + r[1] + "," + r[2] + "\n")
	}
	tbl, err := ReadCSV(scannerSchema(), strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range rows {
		if got := cellAt(t, tbl, i, 0); got != w[0] {
			t.Fatalf("row %d id = %q, want %q", i, got, w[0])
		}
	}
	cc, err := tbl.CodedColumn(0)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Cardinality() != 2*internSampleRows {
		t.Errorf("lazy coded cardinality = %d, want %d", cc.Cardinality(), 2*internSampleRows)
	}
	built, err := FromRows(scannerSchema(), rows)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Fingerprint() != built.Fingerprint() {
		t.Error("high-cardinality ingest fingerprint differs from built table")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
