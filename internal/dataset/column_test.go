package dataset

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestFloatColumnParsesOnceAndCaches(t *testing.T) {
	tbl := testTable(t)
	age := tbl.Schema().MustIndex("age")
	fc, err := tbl.FloatColumn(age)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Len() != tbl.Len() || fc.ValidCount != tbl.Len() {
		t.Fatalf("FloatColumn len=%d valid=%d, want %d", fc.Len(), fc.ValidCount, tbl.Len())
	}
	if fc.Min != 30 || fc.Max != 47 {
		t.Errorf("Min/Max = %v/%v, want 30/47", fc.Min, fc.Max)
	}
	if fc.Values[3] != 45 || !fc.Valid[3] {
		t.Errorf("Values[3] = %v (valid %v), want 45", fc.Values[3], fc.Valid[3])
	}
	again, err := tbl.FloatColumn(age)
	if err != nil {
		t.Fatal(err)
	}
	if again != fc {
		t.Error("second FloatColumn call did not return the cached snapshot")
	}
	// Non-numeric cells are flagged, not fatal.
	diag, err := tbl.FloatColumnByName("diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if diag.ValidCount != 0 {
		t.Errorf("diagnosis ValidCount = %d, want 0", diag.ValidCount)
	}
	if _, err := tbl.FloatColumn(99); err == nil {
		t.Error("FloatColumn out of range succeeded")
	}
	if _, err := tbl.FloatColumnByName("missing"); err == nil {
		t.Error("FloatColumnByName(missing) succeeded")
	}
}

func TestCodedColumnDeterminismAndLookup(t *testing.T) {
	tbl := testTable(t)
	cc, err := tbl.CodedColumnByName("diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	// Codes are assigned in first-appearance order: flu, cancer, hiv.
	if !reflect.DeepEqual(cc.Dict, []string{"flu", "cancer", "hiv"}) {
		t.Errorf("Dict = %v", cc.Dict)
	}
	if !reflect.DeepEqual(cc.Codes, []uint32{0, 0, 1, 2, 0}) {
		t.Errorf("Codes = %v", cc.Codes)
	}
	if cc.Cardinality() != 3 || cc.Value(2) != "hiv" {
		t.Errorf("Cardinality/Value wrong: %d %q", cc.Cardinality(), cc.Value(2))
	}
	code, ok := cc.Code("cancer")
	if !ok || code != 1 {
		t.Errorf("Code(cancer) = %d, %v", code, ok)
	}
	if _, ok := cc.Code("absent"); ok {
		t.Error("Code(absent) reported present")
	}
	// An identical table encodes identically.
	other := testTable(t)
	oc, err := other.CodedColumnByName("diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oc.Codes, cc.Codes) || !reflect.DeepEqual(oc.Dict, cc.Dict) {
		t.Error("identical tables produced different encodings")
	}
	if _, err := tbl.CodedColumn(-1); err == nil {
		t.Error("CodedColumn out of range succeeded")
	}
}

func TestColumnCacheInvalidatedBySetValue(t *testing.T) {
	tbl := testTable(t)
	age := tbl.Schema().MustIndex("age")
	before, err := tbl.FloatColumn(age)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetValue(0, age, "99"); err != nil {
		t.Fatal(err)
	}
	after, err := tbl.FloatColumn(age)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("SetValue did not invalidate the float cache")
	}
	if after.Values[0] != 99 || after.Max != 99 {
		t.Errorf("rebuilt column Values[0]=%v Max=%v, want 99", after.Values[0], after.Max)
	}
	// The old snapshot is immutable.
	if before.Values[0] != 30 {
		t.Errorf("old snapshot mutated: %v", before.Values[0])
	}
	// Mutating one column does not invalidate others.
	diagBefore, _ := tbl.CodedColumnByName("diagnosis")
	if err := tbl.SetValue(0, age, "100"); err != nil {
		t.Fatal(err)
	}
	diagAfter, _ := tbl.CodedColumnByName("diagnosis")
	if diagBefore != diagAfter {
		t.Error("mutating age invalidated the diagnosis cache")
	}
}

func TestColumnCacheInvalidatedByAppend(t *testing.T) {
	tbl := testTable(t)
	age := tbl.Schema().MustIndex("age")
	before, err := tbl.FloatColumn(age)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append(Row{"zed", "70", "30309", "flu"}); err != nil {
		t.Fatal(err)
	}
	after, err := tbl.FloatColumn(age)
	if err != nil {
		t.Fatal(err)
	}
	if after == before || after.Len() != 6 || after.Max != 70 {
		t.Errorf("Append did not rebuild the column: len=%d max=%v", after.Len(), after.Max)
	}

	cc1, _ := tbl.CodedColumnByName("zip")
	other := testTable(t)
	if err := tbl.AppendTable(other); err != nil {
		t.Fatal(err)
	}
	cc2, _ := tbl.CodedColumnByName("zip")
	if cc1 == cc2 || cc2.Len() != tbl.Len() {
		t.Error("AppendTable did not invalidate the coded cache")
	}
}

func TestWithSchemaViewSharesCache(t *testing.T) {
	tbl := testTable(t)
	s2, err := tbl.Schema().WithKinds(map[string]Kind{"zip": Sensitive})
	if err != nil {
		t.Fatal(err)
	}
	view, err := tbl.WithSchema(s2)
	if err != nil {
		t.Fatal(err)
	}
	age := tbl.Schema().MustIndex("age")
	before, _ := tbl.FloatColumn(age)
	// Mutating through the view invalidates the base table's cache too:
	// they share row storage.
	if err := view.SetValue(0, age, "80"); err != nil {
		t.Fatal(err)
	}
	after, _ := tbl.FloatColumn(age)
	if after == before {
		t.Fatal("mutation through WithSchema view did not invalidate base cache")
	}
	if after.Values[0] != 80 {
		t.Errorf("base table column not rebuilt: %v", after.Values[0])
	}
}

func TestAppendTableRejectsMismatchedSchemas(t *testing.T) {
	tbl := testTable(t)

	// Same arity, different attribute name.
	renamed := MustSchema(
		Attribute{Name: "name", Kind: Identifier, Type: Categorical},
		Attribute{Name: "years", Kind: QuasiIdentifier, Type: Numeric},
		Attribute{Name: "zip", Kind: QuasiIdentifier, Type: Categorical},
		Attribute{Name: "diagnosis", Kind: Sensitive, Type: Categorical},
	)
	other := NewTable(renamed)
	if err := other.Append(Row{"x", "1", "2", "flu"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendTable(other); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("renamed schema append error = %v, want ErrSchemaMismatch", err)
	}

	// Same names and types, different kind.
	retyped, err := tbl.Schema().WithKinds(map[string]Kind{"zip": Sensitive})
	if err != nil {
		t.Fatal(err)
	}
	reviewed, err := testTable(t).WithSchema(retyped)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendTable(reviewed); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("re-kinded schema append error = %v, want ErrSchemaMismatch", err)
	}

	// Equal schemas still append, and row count grows.
	n := tbl.Len()
	if err := tbl.AppendTable(testTable(t)); err != nil {
		t.Fatalf("equal-schema append failed: %v", err)
	}
	if tbl.Len() != n+5 {
		t.Errorf("append len = %d, want %d", tbl.Len(), n+5)
	}
}

// TestGroupByCodedMatchesSignaturePath is the property test required by the
// columnar refactor: for random tables, coded grouping must return classes
// byte-identical (signatures, values, member rows, order) to the historical
// string-signature implementation.
func TestGroupByCodedMatchesSignaturePath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	categorical := []string{"a", "b", "ab", "A", "", "z*z", "über", "flu", "[20-30)", "*"}
	for trial := 0; trial < 200; trial++ {
		ncols := 1 + rng.Intn(4)
		attrs := make([]Attribute, ncols)
		for i := range attrs {
			typ := Categorical
			if rng.Intn(2) == 0 {
				typ = Numeric
			}
			attrs[i] = Attribute{Name: fmt.Sprintf("c%d", i), Kind: QuasiIdentifier, Type: typ}
		}
		tbl := NewTable(MustSchema(attrs...))
		nrows := rng.Intn(60)
		for r := 0; r < nrows; r++ {
			row := make(Row, ncols)
			for i := range row {
				if attrs[i].Type == Numeric {
					row[i] = fmt.Sprintf("%d", rng.Intn(8))
				} else {
					row[i] = categorical[rng.Intn(len(categorical))]
				}
			}
			if err := tbl.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		names := tbl.Schema().Names()
		coded, err := tbl.GroupBy(names...)
		if err != nil {
			t.Fatal(err)
		}
		cols := make([]int, len(names))
		for i, n := range names {
			cols[i] = tbl.Schema().MustIndex(n)
		}
		ref, err := tbl.groupBySignature(cols)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(coded, ref) {
			t.Fatalf("trial %d: coded GroupBy diverged from string-signature path:\ncoded: %+v\nref:   %+v",
				trial, coded, ref)
		}
	}
}

// TestGroupByControlByteFallback exercises the string-sort fallback taken
// when values contain bytes below 0x20 (rank order can then differ from
// joined-signature byte order).
func TestGroupByControlByteFallback(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "x", Kind: QuasiIdentifier, Type: Categorical},
		Attribute{Name: "y", Kind: QuasiIdentifier, Type: Categorical},
	)
	tbl := NewTable(s)
	rows := []Row{
		{"a", "b"}, {"a\x01c", "b"}, {"a", "\x02"}, {"a\x01c", "b"}, {"q", "r"},
	}
	for _, r := range rows {
		if err := tbl.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	coded, err := tbl.GroupBy("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tbl.groupBySignature([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coded, ref) {
		t.Fatalf("control-byte grouping diverged:\ncoded: %+v\nref:   %+v", coded, ref)
	}
}

// TestGroupByRadixOverflowFallback forces the cardinality product past
// uint64 so GroupBy takes the string-signature path.
func TestGroupByRadixOverflowFallback(t *testing.T) {
	ncols := 10
	attrs := make([]Attribute, ncols)
	for i := range attrs {
		attrs[i] = Attribute{Name: fmt.Sprintf("w%d", i), Kind: QuasiIdentifier, Type: Categorical}
	}
	tbl := NewTable(MustSchema(attrs...))
	rng := rand.New(rand.NewSource(3))
	for r := 0; r < 300; r++ {
		row := make(Row, ncols)
		for i := range row {
			// ~150 distinct values per column: 150^10 overflows uint64.
			row[i] = fmt.Sprintf("v%03d", rng.Intn(150))
		}
		if err := tbl.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	classes, err := tbl.GroupBy(tbl.Schema().Names()...)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, c := range classes {
		total += c.Size()
		if i > 0 && classes[i-1].Signature >= c.Signature {
			t.Fatal("fallback classes not sorted by signature")
		}
	}
	if total != tbl.Len() {
		t.Fatalf("fallback classes cover %d rows, want %d", total, tbl.Len())
	}
}
