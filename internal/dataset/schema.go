package dataset

import (
	"errors"
	"fmt"
)

// Common schema errors.
var (
	// ErrNoSuchAttribute is returned when a column name is not present in a
	// schema.
	ErrNoSuchAttribute = errors.New("dataset: no such attribute")
	// ErrDuplicateAttribute is returned when a schema is constructed with
	// two columns of the same name.
	ErrDuplicateAttribute = errors.New("dataset: duplicate attribute name")
	// ErrEmptySchema is returned when a schema with no attributes is
	// constructed.
	ErrEmptySchema = errors.New("dataset: schema has no attributes")
)

// Schema is an ordered, immutable collection of attributes.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be non-empty and unique.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, ErrEmptySchema
	}
	s := &Schema{
		attrs: make([]Attribute, len(attrs)),
		index: make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateAttribute, a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// package-level schema literals in tests and generators.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attribute returns the attribute at position i.
func (s *Schema) Attribute(i int) Attribute { return s.attrs[i] }

// Attributes returns a copy of all attributes in order.
func (s *Schema) Attributes() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the named attribute, or an error if it is not
// part of the schema.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return -1, fmt.Errorf("%w: %q", ErrNoSuchAttribute, name)
	}
	return i, nil
}

// MustIndex is like Index but panics if the attribute does not exist.
func (s *Schema) MustIndex(name string) int {
	i, err := s.Index(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Has reports whether the named attribute is part of the schema.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// ByName returns the named attribute.
func (s *Schema) ByName(name string) (Attribute, error) {
	i, err := s.Index(name)
	if err != nil {
		return Attribute{}, err
	}
	return s.attrs[i], nil
}

// Names returns all attribute names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// indicesOfKind returns the column positions whose Kind matches k.
func (s *Schema) indicesOfKind(k Kind) []int {
	var out []int
	for i, a := range s.attrs {
		if a.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// QuasiIdentifierIndices returns the positions of all quasi-identifier
// columns, in schema order.
func (s *Schema) QuasiIdentifierIndices() []int { return s.indicesOfKind(QuasiIdentifier) }

// SensitiveIndices returns the positions of all sensitive columns.
func (s *Schema) SensitiveIndices() []int { return s.indicesOfKind(Sensitive) }

// IdentifierIndices returns the positions of all direct-identifier columns.
func (s *Schema) IdentifierIndices() []int { return s.indicesOfKind(Identifier) }

// QuasiIdentifierNames returns the names of all quasi-identifier columns.
func (s *Schema) QuasiIdentifierNames() []string {
	var out []string
	for _, i := range s.QuasiIdentifierIndices() {
		out = append(out, s.attrs[i].Name)
	}
	return out
}

// SensitiveNames returns the names of all sensitive columns.
func (s *Schema) SensitiveNames() []string {
	var out []string
	for _, i := range s.SensitiveIndices() {
		out = append(out, s.attrs[i].Name)
	}
	return out
}

// WithKinds returns a copy of the schema in which the listed attributes have
// their Kind replaced. Attributes not mentioned keep their current kind. It
// is used to reconfigure which columns form the quasi-identifier without
// rebuilding tables.
func (s *Schema) WithKinds(kinds map[string]Kind) (*Schema, error) {
	attrs := s.Attributes()
	seen := make(map[string]bool, len(kinds))
	for i := range attrs {
		if k, ok := kinds[attrs[i].Name]; ok {
			attrs[i].Kind = k
			seen[attrs[i].Name] = true
		}
	}
	for name := range kinds {
		if !seen[name] {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchAttribute, name)
		}
	}
	return NewSchema(attrs...)
}

// Project returns a new schema containing only the named attributes, in the
// given order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	attrs := make([]Attribute, 0, len(names))
	for _, n := range names {
		a, err := s.ByName(n)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}
	return NewSchema(attrs...)
}

// Equal reports whether two schemas have identical attributes in identical
// order.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}
