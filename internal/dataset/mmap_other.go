//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package dataset

import (
	"io"
	"os"
)

// mmapAvailable: this platform has no syscall.Mmap; snapshot files are read
// into the heap instead. The zero-copy column views still work — they simply
// point into one heap buffer rather than a shared mapping.
const mmapAvailable = false

// mmapFile is the portable fallback: read the whole file into memory. The
// returned release function frees nothing (the GC owns the buffer), but the
// snapshot codec is oblivious to the difference.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, nil, err
	}
	return b, func() error { return nil }, nil
}
