package dataset

import (
	"strings"
	"testing"
)

func fpSchema() *Schema {
	return MustSchema(
		Attribute{Name: "age", Kind: QuasiIdentifier, Type: Numeric},
		Attribute{Name: "zip", Kind: QuasiIdentifier, Type: Categorical},
		Attribute{Name: "diagnosis", Kind: Sensitive, Type: Categorical},
	)
}

func fpRows() []Row {
	return []Row{
		{"34", "130", "flu"},
		{"41", "131", "cancer"},
		{"34", "130", "flu"},
	}
}

func TestFingerprintStableAndContentKeyed(t *testing.T) {
	a, err := FromRows(fpSchema(), fpRows())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromRows(fpSchema(), fpRows())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == "" {
		t.Fatal("empty fingerprint")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical content produced different fingerprints")
	}
}

func TestFingerprintSeesMutations(t *testing.T) {
	tbl, err := FromRows(fpSchema(), fpRows())
	if err != nil {
		t.Fatal(err)
	}
	orig := tbl.Fingerprint()
	if err := tbl.SetValue(0, 0, "35"); err != nil {
		t.Fatal(err)
	}
	mutated := tbl.Fingerprint()
	if mutated == orig {
		t.Error("SetValue did not change the fingerprint")
	}
	if err := tbl.Append(Row{"52", "132", "flu"}); err != nil {
		t.Fatal(err)
	}
	if tbl.Fingerprint() == mutated {
		t.Error("Append did not change the fingerprint")
	}
}

func TestFingerprintCoversSchema(t *testing.T) {
	tbl, err := FromRows(fpSchema(), fpRows())
	if err != nil {
		t.Fatal(err)
	}
	// Same rows under a different schema (diagnosis demoted to insensitive)
	// must fingerprint differently: the released bytes depend on attribute
	// kinds, and WithSchema views share the row storage and column cache.
	alt := MustSchema(
		Attribute{Name: "age", Kind: QuasiIdentifier, Type: Numeric},
		Attribute{Name: "zip", Kind: QuasiIdentifier, Type: Categorical},
		Attribute{Name: "diagnosis", Kind: Insensitive, Type: Categorical},
	)
	view, err := tbl.WithSchema(alt)
	if err != nil {
		t.Fatal(err)
	}
	if view.Fingerprint() == tbl.Fingerprint() {
		t.Error("schema change did not change the fingerprint")
	}
}

func TestFingerprintMatchesCSVIngest(t *testing.T) {
	// The streaming CSV reader computes the row hash during ingest; it must
	// agree with the lazy computation over FromRows-built tables.
	built, err := FromRows(fpSchema(), fpRows())
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := built.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	read, err := ReadCSV(fpSchema(), strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	if read.Fingerprint() != built.Fingerprint() {
		t.Errorf("CSV-ingested fingerprint %s != built %s", read.Fingerprint(), built.Fingerprint())
	}
}

func TestFingerprintSeparatorsUnambiguous(t *testing.T) {
	// Adjacent-cell content must not collide with shifted boundaries.
	s := MustSchema(
		Attribute{Name: "a", Kind: Insensitive, Type: Categorical},
		Attribute{Name: "b", Kind: Insensitive, Type: Categorical},
	)
	x, err := FromRows(s, []Row{{"ab", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	y, err := FromRows(s, []Row{{"a", "bc"}})
	if err != nil {
		t.Fatal(err)
	}
	if x.Fingerprint() == y.Fingerprint() {
		t.Error("cell-boundary shift collided")
	}
}
