// Columnar snapshot benchmarks, next to the CSV ingest benchmarks they are
// compared against: opening an mmap snapshot must beat re-parsing CSV by at
// least an order of magnitude, because boot-time recovery opens one snapshot
// per stored table.
package dataset_test

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/synth"
)

// benchSnapshot writes the 5k census fixture once and returns the snapshot
// path and its size in bytes.
func benchSnapshot(b *testing.B) (string, int64) {
	b.Helper()
	tbl := synth.Census(5000, 1)
	path := filepath.Join(b.TempDir(), "census.tbl")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.WriteSnapshot(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	return path, info.Size()
}

// BenchmarkSnapshotWrite measures serializing the 5k census fixture into the
// columnar snapshot format (dictionary, codes, floats, per-segment CRCs and
// the embedded fingerprint).
func BenchmarkSnapshotWrite(b *testing.B) {
	tbl := synth.Census(5000, 1)
	var buf bytes.Buffer
	if err := tbl.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tbl.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSnapshotWriteWorkers measures snapshot encoding at a fixed
// scan-worker bound: the CRC pass runs one worker per column, the emitted
// bytes are identical for every bound.
func benchSnapshotWriteWorkers(b *testing.B, workers int) {
	tbl := synth.Census(5000, 1)
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tbl.SetScanWorkers(workers)
	var buf bytes.Buffer
	if err := tbl.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tbl.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotWriteWorkers1(b *testing.B)   { benchSnapshotWriteWorkers(b, 1) }
func BenchmarkSnapshotWriteWorkersMax(b *testing.B) { benchSnapshotWriteWorkers(b, 0) }

// BenchmarkSnapshotOpen measures the boot-path cost: mmap the file, verify
// header and segment framing, and wire zero-copy column views. The rows are
// NOT materialized — that is the entire point of the format — so this must
// come in far below BenchmarkReadCSV on the same fixture (the acceptance
// bar is 10x).
func BenchmarkSnapshotOpen(b *testing.B) {
	path, size := benchSnapshot(b)
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := dataset.OpenSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMmapScan measures a full-table analytical pass over a freshly
// mapped snapshot: GroupBy over the quasi-identifier columns, the access
// pattern every anonymization run starts with. The table is opened once
// outside the loop; the scan reads the mapped segments directly.
func BenchmarkMmapScan(b *testing.B) {
	path, size := benchSnapshot(b)
	m, err := dataset.OpenSnapshot(path)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	tbl := m.Table()
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, err := tbl.GroupByQuasiIdentifier()
		if err != nil {
			b.Fatal(err)
		}
		if len(groups) == 0 {
			b.Fatal("empty grouping")
		}
	}
}
