// Package core is the public face of the PPDP library: it ties the privacy
// models, anonymization algorithms, utility metrics and risk measures into a
// single release pipeline. A caller configures an Anonymizer with the desired
// algorithm and privacy parameters, calls Anonymize on a table, and receives
// a Release that contains the published data together with the measured
// privacy and utility properties, so the "trust but verify" step of the
// survey's methodology is built in.
//
// Long-running callers use AnonymizeContext: the context bounds the run
// (request deadlines, client disconnects) and is threaded into every
// algorithm, which polls it at its natural unit of work — Mondrian's worker
// pool per subtree, the lattice searches per node, Datafly per
// generalization round, and so on — while Config.Workers bounds internal
// parallelism so a server can share the machine across concurrent requests.
// The HTTP service in internal/server is the primary such caller.
//
// Algorithm dispatch is registry-driven: every algorithm is an engine
// adapter (see internal/engine) and core resolves names, validation and
// execution through the registry, so adding an algorithm package adds it to
// the whole pipeline.
package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/ppdp/ppdp/internal/algorithms/anatomy"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	_ "github.com/ppdp/ppdp/internal/engine/all" // register the built-in algorithms
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/lattice"
	"github.com/ppdp/ppdp/internal/metrics"
	"github.com/ppdp/ppdp/internal/privacy"
)

// Algorithm selects the anonymization algorithm of a release.
type Algorithm string

// Names of the built-in algorithms. The authoritative list is the engine
// registry (see Algorithms); these constants are mnemonics for callers.
const (
	// Mondrian is multidimensional greedy partitioning (default).
	Mondrian Algorithm = "mondrian"
	// Datafly is greedy full-domain generalization with suppression.
	Datafly Algorithm = "datafly"
	// Incognito is an optimal full-domain lattice search.
	Incognito Algorithm = "incognito"
	// Samarati is binary lattice-height search with suppression.
	Samarati Algorithm = "samarati"
	// TopDown is top-down specialization from full generalization.
	TopDown Algorithm = "topdown"
	// KMember is greedy clustering anonymization.
	KMember Algorithm = "kmember"
	// Anatomy is l-diverse bucketization (no generalization).
	Anatomy Algorithm = "anatomy"
)

// ParseAlgorithm converts a string (CLI flag, config file) to an Algorithm
// via the engine registry; the empty string resolves to the default
// algorithm (Mondrian).
func ParseAlgorithm(s string) (Algorithm, error) {
	alg, err := engine.Lookup(s)
	if err != nil {
		return "", fmt.Errorf("core: unknown algorithm %q", s)
	}
	return Algorithm(alg.Name()), nil
}

// Algorithms lists every registered algorithm name, default first.
func Algorithms() []Algorithm {
	names := engine.Names()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm(n)
	}
	return out
}

// DiversityMode selects which member of the l-diversity family to enforce.
type DiversityMode string

// Diversity modes.
const (
	// DistinctDiversity requires L distinct sensitive values per class.
	DistinctDiversity DiversityMode = "distinct"
	// EntropyDiversity requires per-class entropy of at least log(L).
	EntropyDiversity DiversityMode = "entropy"
	// RecursiveDiversity requires recursive (C, L)-diversity.
	RecursiveDiversity DiversityMode = "recursive"
)

// Config describes one release.
type Config struct {
	// Algorithm selects the anonymizer; Mondrian when empty.
	Algorithm Algorithm
	// K is the k-anonymity parameter (ignored by Anatomy).
	K int
	// L enables l-diversity when positive (required by Anatomy).
	L int
	// DiversityMode selects the l-diversity variant (distinct when empty).
	DiversityMode DiversityMode
	// C is the recursive (c, l)-diversity constant (default 3 when the
	// recursive mode is selected).
	C float64
	// T enables t-closeness when positive.
	T float64
	// OrderedSensitive selects the ordered-distance EMD for t-closeness.
	OrderedSensitive bool
	// Sensitive names the sensitive attribute for the attribute-linkage
	// models; defaults to the schema's first sensitive column.
	Sensitive string
	// QuasiIdentifiers restricts the quasi-identifier; defaults to the
	// schema's quasi-identifier columns.
	QuasiIdentifiers []string
	// Hierarchies supplies generalization hierarchies (required by the
	// full-domain algorithms, optional for Mondrian/KMember recoding).
	Hierarchies *hierarchy.Set
	// MaxSuppression bounds record suppression for Datafly and Samarati.
	MaxSuppression float64
	// StrictMondrian selects strict partitioning for Mondrian.
	StrictMondrian bool
	// Workers bounds the parallel Mondrian worker pool. Zero uses
	// GOMAXPROCS; 1 forces a sequential run. Long-running callers (the HTTP
	// service) set this once per process so concurrent requests share the
	// machine fairly.
	Workers int
	// Progress, when non-nil, receives (done, total) events as a run
	// advances, reported by the algorithm at the same per-unit sites where
	// it polls the context (see internal/engine). The delivered stream is
	// serialized and strictly increasing in done, so a plain closure — the
	// CLI's stderr progress line, a job manager's snapshot — needs no
	// locking. Per-run sinks are usually attached with WithProgress instead.
	Progress func(done, total int)
}

// ErrConfig is returned for invalid top-level configurations.
var ErrConfig = errors.New("core: invalid configuration")

// Measurements reports the verified privacy level and utility of a release.
type Measurements struct {
	// K is the smallest equivalence-class size of the release.
	K int
	// DistinctL is the smallest number of distinct sensitive values per
	// class (0 when no sensitive attribute is configured).
	DistinctL int
	// MaxEMD is the largest per-class earth mover's distance to the global
	// sensitive distribution (0 when no sensitive attribute is configured).
	MaxEMD float64
	// NCP is the normalized certainty penalty of the release.
	NCP float64
	// Discernibility is the discernibility metric of the release.
	Discernibility float64
	// ProsecutorMaxRisk is the maximum re-identification probability.
	ProsecutorMaxRisk float64
	// SuppressedRows is the number of records removed by the algorithm.
	SuppressedRows int
}

// Release is the outcome of an anonymization run.
type Release struct {
	// Table is the published microdata table (nil for Anatomy).
	Table *dataset.Table
	// QIT and ST are the Anatomy releases (nil for other algorithms).
	QIT *dataset.Table
	ST  *dataset.Table
	// Anatomy retains the full Anatomy result for query estimation.
	Anatomy *anatomy.Result
	// Algorithm echoes the algorithm used.
	Algorithm Algorithm
	// Node is the full-domain generalization node when applicable.
	Node []int
	// Measured reports the verified properties of the release.
	Measured Measurements
}

// Anonymizer runs a configured release pipeline.
type Anonymizer struct {
	cfg Config
	alg engine.Algorithm
}

// New validates the configuration and returns an Anonymizer. Cross-algorithm
// parameter ranges are checked here; everything algorithm-specific (required
// parameters, hierarchies) is delegated to the algorithm's own engine
// adapter, so core carries no per-algorithm knowledge.
func New(cfg Config) (*Anonymizer, error) {
	alg, err := engine.Lookup(string(cfg.Algorithm))
	if err != nil {
		return nil, fmt.Errorf("%w: unknown algorithm %q", ErrConfig, cfg.Algorithm)
	}
	cfg.Algorithm = Algorithm(alg.Name())
	if cfg.L < 0 || cfg.T < 0 || cfg.T > 1 {
		return nil, fmt.Errorf("%w: L=%d T=%v", ErrConfig, cfg.L, cfg.T)
	}
	if cfg.MaxSuppression < 0 || cfg.MaxSuppression > 1 {
		return nil, fmt.Errorf("%w: MaxSuppression=%v", ErrConfig, cfg.MaxSuppression)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: Workers=%d", ErrConfig, cfg.Workers)
	}
	if cfg.DiversityMode == "" {
		cfg.DiversityMode = DistinctDiversity
	}
	if cfg.DiversityMode == RecursiveDiversity && cfg.C <= 0 {
		cfg.C = 3
	}
	a := &Anonymizer{cfg: cfg, alg: alg}
	if err := alg.Validate(a.spec("", nil)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return a, nil
}

// spec maps the configuration onto the engine's algorithm-agnostic run
// specification. The sensitive attribute and the extra criteria are resolved
// per table at Anonymize time and empty during New-time validation.
func (a *Anonymizer) spec(sensitive string, extra []privacy.Criterion) engine.Spec {
	return engine.Spec{
		K:                a.cfg.K,
		L:                a.cfg.L,
		Sensitive:        sensitive,
		QuasiIdentifiers: a.cfg.QuasiIdentifiers,
		Hierarchies:      a.cfg.Hierarchies,
		MaxSuppression:   a.cfg.MaxSuppression,
		Strict:           a.cfg.StrictMondrian,
		Workers:          a.cfg.Workers,
		Extra:            extra,
		Progress:         a.cfg.Progress,
	}
}

// WithProgress returns a copy of the anonymizer whose runs report progress to
// sink; the receiver is unchanged. Executors that validate a configuration
// once and then attach a per-run sink (the jobs layer of the HTTP service)
// use this instead of rebuilding the Anonymizer.
func (a *Anonymizer) WithProgress(sink func(done, total int)) *Anonymizer {
	b := *a
	b.cfg.Progress = sink
	return &b
}

// Config returns a copy of the anonymizer's configuration.
func (a *Anonymizer) Config() Config { return a.cfg }

// sensitiveAttr resolves the sensitive attribute for a table.
func (a *Anonymizer) sensitiveAttr(t *dataset.Table) string {
	if a.cfg.Sensitive != "" {
		return a.cfg.Sensitive
	}
	names := t.Schema().SensitiveNames()
	if len(names) > 0 {
		return names[0]
	}
	return ""
}

// extraCriteria builds the attribute-linkage criteria from the configuration.
func (a *Anonymizer) extraCriteria(sensitive string) ([]privacy.Criterion, error) {
	var out []privacy.Criterion
	if a.cfg.L > 1 {
		if sensitive == "" {
			return nil, fmt.Errorf("%w: l-diversity requires a sensitive attribute", ErrConfig)
		}
		switch a.cfg.DiversityMode {
		case DistinctDiversity, "":
			out = append(out, privacy.DistinctLDiversity{L: a.cfg.L, Sensitive: sensitive})
		case EntropyDiversity:
			out = append(out, privacy.EntropyLDiversity{L: float64(a.cfg.L), Sensitive: sensitive})
		case RecursiveDiversity:
			c := a.cfg.C
			if c <= 0 {
				c = 3
			}
			out = append(out, privacy.RecursiveCLDiversity{C: c, L: a.cfg.L, Sensitive: sensitive})
		default:
			return nil, fmt.Errorf("%w: unknown diversity mode %q", ErrConfig, a.cfg.DiversityMode)
		}
	}
	if a.cfg.T > 0 {
		if sensitive == "" {
			return nil, fmt.Errorf("%w: t-closeness requires a sensitive attribute", ErrConfig)
		}
		out = append(out, privacy.TCloseness{T: a.cfg.T, Sensitive: sensitive, Ordered: a.cfg.OrderedSensitive})
	}
	return out, nil
}

// Anonymize runs the configured pipeline on t with no cancellation; it is
// shorthand for AnonymizeContext with a background context.
func (a *Anonymizer) Anonymize(t *dataset.Table) (*Release, error) {
	return a.AnonymizeContext(context.Background(), t)
}

// AnonymizeContext runs the configured pipeline on t: direct identifiers are
// dropped, the algorithm's engine adapter is run, and the release is
// measured. The context bounds the run: every algorithm polls it at its
// natural unit of work (see internal/engine), so a canceled or timed-out
// request returns ctx.Err() instead of a release.
func (a *Anonymizer) AnonymizeContext(ctx context.Context, t *dataset.Table) (*Release, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	input, err := t.DropIdentifiers()
	if err != nil {
		return nil, err
	}
	sensitive := a.sensitiveAttr(input)
	extra, err := a.extraCriteria(sensitive)
	if err != nil {
		return nil, err
	}
	res, err := a.alg.Run(ctx, input, a.spec(sensitive, extra))
	if err != nil {
		return nil, err
	}

	release := &Release{
		Algorithm: a.cfg.Algorithm,
		Table:     res.Table,
		QIT:       res.QIT,
		ST:        res.ST,
		Node:      res.Node,
	}
	release.Measured.SuppressedRows = res.SuppressedRows
	if anat, ok := res.Extra.(*anatomy.Result); ok {
		release.Anatomy = anat
	}

	// Gate between the algorithm and the measurement phase so a request
	// canceled right at the boundary skips the grouping and metric passes.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if release.Table != nil {
		m, err := a.measure(input, release.Table, sensitive)
		if err != nil {
			return nil, err
		}
		m.SuppressedRows = release.Measured.SuppressedRows
		release.Measured = *m
	}
	return release, nil
}

// measure verifies the privacy level and utility of a microdata release.
func (a *Anonymizer) measure(original, released *dataset.Table, sensitive string) (*Measurements, error) {
	m := &Measurements{}
	qiNames := released.Schema().QuasiIdentifierNames()
	if len(a.cfg.QuasiIdentifiers) > 0 {
		qiNames = a.cfg.QuasiIdentifiers
	}
	classes, err := released.GroupBy(qiNames...)
	if err != nil {
		return nil, err
	}
	m.K = privacy.MeasureK(classes)
	if sensitive != "" && released.Schema().Has(sensitive) {
		l, err := privacy.MeasureDistinctL(released, classes, sensitive)
		if err != nil {
			return nil, err
		}
		m.DistinctL = l
		emd, err := privacy.MeasureMaxEMD(released, classes, sensitive, a.cfg.OrderedSensitive)
		if err != nil {
			return nil, err
		}
		m.MaxEMD = emd
	}
	// Metric failures are real failures: a release whose utility cannot be
	// measured must not report a perfect 0.0, so the errors propagate instead
	// of being dropped.
	ncp, err := metrics.NCP(original, released, a.cfg.Hierarchies)
	if err != nil {
		return nil, fmt.Errorf("core: NCP: %w", err)
	}
	m.NCP = ncp
	dm, err := metrics.Discernibility(released, original.Len())
	if err != nil {
		return nil, fmt.Errorf("core: discernibility: %w", err)
	}
	m.Discernibility = dm
	// Prosecutor risk over the same quasi-identifier the release was built
	// for (the schema may contain further QI columns the caller chose not to
	// anonymize; risk.MeasureReidentification covers that stricter view).
	if m.K > 0 {
		m.ProsecutorMaxRisk = 1 / float64(m.K)
	}
	return m, nil
}

// Verify re-checks the configured privacy criteria against a microdata
// release and returns the name of the first violated criterion (empty when
// all hold).
func (a *Anonymizer) Verify(released *dataset.Table) (bool, string, error) {
	sensitive := a.sensitiveAttr(released)
	extra, err := a.extraCriteria(sensitive)
	if err != nil {
		return false, "", err
	}
	qi := a.cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = released.Schema().QuasiIdentifierNames()
	}
	classes, err := released.GroupBy(qi...)
	if err != nil {
		return false, "", err
	}
	criteria := append([]privacy.Criterion{privacy.KAnonymity{K: max(a.cfg.K, 1)}}, extra...)
	return privacy.CheckAll(released, classes, criteria...)
}

// FullDomainPrecision is a convenience that computes Sweeney's precision for
// a full-domain release node produced by Datafly, Samarati, Incognito or
// TopDown under the anonymizer's hierarchies.
func (a *Anonymizer) FullDomainPrecision(node []int, qi []string) (float64, error) {
	if a.cfg.Hierarchies == nil {
		return 0, fmt.Errorf("%w: precision requires hierarchies", ErrConfig)
	}
	maxLevels, err := a.cfg.Hierarchies.MaxLevels(qi)
	if err != nil {
		return 0, err
	}
	return metrics.GeneralizationPrecision(node, maxLevels)
}

// LatticeSize reports how many full-domain recodings exist for the given
// quasi-identifier under the anonymizer's hierarchies — a quick way to judge
// whether an exhaustive lattice search is feasible.
func (a *Anonymizer) LatticeSize(qi []string) (int, error) {
	if a.cfg.Hierarchies == nil {
		return 0, fmt.Errorf("%w: lattice size requires hierarchies", ErrConfig)
	}
	maxLevels, err := a.cfg.Hierarchies.MaxLevels(qi)
	if err != nil {
		return 0, err
	}
	lat, err := lattice.New(qi, maxLevels)
	if err != nil {
		return 0, err
	}
	return lat.Size(), nil
}
