// Package core is the public face of the PPDP library: it ties the privacy
// models, anonymization algorithms, utility metrics and risk measures into a
// single release pipeline. A caller configures an Anonymizer with the desired
// algorithm and privacy parameters, calls Anonymize on a table, and receives
// a Release that contains the published data together with the measured
// privacy and utility properties, so the "trust but verify" step of the
// survey's methodology is built in.
//
// Long-running callers use AnonymizeContext: the context bounds the run
// (request deadlines, client disconnects) and is threaded into every
// algorithm, which polls it at its natural unit of work — Mondrian's worker
// pool per subtree, the lattice searches per node, Datafly per
// generalization round, and so on — while Config.Workers bounds internal
// parallelism so a server can share the machine across concurrent requests.
// The HTTP service in internal/server is the primary such caller.
//
// Algorithm dispatch is registry-driven: every algorithm is an engine
// adapter (see internal/engine) and core resolves names, validation and
// execution through the registry, so adding an algorithm package adds it to
// the whole pipeline.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"github.com/ppdp/ppdp/internal/algorithms/anatomy"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	_ "github.com/ppdp/ppdp/internal/engine/all" // register the built-in algorithms
	"github.com/ppdp/ppdp/internal/hierarchy"
	"github.com/ppdp/ppdp/internal/lattice"
	"github.com/ppdp/ppdp/internal/metrics"
	"github.com/ppdp/ppdp/internal/policy"
	"github.com/ppdp/ppdp/internal/privacy"
)

// Algorithm selects the anonymization algorithm of a release.
type Algorithm string

// Names of the built-in algorithms. The authoritative list is the engine
// registry (see Algorithms); these constants are mnemonics for callers.
const (
	// Mondrian is multidimensional greedy partitioning (default).
	Mondrian Algorithm = "mondrian"
	// Datafly is greedy full-domain generalization with suppression.
	Datafly Algorithm = "datafly"
	// Incognito is an optimal full-domain lattice search.
	Incognito Algorithm = "incognito"
	// Samarati is binary lattice-height search with suppression.
	Samarati Algorithm = "samarati"
	// TopDown is top-down specialization from full generalization.
	TopDown Algorithm = "topdown"
	// KMember is greedy clustering anonymization.
	KMember Algorithm = "kmember"
	// Anatomy is l-diverse bucketization (no generalization).
	Anatomy Algorithm = "anatomy"
)

// ParseAlgorithm converts a string (CLI flag, config file) to an Algorithm
// via the engine registry; the empty string resolves to the default
// algorithm (Mondrian).
func ParseAlgorithm(s string) (Algorithm, error) {
	alg, err := engine.Lookup(s)
	if err != nil {
		return "", fmt.Errorf("core: unknown algorithm %q", s)
	}
	return Algorithm(alg.Name()), nil
}

// Algorithms lists every registered algorithm name, default first.
func Algorithms() []Algorithm {
	names := engine.Names()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm(n)
	}
	return out
}

// DiversityMode selects which member of the l-diversity family to enforce.
type DiversityMode string

// Diversity modes.
const (
	// DistinctDiversity requires L distinct sensitive values per class.
	DistinctDiversity DiversityMode = "distinct"
	// EntropyDiversity requires per-class entropy of at least log(L).
	EntropyDiversity DiversityMode = "entropy"
	// RecursiveDiversity requires recursive (C, L)-diversity.
	RecursiveDiversity DiversityMode = "recursive"
)

// Config describes one release.
//
// The privacy criteria are declared either through Policy (the declarative
// form, preferred) or through the deprecated flat fields K/L/DiversityMode/
// C/T/OrderedSensitive/MaxSuppression. The two forms are mutually exclusive;
// flat fields ride through the same policy translator (policy.FromFlat), so
// either way the pipeline runs on one canonical policy.
type Config struct {
	// Algorithm selects the anonymizer; Mondrian when empty.
	Algorithm Algorithm
	// Policy declares the privacy criteria of the release as a declarative
	// policy document. When set, the flat privacy fields below must stay
	// zero, and the policy is validated strictly: a criterion the selected
	// algorithm cannot enforce is a configuration error. When nil, the flat
	// fields are translated into a policy, keeping their legacy semantics
	// (parameters an algorithm does not read are silently ignored).
	Policy *policy.Policy
	// K is the k-anonymity parameter (ignored by Anatomy).
	//
	// Deprecated: declare a k-anonymity criterion in Policy instead.
	K int
	// L enables l-diversity when positive (required by Anatomy).
	//
	// Deprecated: declare an l-diversity criterion in Policy instead.
	L int
	// DiversityMode selects the l-diversity variant (distinct when empty).
	//
	// Deprecated: the Policy criterion type selects the variant.
	DiversityMode DiversityMode
	// C is the recursive (c, l)-diversity constant (default 3 when the
	// recursive mode is selected).
	//
	// Deprecated: declare it on the Policy criterion instead.
	C float64
	// T enables t-closeness when positive.
	//
	// Deprecated: declare a t-closeness criterion in Policy instead.
	T float64
	// OrderedSensitive selects the ordered-distance EMD for t-closeness.
	//
	// Deprecated: set "ordered" on the Policy's t-closeness criterion.
	OrderedSensitive bool
	// Sensitive names the default sensitive attribute for the
	// attribute-linkage criteria; criteria that do not name their own fall
	// back to it, then to the schema's first sensitive column.
	Sensitive string
	// QuasiIdentifiers restricts the quasi-identifier; defaults to the
	// schema's quasi-identifier columns.
	QuasiIdentifiers []string
	// Hierarchies supplies generalization hierarchies (required by the
	// full-domain algorithms, optional for Mondrian/KMember recoding).
	Hierarchies *hierarchy.Set
	// MaxSuppression bounds record suppression for Datafly and Samarati.
	//
	// Deprecated: declare a suppression budget in Policy instead.
	MaxSuppression float64
	// StrictMondrian selects strict partitioning for Mondrian.
	StrictMondrian bool
	// Workers bounds the per-run parallelism: the algorithms' worker pools
	// (Mondrian's recursion, the lattice searches, and so on) and, via the
	// table handle (dataset.Table.SetScanWorkers), the chunked scan kernels
	// — GroupBy, Fingerprint, metric scans — used throughout the run. Zero
	// uses GOMAXPROCS; 1 forces a sequential run. Every path is
	// byte-identical for all worker counts. Long-running callers (the HTTP
	// service) set this once per process so concurrent requests share the
	// machine fairly.
	Workers int
	// Progress, when non-nil, receives (done, total) events as a run
	// advances, reported by the algorithm at the same per-unit sites where
	// it polls the context (see internal/engine). The delivered stream is
	// serialized and strictly increasing in done, so a plain closure — the
	// CLI's stderr progress line, a job manager's snapshot — needs no
	// locking. Per-run sinks are usually attached with WithProgress instead.
	Progress func(done, total int)
}

// ErrConfig is returned for invalid top-level configurations.
var ErrConfig = errors.New("core: invalid configuration")

// CriterionMeasurement reports the verification of one policy criterion
// against the released table.
type CriterionMeasurement struct {
	// Satisfied reports whether the release meets the criterion.
	Satisfied bool
	// Measured is the strongest value of the criterion's headline parameter
	// the release attains: the minimum class size for k-anonymity, the
	// maximum sensitive-value share for (α,k)-anonymity, the minimum
	// distinct count (or effective entropy l) for the diversity family, the
	// smallest satisfiable c for recursive (c,l)-diversity, and the maximum
	// per-class EMD for t-closeness.
	Measured float64
	// Target is the parameter the policy declared.
	Target float64
	// Sensitive is the resolved sensitive attribute the criterion was
	// checked against ("" for k-anonymity).
	Sensitive string
}

// Measurements reports the verified privacy level and utility of a release.
type Measurements struct {
	// Criteria reports every policy criterion's verification, keyed by
	// criterion type (e.g. "k-anonymity", "t-closeness"). Criteria whose
	// sensitive attribute is absent from the released schema are skipped,
	// mirroring the legacy scalar measurements.
	Criteria map[string]CriterionMeasurement
	// K is the smallest equivalence-class size of the release.
	K int
	// DistinctL is the smallest number of distinct sensitive values per
	// class (0 when no sensitive attribute is configured).
	DistinctL int
	// MaxEMD is the largest per-class earth mover's distance to the global
	// sensitive distribution (0 when no sensitive attribute is configured).
	MaxEMD float64
	// NCP is the normalized certainty penalty of the release.
	NCP float64
	// Discernibility is the discernibility metric of the release.
	Discernibility float64
	// ProsecutorMaxRisk is the maximum re-identification probability.
	ProsecutorMaxRisk float64
	// SuppressedRows is the number of records removed by the algorithm.
	SuppressedRows int
}

// Release is the outcome of an anonymization run.
type Release struct {
	// Table is the published microdata table (nil for Anatomy).
	Table *dataset.Table
	// QIT and ST are the Anatomy releases (nil for other algorithms).
	QIT *dataset.Table
	ST  *dataset.Table
	// Anatomy retains the full Anatomy result for query estimation.
	Anatomy *anatomy.Result
	// Algorithm echoes the algorithm used.
	Algorithm Algorithm
	// Policy echoes the canonical privacy policy the release enforced —
	// translated from the flat parameters when the caller used the
	// deprecated surface. Treat it as immutable.
	Policy *policy.Policy
	// Node is the full-domain generalization node when applicable.
	Node []int
	// Measured reports the verified properties of the release.
	Measured Measurements
}

// Anonymizer runs a configured release pipeline.
type Anonymizer struct {
	cfg Config
	alg engine.Algorithm
	// pol is the declared canonical policy: the explicit Config.Policy, or
	// the full translation of the deprecated flat fields. It drives
	// everything user-facing — the extra run criteria, the per-criterion
	// measurements, Verify, and the policy echo — preserving the legacy
	// "trust but verify" contract that a criterion the user declared is
	// measured and verified even when the algorithm cannot enforce it.
	pol *policy.Policy
	// runPol is the policy the engine spec is built from. For an explicit
	// Config.Policy it equals pol (strict: the adapter rejects unsupported
	// criteria); for the flat shim it is pol restricted to the algorithm's
	// supported criterion types, preserving the legacy contract that flat
	// parameters an algorithm does not read are silently ignored at run
	// time. Both may be nil only transiently inside New, for flat
	// configurations that enable no criterion at all — those never survive
	// the adapter's validation.
	runPol *policy.Policy
}

// New validates the configuration and returns an Anonymizer. Cross-algorithm
// parameter ranges are checked here, the privacy criteria are resolved into
// one canonical policy (see Config.Policy), and everything algorithm-specific
// (required parameters, hierarchies, supported criterion types) is delegated
// to the algorithm's own engine adapter, so core carries no per-algorithm
// knowledge.
func New(cfg Config) (*Anonymizer, error) {
	alg, err := engine.Lookup(string(cfg.Algorithm))
	if err != nil {
		return nil, fmt.Errorf("%w: unknown algorithm %q", ErrConfig, cfg.Algorithm)
	}
	cfg.Algorithm = Algorithm(alg.Name())
	if cfg.L < 0 || cfg.T < 0 || cfg.T > 1 {
		return nil, fmt.Errorf("%w: L=%d T=%v", ErrConfig, cfg.L, cfg.T)
	}
	if cfg.MaxSuppression < 0 || cfg.MaxSuppression > 1 {
		return nil, fmt.Errorf("%w: MaxSuppression=%v", ErrConfig, cfg.MaxSuppression)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: Workers=%d", ErrConfig, cfg.Workers)
	}
	if cfg.DiversityMode == "" {
		cfg.DiversityMode = DistinctDiversity
	}
	if cfg.DiversityMode == RecursiveDiversity && cfg.C <= 0 {
		cfg.C = 3
	}
	declared, enforced, err := resolvePolicy(cfg, alg.Describe())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	a := &Anonymizer{cfg: cfg, alg: alg, pol: declared, runPol: enforced}
	if err := alg.Validate(a.spec("", nil)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return a, nil
}

// resolvePolicy turns a configuration into the declared canonical policy
// (user-facing: measurement, verification, echo) and the enforced one (the
// engine spec). An explicit Config.Policy is canonicalized strictly and used
// for both, so criteria the algorithm cannot enforce are rejected by its
// Validate. The deprecated flat fields translate through policy.FromFlat
// whole (declared), and the enforced copy is restricted to the algorithm's
// supported criterion types — the legacy contract that flat parameters an
// algorithm does not read are silently ignored at run time, while "trust
// but verify" still measures everything that was asked for.
func resolvePolicy(cfg Config, info engine.Info) (declared, enforced *policy.Policy, err error) {
	if cfg.Policy != nil {
		if cfg.K != 0 || cfg.L != 0 || cfg.C != 0 || cfg.T != 0 || cfg.OrderedSensitive ||
			cfg.MaxSuppression != 0 || (cfg.DiversityMode != "" && cfg.DiversityMode != DistinctDiversity) {
			return nil, nil, fmt.Errorf("Policy and the deprecated flat privacy parameters are mutually exclusive")
		}
		canon, err := cfg.Policy.Canonical()
		if err != nil {
			return nil, nil, err
		}
		return canon, canon, nil
	}
	pol, err := policy.FromFlat(policy.Flat{
		K:                cfg.K,
		L:                cfg.L,
		DiversityMode:    string(cfg.DiversityMode),
		C:                cfg.C,
		T:                cfg.T,
		OrderedSensitive: cfg.OrderedSensitive,
		Sensitive:        cfg.Sensitive,
		MaxSuppression:   cfg.MaxSuppression,
	})
	if errors.Is(err, policy.ErrNoCriteria) {
		// Nothing enabled: let the adapter's validation report its natural
		// error (K or L missing) instead of a translation error.
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	enforced = pol.Restrict(info.Criteria)
	// The flat "l" parameter is the bucket size for algorithms that enforce
	// distinct-l-diversity (Anatomy) no matter which diversity_mode was
	// selected — the mode has always been an ignored parameter there. When
	// restriction dropped a non-distinct variant, re-declare the criterion
	// the algorithm actually enforces so Spec.L keeps carrying cfg.L.
	if cfg.L > 1 && info.SupportsCriterion(policy.DistinctLDiversity) && !hasDiversity(enforced) {
		enforced.Criteria = append(enforced.Criteria,
			policy.Criterion{Type: policy.DistinctLDiversity, L: float64(cfg.L), Sensitive: cfg.Sensitive})
		if enforced, err = enforced.Canonical(); err != nil {
			return nil, nil, err
		}
	}
	return pol, enforced, nil
}

// hasDiversity reports whether the policy carries any l-diversity-family
// criterion.
func hasDiversity(p *policy.Policy) bool {
	for _, c := range p.Criteria {
		if policy.IsDiversity(c.Type) {
			return true
		}
	}
	return false
}

// spec maps the resolved policy and the run tuning onto the engine's
// algorithm-agnostic run specification. The sensitive attribute and the
// extra criteria are resolved per table at Anonymize time and empty during
// New-time validation.
func (a *Anonymizer) spec(sensitive string, extra []privacy.Criterion) engine.Spec {
	spec := engine.Spec{
		Sensitive:        sensitive,
		QuasiIdentifiers: a.cfg.QuasiIdentifiers,
		Hierarchies:      a.cfg.Hierarchies,
		Strict:           a.cfg.StrictMondrian,
		Workers:          a.cfg.Workers,
		Extra:            extra,
		Policy:           a.runPol,
		Progress:         a.cfg.Progress,
	}
	if a.runPol != nil {
		spec.K = a.runPol.KAnonymityK()
		spec.L = a.runPol.BucketL()
		spec.MaxSuppression = a.runPol.SuppressionBudget()
	}
	return spec
}

// WithProgress returns a copy of the anonymizer whose runs report progress to
// sink; the receiver is unchanged. Executors that validate a configuration
// once and then attach a per-run sink (the jobs layer of the HTTP service)
// use this instead of rebuilding the Anonymizer.
func (a *Anonymizer) WithProgress(sink func(done, total int)) *Anonymizer {
	b := *a
	b.cfg.Progress = sink
	return &b
}

// Config returns a copy of the anonymizer's configuration.
func (a *Anonymizer) Config() Config { return a.cfg }

// sensitiveAttr resolves the sensitive attribute for a table.
func (a *Anonymizer) sensitiveAttr(t *dataset.Table) string {
	if a.cfg.Sensitive != "" {
		return a.cfg.Sensitive
	}
	names := t.Schema().SensitiveNames()
	if len(names) > 0 {
		return names[0]
	}
	return ""
}

// extraCriteria instantiates the policy's attribute-linkage criteria against
// the resolved sensitive attribute.
func (a *Anonymizer) extraCriteria(sensitive string) ([]privacy.Criterion, error) {
	if a.pol == nil {
		return nil, nil
	}
	out, err := a.pol.AttributeCriteria(sensitive)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return out, nil
}

// Policy returns the declared canonical privacy policy — the explicit
// Config.Policy, or the full translation of the deprecated flat parameters.
// It is what the pipeline measures, verifies and echoes; flat parameters
// the algorithm does not read stay declared here even though the run
// ignores them (their measurement entries report whether the release
// happens to satisfy them). Treat it as immutable.
func (a *Anonymizer) Policy() *policy.Policy { return a.pol }

// Anonymize runs the configured pipeline on t with no cancellation; it is
// shorthand for AnonymizeContext with a background context.
func (a *Anonymizer) Anonymize(t *dataset.Table) (*Release, error) {
	return a.AnonymizeContext(context.Background(), t)
}

// AnonymizeContext runs the configured pipeline on t: direct identifiers are
// dropped, the algorithm's engine adapter is run, and the release is
// measured. The context bounds the run: every algorithm polls it at its
// natural unit of work (see internal/engine), so a canceled or timed-out
// request returns ctx.Err() instead of a release.
func (a *Anonymizer) AnonymizeContext(ctx context.Context, t *dataset.Table) (*Release, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	input, err := a.inputTable(t)
	if err != nil {
		return nil, err
	}
	// The chunked scan kernels (GroupBy, Fingerprint, metric scans) take
	// their worker bound from the table handle, so one setting here covers
	// every scan in the run without threading Workers through the seven
	// algorithm signatures. Every kernel is byte-identical for all worker
	// counts; see internal/parallel.
	input.SetScanWorkers(a.scanWorkers())
	sensitive := a.sensitiveAttr(input)
	extra, err := a.extraCriteria(sensitive)
	if err != nil {
		return nil, err
	}
	res, err := a.alg.Run(ctx, input, a.spec(sensitive, extra))
	if err != nil {
		return nil, err
	}

	release := &Release{
		Algorithm: a.cfg.Algorithm,
		Policy:    a.pol,
		Table:     res.Table,
		QIT:       res.QIT,
		ST:        res.ST,
		Node:      res.Node,
	}
	// Released tables inherit the scan-worker bound so the measurement
	// passes below — and any later report computed from the release — use
	// the same parallelism as the run itself.
	for _, rt := range []*dataset.Table{release.Table, release.QIT, release.ST} {
		if rt != nil {
			rt.SetScanWorkers(a.scanWorkers())
		}
	}
	release.Measured.SuppressedRows = res.SuppressedRows
	if anat, ok := res.Extra.(*anatomy.Result); ok {
		release.Anatomy = anat
	}

	// Gate between the algorithm and the measurement phase so a request
	// canceled right at the boundary skips the grouping and metric passes.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if release.Table != nil {
		m, err := a.measure(input, release.Table, sensitive)
		if err != nil {
			return nil, err
		}
		m.SuppressedRows = release.Measured.SuppressedRows
		release.Measured = *m
	}
	return release, nil
}

// inputTable prepares the run input: direct identifiers are dropped, as
// always — except the id column an m-invariance criterion tracks records by.
// Sequential re-publication is the one pipeline that must see a
// (pseudonymous) per-record identity; the republish algorithm publishes it
// only in the QIT's audit column, never generalizes over it.
func (a *Anonymizer) inputTable(t *dataset.Table) (*dataset.Table, error) {
	keepID := ""
	if a.pol != nil {
		if c, ok := a.pol.Find(policy.MInvariance); ok {
			keepID = c.ID
		}
	}
	if keepID == "" {
		return t.DropIdentifiers()
	}
	var keep []string
	for _, attr := range t.Schema().Attributes() {
		if attr.Kind != dataset.Identifier || attr.Name == keepID {
			keep = append(keep, attr.Name)
		}
	}
	return t.Project(keep...)
}

// scanWorkers resolves Config.Workers for the table-scan kernels with the
// same semantics the algorithms use: zero means GOMAXPROCS, one forces
// sequential scans.
func (a *Anonymizer) scanWorkers() int {
	if w := a.cfg.Workers; w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// measure verifies the privacy level and utility of a microdata release.
func (a *Anonymizer) measure(original, released *dataset.Table, sensitive string) (*Measurements, error) {
	m := &Measurements{}
	qiNames := released.Schema().QuasiIdentifierNames()
	if len(a.cfg.QuasiIdentifiers) > 0 {
		qiNames = a.cfg.QuasiIdentifiers
	}
	classes, err := released.GroupBy(qiNames...)
	if err != nil {
		return nil, err
	}
	m.K = privacy.MeasureK(classes)
	orderedEMD := a.cfg.OrderedSensitive
	if a.pol != nil {
		if tc, ok := a.pol.Find(policy.TCloseness); ok {
			orderedEMD = tc.Ordered
		}
	}
	if sensitive != "" && released.Schema().Has(sensitive) {
		l, err := privacy.MeasureDistinctL(released, classes, sensitive)
		if err != nil {
			return nil, err
		}
		m.DistinctL = l
		emd, err := privacy.MeasureMaxEMD(released, classes, sensitive, orderedEMD)
		if err != nil {
			return nil, err
		}
		m.MaxEMD = emd
	}
	if err := a.measureCriteria(m, released, classes, sensitive); err != nil {
		return nil, err
	}
	// Metric failures are real failures: a release whose utility cannot be
	// measured must not report a perfect 0.0, so the errors propagate instead
	// of being dropped.
	ncp, err := metrics.NCP(original, released, a.cfg.Hierarchies)
	if err != nil {
		return nil, fmt.Errorf("core: NCP: %w", err)
	}
	m.NCP = ncp
	dm, err := metrics.Discernibility(released, original.Len())
	if err != nil {
		return nil, fmt.Errorf("core: discernibility: %w", err)
	}
	m.Discernibility = dm
	// Prosecutor risk over the same quasi-identifier the release was built
	// for (the schema may contain further QI columns the caller chose not to
	// anonymize; risk.MeasureReidentification covers that stricter view).
	if m.K > 0 {
		m.ProsecutorMaxRisk = 1 / float64(m.K)
	}
	return m, nil
}

// measureCriteria fills Measurements.Criteria with one verification entry
// per policy criterion, keyed by criterion type. Criteria whose sensitive
// attribute is not a column of the released table are skipped, mirroring the
// legacy scalar measurements.
func (a *Anonymizer) measureCriteria(m *Measurements, released *dataset.Table, classes []dataset.EquivalenceClass, sensitive string) error {
	if a.pol == nil || len(a.pol.Criteria) == 0 {
		return nil
	}
	m.Criteria = make(map[string]CriterionMeasurement, len(a.pol.Criteria))
	for _, c := range a.pol.ResolveSensitive(sensitive).Criteria {
		entry := CriterionMeasurement{Sensitive: c.Sensitive}
		if c.Type != policy.KAnonymity {
			if c.Sensitive == "" || !released.Schema().Has(c.Sensitive) {
				continue
			}
		}
		var err error
		switch c.Type {
		case policy.KAnonymity:
			entry.Target = float64(c.K)
			entry.Measured = float64(privacy.MeasureK(classes))
			entry.Satisfied = entry.Measured >= entry.Target
		case policy.AlphaKAnonymity:
			entry.Target = c.Alpha
			entry.Measured, err = privacy.MeasureMaxAlpha(released, classes, c.Sensitive)
			entry.Satisfied = err == nil && entry.Measured <= c.Alpha && privacy.MeasureK(classes) >= c.K
		case policy.DistinctLDiversity:
			entry.Target = c.L
			var l int
			l, err = privacy.MeasureDistinctL(released, classes, c.Sensitive)
			entry.Measured = float64(l)
			entry.Satisfied = err == nil && entry.Measured >= c.L
		case policy.EntropyLDiversity:
			entry.Target = c.L
			var h float64
			h, err = privacy.MeasureEntropyL(released, classes, c.Sensitive)
			// Report the effective l (e^H), directly comparable to the target.
			entry.Measured = math.Exp(h)
			entry.Satisfied = err == nil && h >= math.Log(c.L)-1e-12
		case policy.RecursiveCLDiversity:
			entry.Target = c.C
			entry.Measured, err = privacy.MeasureRecursiveC(released, classes, int(c.L), c.Sensitive)
			entry.Satisfied = err == nil && entry.Measured < c.C
		case policy.TCloseness:
			entry.Target = c.T
			entry.Measured, err = privacy.MeasureMaxEMD(released, classes, c.Sensitive, c.Ordered)
			entry.Satisfied = err == nil && entry.Measured <= c.T+1e-12
		default:
			continue
		}
		if err != nil {
			return fmt.Errorf("core: measure %s: %w", c.Type, err)
		}
		m.Criteria[c.Type] = entry
	}
	return nil
}

// Verify re-checks the configured privacy criteria against a microdata
// release and returns the name of the first violated criterion (empty when
// all hold).
func (a *Anonymizer) Verify(released *dataset.Table) (bool, string, error) {
	sensitive := a.sensitiveAttr(released)
	extra, err := a.extraCriteria(sensitive)
	if err != nil {
		return false, "", err
	}
	qi := a.cfg.QuasiIdentifiers
	if len(qi) == 0 {
		qi = released.Schema().QuasiIdentifierNames()
	}
	classes, err := released.GroupBy(qi...)
	if err != nil {
		return false, "", err
	}
	k := 1
	if a.pol != nil {
		k = max(a.pol.KAnonymityK(), 1)
	}
	criteria := append([]privacy.Criterion{privacy.KAnonymity{K: k}}, extra...)
	return privacy.CheckAll(released, classes, criteria...)
}

// FullDomainPrecision is a convenience that computes Sweeney's precision for
// a full-domain release node produced by Datafly, Samarati, Incognito or
// TopDown under the anonymizer's hierarchies.
func (a *Anonymizer) FullDomainPrecision(node []int, qi []string) (float64, error) {
	if a.cfg.Hierarchies == nil {
		return 0, fmt.Errorf("%w: precision requires hierarchies", ErrConfig)
	}
	maxLevels, err := a.cfg.Hierarchies.MaxLevels(qi)
	if err != nil {
		return 0, err
	}
	return metrics.GeneralizationPrecision(node, maxLevels)
}

// LatticeSize reports how many full-domain recodings exist for the given
// quasi-identifier under the anonymizer's hierarchies — a quick way to judge
// whether an exhaustive lattice search is feasible.
func (a *Anonymizer) LatticeSize(qi []string) (int, error) {
	if a.cfg.Hierarchies == nil {
		return 0, fmt.Errorf("%w: lattice size requires hierarchies", ErrConfig)
	}
	maxLevels, err := a.cfg.Hierarchies.MaxLevels(qi)
	if err != nil {
		return 0, err
	}
	lat, err := lattice.New(qi, maxLevels)
	if err != nil {
		return 0, err
	}
	return lat.Size(), nil
}
