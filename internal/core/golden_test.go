package core

import (
	"bytes"
	"context"
	"slices"
	"testing"

	"github.com/ppdp/ppdp/internal/algorithms/anatomy"
	"github.com/ppdp/ppdp/internal/algorithms/datafly"
	"github.com/ppdp/ppdp/internal/algorithms/incognito"
	"github.com/ppdp/ppdp/internal/algorithms/kmember"
	"github.com/ppdp/ppdp/internal/algorithms/mondrian"
	"github.com/ppdp/ppdp/internal/algorithms/samarati"
	"github.com/ppdp/ppdp/internal/algorithms/topdown"
	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/synth"
)

// csvOf renders a table for byte-exact comparison.
func csvOf(t *testing.T, tbl *dataset.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRegistryDispatchGolden locks in that the registry-driven pipeline is a
// pure refactor: for every algorithm, core.AnonymizeContext must release a
// byte-identical table (and identical node / suppression accounting) to a
// direct invocation of the algorithm package with the configuration the
// pre-refactor dispatch switch used to build.
func TestRegistryDispatchGolden(t *testing.T) {
	ctx := context.Background()
	tbl := synth.Census(500, 9)
	hs := synth.CensusHierarchies()
	input, err := tbl.DropIdentifiers()
	if err != nil {
		t.Fatal(err)
	}
	const (
		k        = 5
		suppress = 0.02
	)
	// The 5-attribute census QI keeps the full-domain lattices small enough
	// for the exhaustive searches to stay fast under -race.
	qi := []string{"age", "sex", "education", "marital-status", "race"}

	// direct runs one algorithm package exactly as the old switch did and
	// returns the released table plus node/suppression metadata.
	type goldenRun struct {
		alg      Algorithm
		direct   func() (*dataset.Table, []int, int, error)
		viaTable func(rel *Release) *dataset.Table
	}
	microdata := func(rel *Release) *dataset.Table { return rel.Table }
	runs := []goldenRun{
		{Mondrian, func() (*dataset.Table, []int, int, error) {
			res, err := mondrian.AnonymizeContext(ctx, input, mondrian.Config{K: k, QuasiIdentifiers: qi, Hierarchies: hs})
			if err != nil {
				return nil, nil, 0, err
			}
			return res.Table, nil, 0, nil
		}, microdata},
		{Datafly, func() (*dataset.Table, []int, int, error) {
			res, err := datafly.Anonymize(input, datafly.Config{K: k, QuasiIdentifiers: qi, Hierarchies: hs, MaxSuppression: suppress})
			if err != nil {
				return nil, nil, 0, err
			}
			return res.Table, res.Node, res.SuppressedRows, nil
		}, microdata},
		{Samarati, func() (*dataset.Table, []int, int, error) {
			res, err := samarati.Anonymize(input, samarati.Config{K: k, QuasiIdentifiers: qi, Hierarchies: hs, MaxSuppression: suppress})
			if err != nil {
				return nil, nil, 0, err
			}
			return res.Table, res.Node, res.SuppressedRows, nil
		}, microdata},
		{Incognito, func() (*dataset.Table, []int, int, error) {
			res, err := incognito.Anonymize(input, incognito.Config{K: k, QuasiIdentifiers: qi, Hierarchies: hs})
			if err != nil {
				return nil, nil, 0, err
			}
			return res.Table, res.Node, 0, nil
		}, microdata},
		{TopDown, func() (*dataset.Table, []int, int, error) {
			res, err := topdown.Anonymize(input, topdown.Config{K: k, QuasiIdentifiers: qi, Hierarchies: hs})
			if err != nil {
				return nil, nil, 0, err
			}
			return res.Table, res.Node, 0, nil
		}, microdata},
		{KMember, func() (*dataset.Table, []int, int, error) {
			res, err := kmember.Anonymize(input, kmember.Config{K: k, QuasiIdentifiers: qi, Hierarchies: hs})
			if err != nil {
				return nil, nil, 0, err
			}
			return res.Table, nil, 0, nil
		}, microdata},
	}
	for _, run := range runs {
		t.Run(string(run.alg), func(t *testing.T) {
			a, err := New(Config{Algorithm: run.alg, K: k, QuasiIdentifiers: qi, Hierarchies: hs, MaxSuppression: suppress})
			if err != nil {
				t.Fatal(err)
			}
			rel, err := a.AnonymizeContext(ctx, tbl)
			if err != nil {
				t.Fatal(err)
			}
			wantTable, wantNode, wantSuppressed, err := run.direct()
			if err != nil {
				t.Fatal(err)
			}
			got := run.viaTable(rel)
			if got == nil {
				t.Fatal("registry dispatch released no table")
			}
			if !bytes.Equal(csvOf(t, got), csvOf(t, wantTable)) {
				t.Error("registry dispatch table differs from direct invocation")
			}
			if !slices.Equal(rel.Node, wantNode) {
				t.Errorf("node = %v, direct = %v", rel.Node, wantNode)
			}
			if rel.Measured.SuppressedRows != wantSuppressed {
				t.Errorf("suppressed = %d, direct = %d", rel.Measured.SuppressedRows, wantSuppressed)
			}
		})
	}

	// Anatomy needs an l-eligible sensitive distribution; the census salary
	// column is majority-dominated, so its golden check runs on the hospital
	// fixture.
	t.Run("anatomy", func(t *testing.T) {
		htbl := synth.Hospital(500, 9)
		hinput, err := htbl.DropIdentifiers()
		if err != nil {
			t.Fatal(err)
		}
		a, err := New(Config{Algorithm: Anatomy, L: 3})
		if err != nil {
			t.Fatal(err)
		}
		rel, err := a.AnonymizeContext(ctx, htbl)
		if err != nil {
			t.Fatal(err)
		}
		want, err := anatomy.Anonymize(hinput, anatomy.Config{L: 3, Sensitive: "diagnosis"})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csvOf(t, rel.QIT), csvOf(t, want.QIT)) {
			t.Error("registry dispatch QIT differs from direct invocation")
		}
		if !bytes.Equal(csvOf(t, rel.ST), csvOf(t, want.ST)) {
			t.Error("registry dispatch ST differs from direct invocation")
		}
		if rel.Anatomy == nil {
			t.Error("release lost the anatomy payload")
		}
	})
}
