package core_test

import (
	"fmt"
	"log"

	"github.com/ppdp/ppdp/internal/core"
	"github.com/ppdp/ppdp/internal/synth"
)

// ExampleAnonymizer shows the canonical release pipeline: configure, run,
// verify, and read back the measured privacy level.
func ExampleAnonymizer() {
	table := synth.Hospital(500, 1)

	anonymizer, err := core.New(core.Config{
		Algorithm:   core.Mondrian,
		K:           5,
		L:           2,
		Sensitive:   "diagnosis",
		Hierarchies: synth.HospitalHierarchies(),
	})
	if err != nil {
		log.Fatal(err)
	}
	release, err := anonymizer.Anonymize(table)
	if err != nil {
		log.Fatal(err)
	}
	ok, _, err := anonymizer.Verify(release.Table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", release.Table.Len())
	fmt.Println("k satisfied:", release.Measured.K >= 5)
	fmt.Println("l satisfied:", release.Measured.DistinctL >= 2)
	fmt.Println("verified:", ok)
	// Output:
	// rows: 500
	// k satisfied: true
	// l satisfied: true
	// verified: true
}
