package core

import (
	"context"
	"errors"
	"testing"

	"github.com/ppdp/ppdp/internal/metrics"
	"github.com/ppdp/ppdp/internal/synth"
)

func TestParseAlgorithm(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(string(a))
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a, got, err)
		}
	}
	if got, err := ParseAlgorithm(""); err != nil || got != Mondrian {
		t.Errorf("ParseAlgorithm(\"\") = %v, %v", got, err)
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestNewValidation(t *testing.T) {
	hs := synth.HospitalHierarchies()
	cases := []Config{
		{Algorithm: "bogus", K: 2},
		{Algorithm: Mondrian, K: 0},
		{Algorithm: Anatomy, L: 1},
		{Algorithm: Mondrian, K: 2, T: 1.5},
		{Algorithm: Mondrian, K: 2, MaxSuppression: 2},
		{Algorithm: Datafly, K: 2}, // needs hierarchies
	}
	for i, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: error = %v", i, err)
		}
	}
	a, err := New(Config{Algorithm: Datafly, K: 2, Hierarchies: hs})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if a.Config().Algorithm != Datafly {
		t.Errorf("Config() = %+v", a.Config())
	}
	// Recursive diversity defaults C to 3.
	a, err = New(Config{Algorithm: Mondrian, K: 2, L: 2, DiversityMode: RecursiveDiversity, Sensitive: "diagnosis"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config().C != 3 {
		t.Errorf("default C = %v", a.Config().C)
	}
}

func TestAnonymizeMicrodataAlgorithms(t *testing.T) {
	tbl := synth.Hospital(600, 1)
	hs := synth.HospitalHierarchies()
	qi := []string{"age", "zip", "sex"}
	for _, alg := range []Algorithm{Mondrian, Datafly, Samarati, Incognito, TopDown, KMember} {
		cfg := Config{
			Algorithm:        alg,
			K:                5,
			QuasiIdentifiers: qi,
			Hierarchies:      hs,
			MaxSuppression:   0.05,
		}
		a, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", alg, err)
		}
		rel, err := a.Anonymize(tbl)
		if err != nil {
			t.Fatalf("%s: Anonymize: %v", alg, err)
		}
		if rel.Table == nil {
			t.Fatalf("%s: nil release table", alg)
		}
		if rel.Table.Schema().Has("name") {
			t.Errorf("%s: direct identifier not dropped", alg)
		}
		if rel.Measured.K < 5 {
			t.Errorf("%s: measured k = %d", alg, rel.Measured.K)
		}
		if rel.Measured.ProsecutorMaxRisk > 1.0/5+1e-9 {
			t.Errorf("%s: prosecutor risk %v above 1/k", alg, rel.Measured.ProsecutorMaxRisk)
		}
		if rel.Measured.NCP < 0 || rel.Measured.NCP > 1 {
			t.Errorf("%s: NCP %v out of range", alg, rel.Measured.NCP)
		}
		ok, failed, err := a.Verify(rel.Table)
		if err != nil || !ok {
			t.Errorf("%s: Verify = %v, %q, %v", alg, ok, failed, err)
		}
	}
}

func TestAnonymizeWithDiversityAndCloseness(t *testing.T) {
	tbl := synth.Hospital(1000, 2)
	a, err := New(Config{
		Algorithm:        Mondrian,
		K:                5,
		L:                2,
		T:                0.4,
		Sensitive:        "diagnosis",
		QuasiIdentifiers: []string{"age", "zip", "sex"},
		Hierarchies:      synth.HospitalHierarchies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := a.Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Measured.DistinctL < 2 {
		t.Errorf("measured distinct l = %d", rel.Measured.DistinctL)
	}
	if rel.Measured.MaxEMD > 0.4+1e-9 {
		t.Errorf("measured max EMD = %v", rel.Measured.MaxEMD)
	}
	ok, failed, err := a.Verify(rel.Table)
	if err != nil || !ok {
		t.Errorf("Verify = %v, %q, %v", ok, failed, err)
	}
}

func TestAnonymizeEntropyAndRecursiveModes(t *testing.T) {
	tbl := synth.Hospital(800, 3)
	for _, mode := range []DiversityMode{EntropyDiversity, RecursiveDiversity} {
		a, err := New(Config{
			Algorithm:        Mondrian,
			K:                4,
			L:                2,
			DiversityMode:    mode,
			Sensitive:        "diagnosis",
			QuasiIdentifiers: []string{"age", "zip", "sex"},
		})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		rel, err := a.Anonymize(tbl)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if rel.Measured.K < 4 {
			t.Errorf("%s: measured k = %d", mode, rel.Measured.K)
		}
	}
	// Unknown mode is rejected at New time by the policy translation (the
	// pre-policy pipeline only caught it at Anonymize time).
	if _, err := New(Config{Algorithm: Mondrian, K: 2, L: 2, DiversityMode: "bogus", Sensitive: "diagnosis"}); !errors.Is(err, ErrConfig) {
		t.Errorf("bogus diversity mode error = %v", err)
	}
}

func TestAnonymizeAnatomy(t *testing.T) {
	tbl := synth.Hospital(800, 4)
	a, err := New(Config{Algorithm: Anatomy, L: 3})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := a.Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Table != nil {
		t.Error("anatomy should not produce a single microdata table")
	}
	if rel.QIT == nil || rel.ST == nil || rel.Anatomy == nil {
		t.Fatal("anatomy release missing QIT/ST")
	}
	if rel.QIT.Len() != tbl.Len() {
		t.Errorf("QIT rows = %d", rel.QIT.Len())
	}
}

func TestLatticeSizeAndPrecision(t *testing.T) {
	hs := synth.HospitalHierarchies()
	a, err := New(Config{Algorithm: Datafly, K: 2, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	size, err := a.LatticeSize([]string{"age", "sex"})
	if err != nil {
		t.Fatal(err)
	}
	if size != 6*2 {
		t.Errorf("LatticeSize = %d", size)
	}
	p, err := a.FullDomainPrecision([]int{5, 1}, []string{"age", "sex"})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("full generalization precision = %v", p)
	}
	noH, _ := New(Config{Algorithm: Mondrian, K: 2})
	if _, err := noH.LatticeSize([]string{"age"}); !errors.Is(err, ErrConfig) {
		t.Errorf("LatticeSize without hierarchies = %v", err)
	}
	if _, err := noH.FullDomainPrecision([]int{1}, []string{"age"}); !errors.Is(err, ErrConfig) {
		t.Errorf("precision without hierarchies = %v", err)
	}
}

func TestSensitiveDefaultsAndLDiversityWithoutSensitive(t *testing.T) {
	tbl := synth.Hospital(300, 5)
	// Drop the sensitive column to provoke the error path.
	plain, err := tbl.Project("age", "zip", "sex")
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Algorithm: Mondrian, K: 2, L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Anonymize(plain); !errors.Is(err, ErrConfig) {
		t.Errorf("l-diversity without sensitive attribute error = %v", err)
	}
	// Without L it works and skips the sensitive measurements.
	a2, _ := New(Config{Algorithm: Mondrian, K: 2})
	rel, err := a2.Anonymize(plain)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Measured.DistinctL != 0 {
		t.Errorf("DistinctL measured without sensitive attribute: %d", rel.Measured.DistinctL)
	}
}

// TestParseAlgorithmStrictness locks in that parsing is exact: no case
// folding, no whitespace trimming, no prefixes.
func TestParseAlgorithmStrictness(t *testing.T) {
	for _, s := range []string{"Mondrian", "MONDRIAN", " mondrian", "mondrian ", "mond", "mondrian2"} {
		if got, err := ParseAlgorithm(s); err == nil {
			t.Errorf("ParseAlgorithm(%q) = %v, want error", s, got)
		}
	}
	// Every listed algorithm round-trips through its string form.
	for _, a := range Algorithms() {
		if got, err := ParseAlgorithm(string(a)); err != nil || got != a {
			t.Errorf("round-trip %q = %v, %v", a, got, err)
		}
	}
}

// TestAnonymizeContext checks that cancellation reaches the pipeline for both
// the context-aware Mondrian path and the gated non-Mondrian paths.
func TestAnonymizeContext(t *testing.T) {
	tbl := synth.Census(600, 3)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []Algorithm{Mondrian, KMember} {
		a, err := New(Config{Algorithm: alg, K: 5, Hierarchies: synth.CensusHierarchies()})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if _, err := a.AnonymizeContext(canceled, tbl); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: canceled error = %v, want context.Canceled", alg, err)
		}
		if _, err := a.AnonymizeContext(context.Background(), tbl); err != nil {
			t.Errorf("%s: live context failed: %v", alg, err)
		}
	}
	// Anonymize (no context) is unchanged.
	a, err := New(Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Anonymize(tbl); err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
}

// TestMeasureErrorsPropagate locks in that a failing utility metric is a
// failing measurement: NCP and discernibility errors must surface instead of
// silently reading as a perfect 0.0.
func TestMeasureErrorsPropagate(t *testing.T) {
	released, err := synth.Hospital(80, 6).DropIdentifiers()
	if err != nil {
		t.Fatal(err)
	}
	// An "original" missing one of the release's quasi-identifier columns
	// makes NCP's domain lookups fail with ErrMismatchedTables.
	original, err := released.Project("age", "zip", "sex")
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.measure(original, released, ""); !errors.Is(err, metrics.ErrMismatchedTables) {
		t.Fatalf("measure error = %v, want ErrMismatchedTables to propagate", err)
	}
}

// TestWorkersValidation checks the Workers knob on the core config.
func TestWorkersValidation(t *testing.T) {
	if _, err := New(Config{K: 2, Workers: -1}); !errors.Is(err, ErrConfig) {
		t.Errorf("negative workers error = %v, want ErrConfig", err)
	}
	a, err := New(Config{K: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := a.Anonymize(synth.Census(400, 4))
	if err != nil || rel.Measured.K < 5 {
		t.Fatalf("workers=2 release = %+v, err %v", rel, err)
	}
}
