package core

import (
	"context"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/engine"
	"github.com/ppdp/ppdp/internal/policy"
	"github.com/ppdp/ppdp/internal/synth"
	"github.com/ppdp/ppdp/internal/testctx"
)

// progressEvent is one recorded (done, total) sink call.
type progressEvent struct{ done, total int }

// progressConfig builds a runnable Config for one registered algorithm on the
// fixture that suits it (anatomy needs the hospital's l-eligible sensitive
// distribution; everything else runs on census).
func progressConfig(name string) (Config, *dataset.Table) {
	switch name {
	case "anatomy":
		return Config{Algorithm: Algorithm(name), L: 3}, synth.Hospital(300, 9)
	case "republish":
		pol := &policy.Policy{Criteria: []policy.Criterion{
			{Type: policy.MInvariance, M: 2, ID: "name", Sensitive: "diagnosis"},
		}}
		return Config{Algorithm: Algorithm(name), Policy: pol}, synth.Hospital(300, 9)
	default:
		return Config{
			Algorithm:        Algorithm(name),
			K:                10,
			QuasiIdentifiers: []string{"age", "sex", "education", "marital-status", "race"},
			Hierarchies:      synth.CensusHierarchies(),
			MaxSuppression:   0.02,
			Workers:          2,
		}, synth.Census(300, 9)
	}
}

// TestProgressReportingAllAlgorithms asserts the engine-level progress
// contract for every registered algorithm: the delivered stream is strictly
// increasing in done, carries one fixed total, includes at least one
// intermediate event strictly between 0 and completion, and ends with a
// (total, total) completion event.
func TestProgressReportingAllAlgorithms(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			cfg, fixture := progressConfig(name)
			var events []progressEvent
			cfg.Progress = func(done, total int) {
				events = append(events, progressEvent{done, total})
			}
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rel, err := a.Anonymize(fixture)
			if err != nil {
				t.Fatal(err)
			}
			if rel == nil {
				t.Fatal("no release")
			}
			if len(events) < 3 {
				t.Fatalf("only %d progress events delivered: %v", len(events), events)
			}
			total := events[0].total
			if total <= 0 {
				t.Fatalf("non-positive total in first event: %+v", events[0])
			}
			intermediate := false
			for i, e := range events {
				if e.total != total {
					t.Errorf("event %d changed total: %+v (run total %d)", i, e, total)
				}
				if i > 0 && e.done <= events[i-1].done {
					t.Errorf("event %d not strictly increasing: %v after %v", i, e, events[i-1])
				}
				if e.done > e.total {
					t.Errorf("event %d overshoots total: %+v", i, e)
				}
				if e.done > 0 && e.done < total {
					intermediate = true
				}
			}
			if !intermediate {
				t.Errorf("no intermediate event strictly between 0 and %d: %v", total, events)
			}
			if last := events[len(events)-1]; last.done != total {
				t.Errorf("final event %+v does not complete the run (total %d)", last, total)
			}
		})
	}
}

// TestProgressSilentAfterCancel asserts a canceled run does not fabricate a
// completion event: every delivered done stays below the total.
func TestProgressSilentAfterCancel(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			cfg, fixture := progressConfig(name)
			cfg.Workers = 1 // deterministic poll counting
			var events []progressEvent
			// Mondrian observes cancellation through the context's Done
			// channel rather than Err() polls, so testctx's poll countdown
			// never trips it; cancel from inside the sink instead — the
			// fixtures all deliver well over three events (see
			// TestProgressReportingAllAlgorithms), so the run is aborted
			// reliably mid-flight either way.
			ctx := testctx.CancelAfter(3)
			cancel := context.CancelFunc(func() {})
			if name == "mondrian" {
				ctx, cancel = context.WithCancel(context.Background())
			}
			defer cancel()
			cfg.Progress = func(done, total int) {
				events = append(events, progressEvent{done, total})
				if len(events) == 3 {
					cancel()
				}
			}
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.AnonymizeContext(ctx, fixture); err == nil {
				t.Fatal("run with a tripping context succeeded")
			}
			for _, e := range events {
				if e.total > 0 && e.done >= e.total {
					t.Errorf("canceled run reported completion: %+v", e)
				}
			}
		})
	}
}

func TestWithProgressLeavesReceiverUntouched(t *testing.T) {
	cfg, fixture := progressConfig("mondrian")
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	b := a.WithProgress(func(done, total int) { called = true })
	if _, err := b.Anonymize(fixture); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("WithProgress sink never called")
	}
	if a.Config().Progress != nil {
		t.Error("WithProgress mutated the receiver's configuration")
	}
	// The original anonymizer still runs silently.
	called = false
	if _, err := a.Anonymize(fixture); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("original anonymizer reported to the copy's sink")
	}
}
