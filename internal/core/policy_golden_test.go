package core

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/ppdp/ppdp/internal/dataset"
	"github.com/ppdp/ppdp/internal/policy"
	"github.com/ppdp/ppdp/internal/synth"
)

// flatGoldenConfig returns the flat configuration the policy-equivalence
// golden test runs for one algorithm, exercising the parameters it reads.
// The test fails for a registered algorithm without a case here, so an
// eighth algorithm cannot silently skip the equivalence proof.
func flatGoldenConfig(t *testing.T, alg Algorithm) (Config, *dataset.Table) {
	t.Helper()
	census := synth.Census(500, 9)
	censusQI := []string{"age", "sex", "education", "marital-status", "race"}
	base := Config{
		Algorithm:        alg,
		K:                5,
		QuasiIdentifiers: censusQI,
		Hierarchies:      synth.CensusHierarchies(),
		MaxSuppression:   0.02,
	}
	switch alg {
	case Mondrian:
		base.L, base.Sensitive = 2, "occupation"
		return base, census
	case Datafly, Samarati, KMember:
		return base, census
	case Incognito, TopDown:
		base.T, base.Sensitive = 0.5, "occupation"
		return base, census
	case Anatomy:
		return Config{
			Algorithm: Anatomy,
			L:         3,
			Sensitive: "diagnosis",
		}, synth.Hospital(600, 9)
	case "republish":
		// m-invariance is deliberately not flat-expressible (policy.Flat
		// errors on it), so there is no flat configuration to prove
		// equivalent; the policy document is republish's only surface.
		t.Skip("republish has no flat-parameter surface")
		return Config{}, nil
	default:
		t.Fatalf("no golden flat configuration for algorithm %q — add one to keep the policy equivalence proof exhaustive", alg)
		return Config{}, nil
	}
}

// policyConfigOf translates a flat golden configuration into its explicit
// policy-document form: the same translation the deprecated shim applies,
// but submitted through Config.Policy the way a new-style caller would.
func policyConfigOf(t *testing.T, flat Config) Config {
	t.Helper()
	pol, err := policy.FromFlat(policy.Flat{
		K:                flat.K,
		L:                flat.L,
		DiversityMode:    string(flat.DiversityMode),
		C:                flat.C,
		T:                flat.T,
		OrderedSensitive: flat.OrderedSensitive,
		Sensitive:        flat.Sensitive,
		MaxSuppression:   flat.MaxSuppression,
	})
	if err != nil {
		t.Fatalf("FromFlat: %v", err)
	}
	return Config{
		Algorithm:        flat.Algorithm,
		Policy:           pol,
		Sensitive:        flat.Sensitive,
		QuasiIdentifiers: flat.QuasiIdentifiers,
		Hierarchies:      flat.Hierarchies,
		StrictMondrian:   flat.StrictMondrian,
		Workers:          flat.Workers,
	}
}

// TestPolicyPathGolden proves the policy redesign is a pure refactor of the
// request surface: for every registered algorithm, a release produced from a
// flat-parameter configuration is byte-identical (tables, node, suppression
// accounting, measurements) to one produced from the equivalent policy
// document.
func TestPolicyPathGolden(t *testing.T) {
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			flatCfg, tbl := flatGoldenConfig(t, alg)
			flatAnon, err := New(flatCfg)
			if err != nil {
				t.Fatalf("New(flat): %v", err)
			}
			polAnon, err := New(policyConfigOf(t, flatCfg))
			if err != nil {
				t.Fatalf("New(policy): %v", err)
			}
			// The two configurations resolve to the same canonical policy.
			if !flatAnon.Policy().Equal(polAnon.Policy()) {
				t.Fatalf("resolved policies differ:\nflat:   %s\npolicy: %s",
					flatAnon.Policy().Describe(), polAnon.Policy().Describe())
			}
			relFlat, err := flatAnon.Anonymize(tbl)
			if err != nil {
				t.Fatalf("Anonymize(flat): %v", err)
			}
			relPol, err := polAnon.Anonymize(tbl)
			if err != nil {
				t.Fatalf("Anonymize(policy): %v", err)
			}
			for _, pair := range []struct {
				name string
				a, b *dataset.Table
			}{
				{"table", relFlat.Table, relPol.Table},
				{"qit", relFlat.QIT, relPol.QIT},
				{"st", relFlat.ST, relPol.ST},
			} {
				if (pair.a == nil) != (pair.b == nil) {
					t.Fatalf("%s: nil mismatch", pair.name)
				}
				if pair.a == nil {
					continue
				}
				if !bytes.Equal(csvOf(t, pair.a), csvOf(t, pair.b)) {
					t.Errorf("%s: released bytes differ between flat and policy paths", pair.name)
				}
			}
			if !reflect.DeepEqual(relFlat.Node, relPol.Node) {
				t.Errorf("node = %v vs %v", relFlat.Node, relPol.Node)
			}
			if !reflect.DeepEqual(relFlat.Measured, relPol.Measured) {
				t.Errorf("measurements differ:\nflat:   %+v\npolicy: %+v", relFlat.Measured, relPol.Measured)
			}
			if !relFlat.Policy.Equal(relPol.Policy) {
				t.Errorf("release policy echoes differ")
			}
		})
	}
}

// TestPolicyOnlyCombination exercises a policy the flat surface cannot
// express — (α,k)-anonymity composed with entropy l-diversity and
// t-closeness — and checks the per-criterion measurements report every
// criterion as satisfied with sane values.
func TestPolicyOnlyCombination(t *testing.T) {
	pol, err := policy.Parse([]byte(`{
		"version": 1,
		"criteria": [
			{"type": "k-anonymity", "k": 4},
			{"type": "alpha-k-anonymity", "k": 4, "alpha": 0.9},
			{"type": "entropy-l-diversity", "l": 1.5},
			{"type": "t-closeness", "t": 0.6}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{
		Algorithm:        Mondrian,
		Policy:           pol,
		QuasiIdentifiers: []string{"age", "zip", "sex"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := a.Anonymize(synth.Hospital(1000, 11))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rel.Measured.Criteria); got != 4 {
		t.Fatalf("criteria measurements = %d entries (%v), want 4", got, rel.Measured.Criteria)
	}
	for typ, m := range rel.Measured.Criteria {
		if !m.Satisfied {
			t.Errorf("%s: not satisfied (measured %v, target %v)", typ, m.Measured, m.Target)
		}
	}
	ka := rel.Measured.Criteria[policy.KAnonymity]
	if ka.Measured < 4 || ka.Target != 4 {
		t.Errorf("k-anonymity entry = %+v", ka)
	}
	if s := rel.Measured.Criteria[policy.TCloseness].Sensitive; s != "diagnosis" {
		t.Errorf("t-closeness resolved sensitive = %q, want schema default diagnosis", s)
	}
	if ok, failed, err := a.Verify(rel.Table); err != nil || !ok {
		t.Errorf("Verify = %v, %q, %v", ok, failed, err)
	}
}

// TestFlatAnatomyDiversityModes locks in the legacy contract that anatomy
// reads the flat l as its bucket size whatever diversity_mode says (the
// mode is a parameter anatomy has never read): the request must keep
// working through the policy shim.
func TestFlatAnatomyDiversityModes(t *testing.T) {
	tbl := synth.Hospital(600, 12)
	for _, mode := range []DiversityMode{"", DistinctDiversity, EntropyDiversity, RecursiveDiversity} {
		a, err := New(Config{Algorithm: Anatomy, L: 3, DiversityMode: mode, Sensitive: "diagnosis"})
		if err != nil {
			t.Fatalf("mode %q: New: %v", mode, err)
		}
		rel, err := a.Anonymize(tbl)
		if err != nil {
			t.Fatalf("mode %q: Anonymize: %v", mode, err)
		}
		if rel.QIT == nil || rel.QIT.Len() != tbl.Len() {
			t.Errorf("mode %q: QIT = %v", mode, rel.QIT)
		}
	}
}

// TestFlatUnenforcedCriteriaStillVerified locks in "trust but verify" for
// the flat shim: a criterion the algorithm cannot enforce (datafly +
// t-closeness) is still declared, measured and checked by Verify, exactly
// as the pre-policy pipeline did — only the run itself ignores it.
func TestFlatUnenforcedCriteriaStillVerified(t *testing.T) {
	tbl := synth.Census(500, 13)
	a, err := New(Config{
		Algorithm:        Datafly,
		K:                5,
		T:                0.01, // tight enough that the release violates it
		Sensitive:        "salary",
		QuasiIdentifiers: []string{"age", "sex", "education", "marital-status", "race"},
		Hierarchies:      synth.CensusHierarchies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Policy().Has(policy.TCloseness) {
		t.Fatal("declared policy dropped the t-closeness criterion")
	}
	rel, err := a.Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	tc, ok := rel.Measured.Criteria[policy.TCloseness]
	if !ok {
		t.Fatalf("no t-closeness measurement: %v", rel.Measured.Criteria)
	}
	if tc.Satisfied || tc.Measured <= 0.01 {
		t.Fatalf("t-closeness measurement = %+v, want a violation of t=0.01", tc)
	}
	ok, failed, err := a.Verify(rel.Table)
	if err != nil || ok || !strings.Contains(failed, "closeness") {
		t.Errorf("Verify = %v, %q, %v — want the t-closeness violation reported", ok, failed, err)
	}
}

// TestPolicyUnsupportedCombination checks that an explicit policy naming a
// criterion the algorithm cannot enforce fails New as a configuration
// error, while the deprecated flat surface keeps its legacy silent-ignore
// semantics for the same parameters.
func TestPolicyUnsupportedCombination(t *testing.T) {
	// Flat shim: datafly ignores a flat t at run time just as it always has.
	if _, err := New(Config{
		Algorithm:   Datafly,
		K:           5,
		T:           0.2,
		Sensitive:   "occupation",
		Hierarchies: synth.CensusHierarchies(),
	}); err != nil {
		t.Fatalf("flat datafly with t rejected: %v", err)
	}
	pol, err := policy.Parse([]byte(`{
		"criteria": [
			{"type": "k-anonymity", "k": 5},
			{"type": "t-closeness", "t": 0.2, "sensitive": "occupation"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Algorithm:   Datafly,
		Policy:      pol,
		Hierarchies: synth.CensusHierarchies(),
	})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("datafly + t-closeness policy error = %v, want ErrConfig", err)
	}
	// Policy and flat parameters are mutually exclusive.
	if _, err := New(Config{Algorithm: Mondrian, Policy: pol, K: 5}); !errors.Is(err, ErrConfig) {
		t.Errorf("policy+flat error = %v, want ErrConfig", err)
	}
}
