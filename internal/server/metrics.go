package server

import (
	"context"
	"errors"
	"net/http"
	"time"

	"github.com/ppdp/ppdp/internal/jobs"
	"github.com/ppdp/ppdp/internal/obsmetrics"
	"github.com/ppdp/ppdp/internal/store"
)

// This file is the service's observability layer: one obsmetrics.Registry
// holding every instrument GET /metrics exposes. /healthz reads the same
// instrument handles (see handleHealthz), so the two endpoints cannot drift —
// a number a load balancer checks is the number an alerting rule scrapes.
//
// Metric inventory (all names prefixed ppdp_):
//
//	http_requests_total{route,status}     counter    requests by mux pattern + status
//	http_request_duration_seconds{route}  histogram  request latency by mux pattern
//	http_in_flight_requests               gauge      requests currently being served
//	run_duration_seconds{algorithm}       histogram  anonymization run latency
//	runs_total{algorithm,outcome}         counter    runs by outcome (success/error/canceled/timeout)
//	jobs_total{state}                     counter    job terminal transitions (succeeded/failed/canceled)
//	jobs_queue_wait_seconds               histogram  time jobs spent queued before dispatch
//	jobs_queued / jobs_running            gauge      executor occupancy (collected from the manager)
//	registry_datasets/releases/policies   gauge      registry occupancy (collected from the registry)
//	reconcile_specs                       gauge      release specs tracked by the reconciler
//	reconcile_success/noop/errors_total   counter    reconciliation runs by outcome
//	reconcile_retries_total               counter    backoff retries after failed reconciliations
//	reconcile_lag                         gauge      summed dataset-generation lag over all specs
//	cache_hits/misses/evictions_total     counter    result-cache counters (collected from the cache)
//	cache_entries / cache_capacity        gauge      result-cache occupancy
//	uptime_seconds                        gauge      seconds since server construction
//
// With -data-dir set, the durable store adds (collected from store.Stats at
// scrape time, except the fsync histogram which the store feeds per append):
//
//	store_wal_fsync_seconds               histogram  WAL append fsync latency
//	store_wal_bytes/records               gauge      WAL growth since the last checkpoint
//	store_wal_fsyncs_total                counter    WAL fsyncs performed
//	store_generation                      gauge      checkpoint generation
//	store_snapshot_age_seconds            gauge      age of the newest checkpoint manifest
//	store_checkpoint_errors_total         counter    failed automatic checkpoints
//	store_recovery_seconds                gauge      duration of the last boot's recovery
//	store_recovered_records / _torn       gauge      what the last boot replayed
//	store_mapped_tables/bytes             gauge      mmap-resident table snapshots
//	store_table_files/bytes               gauge      table snapshots on disk

// runBuckets spreads anonymization run latency: runs range from
// sub-millisecond cache-warm Datafly to multi-second Mondrian over large
// tables, wider than DefBuckets' request-latency spread.
var runBuckets = []float64{.001, .005, .01, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60}

// serverMetrics bundles every instrument of the service. It implements
// jobs.Observer so the executor feeds the queue-wait histogram and lifecycle
// counters directly.
type serverMetrics struct {
	registry *obsmetrics.Registry

	httpRequests *obsmetrics.CounterVec
	httpLatency  *obsmetrics.HistogramVec
	httpInFlight *obsmetrics.Gauge

	runLatency *obsmetrics.HistogramVec
	runsTotal  *obsmetrics.CounterVec

	jobsTotal     *obsmetrics.CounterVec
	jobsQueueWait *obsmetrics.Histogram
	jobsQueued    *obsmetrics.FuncMetric
	jobsRunning   *obsmetrics.FuncMetric

	regDatasets *obsmetrics.FuncMetric
	regReleases *obsmetrics.FuncMetric
	regPolicies *obsmetrics.FuncMetric

	reconSpecs   *obsmetrics.FuncMetric
	reconSuccess *obsmetrics.FuncMetric
	reconNoop    *obsmetrics.FuncMetric
	reconErrors  *obsmetrics.FuncMetric
	reconRetries *obsmetrics.FuncMetric
	reconLag     *obsmetrics.FuncMetric

	// Cache metrics are nil when caching is disabled.
	cacheHits      *obsmetrics.FuncMetric
	cacheMisses    *obsmetrics.FuncMetric
	cacheEvictions *obsmetrics.FuncMetric
	cacheEntries   *obsmetrics.FuncMetric
	cacheCapacity  *obsmetrics.FuncMetric

	uptime *obsmetrics.FuncMetric

	// Storage metrics are nil without Config.DataDir; Open registers them
	// via registerStore once the durable store is attached.
	storeFsync            *obsmetrics.Histogram
	storeGeneration       *obsmetrics.FuncMetric
	storeWALBytes         *obsmetrics.FuncMetric
	storeWALRecords       *obsmetrics.FuncMetric
	storeWALFsyncs        *obsmetrics.FuncMetric
	storeSnapshotAge      *obsmetrics.FuncMetric
	storeCheckpointErrs   *obsmetrics.FuncMetric
	storeRecovery         *obsmetrics.FuncMetric
	storeRecoveredRecords *obsmetrics.FuncMetric
	storeRecoveredTorn    *obsmetrics.FuncMetric
	storeMappedTables     *obsmetrics.FuncMetric
	storeMappedBytes      *obsmetrics.FuncMetric
	storeTableFiles       *obsmetrics.FuncMetric
	storeTableBytes       *obsmetrics.FuncMetric
}

// fsyncBuckets spreads WAL fsync latency: tens of microseconds on NVMe page
// cache up to hundreds of milliseconds on a congested disk.
var fsyncBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1}

// registerStore adds the ppdp_store_* families once Open has attached the
// durable store. All gauges collect from store.Stats at scrape time — the
// store keeps the authoritative counters under its own lock, so there is no
// second set to keep in sync; /healthz's storage block reads these same
// handles (see storageJSON).
func (m *serverMetrics) registerStore(s *Server) {
	r := m.registry
	stat := func(get func(store.Stats) float64) func() float64 {
		return func() float64 { return get(s.store.Stats()) }
	}
	m.storeFsync = r.Histogram("ppdp_store_wal_fsync_seconds",
		"WAL append fsync latency in seconds.", fsyncBuckets)
	m.storeGeneration = r.GaugeFunc("ppdp_store_generation",
		"Checkpoint generation of the durable store.",
		stat(func(st store.Stats) float64 { return float64(st.Generation) }))
	m.storeWALBytes = r.GaugeFunc("ppdp_store_wal_bytes",
		"Write-ahead log bytes since the last checkpoint.",
		stat(func(st store.Stats) float64 { return float64(st.WALBytes) }))
	m.storeWALRecords = r.GaugeFunc("ppdp_store_wal_records",
		"Write-ahead log records since the last checkpoint.",
		stat(func(st store.Stats) float64 { return float64(st.WALRecords) }))
	m.storeWALFsyncs = r.CounterFunc("ppdp_store_wal_fsyncs_total",
		"WAL fsyncs performed since boot.",
		stat(func(st store.Stats) float64 { return float64(st.WALFsyncs) }))
	m.storeSnapshotAge = r.GaugeFunc("ppdp_store_snapshot_age_seconds",
		"Seconds since the newest checkpoint manifest was written.",
		stat(func(st store.Stats) float64 { return time.Since(time.Unix(st.CheckpointUnix, 0)).Seconds() }))
	m.storeCheckpointErrs = r.CounterFunc("ppdp_store_checkpoint_errors_total",
		"Automatic checkpoints that failed (the WAL keeps the state safe).",
		stat(func(st store.Stats) float64 { return float64(st.CheckpointErrors) }))
	m.storeRecovery = r.GaugeFunc("ppdp_store_recovery_seconds",
		"Duration of the last boot's recovery (manifest load + WAL replay).",
		stat(func(st store.Stats) float64 { return st.RecoverySeconds }))
	m.storeRecoveredRecords = r.GaugeFunc("ppdp_store_recovered_records",
		"WAL records replayed by the last boot.",
		stat(func(st store.Stats) float64 { return float64(st.RecoveredRecords) }))
	m.storeRecoveredTorn = r.GaugeFunc("ppdp_store_recovered_torn",
		"Whether the last boot truncated a torn WAL tail (1) or found a clean log (0).",
		stat(func(st store.Stats) float64 {
			if st.RecoveredTorn {
				return 1
			}
			return 0
		}))
	m.storeMappedTables = r.GaugeFunc("ppdp_store_mapped_tables",
		"Table snapshots currently mmap-resident.",
		stat(func(st store.Stats) float64 { return float64(st.MappedTables) }))
	m.storeMappedBytes = r.GaugeFunc("ppdp_store_mapped_bytes",
		"Bytes of table snapshots currently mmap-resident.",
		stat(func(st store.Stats) float64 { return float64(st.MappedBytes) }))
	m.storeTableFiles = r.GaugeFunc("ppdp_store_table_files",
		"Content-addressed table snapshot files on disk.",
		stat(func(st store.Stats) float64 { return float64(st.TableFiles) }))
	m.storeTableBytes = r.GaugeFunc("ppdp_store_table_bytes",
		"Bytes of table snapshot files on disk.",
		stat(func(st store.Stats) float64 { return float64(st.TableBytes) }))
}

// newServerMetrics registers the full inventory against s. The occupancy
// gauges are function-backed: they collect from the registry, the jobs
// manager and the result cache at scrape time, so there is no second set of
// counters to keep in sync. The closures read s.jobs and s.cache lazily —
// New assigns both before the server can serve a scrape.
func newServerMetrics(s *Server) *serverMetrics {
	r := obsmetrics.NewRegistry()
	m := &serverMetrics{registry: r}

	m.httpRequests = r.CounterVec("ppdp_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "route", "status")
	m.httpLatency = r.HistogramVec("ppdp_http_request_duration_seconds",
		"HTTP request latency in seconds, by route pattern.", nil, "route")
	m.httpInFlight = r.Gauge("ppdp_http_in_flight_requests",
		"HTTP requests currently being served.")

	m.runLatency = r.HistogramVec("ppdp_run_duration_seconds",
		"Anonymization run latency in seconds, by algorithm.", runBuckets, "algorithm")
	m.runsTotal = r.CounterVec("ppdp_runs_total",
		"Anonymization runs executed, by algorithm and outcome.", "algorithm", "outcome")

	m.jobsTotal = r.CounterVec("ppdp_jobs_total",
		"Jobs reaching a terminal state, by state.", "state")
	m.jobsQueueWait = r.Histogram("ppdp_jobs_queue_wait_seconds",
		"Time jobs spent in the admission queue before dispatch.", nil)
	m.jobsQueued = r.GaugeFunc("ppdp_jobs_queued",
		"Jobs waiting in the admission queue.", func() float64 {
			q, _, _ := s.jobs.Counts()
			return float64(q)
		})
	m.jobsRunning = r.GaugeFunc("ppdp_jobs_running",
		"Jobs currently executing.", func() float64 {
			_, run, _ := s.jobs.Counts()
			return float64(run)
		})

	m.regDatasets = r.GaugeFunc("ppdp_registry_datasets",
		"Datasets stored in the registry.", func() float64 {
			d, _, _ := s.reg.counts()
			return float64(d)
		})
	m.regReleases = r.GaugeFunc("ppdp_registry_releases",
		"Releases stored in the registry.", func() float64 {
			_, rel, _ := s.reg.counts()
			return float64(rel)
		})
	m.regPolicies = r.GaugeFunc("ppdp_registry_policies",
		"Policies stored in the registry.", func() float64 {
			_, _, pol := s.reg.counts()
			return float64(pol)
		})

	// Reconciler metrics collect from the manager's Stats snapshot at scrape
	// time (the manager keeps the authoritative counters under its own lock);
	// the closures read s.recon lazily — New assigns it before the first
	// scrape, like s.jobs above.
	m.reconSpecs = r.GaugeFunc("ppdp_reconcile_specs",
		"Release specs tracked by the reconciler.", func() float64 {
			return float64(s.recon.Stats().Specs)
		})
	m.reconSuccess = r.CounterFunc("ppdp_reconcile_success_total",
		"Reconciliations that published a new release.", func() float64 {
			return float64(s.recon.Stats().Success)
		})
	m.reconNoop = r.CounterFunc("ppdp_reconcile_noop_total",
		"Reconciliations short-circuited by a byte-identical dataset fingerprint.", func() float64 {
			return float64(s.recon.Stats().Noop)
		})
	m.reconErrors = r.CounterFunc("ppdp_reconcile_errors_total",
		"Reconciliation runs that failed.", func() float64 {
			return float64(s.recon.Stats().Errors)
		})
	m.reconRetries = r.CounterFunc("ppdp_reconcile_retries_total",
		"Backoff retries scheduled after failed reconciliations.", func() float64 {
			return float64(s.recon.Stats().Retries)
		})
	m.reconLag = r.GaugeFunc("ppdp_reconcile_lag",
		"Summed dataset-generation lag over all tracked specs.", func() float64 {
			return float64(s.recon.Stats().Lag)
		})

	if s.cache != nil {
		m.cacheHits = r.CounterFunc("ppdp_cache_hits_total",
			"Result-cache hits.", func() float64 { return float64(s.cache.Stats().Hits) })
		m.cacheMisses = r.CounterFunc("ppdp_cache_misses_total",
			"Result-cache misses.", func() float64 { return float64(s.cache.Stats().Misses) })
		m.cacheEvictions = r.CounterFunc("ppdp_cache_evictions_total",
			"Result-cache evictions.", func() float64 { return float64(s.cache.Stats().Evictions) })
		m.cacheEntries = r.GaugeFunc("ppdp_cache_entries",
			"Result-cache entries.", func() float64 { return float64(s.cache.Stats().Entries) })
		m.cacheCapacity = r.GaugeFunc("ppdp_cache_capacity",
			"Result-cache capacity.", func() float64 { return float64(s.cache.Stats().Capacity) })
	}

	m.uptime = r.GaugeFunc("ppdp_uptime_seconds",
		"Seconds since the server started.", func() float64 {
			return time.Since(s.started).Seconds()
		})
	return m
}

// observeRun records one anonymization run's latency and outcome for the
// per-algorithm histograms; both executor paths (fresh runs; never cache
// hits, which execute nothing) report here.
func (m *serverMetrics) observeRun(algorithm string, elapsed time.Duration, err error) {
	m.runLatency.With(algorithm).Observe(elapsed.Seconds())
	m.runsTotal.With(algorithm, runOutcome(err)).Inc()
}

// runOutcome buckets a run error for the runs_total outcome label, mirroring
// classifyAnonymizeError's cancellation/timeout split without the HTTP
// statuses.
func runOutcome(err error) string {
	switch {
	case err == nil:
		return "success"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

// JobStarted implements jobs.Observer: feed the queue-wait histogram.
func (m *serverMetrics) JobStarted(tenant string, queueWait time.Duration) {
	m.jobsQueueWait.Observe(queueWait.Seconds())
}

// JobFinished implements jobs.Observer: count terminal transitions by state.
func (m *serverMetrics) JobFinished(tenant string, state jobs.State) {
	m.jobsTotal.With(string(state)).Inc()
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.registry.Handler().ServeHTTP(w, r)
}
