package server

import (
	"errors"
	"net/http"
	"time"

	"github.com/ppdp/ppdp/internal/policy"
)

// Stored-policy CRUD: policies are named, reusable privacy-policy documents
// (see internal/policy). A fleet of callers shares one vetted policy by name
// instead of re-declaring criteria per request: anonymize and job requests
// reference it with "policy_ref", and the run pins the stored document as an
// immutable snapshot — deleting or re-creating the name later never changes
// what a run enforced, the same way releases pin their dataset snapshot.

// maxPolicyNameLen bounds stored-policy names; they are path segments and
// registry keys, not documents.
const maxPolicyNameLen = 128

// policyInfo is the JSON view of one stored policy.
type policyInfo struct {
	Name string `json:"name"`
	// Summary is the compact one-line rendering of the criteria.
	Summary string         `json:"summary"`
	Policy  *policy.Policy `json:"policy"`
	Created time.Time      `json:"created"`
}

func policyJSON(sp *storedPolicy) policyInfo {
	return policyInfo{
		Name:    sp.name,
		Summary: sp.policy.Describe(),
		Policy:  sp.policy,
		Created: sp.created,
	}
}

// createPolicyRequest is the POST /v1/policies body.
type createPolicyRequest struct {
	Name   string         `json:"name"`
	Policy *policy.Policy `json:"policy"`
}

// handleCreatePolicy stores a policy under a name. The document is
// canonicalized before storage, so GET returns the same bytes regardless of
// criterion order or omitted defaults in the upload.
func (s *Server) handleCreatePolicy(w http.ResponseWriter, r *http.Request) {
	var req createPolicyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" || len(req.Name) > maxPolicyNameLen {
		writeError(w, http.StatusBadRequest, "bad_request",
			"name is required and at most %d characters", maxPolicyNameLen)
		return
	}
	if req.Policy == nil {
		writeError(w, http.StatusBadRequest, "bad_request", "policy is required")
		return
	}
	canon, err := req.Policy.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_policy", "%v", err)
		return
	}
	sp := &storedPolicy{name: req.Name, policy: canon, created: time.Now()}
	if err := s.reg.putPolicy(sp); err != nil {
		if errors.Is(err, errRegistryFull) {
			writeError(w, http.StatusInsufficientStorage, "registry_full", "%v", err)
			return
		}
		writeError(w, http.StatusConflict, "conflict", "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, policyJSON(sp))
}

func (s *Server) handleListPolicies(w http.ResponseWriter, r *http.Request) {
	list := s.reg.listPolicies()
	out := make([]policyInfo, len(list))
	for i, sp := range list {
		out[i] = policyJSON(sp)
	}
	writeJSON(w, http.StatusOK, map[string]any{"policies": out})
}

func (s *Server) handleGetPolicy(w http.ResponseWriter, r *http.Request) {
	sp, err := s.reg.getPolicy(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, policyJSON(sp))
}

func (s *Server) handleDeletePolicy(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.deletePolicy(r.PathValue("name")); err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// AddPolicy registers a policy under a name before the server starts taking
// traffic — the programmatic equivalent of POST /v1/policies, used by `ppdp
// serve -policy` and embedding callers.
func (s *Server) AddPolicy(name string, p *policy.Policy) error {
	if name == "" || len(name) > maxPolicyNameLen {
		return errors.New("server: policy name is required")
	}
	if p == nil {
		return errors.New("server: policy document is required")
	}
	canon, err := p.Canonical()
	if err != nil {
		return err
	}
	return s.reg.putPolicy(&storedPolicy{name: name, policy: canon, created: time.Now()})
}
