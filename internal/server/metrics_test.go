package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// This file locks down the observability layer from the outside: a hand-rolled
// Prometheus text-format (0.0.4) validator that checks the exposition's
// structural contract (HELP/TYPE before samples, sorted families, monotone
// cumulative buckets, +Inf bucket == _count), and a concurrency test that
// hammers anonymize/jobs/metrics/healthz in parallel and then proves the
// scraped counters agree with /healthz and with the exact number of requests
// issued. The validator deliberately shares no code with obsmetrics.WriteText:
// it is an independent reading of the format.

// expoSample is one parsed sample line: name{labels} value.
type expoSample struct {
	name   string
	labels map[string]string
	value  float64
}

// expoFamily is one metric family: its HELP text, TYPE and samples.
type expoFamily struct {
	name    string
	help    string
	typ     string
	samples []expoSample
}

// parseExposition parses and validates a text-format 0.0.4 body. Violations
// of the format contract are errors, not ignored lines.
func parseExposition(body string) (map[string]*expoFamily, error) {
	fams := map[string]*expoFamily{}
	var cur *expoFamily
	for i, line := range strings.Split(body, "\n") {
		ln := i + 1
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			name, help, ok := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed HELP", ln)
			}
			if _, dup := fams[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %s", ln, name)
			}
			if cur != nil && name < cur.name {
				return nil, fmt.Errorf("line %d: family %s after %s, not sorted", ln, name, cur.name)
			}
			cur = &expoFamily{name: name, help: help}
			fams[name] = cur
		case strings.HasPrefix(line, "# TYPE "):
			name, typ, ok := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " ")
			if !ok || cur == nil || name != cur.name {
				return nil, fmt.Errorf("line %d: TYPE without a preceding HELP for %s", ln, name)
			}
			if cur.typ != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", ln, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
				cur.typ = typ
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", ln, typ)
			}
		case strings.HasPrefix(line, "#"):
			continue // free-form comments are permitted by the format
		default:
			s, err := parseSampleLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln, err)
			}
			if cur == nil || cur.typ == "" {
				return nil, fmt.Errorf("line %d: sample %s before HELP/TYPE", ln, s.name)
			}
			ok := s.name == cur.name
			if cur.typ == "histogram" {
				ok = s.name == cur.name+"_bucket" || s.name == cur.name+"_sum" || s.name == cur.name+"_count"
			}
			if !ok {
				return nil, fmt.Errorf("line %d: sample %s does not belong to family %s", ln, s.name, cur.name)
			}
			cur.samples = append(cur.samples, s)
		}
	}
	for _, f := range fams {
		if f.typ == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", f.name)
		}
		if f.typ == "counter" {
			for _, s := range f.samples {
				if s.value < 0 {
					return nil, fmt.Errorf("counter %s has negative value %g", f.name, s.value)
				}
			}
		}
		if f.typ == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// parseSampleLine parses `name{k="v",...} value`, decoding the \\, \" and \n
// label-value escapes.
func parseSampleLine(line string) (expoSample, error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return expoSample{}, fmt.Errorf("malformed sample %q", line)
	}
	s := expoSample{name: line[:i], labels: map[string]string{}}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, "=")
			if eq <= 0 || len(rest) <= eq+1 || rest[eq+1] != '"' {
				return expoSample{}, fmt.Errorf("malformed label in %q", line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			for {
				if rest == "" {
					return expoSample{}, fmt.Errorf("unterminated label value in %q", line)
				}
				if rest[0] == '\\' {
					if len(rest) < 2 {
						return expoSample{}, fmt.Errorf("dangling escape in %q", line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return expoSample{}, fmt.Errorf("invalid escape \\%c in %q", rest[1], line)
					}
					rest = rest[2:]
					continue
				}
				if rest[0] == '"' {
					rest = rest[1:]
					break
				}
				val.WriteByte(rest[0])
				rest = rest[1:]
			}
			s.labels[key] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = strings.TrimPrefix(rest, "}")
	}
	if !strings.HasPrefix(rest, " ") {
		return expoSample{}, fmt.Errorf("missing space before value in %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return expoSample{}, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.value = v
	return s, nil
}

// checkHistogram verifies the histogram contract per label set: buckets in
// ascending le order with cumulative (non-decreasing) counts, a +Inf bucket
// equal to _count, and both _sum and _count present.
func checkHistogram(f *expoFamily) error {
	type series struct {
		les, counts      []float64
		sum, count       float64
		hasSum, hasCount bool
	}
	groups := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		parts := make([]string, 0, len(labels))
		for k, v := range labels {
			if k != "le" {
				parts = append(parts, k+"="+v)
			}
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	for _, s := range f.samples {
		key := keyOf(s.labels)
		g := groups[key]
		if g == nil {
			g = &series{}
			groups[key] = g
		}
		switch s.name {
		case f.name + "_bucket":
			leStr, ok := s.labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", f.name)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				var err error
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					return fmt.Errorf("%s: bad le %q", f.name, leStr)
				}
			}
			g.les = append(g.les, le)
			g.counts = append(g.counts, s.value)
		case f.name + "_sum":
			g.sum, g.hasSum = s.value, true
		case f.name + "_count":
			g.count, g.hasCount = s.value, true
		}
	}
	for key, g := range groups {
		if !g.hasSum || !g.hasCount {
			return fmt.Errorf("%s{%s}: missing _sum or _count", f.name, key)
		}
		if len(g.les) == 0 || !math.IsInf(g.les[len(g.les)-1], 1) {
			return fmt.Errorf("%s{%s}: missing or misplaced +Inf bucket", f.name, key)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("%s{%s}: le bounds not ascending", f.name, key)
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("%s{%s}: bucket counts not cumulative", f.name, key)
			}
		}
		if inf := g.counts[len(g.counts)-1]; inf != g.count {
			return fmt.Errorf("%s{%s}: +Inf bucket %g != _count %g", f.name, key, inf, g.count)
		}
	}
	return nil
}

// sampleValue returns the value of the family's sample matching the label set
// exactly (0, false when absent).
func sampleValue(f *expoFamily, labels map[string]string) (float64, bool) {
	for _, s := range f.samples {
		if len(s.labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.value, true
		}
	}
	return 0, false
}

// sumSamples totals every sample of a family whose name matches (for
// histogram families pass e.g. name+"_count").
func sumSamples(f *expoFamily, name string) float64 {
	total := 0.0
	for _, s := range f.samples {
		if s.name == name {
			total += s.value
		}
	}
	return total
}

// scrapeMetrics fetches and validates GET /metrics.
func scrapeMetrics(t testing.TB, ts *httptest.Server) map[string]*expoFamily {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text format 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := parseExposition(string(raw))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, raw)
	}
	return fams
}

// scrapeUntil polls /metrics until check passes (observer callbacks fire just
// after the HTTP response is written, so counters may trail a client by a
// scheduling instant).
func scrapeUntil(t testing.TB, ts *httptest.Server, check func(map[string]*expoFamily) error) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := check(scrapeMetrics(t, ts))
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never converged: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsExpositionContract drives every instrument at least once and
// validates the whole exposition plus a handful of exact values.
func TestMetricsExpositionContract(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	seedDataset(t, ts, "census", "census", 200)

	// Two identical sync runs: the first executes, the second is a cache hit.
	for i := 0; i < 2; i++ {
		if status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize",
			map[string]any{"dataset": "census", "k": 5}); status != http.StatusOK {
			t.Fatalf("anonymize %d: %d %v", i, status, body)
		}
	}
	// One async job with a different k, forcing a fresh run.
	status, body := doJSON(t, "POST", ts.URL+"/v1/jobs", map[string]any{"dataset": "census", "k": 7})
	if status != http.StatusAccepted {
		t.Fatalf("submit job: %d %v", status, body)
	}
	if final := pollJob(t, ts, body["id"].(string)); final["state"] != "succeeded" {
		t.Fatalf("job: %v", final)
	}
	// One 404 for the unmatched-route label (the mux's plain-text not-found).
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: %d", resp.StatusCode)
	}

	want := []string{
		"ppdp_http_requests_total", "ppdp_http_request_duration_seconds",
		"ppdp_http_in_flight_requests", "ppdp_run_duration_seconds", "ppdp_runs_total",
		"ppdp_jobs_total", "ppdp_jobs_queue_wait_seconds", "ppdp_jobs_queued",
		"ppdp_jobs_running", "ppdp_registry_datasets", "ppdp_registry_releases",
		"ppdp_registry_policies", "ppdp_cache_hits_total", "ppdp_cache_misses_total",
		"ppdp_cache_evictions_total", "ppdp_cache_entries", "ppdp_cache_capacity",
		"ppdp_reconcile_specs", "ppdp_reconcile_success_total", "ppdp_reconcile_noop_total",
		"ppdp_reconcile_errors_total", "ppdp_reconcile_retries_total", "ppdp_reconcile_lag",
		"ppdp_uptime_seconds",
	}
	scrapeUntil(t, ts, func(fams map[string]*expoFamily) error {
		for _, name := range want {
			if fams[name] == nil {
				return fmt.Errorf("family %s missing", name)
			}
		}
		// Two executed runs (sync miss + job), one cache hit.
		if v, _ := sampleValue(fams["ppdp_runs_total"],
			map[string]string{"algorithm": "mondrian", "outcome": "success"}); v != 2 {
			return fmt.Errorf("runs_total{mondrian,success} = %g, want 2", v)
		}
		if v, _ := sampleValue(fams["ppdp_cache_hits_total"], nil); v != 1 {
			return fmt.Errorf("cache_hits_total = %g, want 1", v)
		}
		// All three requests became succeeded jobs (cache hits included).
		if v, _ := sampleValue(fams["ppdp_jobs_total"], map[string]string{"state": "succeeded"}); v != 3 {
			return fmt.Errorf("jobs_total{succeeded} = %g, want 3", v)
		}
		// The histogram observed exactly the executed runs.
		if c := sumSamples(fams["ppdp_run_duration_seconds"], "ppdp_run_duration_seconds_count"); c != 2 {
			return fmt.Errorf("run_duration count = %g, want 2", c)
		}
		// 404s land on the bounded "unmatched" route label.
		if v, _ := sampleValue(fams["ppdp_http_requests_total"],
			map[string]string{"route": "unmatched", "status": "404"}); v < 1 {
			return fmt.Errorf("no unmatched/404 request recorded")
		}
		if v, _ := sampleValue(fams["ppdp_registry_datasets"], nil); v != 1 {
			return fmt.Errorf("registry_datasets = %g, want 1", v)
		}
		// No release specs were declared: the reconcile families expose but
		// sit at zero.
		if v, _ := sampleValue(fams["ppdp_reconcile_specs"], nil); v != 0 {
			return fmt.Errorf("reconcile_specs = %g, want 0", v)
		}
		return nil
	})
}

// TestMetricsHealthzConsistency hammers anonymize, jobs, snapshots, metrics
// and healthz concurrently (run with -race), then proves the scraped
// exposition agrees with /healthz — including the storage block — and with
// the exact operation counts the test performed. The server runs on a data
// directory so the ppdp_store_* families are registered and checkpoints race
// against journaled writes.
func TestMetricsHealthzConsistency(t *testing.T) {
	ts, _ := bootPersistent(t, Config{JobWorkers: 2, DataDir: t.TempDir()})
	seedDataset(t, ts, "census", "census", 300)

	// A reconciler spec rides along: "feed" grows by two appends while the
	// hammer runs, so ppdp_reconcile_* counters move under the same load the
	// consistency checks run against. Settling generation 1 before the hammer
	// starts pins the reconciliation count: one publish per generation, three
	// in total.
	chunks := censusChunks(t, 150, 200, 250)
	if status, body := sendCSV(t, "PUT", ts.URL+"/v1/datasets/feed?family=census", chunks[0]); status != http.StatusCreated {
		t.Fatalf("upload feed: %d %v", status, body)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/specs", map[string]any{
		"name": "live", "dataset": "feed", "algorithm": "mondrian", "k": 4}); status != http.StatusCreated {
		t.Fatalf("create spec: %d %v", status, body)
	}
	pollSpec(t, ts, "live", specSettled(1))

	const (
		goroutines = 4
		iters      = 5
		asyncJobs  = 4
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, chunk := range chunks[1:] {
			if status, body := sendCSV(t, "POST", ts.URL+"/v1/datasets/feed/rows", chunk); status != http.StatusOK {
				t.Errorf("append %d: %d %v", i+1, status, body)
				return
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				status, body := doJSON(t, "GET", ts.URL+"/v1/specs/live", nil)
				if status != http.StatusOK {
					t.Errorf("poll spec: %d %v", status, body)
					return
				}
				if specSettled(2 + i)(body) {
					break
				}
				if time.Now().After(deadline) {
					t.Errorf("spec never reconciled generation %d: %v", 2+i, body)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Two distinct specs across the pool: plenty of both cache
				// hits and fresh runs.
				spec := map[string]any{"dataset": "census", "algorithm": "mondrian", "k": 3 + g%2}
				if status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", spec); status != http.StatusOK {
					t.Errorf("anonymize: %d %v", status, body)
				}
				scrapeMetrics(t, ts) // must stay valid mid-load
				if status, _ := doJSON(t, "GET", ts.URL+"/healthz", nil); status != http.StatusOK {
					t.Errorf("healthz under load: %d", status)
				}
			}
		}(g)
	}
	// Checkpoints contend with journaled writes for the store lock; they
	// must never wedge or corrupt the exposition.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if status, body := doJSON(t, "POST", ts.URL+"/v1/snapshot", nil); status != http.StatusOK {
				t.Errorf("snapshot under load: %d %v", status, body)
			}
		}
	}()
	ids := make([]string, 0, asyncJobs)
	var idMu sync.Mutex
	for j := 0; j < asyncJobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			status, body := doJSON(t, "POST", ts.URL+"/v1/jobs",
				map[string]any{"dataset": "census", "k": 11 + j}) // distinct: always fresh runs
			if status != http.StatusAccepted {
				t.Errorf("submit job %d: %d %v", j, status, body)
				return
			}
			idMu.Lock()
			ids = append(ids, body["id"].(string))
			idMu.Unlock()
		}(j)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range ids {
		if final := pollJob(t, ts, id); final["state"] != "succeeded" {
			t.Fatalf("job %s: %v", id, final)
		}
	}

	totalOps := float64(goroutines*iters + asyncJobs)
	scrapeUntil(t, ts, func(fams map[string]*expoFamily) error {
		_, hz := doJSON(t, "GET", ts.URL+"/healthz", nil)
		num := func(key string) float64 { v, _ := hz[key].(float64); return v }
		gauge := func(name string) float64 { v, _ := sampleValue(fams[name], nil); return v }

		// /healthz and the scrape must agree on every shared quantity.
		pairs := []struct {
			hzKey string
			fam   string
		}{
			{"datasets", "ppdp_registry_datasets"},
			{"releases", "ppdp_registry_releases"},
			{"policies", "ppdp_registry_policies"},
			{"jobs_queued", "ppdp_jobs_queued"},
			{"jobs_running", "ppdp_jobs_running"},
		}
		for _, p := range pairs {
			if num(p.hzKey) != gauge(p.fam) {
				return fmt.Errorf("healthz %s = %g but %s = %g", p.hzKey, num(p.hzKey), p.fam, gauge(p.fam))
			}
		}
		cache, _ := hz["cache"].(map[string]any)
		if cache == nil {
			return fmt.Errorf("healthz has no cache block: %v", hz)
		}
		cnum := func(key string) float64 { v, _ := cache[key].(float64); return v }
		for hzKey, fam := range map[string]string{
			"hits": "ppdp_cache_hits_total", "misses": "ppdp_cache_misses_total",
			"evictions": "ppdp_cache_evictions_total", "entries": "ppdp_cache_entries",
			"capacity": "ppdp_cache_capacity",
		} {
			if cnum(hzKey) != gauge(fam) {
				return fmt.Errorf("healthz cache %s = %g but %s = %g", hzKey, cnum(hzKey), fam, gauge(fam))
			}
		}
		storage, _ := hz["storage"].(map[string]any)
		if storage == nil {
			return fmt.Errorf("healthz has no storage block: %v", hz)
		}
		snum := func(key string) float64 { v, _ := storage[key].(float64); return v }
		for hzKey, fam := range map[string]string{
			"generation":        "ppdp_store_generation",
			"wal_bytes":         "ppdp_store_wal_bytes",
			"wal_records":       "ppdp_store_wal_records",
			"wal_fsyncs":        "ppdp_store_wal_fsyncs_total",
			"checkpoint_errors": "ppdp_store_checkpoint_errors_total",
			"recovered_records": "ppdp_store_recovered_records",
			"mapped_tables":     "ppdp_store_mapped_tables",
			"mapped_bytes":      "ppdp_store_mapped_bytes",
			"table_files":       "ppdp_store_table_files",
			"table_bytes":       "ppdp_store_table_bytes",
		} {
			if snum(hzKey) != gauge(fam) {
				return fmt.Errorf("healthz storage %s = %g but %s = %g", hzKey, snum(hzKey), fam, gauge(fam))
			}
		}
		// The fsync histogram observed every journal append and checkpoint
		// the store fsynced; its count can only trail the WAL fsync counter
		// if an observation were lost.
		if c := sumSamples(fams["ppdp_store_wal_fsync_seconds"], "ppdp_store_wal_fsync_seconds_count"); c < gauge("ppdp_store_wal_fsyncs_total") {
			return fmt.Errorf("fsync histogram count %g < wal_fsyncs_total %g", c, gauge("ppdp_store_wal_fsyncs_total"))
		}
		recon, _ := hz["reconcile"].(map[string]any)
		if recon == nil {
			return fmt.Errorf("healthz has no reconcile block: %v", hz)
		}
		rnum := func(key string) float64 { v, _ := recon[key].(float64); return v }
		for hzKey, fam := range map[string]string{
			"specs": "ppdp_reconcile_specs", "success": "ppdp_reconcile_success_total",
			"noop": "ppdp_reconcile_noop_total", "errors": "ppdp_reconcile_errors_total",
			"retries": "ppdp_reconcile_retries_total", "generation_lag": "ppdp_reconcile_lag",
		} {
			if rnum(hzKey) != gauge(fam) {
				return fmt.Errorf("healthz reconcile %s = %g but %s = %g", hzKey, rnum(hzKey), fam, gauge(fam))
			}
		}
		// The feed settled each generation before the next append, so the
		// reconciler ran exactly once per generation and ended fully caught
		// up, with no failures and no fingerprint short-circuits.
		if v := gauge("ppdp_reconcile_specs"); v != 1 {
			return fmt.Errorf("reconcile_specs = %g, want 1", v)
		}
		reconRuns := gauge("ppdp_reconcile_success_total") + gauge("ppdp_reconcile_errors_total")
		if reconRuns != 3 || gauge("ppdp_reconcile_errors_total") != 0 {
			return fmt.Errorf("reconcile success+errors = %g (errors %g), want 3 clean runs",
				reconRuns, gauge("ppdp_reconcile_errors_total"))
		}
		if v := gauge("ppdp_reconcile_lag"); v != 0 {
			return fmt.Errorf("reconcile_lag = %g, want 0", v)
		}

		// Exact operation accounting: every anonymize op either executed a
		// run or hit the cache, every op finished as a succeeded job, and the
		// histograms observed exactly the executed runs. Reconciliation runs
		// ride the same executor (they finish as succeeded jobs and wait in
		// the same queue) but deliberately stay out of ppdp_runs_total and
		// the run-duration histogram, which meter client-billable work.
		runs := sumSamples(fams["ppdp_runs_total"], "ppdp_runs_total")
		hits := gauge("ppdp_cache_hits_total")
		if runs+hits != totalOps {
			return fmt.Errorf("runs %g + cache hits %g != %g operations", runs, hits, totalOps)
		}
		if v, _ := sampleValue(fams["ppdp_jobs_total"], map[string]string{"state": "succeeded"}); v != totalOps+reconRuns {
			return fmt.Errorf("jobs_total{succeeded} = %g, want %g client ops + %g reconciliations", v, totalOps, reconRuns)
		}
		if c := sumSamples(fams["ppdp_run_duration_seconds"], "ppdp_run_duration_seconds_count"); c != runs {
			return fmt.Errorf("run_duration count %g != runs_total %g", c, runs)
		}
		if c := sumSamples(fams["ppdp_jobs_queue_wait_seconds"], "ppdp_jobs_queue_wait_seconds_count"); c != runs+reconRuns {
			return fmt.Errorf("queue_wait count %g != runs %g + reconciliations %g (one dispatch per executed job)", c, runs, reconRuns)
		}
		// Request accounting by route: all jobs, sync anonymize calls, and
		// the spec/append rides.
		if v, _ := sampleValue(fams["ppdp_http_requests_total"],
			map[string]string{"route": "POST /v1/anonymize", "status": "200"}); v != float64(goroutines*iters) {
			return fmt.Errorf("anonymize 200s = %g, want %d", v, goroutines*iters)
		}
		if v, _ := sampleValue(fams["ppdp_http_requests_total"],
			map[string]string{"route": "POST /v1/jobs", "status": "202"}); v != float64(asyncJobs) {
			return fmt.Errorf("job 202s = %g, want %d", v, asyncJobs)
		}
		if v, _ := sampleValue(fams["ppdp_http_requests_total"],
			map[string]string{"route": "POST /v1/datasets/{name}/rows", "status": "200"}); v != 2 {
			return fmt.Errorf("append 200s = %g, want 2", v)
		}
		if v, _ := sampleValue(fams["ppdp_http_requests_total"],
			map[string]string{"route": "POST /v1/specs", "status": "201"}); v != 1 {
			return fmt.Errorf("spec 201s = %g, want 1", v)
		}
		return nil
	})
}
