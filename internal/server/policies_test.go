package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/ppdp/ppdp/internal/policy"
	"github.com/ppdp/ppdp/internal/synth"
)

// policyDoc builds a small valid policy document body.
func policyDoc(k int) map[string]any {
	return map[string]any{
		"version":  1,
		"criteria": []map[string]any{{"type": "k-anonymity", "k": k}},
	}
}

// withCensus registers a small census dataset on the server.
func withCensus(t testing.TB, srv *Server, rows int) {
	t.Helper()
	if err := srv.AddDataset("census", "census", synth.Census(rows, 7), synth.CensusHierarchies()); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyCRUD(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	// Create: the stored form is canonical (version pinned, order fixed).
	status, body := doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{
		"name": "baseline",
		"policy": map[string]any{
			"criteria": []map[string]any{
				{"type": "t-closeness", "t": 0.2, "sensitive": "occupation"},
				{"type": "k-anonymity", "k": 5},
			},
		},
	})
	if status != http.StatusCreated {
		t.Fatalf("create = %d %v", status, body)
	}
	pol, ok := body["policy"].(map[string]any)
	if !ok || pol["version"] != float64(1) {
		t.Fatalf("created policy = %v", body)
	}
	crits := pol["criteria"].([]any)
	if first := crits[0].(map[string]any); first["type"] != "k-anonymity" {
		t.Errorf("stored criteria not canonicalized: %v", crits)
	}
	if body["summary"] == "" {
		t.Errorf("created policy has no summary: %v", body)
	}

	// Duplicate name conflicts; invalid documents are rejected strictly.
	if status, body := doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{
		"name": "baseline", "policy": policyDoc(3),
	}); status != http.StatusConflict || errorCode(t, body) != "conflict" {
		t.Errorf("duplicate create = %d %v", status, body)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{
		"name": "bad",
		"policy": map[string]any{
			"criteria": []map[string]any{{"type": "z-anonymity", "z": 3}},
		},
	}); status != http.StatusBadRequest || errorCode(t, body) != "bad_json" {
		// The strict criterion decoder fires inside the request decode.
		t.Errorf("unknown criterion create = %d %v", status, body)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{
		"name":   "empty",
		"policy": map[string]any{"criteria": []map[string]any{}},
	}); status != http.StatusBadRequest || errorCode(t, body) != "bad_policy" {
		t.Errorf("empty policy create = %d %v", status, body)
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{"policy": policyDoc(2)}); status != http.StatusBadRequest {
		t.Errorf("nameless create = %d", status)
	}

	// Get, list, delete.
	if status, body := doJSON(t, "GET", ts.URL+"/v1/policies/baseline", nil); status != http.StatusOK || body["name"] != "baseline" {
		t.Errorf("get = %d %v", status, body)
	}
	status, body = doJSON(t, "GET", ts.URL+"/v1/policies", nil)
	if list, ok := body["policies"].([]any); status != http.StatusOK || !ok || len(list) != 1 {
		t.Errorf("list = %d %v", status, body)
	}
	if status, _ := doJSON(t, "DELETE", ts.URL+"/v1/policies/baseline", nil); status != http.StatusNoContent {
		t.Errorf("delete = %d", status)
	}
	if status, body := doJSON(t, "GET", ts.URL+"/v1/policies/baseline", nil); status != http.StatusNotFound || errorCode(t, body) != "not_found" {
		t.Errorf("get after delete = %d %v", status, body)
	}
}

// TestAnonymizeWithPolicy covers the three request forms on POST
// /v1/anonymize: inline policy, policy_ref, and the mutual exclusions.
func TestAnonymizeWithPolicy(t *testing.T) {
	ts, srv := newTestServer(t, Config{})
	withCensus(t, srv, 400)

	// Inline policy: the response echoes the canonical policy and the
	// per-criterion measurements.
	status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "census",
		"policy": map[string]any{
			"criteria": []map[string]any{
				{"type": "k-anonymity", "k": 5},
				{"type": "distinct-l-diversity", "l": 2, "sensitive": "salary"},
			},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("inline policy anonymize = %d %v", status, body)
	}
	echoed, ok := body["policy"].(map[string]any)
	if !ok || echoed["version"] != float64(1) {
		t.Fatalf("no canonical policy echo: %v", body)
	}
	meas := body["measurements"].(map[string]any)
	crits, ok := meas["criteria"].(map[string]any)
	if !ok {
		t.Fatalf("no per-criterion measurements: %v", meas)
	}
	for _, typ := range []string{"k-anonymity", "distinct-l-diversity"} {
		entry, ok := crits[typ].(map[string]any)
		if !ok || entry["satisfied"] != true {
			t.Errorf("criterion %s = %v", typ, crits[typ])
		}
	}

	// policy_ref: store once, reference by name; the run pins the snapshot,
	// so deleting the stored policy afterwards changes nothing.
	if status, body := doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{
		"name": "k5", "policy": policyDoc(5),
	}); status != http.StatusCreated {
		t.Fatalf("store policy = %d %v", status, body)
	}
	status, body = doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "census", "policy_ref": "k5", "store": true,
	})
	if status != http.StatusOK {
		t.Fatalf("policy_ref anonymize = %d %v", status, body)
	}
	if body["policy_ref"] != "k5" {
		t.Errorf("response policy_ref = %v", body["policy_ref"])
	}
	relID, _ := body["release_id"].(string)
	if relID == "" {
		t.Fatal("no release id")
	}
	if status, _ := doJSON(t, "DELETE", ts.URL+"/v1/policies/k5", nil); status != http.StatusNoContent {
		t.Fatal("delete stored policy failed")
	}
	status, body = doJSON(t, "GET", ts.URL+"/v1/releases/"+relID, nil)
	if status != http.StatusOK {
		t.Fatalf("get release = %d", status)
	}
	if pol, ok := body["policy"].(map[string]any); !ok || pol["version"] != float64(1) {
		t.Errorf("release lost its pinned policy snapshot after the stored policy was deleted: %v", body)
	}
	if body["policy_ref"] != "k5" {
		t.Errorf("release policy_ref = %v", body["policy_ref"])
	}

	// Error paths.
	if status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "census", "policy_ref": "gone",
	}); status != http.StatusNotFound || errorCode(t, body) != "not_found" {
		t.Errorf("missing policy_ref = %d %v", status, body)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "census", "policy": policyDoc(5), "policy_ref": "k5",
	}); status != http.StatusBadRequest || errorCode(t, body) != "bad_request" {
		t.Errorf("policy+policy_ref = %d %v", status, body)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "census", "policy": policyDoc(5), "k": 3,
	}); status != http.StatusBadRequest || errorCode(t, body) != "bad_request" {
		t.Errorf("policy+flat = %d %v", status, body)
	}
	// Unsupported criterion/algorithm combination fails before any work.
	if status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset":   "census",
		"algorithm": "datafly",
		"policy": map[string]any{
			"criteria": []map[string]any{
				{"type": "k-anonymity", "k": 5},
				{"type": "t-closeness", "t": 0.2, "sensitive": "occupation"},
			},
		},
	}); status != http.StatusBadRequest || errorCode(t, body) != "bad_config" {
		t.Errorf("unsupported combination = %d %v", status, body)
	}

	// Flat requests still work and are answered with their translation.
	status, body = doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "census", "k": 5,
	})
	if status != http.StatusOK {
		t.Fatalf("flat anonymize = %d %v", status, body)
	}
	if pol, ok := body["policy"].(map[string]any); !ok || pol["version"] != float64(1) {
		t.Errorf("flat request not echoed as canonical policy: %v", body)
	}
}

// TestJobWithPolicyRef checks the async path: jobs accept policy_ref, the
// job detail carries the pinned policy, and the listing stays a summary.
func TestJobWithPolicyRef(t *testing.T) {
	ts, srv := newTestServer(t, Config{})
	withCensus(t, srv, 300)
	if status, body := doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{
		"name": "jobs-k4", "policy": policyDoc(4),
	}); status != http.StatusCreated {
		t.Fatalf("store policy = %d %v", status, body)
	}
	status, body := doJSON(t, "POST", ts.URL+"/v1/jobs", map[string]any{
		"dataset": "census", "policy_ref": "jobs-k4",
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d %v", status, body)
	}
	id, _ := body["id"].(string)
	if body["policy_ref"] != "jobs-k4" {
		t.Errorf("job policy_ref = %v", body["policy_ref"])
	}
	if _, ok := body["policy"].(map[string]any); !ok {
		t.Errorf("job detail carries no policy: %v", body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, body = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if status != http.StatusOK {
			t.Fatalf("poll = %d %v", status, body)
		}
		if body["state"] == "succeeded" {
			break
		}
		if body["state"] == "failed" || body["state"] == "canceled" {
			t.Fatalf("job ended %v: %v", body["state"], body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: %v", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	result := body["result"].(map[string]any)
	if result["policy_ref"] != "jobs-k4" {
		t.Errorf("result policy_ref = %v", result["policy_ref"])
	}
	// Listings strip the document, keeping the summary light.
	status, body = doJSON(t, "GET", ts.URL+"/v1/jobs", nil)
	if status != http.StatusOK {
		t.Fatalf("list = %d", status)
	}
	for _, j := range body["jobs"].([]any) {
		job := j.(map[string]any)
		if _, ok := job["policy"]; ok {
			t.Errorf("job listing carries a policy document: %v", job)
		}
	}
}

// TestDataPaginationAndCSV covers the satellite content-negotiation surface:
// Accept: text/csv streams datasets, the JSON forms paginate with
// limit/offset, and malformed parameters are rejected.
func TestDataPaginationAndCSV(t *testing.T) {
	ts, srv := newTestServer(t, Config{})
	withCensus(t, srv, 120)

	// Dataset CSV stream.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/datasets/census", nil)
	req.Header.Set("Accept", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/csv") {
		t.Fatalf("dataset CSV = %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if lines := strings.Count(string(raw), "\n"); lines != 121 { // header + 120 rows
		t.Errorf("dataset CSV lines = %d", lines)
	}

	// Dataset JSON page.
	status, body := doJSON(t, "GET", ts.URL+"/v1/datasets/census?limit=10&offset=115", nil)
	if status != http.StatusOK {
		t.Fatalf("page = %d %v", status, body)
	}
	if data := body["data"].([]any); len(data) != 5 {
		t.Errorf("page rows = %d, want the 5 remaining past offset 115", len(data))
	}
	if body["total_rows"] != float64(120) || body["offset"] != float64(115) {
		t.Errorf("page metadata = %v", body)
	}
	// Without pagination the metadata response keeps its historical shape.
	_, body = doJSON(t, "GET", ts.URL+"/v1/datasets/census", nil)
	if _, ok := body["data"]; ok {
		t.Errorf("unpaginated dataset response includes rows: %v", body)
	}
	// Malformed and misplaced parameters.
	if status, body := doJSON(t, "GET", ts.URL+"/v1/datasets/census?limit=0", nil); status != http.StatusBadRequest || errorCode(t, body) != "bad_request" {
		t.Errorf("limit=0 = %d %v", status, body)
	}
	req, _ = http.NewRequest("GET", ts.URL+"/v1/datasets/census?limit=5", nil)
	req.Header.Set("Accept", "text/csv")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("CSV with limit = %d, want 400", resp.StatusCode)
	}

	// Release data: JSON page under Accept: application/json, CSV default.
	status, body = doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "census", "k": 5, "store": true,
	})
	if status != http.StatusOK {
		t.Fatalf("anonymize = %d %v", status, body)
	}
	relID := body["release_id"].(string)
	req, _ = http.NewRequest("GET", ts.URL+"/v1/releases/"+relID+"/data?limit=7&offset=3", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release JSON page = %d %s", resp.StatusCode, raw)
	}
	var page map[string]any
	if err := json.Unmarshal(raw, &page); err != nil {
		t.Fatal(err)
	}
	if data := page["data"].([]any); len(data) != 7 || page["offset"] != float64(3) {
		t.Errorf("release page = %v", page)
	}
	if page["total_rows"] != float64(120) {
		t.Errorf("release total_rows = %v", page["total_rows"])
	}
	// Default stays streamed CSV.
	resp, err = http.Get(ts.URL + "/v1/releases/" + relID + "/data")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/csv") {
		t.Errorf("release data default content type = %q", resp.Header.Get("Content-Type"))
	}
}

// TestHealthzPolicies checks the new occupancy counter.
func TestHealthzPolicies(t *testing.T) {
	ts, srv := newTestServer(t, Config{})
	if err := srv.AddPolicy("p1", mustPolicy(t, 3)); err != nil {
		t.Fatal(err)
	}
	_, body := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if body["policies"] != float64(1) {
		t.Errorf("healthz policies = %v", body["policies"])
	}
}

func mustPolicy(t testing.TB, k int) *policy.Policy {
	t.Helper()
	p, err := (&policy.Policy{Criteria: []policy.Criterion{{Type: policy.KAnonymity, K: k}}}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return p
}
