package server

import (
	"encoding/binary"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// bootPersistent starts the service through Open so the data directory is
// recovered and write-through journaling is armed. Close is idempotent, so
// tests that restart mid-flight can shut the first incarnation down
// explicitly and still rely on the cleanup.
func bootPersistent(t testing.TB, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	srv, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv
}

// getRaw fetches a URL and returns the status and exact body bytes, for
// golden byte-for-byte comparisons that doJSON's re-decoding would launder.
func getRaw(t testing.TB, url, accept string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestPersistGoldenRecovery is the acceptance test for the durable store: a
// server populated with datasets, policies and releases (microdata and
// anatomy) is shut down and reopened on the same directory, and every read
// endpoint must return byte-identical responses. Fingerprints are compared
// directly as well, so "identical" is anchored in the content hash rather
// than only in the JSON rendering.
func TestPersistGoldenRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1}
	ts, srv := bootPersistent(t, cfg)

	seedDataset(t, ts, "census", "census", 400)
	seedDataset(t, ts, "hosp", "hospital", 300)
	if status, body := doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{
		"name": "strict",
		"policy": map[string]any{"criteria": []map[string]any{
			{"type": "k-anonymity", "k": 4},
			{"type": "distinct-l-diversity", "l": 2},
		}},
	}); status != http.StatusCreated {
		t.Fatalf("create policy: %d %v", status, body)
	}
	status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "census", "algorithm": "mondrian", "policy_ref": "strict", "store": true})
	if status != http.StatusOK {
		t.Fatalf("anonymize: %d %v", status, body)
	}
	microID, _ := body["release_id"].(string)
	status, body = doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "hosp", "algorithm": "anatomy", "l": 2, "store": true})
	if status != http.StatusOK {
		t.Fatalf("anatomy: %d %v", status, body)
	}
	anatID, _ := body["release_id"].(string)
	if microID == "" || anatID == "" {
		t.Fatalf("missing release ids: %q %q", microID, anatID)
	}

	// Golden bodies: everything a client can read back.
	reads := []struct {
		name, path, accept string
	}{
		{"dataset list", "/v1/datasets", ""},
		{"dataset meta", "/v1/datasets/census", ""},
		{"dataset rows", "/v1/datasets/census?limit=20&offset=5", "application/json"},
		{"dataset csv", "/v1/datasets/census", "text/csv"},
		{"policy", "/v1/policies/strict", ""},
		{"policy list", "/v1/policies", ""},
		{"release list", "/v1/releases", ""},
		{"micro release", "/v1/releases/" + microID, ""},
		{"micro csv", "/v1/releases/" + microID + "/data", ""},
		{"micro risk", "/v1/releases/" + microID + "/risk", ""},
		{"micro utility", "/v1/releases/" + microID + "/utility", ""},
		{"anatomy release", "/v1/releases/" + anatID, ""},
		{"anatomy qit", "/v1/releases/" + anatID + "/data?table=qit", ""},
		{"anatomy st", "/v1/releases/" + anatID + "/data?table=st", ""},
	}
	golden := make([][]byte, len(reads))
	for i, rd := range reads {
		status, raw := getRaw(t, ts.URL+rd.path, rd.accept)
		if status != http.StatusOK {
			t.Fatalf("%s: %d %s", rd.name, status, raw)
		}
		golden[i] = raw
	}
	censusFP := srv.reg.datasets["census"].table.Fingerprint()

	// Restart on the same directory.
	ts.Close()
	srv.Close()
	ts2, srv2 := bootPersistent(t, cfg)

	for i, rd := range reads {
		status, raw := getRaw(t, ts2.URL+rd.path, rd.accept)
		if status != http.StatusOK {
			t.Fatalf("recovered %s: %d %s", rd.name, status, raw)
		}
		if string(raw) != string(golden[i]) {
			t.Errorf("%s changed across restart:\n before: %s\n after:  %s", rd.name, golden[i], raw)
		}
	}
	if got := srv2.reg.datasets["census"].table.Fingerprint(); got != censusFP {
		t.Errorf("census fingerprint changed across restart: %s != %s", got, censusFP)
	}
	// The recovered registry is live, not a read-only replica: new work on
	// top of recovered state must succeed (hierarchies were rebuilt).
	if status, body := doJSON(t, "POST", ts2.URL+"/v1/anonymize", map[string]any{
		"dataset": "census", "algorithm": "datafly", "k": 3}); status != http.StatusOK {
		t.Fatalf("anonymize after recovery: %d %v", status, body)
	}
	// Recovery stats are exposed on /healthz.
	_, health := doJSON(t, "GET", ts2.URL+"/healthz", nil)
	storage, ok := health["storage"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no storage block: %v", health)
	}
	if rec, _ := storage["recovered_records"].(float64); rec < 5 {
		t.Errorf("recovered_records = %v, want >= 5", storage["recovered_records"])
	}
}

// TestPersistDeleteSurvivesRestart checks that deletions are journaled too:
// a deleted policy and release must stay gone after recovery, and a release
// id is never reused for new work after a restart.
func TestPersistDeleteSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1}
	ts, srv := bootPersistent(t, cfg)
	seedDataset(t, ts, "d", "census", 200)
	status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "d", "k": 5, "store": true})
	if status != http.StatusOK {
		t.Fatalf("anonymize: %d %v", status, body)
	}
	first, _ := body["release_id"].(string)
	if status, _ := doJSON(t, "DELETE", ts.URL+"/v1/releases/"+first, nil); status != http.StatusNoContent {
		t.Fatalf("delete release: %d", status)
	}

	ts.Close()
	srv.Close()
	ts2, _ := bootPersistent(t, cfg)
	if status, _ := doJSON(t, "GET", ts2.URL+"/v1/releases/"+first, nil); status != http.StatusNotFound {
		t.Errorf("deleted release still served after restart: %d", status)
	}
	status, body = doJSON(t, "POST", ts2.URL+"/v1/anonymize",
		map[string]any{"dataset": "d", "k": 4, "store": true})
	if status != http.StatusOK {
		t.Fatalf("anonymize after restart: %d %v", status, body)
	}
	if next, _ := body["release_id"].(string); next == first {
		t.Errorf("release id %q reused after delete+restart", next)
	}
}

// TestPersistJobDurability runs an async job and restarts the server: the
// published release must survive, proving the job executor publishes through
// the same write-through path as the sync handler.
func TestPersistJobDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1, JobWorkers: 2}
	ts, srv := bootPersistent(t, cfg)
	seedDataset(t, ts, "census", "census", 300)
	status, body := doJSON(t, "POST", ts.URL+"/v1/jobs",
		map[string]any{"dataset": "census", "algorithm": "mondrian", "k": 5, "store": true})
	if status != http.StatusAccepted {
		t.Fatalf("submit job: %d %v", status, body)
	}
	id, _ := body["id"].(string)
	final := pollJob(t, ts, id)
	if final["state"] != "succeeded" {
		t.Fatalf("job: %v", final)
	}
	result, _ := final["result"].(map[string]any)
	relID, _ := result["release_id"].(string)
	if relID == "" {
		t.Fatalf("job result has no release_id: %v", final)
	}
	csv := fetchCSV(t, ts, relID)

	ts.Close()
	srv.Close()
	ts2, _ := bootPersistent(t, cfg)
	if got := fetchCSV(t, ts2, relID); string(got) != string(csv) {
		t.Errorf("job release data changed across restart")
	}
}

// TestPersistSnapshotEndpoint drives POST /v1/snapshot: it folds the WAL
// into a new manifest generation, after which the directory is a consistent
// copyable backup — verified by booting a second server from a file copy.
func TestPersistSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1}
	ts, _ := bootPersistent(t, cfg)
	seedDataset(t, ts, "census", "census", 250)
	if status, body := doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{
		"name": "p", "policy": map[string]any{"criteria": []map[string]any{{"type": "k-anonymity", "k": 3}}},
	}); status != http.StatusCreated {
		t.Fatalf("policy: %d %v", status, body)
	}

	status, body := doJSON(t, "POST", ts.URL+"/v1/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("snapshot: %d %v", status, body)
	}
	storage, ok := body["storage"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot response has no storage block: %v", body)
	}
	if gen, _ := storage["generation"].(float64); gen < 1 {
		t.Errorf("generation = %v after checkpoint, want >= 1", storage["generation"])
	}
	if wal, _ := storage["wal_bytes"].(float64); wal != 0 {
		t.Errorf("wal_bytes = %v after checkpoint, want 0", storage["wal_bytes"])
	}

	// Copy the quiesced directory and boot a server from the copy.
	backup := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		copyTree(t, filepath.Join(dir, e.Name()), filepath.Join(backup, e.Name()))
	}
	ts2, _ := bootPersistent(t, Config{DataDir: backup, Workers: 1})
	if status, body := doJSON(t, "GET", ts2.URL+"/v1/datasets/census", nil); status != http.StatusOK {
		t.Fatalf("restored dataset: %d %v", status, body)
	}
	if status, body := doJSON(t, "GET", ts2.URL+"/v1/policies/p", nil); status != http.StatusOK {
		t.Fatalf("restored policy: %d %v", status, body)
	}

	// A server without a data directory answers 422, not 500.
	tsMem, _ := newTestServer(t, Config{})
	status, body = doJSON(t, "POST", tsMem.URL+"/v1/snapshot", nil)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("snapshot without storage: %d %v", status, body)
	}
	if code := errorCode(t, body); code != "no_storage" {
		t.Errorf("code = %q, want no_storage", code)
	}
}

func copyTree(t testing.TB, src, dst string) {
	t.Helper()
	info, err := os.Stat(src)
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDir() {
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			copyTree(t, filepath.Join(src, e.Name()), filepath.Join(dst, e.Name()))
		}
		return
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPersistConfigurableCaps exercises the Config-level registry caps over
// HTTP: the second dataset, release and policy must be refused with 507 once
// each cap is set to one.
func TestPersistConfigurableCaps(t *testing.T) {
	ts, _ := newTestServer(t, Config{
		Workers: 1, MaxDatasets: 1, MaxReleases: 1, MaxPolicies: 1,
	})
	seedDataset(t, ts, "one", "census", 150)
	status, body := doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "two", "family": "census", "rows": 150})
	if status != http.StatusInsufficientStorage {
		t.Fatalf("second dataset: %d %v", status, body)
	}
	if code := errorCode(t, body); code != "registry_full" {
		t.Errorf("dataset code = %q", code)
	}

	if status, body := doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{
		"name": "a", "policy": map[string]any{"criteria": []map[string]any{{"type": "k-anonymity", "k": 2}}},
	}); status != http.StatusCreated {
		t.Fatalf("first policy: %d %v", status, body)
	}
	status, body = doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{
		"name": "b", "policy": map[string]any{"criteria": []map[string]any{{"type": "k-anonymity", "k": 2}}},
	})
	if status != http.StatusInsufficientStorage {
		t.Fatalf("second policy: %d %v", status, body)
	}

	if status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "one", "k": 3, "store": true}); status != http.StatusOK {
		t.Fatalf("first release: %d %v", status, body)
	}
	status, body = doJSON(t, "POST", ts.URL+"/v1/anonymize",
		map[string]any{"dataset": "one", "k": 4, "store": true})
	if status != http.StatusInsufficientStorage {
		t.Fatalf("second release: %d %v", status, body)
	}
	if code := errorCode(t, body); code != "registry_full" {
		t.Errorf("release code = %q", code)
	}
}

// TestPersistCorruptWALRefusesBoot flips a byte inside a committed WAL
// record: recovery must refuse to serve rather than silently drop interior
// history.
func TestPersistCorruptWALRefusesBoot(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1}
	ts, srv := bootPersistent(t, cfg)
	seedDataset(t, ts, "census", "census", 150)
	if status, body := doJSON(t, "POST", ts.URL+"/v1/policies", map[string]any{
		"name": "p", "policy": map[string]any{"criteria": []map[string]any{{"type": "k-anonymity", "k": 2}}},
	}); status != http.StatusCreated {
		t.Fatalf("policy: %d %v", status, body)
	}
	ts.Close()
	srv.Close()

	wal := walFile(t, dir)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 16 {
		t.Fatalf("wal too short to corrupt: %d bytes", len(data))
	}
	// Flip a payload byte of the first record (header is 8 bytes of
	// length+CRC); the record count is >= 2, so this is interior damage,
	// not a torn tail.
	n := binary.LittleEndian.Uint32(data[:4])
	if int(8+n) >= len(data) {
		t.Skipf("single-record WAL; cannot build interior corruption")
	}
	data[8+n/2] ^= 0xff
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open succeeded on a WAL with interior corruption")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("error %q does not mention corruption", err)
	}
}

// TestPersistTornTailRecovered appends a partial frame to the WAL, as a
// crash mid-append would leave: boot must succeed, keep every committed
// record, and report the truncation on /healthz.
func TestPersistTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1}
	ts, srv := bootPersistent(t, cfg)
	seedDataset(t, ts, "census", "census", 150)
	ts.Close()
	srv.Close()

	f, err := os.OpenFile(walFile(t, dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], 4096) // promises more than exists
	if _, err := f.Write(frame[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ts2, srv2 := bootPersistent(t, cfg)
	if status, body := doJSON(t, "GET", ts2.URL+"/v1/datasets/census", nil); status != http.StatusOK {
		t.Fatalf("dataset lost to torn tail: %d %v", status, body)
	}
	if !srv2.store.Stats().RecoveredTorn {
		t.Error("Stats().RecoveredTorn = false after torn tail")
	}
	_, health := doJSON(t, "GET", ts2.URL+"/healthz", nil)
	storage, _ := health["storage"].(map[string]any)
	if torn, _ := storage["recovered_torn"].(bool); !torn {
		t.Errorf("healthz recovered_torn = %v, want true", storage["recovered_torn"])
	}
}

// walFile locates the live WAL in a data directory.
func walFile(t testing.TB, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal.*"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no WAL in %s (err=%v)", dir, err)
	}
	return matches[len(matches)-1]
}

// TestPersistStorageFailureSurfaces arms a fault after boot so the next
// journaled mutation fails, and checks the HTTP mapping: 500 with code
// "storage", and the registry unchanged (the dataset is not registered).
func TestPersistStorageFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	srv, err := Open(Config{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	seedDataset(t, ts, "ok", "census", 120)

	// Closing the store out from under the server makes every subsequent
	// journal append fail deterministically.
	if err := srv.store.Close(); err != nil {
		t.Fatal(err)
	}
	status, body := doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "doomed", "family": "census", "rows": 120})
	if status != http.StatusInternalServerError {
		t.Fatalf("dataset with dead store: %d %v", status, body)
	}
	if code := errorCode(t, body); code != "storage" {
		t.Errorf("code = %q, want storage", code)
	}
	if srv.HasDataset("doomed") {
		t.Error("failed journal append still registered the dataset")
	}
}
