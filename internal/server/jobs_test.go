package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ppdp/ppdp/internal/jobs"
)

// seedDataset generates a named synthetic dataset on the server under test.
func seedDataset(t testing.TB, ts *httptest.Server, name, family string, rows int) {
	t.Helper()
	status, body := doJSON(t, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": name, "family": family, "rows": rows, "seed": 9})
	if status != http.StatusCreated {
		t.Fatalf("seed dataset: %d %v", status, body)
	}
}

// pollJob polls GET /v1/jobs/{id} until the job reaches a terminal state.
func pollJob(t testing.TB, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if status != http.StatusOK {
			t.Fatalf("poll job %s: %d %v", id, status, body)
		}
		switch body["state"] {
		case "succeeded", "failed", "canceled":
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %v", id, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fetchCSV downloads a stored release's data.
func fetchCSV(t testing.TB, ts *httptest.Server, releaseID string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/releases/" + releaseID + "/data")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch release %s: %d %s", releaseID, resp.StatusCode, raw)
	}
	return raw
}

func TestJobLifecycleHTTP(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	seedDataset(t, ts, "census", "census", 500)

	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs",
		strings.NewReader(`{"dataset":"census","algorithm":"mondrian","k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit job = %d: %s", resp.StatusCode, raw)
	}
	var accepted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(raw, &accepted); err != nil {
		t.Fatalf("decode 202 body: %v (%s)", err, raw)
	}
	if accepted.ID == "" || (accepted.State != "queued" && accepted.State != "running") {
		t.Fatalf("202 body = %s", raw)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+accepted.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, accepted.ID)
	}

	final := pollJob(t, ts, accepted.ID)
	if final["state"] != "succeeded" {
		t.Fatalf("final job state: %v", final)
	}
	releaseID, _ := final["release_id"].(string)
	if releaseID == "" {
		t.Fatalf("succeeded job has no release_id: %v", final)
	}
	progress, _ := final["progress"].(map[string]any)
	if progress == nil || progress["done"] != progress["total"] || progress["done"] == float64(0) {
		t.Errorf("final progress = %v, want done == total > 0", progress)
	}
	result, _ := final["result"].(map[string]any)
	if result == nil || result["rows"] == float64(0) {
		t.Errorf("succeeded job has no result rows: %v", final)
	}

	// The published release is a first-class registry citizen.
	if status, body := doJSON(t, "GET", ts.URL+"/v1/releases/"+releaseID, nil); status != http.StatusOK {
		t.Fatalf("fetch published release: %d %v", status, body)
	}
	// The job shows up in the listing.
	status, body := doJSON(t, "GET", ts.URL+"/v1/jobs", nil)
	if status != http.StatusOK {
		t.Fatalf("list jobs: %d %v", status, body)
	}
	list, _ := body["jobs"].([]any)
	found := false
	for _, j := range list {
		if m, ok := j.(map[string]any); ok && m["id"] == accepted.ID {
			found = true
			if m["dataset"] != "census" || m["algorithm"] != "mondrian" {
				t.Errorf("listed job metadata = %v", m)
			}
		}
	}
	if !found {
		t.Errorf("job %s missing from listing: %v", accepted.ID, body)
	}
	// Unknown job is a 404.
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/j999999", nil); status != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", status)
	}
}

// TestJobSyncGoldenEquivalence is the shared-executor guarantee: a release
// produced by a background job is byte-identical to the release the
// synchronous path produces for the same spec, for a deterministic algorithm
// on the same dataset snapshot.
func TestJobSyncGoldenEquivalence(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	seedDataset(t, ts, "census", "census", 500)

	specs := []map[string]any{
		{"dataset": "census", "algorithm": "mondrian", "k": 5, "store": true},
		{"dataset": "census", "algorithm": "datafly", "k": 5, "store": true,
			"quasi_identifiers": []string{"age", "sex", "education", "marital-status", "race"}},
		{"dataset": "census", "algorithm": "kmember", "k": 5, "store": true,
			"quasi_identifiers": []string{"age", "sex", "education"}},
	}
	for _, spec := range specs {
		t.Run(spec["algorithm"].(string), func(t *testing.T) {
			status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", spec)
			if status != http.StatusOK {
				t.Fatalf("sync anonymize: %d %v", status, body)
			}
			syncRelease, _ := body["release_id"].(string)
			if syncRelease == "" {
				t.Fatalf("sync response has no release_id: %v", body)
			}

			status, body = doJSON(t, "POST", ts.URL+"/v1/jobs", spec)
			if status != http.StatusAccepted {
				t.Fatalf("submit job: %d %v", status, body)
			}
			final := pollJob(t, ts, body["id"].(string))
			if final["state"] != "succeeded" {
				t.Fatalf("job did not succeed: %v", final)
			}
			jobRelease, _ := final["release_id"].(string)
			if jobRelease == "" {
				t.Fatalf("job has no release_id: %v", final)
			}

			if !bytes.Equal(fetchCSV(t, ts, syncRelease), fetchCSV(t, ts, jobRelease)) {
				t.Errorf("job release %s differs from synchronous release %s", jobRelease, syncRelease)
			}
		})
	}
}

// TestQueueFullRejectsBothPaths saturates the shared executor (one gated
// worker, one queue slot) and checks both request paths answer 429 with the
// queue_full envelope and a Retry-After header.
func TestQueueFullRejectsBothPaths(t *testing.T) {
	ts, srv := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 1})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	defer close(release)
	srv.runGate = func(ctx context.Context) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	seedDataset(t, ts, "census", "census", 200)

	submit := func() (int, http.Header, map[string]any) {
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs",
			strings.NewReader(`{"dataset":"census","k":5}`))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		out := map[string]any{}
		_ = json.Unmarshal(raw, &out)
		return resp.StatusCode, resp.Header, out
	}

	// One running (held at the gate), one queued: the executor is full.
	status, _, body := submit()
	if status != http.StatusAccepted {
		t.Fatalf("first submit: %d %v", status, body)
	}
	<-entered
	status, _, queuedBody := submit()
	if status != http.StatusAccepted {
		t.Fatalf("second submit: %d %v", status, queuedBody)
	}
	queuedID, _ := queuedBody["id"].(string)
	if pos, _ := queuedBody["queue_position"].(float64); pos != 1 {
		t.Errorf("queued job position = %v, want 1", queuedBody["queue_position"])
	}

	// Third job: 429 with Retry-After, on the async path...
	status, header, body := submit()
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %v", status, body)
	}
	if code := errorCode(t, body); code != "queue_full" {
		t.Errorf("overflow code = %q, want queue_full", code)
	}
	if header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	// ...and on the synchronous path, which shares the same queue.
	status, body = doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{"dataset": "census", "k": 5})
	if status != http.StatusTooManyRequests {
		t.Fatalf("sync overflow: %d %v", status, body)
	}
	if code := errorCode(t, body); code != "queue_full" {
		t.Errorf("sync overflow code = %q, want queue_full", code)
	}

	// Canceling the queued job frees its slot without it ever running.
	if status, body := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+queuedID, nil); status != http.StatusAccepted {
		t.Fatalf("cancel queued job: %d %v", status, body)
	}
	final := pollJob(t, ts, queuedID)
	if final["state"] != "canceled" {
		t.Errorf("canceled queued job state = %v", final["state"])
	}
	status, _, body = submit()
	if status != http.StatusAccepted {
		t.Errorf("submit after freeing the queue: %d %v", status, body)
	}
}

// TestCancelRunningJobNeverPublishes pins a job in the running state, cancels
// it over HTTP, and checks it reaches the canceled state without publishing a
// release — the run's context is canceled before the algorithm finishes, and
// the runner re-checks it before touching the registry.
func TestCancelRunningJobNeverPublishes(t *testing.T) {
	ts, srv := newTestServer(t, Config{JobWorkers: 1})
	entered := make(chan struct{}, 1)
	srv.runGate = func(ctx context.Context) {
		entered <- struct{}{}
		<-ctx.Done() // hold the run until the cancellation arrives
	}
	seedDataset(t, ts, "census", "census", 200)

	status, body := doJSON(t, "POST", ts.URL+"/v1/jobs", map[string]any{"dataset": "census", "k": 5})
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %v", status, body)
	}
	id := body["id"].(string)
	<-entered // the job is now running, held at the gate

	status, body = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil)
	if status != http.StatusAccepted {
		t.Fatalf("cancel: %d %v", status, body)
	}
	final := pollJob(t, ts, id)
	if final["state"] != "canceled" {
		t.Fatalf("final state = %v, want canceled", final["state"])
	}
	if errInfo, _ := final["error"].(map[string]any); errInfo == nil || errInfo["code"] != "canceled" {
		t.Errorf("canceled job error = %v", final["error"])
	}
	if rid, _ := final["release_id"].(string); rid != "" {
		t.Errorf("canceled job published release %q", rid)
	}
	status, body = doJSON(t, "GET", ts.URL+"/v1/releases", nil)
	if status != http.StatusOK {
		t.Fatalf("list releases: %d %v", status, body)
	}
	if releases, _ := body["releases"].([]any); len(releases) != 0 {
		t.Errorf("canceled job left releases behind: %v", body)
	}
	// Cancelling a finished job is a conflict.
	if status, _ := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil); status != http.StatusConflict {
		t.Errorf("re-cancel status = %d, want 409", status)
	}
}

// TestSettleAbandonedWait pins the race where a synchronous waiter's context
// expires right as its run completes: cancellation then reports the job
// finished, and the handler must serve the completed outcome instead of a
// spurious timeout. The interleaving is exercised deterministically at the
// seam the handler uses.
func TestSettleAbandonedWait(t *testing.T) {
	_, srv := newTestServer(t, Config{JobWorkers: 1})
	t.Cleanup(srv.Close)

	// A job that already finished settles to its final snapshot.
	finished, err := srv.jobs.Submit(func(context.Context, func(int, int)) (any, error) {
		return &anonymizeOutcome{}, nil
	}, jobs.Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := srv.jobs.Wait(context.Background(), finished.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	snap, ok := srv.settleAbandonedWait(finished.ID)
	if !ok || snap.State != jobs.Succeeded {
		t.Fatalf("settle finished job = %+v, %v; want succeeded snapshot", snap, ok)
	}

	// A job still running is canceled, not settled — the handler reports the
	// timeout/disconnect as before.
	entered := make(chan struct{}, 1)
	running, err := srv.jobs.Submit(func(ctx context.Context, _ func(int, int)) (any, error) {
		entered <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}, jobs.Options{})
	if err != nil {
		t.Fatalf("Submit running: %v", err)
	}
	<-entered
	if _, ok := srv.settleAbandonedWait(running.ID); ok {
		t.Fatal("settle of a live job claimed a finished outcome")
	}
	final, err := srv.jobs.Wait(context.Background(), running.ID)
	if err != nil || final.State != jobs.Canceled {
		t.Fatalf("live job after settle = %+v, %v; want canceled", final, err)
	}
}

// TestAccessLogIncludesStatus is the logRequests satellite: the access log
// line carries the response status code.
func TestAccessLogIncludesStatus(t *testing.T) {
	var buf bytes.Buffer
	srv := New(Config{Log: log.New(&buf, "", 0)})
	t.Cleanup(srv.Close)
	handler := srv.Handler()

	for _, tc := range []struct {
		method, path string
		status       string
	}{
		{"GET", "/healthz", " 200 "},
		{"GET", "/v1/datasets/missing", " 404 "},
	} {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if !strings.Contains(buf.String(), tc.status) {
			t.Errorf("access log for %s %s missing status%q: %q", tc.method, tc.path, tc.status, buf.String())
		}
		buf.Reset()
	}
}

// TestDefaultsComeFromRegistryMetadata is the defaults satellite: omitting k
// and max_suppression resolves them from the engine registry's Param
// metadata (k=10, max_suppression=0.02), identically to what GET
// /v1/algorithms advertises.
func TestDefaultsComeFromRegistryMetadata(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	seedDataset(t, ts, "census", "census", 400)

	// The advertised metadata carries the defaults.
	status, body := doJSON(t, "GET", ts.URL+"/v1/algorithms", nil)
	if status != http.StatusOK {
		t.Fatalf("algorithms: %d %v", status, body)
	}
	algs, _ := body["algorithms"].([]any)
	sawK := false
	for _, a := range algs {
		m, _ := a.(map[string]any)
		params, _ := m["parameters"].([]any)
		for _, p := range params {
			pm, _ := p.(map[string]any)
			if pm["name"] == "k" {
				sawK = true
				if pm["default"] != float64(10) {
					t.Errorf("%v: advertised k default = %v, want 10", m["name"], pm["default"])
				}
			}
			if pm["name"] == "max_suppression" && pm["default"] != 0.02 {
				t.Errorf("%v: advertised max_suppression default = %v, want 0.02", m["name"], pm["default"])
			}
		}
	}
	if !sawK {
		t.Fatal("no algorithm advertises a k parameter")
	}

	// A request omitting k is anonymized at the advertised default.
	status, body = doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{"dataset": "census"})
	if status != http.StatusOK {
		t.Fatalf("anonymize without k: %d %v", status, body)
	}
	meas, _ := body["measurements"].(map[string]any)
	if k, _ := meas["k"].(float64); k < 10 {
		t.Errorf("measured k = %v, want >= the metadata default 10", k)
	}
	// Datafly without an explicit suppression budget uses the advertised one.
	status, body = doJSON(t, "POST", ts.URL+"/v1/anonymize", map[string]any{
		"dataset": "census", "algorithm": "datafly",
		"quasi_identifiers": []string{"age", "sex", "education", "marital-status", "race"},
	})
	if status != http.StatusOK {
		t.Fatalf("datafly without max_suppression: %d %v", status, body)
	}
	if sup, _ := body["measurements"].(map[string]any)["suppressed_rows"].(float64); sup > 0.02*400 {
		t.Errorf("suppressed rows %v exceed the default budget", sup)
	}
}
