package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/ppdp/ppdp/internal/synth"
)

// cacheStats fetches the /healthz cache block.
func cacheStats(t testing.TB, ts *httptest.Server) map[string]any {
	t.Helper()
	status, body := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz: %d %v", status, body)
	}
	stats, ok := body["cache"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no cache block: %v", body)
	}
	return stats
}

// TestCacheHitByteIdenticalAllSeven proves the core cache contract for every
// algorithm: a repeated identical request is served from the cache (healthz
// hit counter advances) and its stored release is byte-identical to the
// freshly computed one.
func TestCacheHitByteIdenticalAllSeven(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	seedDataset(t, ts, "h", "hospital", 300)
	cases := []struct {
		algorithm string
		params    map[string]any
	}{
		{"mondrian", map[string]any{"k": 5}},
		{"incognito", map[string]any{"k": 5}},
		{"topdown", map[string]any{"k": 5}},
		{"datafly", map[string]any{"k": 5}},
		{"samarati", map[string]any{"k": 5}},
		{"kmember", map[string]any{"k": 5}},
		{"anatomy", map[string]any{"l": 2}},
	}
	hits := float64(0)
	for _, tc := range cases {
		t.Run(tc.algorithm, func(t *testing.T) {
			req := map[string]any{"dataset": "h", "algorithm": tc.algorithm, "store": true}
			for k, v := range tc.params {
				req[k] = v
			}
			status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", req)
			if status != http.StatusOK {
				t.Fatalf("fresh run: %d %v", status, body)
			}
			fresh := fetchCSV(t, ts, body["release_id"].(string))

			status, body = doJSON(t, "POST", ts.URL+"/v1/anonymize", req)
			if status != http.StatusOK {
				t.Fatalf("cached run: %d %v", status, body)
			}
			cached := fetchCSV(t, ts, body["release_id"].(string))
			if !bytes.Equal(fresh, cached) {
				t.Errorf("cached release differs from fresh computation")
			}
			hits++
			if got := cacheStats(t, ts)["hits"].(float64); got != hits {
				t.Errorf("healthz hits = %v, want %v", got, hits)
			}
		})
	}
}

// TestCacheHitSkipsQueueOnJobPath proves a warm cache settles POST /v1/jobs
// without queueing: the 202 body already carries the succeeded state and the
// full result.
func TestCacheHitSkipsQueueOnJobPath(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	seedDataset(t, ts, "c", "census", 300)
	req := map[string]any{"dataset": "c", "algorithm": "mondrian", "k": 5}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", req); status != http.StatusOK {
		t.Fatalf("warm-up: %d %v", status, body)
	}
	status, body := doJSON(t, "POST", ts.URL+"/v1/jobs", req)
	if status != http.StatusAccepted {
		t.Fatalf("job submit: %d %v", status, body)
	}
	if body["state"] != "succeeded" {
		t.Fatalf("cache-hit job not immediately succeeded: %v", body["state"])
	}
	if body["result"] == nil {
		t.Fatal("cache-hit job carries no result")
	}
	// The job stays pollable like any finished job.
	final := pollJob(t, ts, body["id"].(string))
	if final["state"] != "succeeded" {
		t.Fatalf("polled state = %v", final["state"])
	}
}

// TestCacheNoCacheBypasses proves the no_cache request option skips both the
// lookup and the memoization.
func TestCacheNoCacheBypasses(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	seedDataset(t, ts, "c", "census", 200)
	req := map[string]any{"dataset": "c", "algorithm": "mondrian", "k": 5, "no_cache": true}
	for i := 0; i < 2; i++ {
		if status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", req); status != http.StatusOK {
			t.Fatalf("run %d: %d %v", i, status, body)
		}
	}
	stats := cacheStats(t, ts)
	if stats["hits"].(float64) != 0 || stats["entries"].(float64) != 0 {
		t.Errorf("no_cache runs touched the cache: %v", stats)
	}
	// Without the option the same request now misses (nothing was memoized)
	// and then hits.
	delete(req, "no_cache")
	for i := 0; i < 2; i++ {
		if status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", req); status != http.StatusOK {
			t.Fatalf("cached run %d: %d %v", i, status, body)
		}
	}
	stats = cacheStats(t, ts)
	if stats["hits"].(float64) != 1 {
		t.Errorf("hits = %v, want 1", stats["hits"])
	}
}

// TestCacheDisabled proves a negative CacheSize turns caching off entirely:
// healthz carries no cache block and repeated requests recompute.
func TestCacheDisabled(t *testing.T) {
	ts, _ := newTestServer(t, Config{CacheSize: -1})
	seedDataset(t, ts, "c", "census", 200)
	req := map[string]any{"dataset": "c", "algorithm": "mondrian", "k": 5}
	for i := 0; i < 2; i++ {
		if status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize", req); status != http.StatusOK {
			t.Fatalf("run %d: %d %v", i, status, body)
		}
	}
	status, body := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	if _, present := body["cache"]; present {
		t.Errorf("disabled cache still reported on healthz: %v", body["cache"])
	}
}

// TestCacheReplacedDatasetRecomputes proves invalidation is keyed on dataset
// content: replacing a dataset under the same name changes its fingerprint,
// so the next identical request computes fresh instead of serving the stale
// release.
func TestCacheReplacedDatasetRecomputes(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	upload := func(seed int64) {
		t.Helper()
		var buf bytes.Buffer
		if err := synth.Census(120, seed).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest("PUT", ts.URL+"/v1/datasets/d?family=census", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload seed %d: %d", seed, resp.StatusCode)
		}
	}
	anonRows := func() ([]any, map[string]any) {
		t.Helper()
		status, body := doJSON(t, "POST", ts.URL+"/v1/anonymize",
			map[string]any{"dataset": "d", "algorithm": "mondrian", "k": 5, "include_rows": true})
		if status != http.StatusOK {
			t.Fatalf("anonymize: %d %v", status, body)
		}
		return body["data"].([]any), cacheStats(t, ts)
	}

	upload(1)
	first, _ := anonRows()
	second, stats := anonRows()
	if stats["hits"].(float64) != 1 {
		t.Fatalf("identical request not served from cache: %v", stats)
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Error("cached rows differ from fresh computation")
	}

	upload(2)
	replaced, stats := anonRows()
	if stats["hits"].(float64) != 1 {
		t.Errorf("replaced dataset served from stale cache: %v", stats)
	}
	if fmt.Sprint(replaced) == fmt.Sprint(first) {
		t.Error("replaced dataset released the old rows")
	}
}

// BenchmarkCacheHit measures the full HTTP round trip of a cache-served
// anonymize request on a 5k census table — the latency a repeated identical
// request pays once the first run is memoized. Compare against
// BenchmarkServeAnonymize (the cold path) for the hit speedup.
func BenchmarkCacheHit(b *testing.B) {
	ts, _ := newTestServer(b, Config{})
	seedDataset(b, ts, "c", "census", 5000)
	req := map[string]any{"dataset": "c", "algorithm": "mondrian", "k": 10}
	if status, body := doJSON(b, "POST", ts.URL+"/v1/anonymize", req); status != http.StatusOK {
		b.Fatalf("warm-up: %d %v", status, body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if status, _ := doJSON(b, "POST", ts.URL+"/v1/anonymize", req); status != http.StatusOK {
			b.Fatalf("cached request: %d", status)
		}
	}
}
